"""Tests for crash-safe writes (repro.util.atomicio) and the bench
record writer that depends on them."""

import json
import os

import pytest

from repro.util.atomicio import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        p = tmp_path / "out.txt"
        assert atomic_write_text(p, "hello\n") == str(p)
        assert p.read_text() == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        p = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(p, "x")
        assert p.read_text() == "x"

    def test_overwrite_replaces_content(self, tmp_path):
        p = tmp_path / "out.txt"
        atomic_write_text(p, "old")
        atomic_write_text(p, "new")
        assert p.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        p = tmp_path / "out.txt"
        atomic_write_text(p, "x")
        assert [f.name for f in tmp_path.iterdir()] == ["out.txt"]

    def test_interrupted_write_leaves_original_intact(
        self, tmp_path, monkeypatch
    ):
        # Simulate a crash at the rename: the destination must keep its
        # previous content and the temp file must be cleaned up.  (A
        # bare write_text here would have truncated the baseline.)
        p = tmp_path / "baseline.json"
        atomic_write_text(p, "precious baseline")

        def boom(src, dst):
            raise OSError("interrupted")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(p, "half-written garbage")
        assert p.read_text() == "precious baseline"
        assert [f.name for f in tmp_path.iterdir()] == ["baseline.json"]


class TestAtomicWriteJson:
    def test_round_trips_with_trailing_newline(self, tmp_path):
        p = tmp_path / "doc.json"
        atomic_write_json(p, {"a": [1, 2]})
        text = p.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": [1, 2]}


class TestHotpathsRecordWrite:
    """write_record goes through the atomic helper and folds history."""

    def _record(self, tag):
        from repro.bench.hotpaths import SCHEMA

        return {
            "schema": SCHEMA,
            "config": {"n": 256, "block": 32, "grid": 2,
                       "machine": "summit", "seed": 42},
            "results": [{"stage": tag, "reps": 1, "min_s": 1.0,
                         "mean_s": 1.0, "max_s": 1.0}],
        }

    def test_folds_previous_record(self, tmp_path):
        from repro.bench.hotpaths import load_record, write_record

        out = str(tmp_path / "BENCH_hotpaths.json")
        write_record(self._record("first"), out)
        write_record(self._record("second"), out)
        rec = load_record(out)
        assert rec["results"][0]["stage"] == "second"
        assert rec["previous"]["results"][0]["stage"] == "first"

    def test_crash_mid_write_preserves_baseline(self, tmp_path, monkeypatch):
        from repro.bench import hotpaths
        from repro.bench.regression import stage_seconds

        out = str(tmp_path / "BENCH_hotpaths.json")
        hotpaths.write_record(self._record("baseline"), out)

        import repro.util.atomicio as atomicio

        def boom(src, dst):
            raise OSError("power cut")

        monkeypatch.setattr(atomicio.os, "replace", boom)
        with pytest.raises(OSError):
            hotpaths.write_record(self._record("doomed"), out)
        rec = hotpaths.load_record(out)
        assert rec["results"][0]["stage"] == "baseline"
        # The preserved baseline still parses as a gate input.
        assert stage_seconds(rec) == {"baseline": 1.0}
