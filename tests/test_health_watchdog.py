"""Tests for the run watchdog and StallError diagnosis."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.errors import ConfigurationError, DeadlockError, StallError
from repro.machine import get_machine
from repro.machine.topology import CommCosts
from repro.obs import Observability
from repro.obs.health import HealthMonitor, RunWatchdog
from repro.simulate.engine import Engine
from repro.simulate.events import Barrier, Recv


def _cfg(**kwargs):
    defaults = dict(
        n=512, block=64, machine=get_machine("frontier"), p_rows=2, p_cols=2
    )
    defaults.update(kwargs)
    return BenchmarkConfig(**defaults)


def _engine(num_ranks=2):
    return Engine(num_ranks, CommCosts(get_machine("frontier")))


class TestRunWatchdog:
    def test_margin_validation(self):
        with pytest.raises(ConfigurationError):
            RunWatchdog(margin=0)
        with pytest.raises(ConfigurationError):
            RunWatchdog(margin=-2.0)

    def test_bind_arms_modelled_deadlines(self):
        wd = RunWatchdog(margin=10.0)
        wd.bind(_cfg())
        assert set(wd.deadlines) == {"factorization", "total"}
        assert 0 < wd.deadlines["factorization"] < wd.deadlines["total"]

    def test_disabled_watchdog_never_checks(self):
        wd = RunWatchdog(enabled=False)
        wd.bind(_cfg())
        assert wd.deadlines == {}
        wd.check(_engine(), t=1e9)  # no deadline, no trip

    def test_to_dict(self):
        wd = RunWatchdog(margin=5.0)
        d = wd.to_dict()
        assert d["margin"] == 5.0
        assert d["tripped"] is False
        assert d["deadlines_s"] == {}


class TestStallErrorFromWatchdog:
    def test_tiny_margin_trips_and_names_blocked_collective(self):
        cfg = _cfg()
        obs = Observability(
            health=HealthMonitor(watchdog=RunWatchdog(margin=1e-3))
        )
        with pytest.raises(StallError) as ei:
            simulate_run(cfg, obs=obs)
        err = ei.value
        assert "watchdog" in str(err)
        assert "deadline" in str(err)
        assert err.elapsed is not None
        # StallError stays catchable as the engine's DeadlockError
        assert isinstance(err, DeadlockError)

    def test_healthy_margin_never_trips(self):
        cfg = _cfg()
        monitor = HealthMonitor(watchdog=RunWatchdog(margin=25.0))
        obs = Observability(health=monitor)
        res = simulate_run(cfg, obs=obs)
        assert res.health.watchdog["tripped"] is False
        assert res.health.watchdog["deadlines_s"]


class TestStallErrorFromEngine:
    def test_mutual_recv_deadlock_is_diagnosed(self):
        eng = _engine(2)

        def prog(r):
            yield Recv(1 - r, 40)
            return None

        with pytest.raises(StallError) as ei:
            eng.run(prog)
        err = ei.value
        assert len(err.blocked) == 2
        by_rank = {b["rank"]: b for b in err.blocked}
        assert by_rank[0]["state"] == "recv"
        assert by_rank[0]["src"] == 1
        assert by_rank[0]["tag"] == 40
        # wire tag 40 decodes to a named phase and step
        assert isinstance(by_rank[0]["phase"], str)
        assert by_rank[0]["step"] == 0

    def test_partial_collective_names_members_and_arrivals(self):
        eng = _engine(3)

        def prog(r):
            if r == 2:
                return "bailed"  # never joins the barrier
            yield Barrier(members=(0, 1, 2), key="b0")
            return "done"

        with pytest.raises(StallError) as ei:
            eng.run(prog)
        err = ei.value
        colls = [b for b in err.blocked if b["state"] == "collective"]
        assert len(colls) == 2
        assert colls[0]["op"] == "Barrier"
        assert colls[0]["members"] == [0, 1, 2]
        assert sorted(colls[0]["arrived"]) == [0, 1]

    def test_legacy_deadlock_catch_still_works(self):
        # pre-existing callers catch DeadlockError; the richer StallError
        # must remain a subclass
        eng = _engine(2)

        def prog(r):
            yield Recv(1 - r, 8)

        with pytest.raises(DeadlockError):
            eng.run(prog)

    def test_blocked_ranks_empty_on_fresh_engine(self):
        assert _engine().blocked_ranks() == []
