"""Phantom (timing-only) runs: scale behaviour and exact/phantom parity."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark, simulate_run
from repro.machine import FRONTIER, SUMMIT


def _cfg(machine=FRONTIER, n=3072 * 16, block=3072, pr=4, pc=4, **kw):
    return BenchmarkConfig(
        n=n, block=block, machine=machine, p_rows=pr, p_cols=pc, **kw
    )


class TestPhantomBasics:
    def test_runs_at_scale_without_data(self):
        cfg = _cfg()
        res = simulate_run(cfg)
        assert res.exact is False
        assert res.x is None
        assert res.elapsed > 0
        assert res.gflops_per_gcd > 0

    def test_phantom_matches_exact_timing(self):
        # Same programs, same timing model: an exact run and a phantom
        # run of the same configuration must report identical virtual
        # times (the phantom's IR depth is pinned to the exact run's).
        kw = dict(n=128, block=16, pr=2, pc=2, machine=SUMMIT)
        exact = run_benchmark(
            _cfg(**kw, ir_fixed_iters=1), exact=True
        )
        phantom = simulate_run(_cfg(**kw, ir_fixed_iters=exact.ir_iterations))
        assert phantom.elapsed_factorization == pytest.approx(
            exact.elapsed_factorization, rel=1e-9
        )
        assert phantom.elapsed == pytest.approx(exact.elapsed, rel=1e-9)

    def test_more_gcds_same_local_size_scales_n(self):
        # Memory-size weak scaling: constant N_L, growing grid.
        nl = 3072 * 4
        small = simulate_run(_cfg(n=nl * 2, pr=2, pc=2))
        large = simulate_run(_cfg(n=nl * 4, pr=4, pc=4))
        # Wall time grows (more factorization steps), but per-GCD rate
        # stays within a band (weak scaling).
        assert large.elapsed > small.elapsed
        assert large.gflops_per_gcd > 0.5 * small.gflops_per_gcd


class TestTuningEffectsAtScale:
    """The paper's findings, reproduced as orderings on simulated runs."""

    def test_block_size_matters_frontier(self):
        # Fig 4 / Finding 4: B=3072 beats small B on MI250X at a local
        # problem size where GEMM dominates (N_L = 61440).
        n = 61440 * 2  # divisible by both 512*2 and 3072*2
        slow = simulate_run(_cfg(n=n, block=512, pr=2, pc=2))
        fast = simulate_run(_cfg(n=n, block=3072, pr=2, pc=2))
        # The optimum moves with scale (Fig 4 is at 1024 GCDs — covered
        # by the analytic-model benches); at this size the large block
        # must already beat the small one on factorization time.
        assert fast.elapsed_factorization < slow.elapsed_factorization

    def test_gpu_aware_mpi_helps_frontier(self):
        # Finding 7: 40-57% improvement from GPU-aware MPI.
        base = dict(n=3072 * 16, block=3072, pr=4, pc=4, machine=FRONTIER)
        aware = simulate_run(_cfg(**base, gpu_aware=True))
        staged = simulate_run(_cfg(**base, gpu_aware=False))
        assert aware.elapsed < staged.elapsed

    def test_port_binding_helps_summit(self):
        # Finding 5: 35.6-59.7% improvement on Summit.
        base = dict(n=768 * 48, block=768, pr=6, pc=6, machine=SUMMIT)
        bound = simulate_run(_cfg(**base, port_binding=True))
        unbound = simulate_run(_cfg(**base, port_binding=False))
        assert bound.elapsed < unbound.elapsed

    def test_lookahead_helps(self):
        base = dict(n=3072 * 24, block=3072, pr=6, pc=4, machine=FRONTIER)
        with_la = simulate_run(_cfg(**base, lookahead=True))
        without = simulate_run(_cfg(**base, lookahead=False))
        assert with_la.elapsed < without.elapsed

    def test_ring2m_beats_bcast_on_frontier(self):
        # Finding 6.
        base = dict(n=3072 * 24, block=3072, pr=8, pc=8, machine=FRONTIER,
                    q_rows=2, q_cols=4)
        ring = simulate_run(_cfg(**base, bcast_algorithm="ring2m"))
        tree = simulate_run(_cfg(**base, bcast_algorithm="bcast"))
        assert ring.elapsed < tree.elapsed

    def test_bcast_at_least_competitive_on_summit(self):
        base = dict(n=768 * 54, block=768, pr=9, pc=6, machine=SUMMIT,
                    q_rows=3, q_cols=2)
        ring = simulate_run(_cfg(**base, bcast_algorithm="ring1"))
        tree = simulate_run(_cfg(**base, bcast_algorithm="bcast"))
        assert tree.elapsed < ring.elapsed * 1.1

    def test_slow_gcd_stalls_pipeline(self):
        # Section VI-B: a single slow GCD worsens the whole run.
        cfg = _cfg(n=3072 * 8, pr=2, pc=2)
        mult = np.ones(4)
        clean = simulate_run(cfg, rate_multipliers=mult)
        mult_slow = mult.copy()
        mult_slow[3] = 0.9
        slowed = simulate_run(_cfg(n=3072 * 8, pr=2, pc=2),
                              rate_multipliers=mult_slow)
        assert slowed.elapsed > clean.elapsed * 1.02

    def test_global_speed_scales_compute(self):
        cfg = _cfg(n=3072 * 8, pr=2, pc=2)
        warm = simulate_run(cfg, global_speed=1.0)
        cold = simulate_run(_cfg(n=3072 * 8, pr=2, pc=2), global_speed=0.8)
        assert cold.elapsed > warm.elapsed

    def test_lda_pathology_hurts(self):
        # Fig 7 / Section V-D: the paper's exact contrast — N_L=122880
        # (LDA divisible by 8192) delivers *worse per-GCD throughput*
        # than the slightly smaller N_L=119808.
        good = simulate_run(_cfg(n=119808 * 2, block=3072, pr=2, pc=2))
        bad = simulate_run(_cfg(n=122880 * 2, block=3072, pr=2, pc=2))
        assert good.gflops_per_gcd > bad.gflops_per_gcd


class TestEngineScale:
    def test_64_rank_run_completes_quickly(self):
        cfg = _cfg(n=3072 * 8 * 2, pr=8, pc=8, q_rows=2, q_cols=4)
        res = simulate_run(cfg)
        assert res.engine_events > 0
        assert len(res.stats) == 64
