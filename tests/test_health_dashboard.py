"""Tests for the self-contained HTML dashboard and the health report."""

import json

import pytest

from repro.analyze.checkers.health_schema import check_health_report
from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.machine import get_machine
from repro.obs import Observability
from repro.obs.analysis import from_observability
from repro.obs.export import dumps_strict
from repro.obs.health import (
    HEALTH_SCHEMA,
    HealthMonitor,
    render_dashboard,
    validate_self_contained,
)


def _cfg(**kwargs):
    defaults = dict(
        n=512, block=64, machine=get_machine("frontier"), p_rows=2, p_cols=2
    )
    defaults.update(kwargs)
    return BenchmarkConfig(**defaults)


def _monitored(slow_rank=None):
    cfg = _cfg()
    obs = Observability(health=HealthMonitor())
    mult = None
    if slow_rank is not None:
        mult = [1.0] * cfg.num_ranks
        mult[slow_rank] = 1.0 / 1.5
    res = simulate_run(cfg, rate_multipliers=mult, obs=obs)
    return cfg, obs, res


class TestHealthReport:
    def test_schema_and_roundtrip(self):
        _cfg_, _obs, res = _monitored(slow_rank=1)
        doc = json.loads(dumps_strict(res.health.to_dict()))
        assert doc["schema"] == HEALTH_SCHEMA
        assert doc["num_ranks"] == 4
        assert doc["degraded_ranks"] == [1]
        assert doc["watchdog"]["tripped"] is False
        assert doc["collectives"] > 0
        assert "busy_s/rank0" in doc["series"]
        # the document validates against its own checker
        assert check_health_report(doc) == []

    def test_render_text_mentions_findings(self):
        _cfg_, _obs, res = _monitored(slow_rank=1)
        text = res.health.render_text()
        assert "straggler_drift" in text
        assert "rank" in text

    def test_clean_report_is_healthy(self):
        _cfg_, _obs, res = _monitored()
        assert res.health.healthy
        assert "healthy" in res.health.render_text()

    def test_checker_rejects_malformed_docs(self):
        assert check_health_report([]) != []
        assert check_health_report({"schema": "nope"}) != []
        _cfg_, _obs, res = _monitored(slow_rank=1)
        doc = res.health.to_dict()
        doc["degraded_ranks"] = [3]  # inconsistent with findings
        assert any("degraded_ranks" in p for p in check_health_report(doc))


class TestDashboard:
    def test_renders_all_panels_self_contained(self):
        _cfg_, obs, res = _monitored(slow_rank=1)
        html = render_dashboard(
            from_observability(obs), res.health.to_dict(), title="t"
        )
        assert validate_self_contained(html) == []
        for marker in (
            "<!DOCTYPE html>", "Per-rank timeline",
            "Communication heatmap", "Health time series", "Findings",
            "straggler_drift", "<svg", "polyline",
        ):
            assert marker in html, marker
        # every rank got a timeline row
        for r in range(4):
            assert f"rank {r}" in html

    def test_renders_without_health_doc(self):
        _cfg_, obs, _res = _monitored()
        html = render_dashboard(from_observability(obs), None)
        assert validate_self_contained(html) == []
        assert "no health findings" in html

    def test_validator_catches_external_references(self):
        bad = '<html><script src="https://cdn.example.com/x.js"></script>'
        problems = validate_self_contained(bad)
        assert len(problems) >= 2  # https:// and <script src
        assert validate_self_contained("<html>clean</html>") == []

    def test_titles_are_escaped(self):
        _cfg_, obs, _res = _monitored()
        html = render_dashboard(
            from_observability(obs), None, title="<img onerror=x>"
        )
        assert "<img onerror" not in html
        assert "&lt;img" in html
