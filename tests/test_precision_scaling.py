"""Tests for the FP16 dynamic-range analysis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lcg.matrix import FP16_SAFE_N, HplAiMatrix
from repro.precision import FP16
from repro.precision.scaling import fp16_safety, max_exact_n, scaling_headroom


class TestSafetyReport:
    def test_small_n_safe(self):
        rep = fp16_safety(512)
        assert rep.safe
        assert rep.normal_margin >= 4

    def test_large_n_unsafe(self):
        rep = fp16_safety(1_000_000)
        assert not rep.safe
        assert rep.normal_margin < 1

    def test_consistent_with_matrix_guard(self):
        # The library's FP16_SAFE_N must sit inside the analyzed safe zone.
        assert fp16_safety(FP16_SAFE_N).safe
        assert max_exact_n() >= FP16_SAFE_N

    def test_offdiag_scale_matches_reality(self):
        n = 256
        m = HplAiMatrix(n, seed=3)
        dense = m.dense()
        off = np.abs(dense - np.diag(np.diag(dense)))
        mean_off = off.sum() / (n * n - n)
        rep = fp16_safety(n)
        assert mean_off == pytest.approx(rep.offdiag_scale, rel=0.1)

    def test_suggested_scale_is_power_of_two(self):
        rep = fp16_safety(2048)
        mantissa, _ = np.frexp(rep.suggested_scale)
        assert mantissa == 0.5  # exact power of two

    def test_describe(self):
        assert "SAFE" in fp16_safety(100).describe()
        assert "UNSAFE" in fp16_safety(10**7).describe()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fp16_safety(0)
        with pytest.raises(ConfigurationError):
            max_exact_n(0)
        with pytest.raises(ConfigurationError):
            scaling_headroom(-1)


class TestRangeArithmetic:
    def test_max_exact_n_formula(self):
        assert max_exact_n(0.5) == int(0.125 / (0.5 * FP16.min_normal))
        assert max_exact_n() == 4096  # exactly the library's FP16_SAFE_N

    def test_headroom_substantial(self):
        # Equilibration buys orders of magnitude of range.
        assert scaling_headroom() > 10.0

    def test_denormalization_actually_happens(self):
        # Empirical confirmation of the analysis: beyond the safe N, the
        # FP16 cast of off-diagonals loses relative accuracy.
        n_bad = 16 * max_exact_n()
        # Avoid exact powers of two (representable even subnormally).
        values = np.array([0.123 / n_bad], dtype=np.float64)
        as_fp16 = values.astype(np.float16).astype(np.float64)
        rel_err = abs(as_fp16[0] - values[0]) / values[0]
        assert rel_err > FP16.eps  # worse than normal-range rounding
