"""Edge cases in the drivers, results and failure paths."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark, simulate_run, solve_hplai
from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT


class TestDriverValidation:
    def test_global_speed_must_be_positive(self):
        cfg = BenchmarkConfig(n=64, block=16, machine=SUMMIT,
                              p_rows=1, p_cols=1)
        with pytest.raises(ConfigurationError):
            run_benchmark(cfg, exact=False, global_speed=0.0)

    def test_rate_multiplier_shape_checked(self):
        cfg = BenchmarkConfig(n=64, block=16, machine=SUMMIT,
                              p_rows=2, p_cols=2)
        with pytest.raises(ConfigurationError):
            run_benchmark(cfg, exact=False, rate_multipliers=np.ones(3))

    def test_machine_name_string_accepted(self):
        res = solve_hplai(n=64, block=16, machine="frontier")
        assert res.config.machine is FRONTIER

    def test_unknown_machine_string_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_hplai(n=64, block=16, machine="perlmutter")


class TestNonConvergence:
    def test_ir_iteration_cap_reported_honestly(self):
        # One refinement iteration cannot reach FP64 from FP16 factors
        # at this size; the driver must report converged=False rather
        # than lie.
        res = solve_hplai(n=512, block=64, p_rows=2, p_cols=2,
                          ir_max_iters=1)
        assert res.ir_converged is False
        assert res.ir_iterations <= 1

    def test_gmres_cap_reported_honestly(self):
        res = solve_hplai(n=512, block=64, p_rows=2, p_cols=2,
                          refinement_solver="gmres", ir_max_iters=1)
        assert res.ir_converged is False


class TestResultContracts:
    def test_trace_collection_optional(self):
        cfg = BenchmarkConfig(n=3072 * 2, block=3072, machine=FRONTIER,
                              p_rows=1, p_cols=2)
        with_trace = run_benchmark(cfg, exact=False, collect_trace=True)
        without = run_benchmark(cfg, exact=False, collect_trace=False)
        assert len(with_trace.trace) > 0
        assert without.trace == []
        assert with_trace.elapsed == pytest.approx(without.elapsed)

    def test_phantom_summary_has_no_residual(self):
        cfg = BenchmarkConfig(n=3072 * 2, block=3072, machine=FRONTIER,
                              p_rows=1, p_cols=2)
        s = simulate_run(cfg).summary()
        assert "residual_norm" not in s

    def test_variability_slows_whole_run_not_just_one_rank(self):
        cfg = BenchmarkConfig(n=3072 * 4, block=3072, machine=FRONTIER,
                              p_rows=2, p_cols=2)
        clean = simulate_run(cfg)
        one_slow = simulate_run(
            BenchmarkConfig(n=3072 * 4, block=3072, machine=FRONTIER,
                            p_rows=2, p_cols=2),
            rate_multipliers=[1.0, 1.0, 1.0, 0.8],
        )
        # Bulk-synchronous: one slow GCD drags everyone.
        assert one_slow.elapsed > clean.elapsed * 1.05

    def test_shipped_hpldat_expands(self):
        from pathlib import Path

        from repro.io.hpldat import expand_configs, parse_hpldat

        path = Path(__file__).parent.parent / "examples" / "data" / "HPL.dat"
        dat = parse_hpldat(path)
        cfgs = list(expand_configs(dat))
        assert len(cfgs) == 4
        assert all(c.machine.name == "frontier" for c in cfgs)


class TestSeedIndependenceOfTiming:
    def test_phantom_timing_ignores_seed(self):
        # Phantom runs carry no data: the seed must not change timing.
        kw = dict(n=3072 * 4, block=3072, machine=FRONTIER,
                  p_rows=2, p_cols=2)
        a = simulate_run(BenchmarkConfig(**kw, seed=1))
        b = simulate_run(BenchmarkConfig(**kw, seed=999))
        assert a.elapsed == b.elapsed
