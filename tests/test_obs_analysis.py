"""Tests for the trace-analytics layer (repro.obs.analysis)."""

import io
import json

import pytest

from repro.cli import main
from repro.comm.bcast import TAG_STRIDE
from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.errors import ConfigurationError
from repro.machine import get_machine
from repro.obs import Observability
from repro.obs.analysis import (
    LiveProgressReporter,
    build_profile,
    comm_matrix,
    compare_profiles,
    config_from_provenance,
    critical_path,
    from_observability,
    from_tracer,
    load_imbalance,
    load_profile_input,
    measured_phase_seconds,
    phase_of_span,
    regression_deltas,
    step_flops,
    step_of_span,
)
from repro.obs.export import filter_spans
from repro.obs.phases import STEP_STRIDE, TAG_DIAG_ROW, TAG_U_PANEL
from repro.obs.tracer import Span, SpanTracer


def _cfg(**kwargs):
    defaults = dict(
        n=512, block=64, machine=get_machine("frontier"), p_rows=2, p_cols=2
    )
    defaults.update(kwargs)
    return BenchmarkConfig(**defaults)


@pytest.fixture(scope="module")
def observed():
    """One instrumented 4-rank run shared by the module's tests."""
    obs = Observability()
    cfg = _cfg()
    res = simulate_run(cfg, obs=obs)
    return cfg, obs, res


def _wire_tag(k, offset):
    return (STEP_STRIDE * k + offset) * TAG_STRIDE


class TestPhaseOfSpan:
    @pytest.mark.parametrize("name,cat,attrs,phase", [
        ("gemm", "executor", {}, "gemm"),
        ("getrf", "executor", {}, "getrf"),
        ("fill", "executor", {}, "fill"),
        ("gemv", "executor", {}, "ir"),
        ("trsv", "executor", {}, "ir"),
        ("wait_allreduce", "engine", {}, "collective"),
        ("wait_barrier", "engine", {}, "collective"),
        ("wait_recv", "engine", {}, "comm"),
        ("factorization", "driver", {}, "factorization"),
    ])
    def test_static_mapping(self, name, cat, attrs, phase):
        assert phase_of_span(Span(name, cat, 0.0, 1.0, 0, attrs)) == phase

    def test_tagged_comm_decodes_phase_and_step(self):
        sp = Span("xfer", "comm", 0.0, 1.0, 0,
                  {"dst": 1, "tag": _wire_tag(3, TAG_DIAG_ROW)})
        assert phase_of_span(sp) == "diag_bcast"
        assert step_of_span(sp) == 3
        sp2 = Span("wait_recv", "engine", 0.0, 1.0, 0,
                   {"src": 1, "tag": _wire_tag(5, TAG_U_PANEL)})
        assert phase_of_span(sp2) == "panel_bcast"
        assert step_of_span(sp2) == 5

    def test_untagged_span_has_no_step(self):
        assert step_of_span(Span("gemm", "executor", 0.0, 1.0, 0)) is None


class TestCriticalPath:
    def _spans(self):
        tag = _wire_tag(0, TAG_DIAG_ROW)
        return [
            # rank 0 computes, then sends to rank 1
            Span("getrf", "executor", 0.0, 0.5, 0),
            Span("xfer", "comm", 0.5, 2.0, 0,
                 {"dst": 1, "bytes": 4096, "tag": tag, "intra": True}),
            # rank 1 computes, blocks on the recv, then computes again
            Span("gemm", "executor", 0.0, 1.0, 1),
            Span("wait_recv", "engine", 1.0, 2.0, 1, {"src": 0, "tag": tag}),
            Span("gemm", "executor", 2.0, 4.0, 1),
        ]

    def test_cross_rank_back_walk(self):
        res = critical_path(self._spans(), elapsed=4.0)
        names = [seg.span.name for seg in res.segments]
        # latest span is rank 1's trailing gemm; the recv hops to the
        # sender's xfer, which chains to rank 0's getrf
        assert names == ["getrf", "xfer", "wait_recv", "gemm"]
        # xfer (1.5s) + wait_recv (1.0s) outweigh the 2.0s gemm
        assert res.bounding_phase == "diag_bcast"
        assert res.phase_seconds["diag_bcast"] == pytest.approx(2.5)
        assert res.phase_seconds["gemm"] == pytest.approx(2.0)
        assert res.coverage == pytest.approx(1.0)
        # the step-0 comm segments dominate step 0's path time
        assert res.step_bound == {0: "diag_bcast"}

    def test_same_rank_chain_without_comm(self):
        spans = [
            Span("getrf", "executor", 0.0, 1.0, 0),
            Span("gemm", "executor", 1.0, 3.0, 0),
        ]
        res = critical_path(spans, elapsed=3.0)
        assert [s.span.name for s in res.segments] == ["getrf", "gemm"]
        assert res.coverage == pytest.approx(1.0)

    def test_empty_input(self):
        res = critical_path([], elapsed=1.0)
        assert res.segments == [] and res.coverage == 0.0
        assert res.bounding_phase is None

    def test_coverage_counts_gaps_as_uncovered(self):
        spans = [
            Span("getrf", "executor", 0.0, 1.0, 0),
            Span("gemm", "executor", 3.0, 4.0, 0),  # 2s unexplained gap
        ]
        res = critical_path(spans, elapsed=4.0)
        assert res.coverage == pytest.approx(0.5)


class TestImbalance:
    def test_straggler_flagged_over_median(self):
        spans = []
        for r, busy in enumerate((1.0, 1.0, 1.0, 2.0)):
            spans.append(Span("gemm", "executor", 0.0, busy, r))
            spans.append(Span("wait_recv", "engine", busy, 2.0, r))
        rep = load_imbalance(spans, elapsed=2.0, num_ranks=4, threshold=0.5)
        assert rep.stragglers == [3]
        assert len(rep.ranks) == 4
        assert rep.ranks[3].busy_fraction == pytest.approx(1.0)
        assert rep.ranks[0].wait_fraction == pytest.approx(0.5)
        (gemm,) = rep.phases
        assert gemm.phase == "gemm"
        assert gemm.max_rank == 3
        assert gemm.imbalance == pytest.approx(2.0 / 1.25)

    def test_idle_fraction_is_unaccounted_time(self):
        spans = [Span("gemm", "executor", 0.0, 1.0, 0)]
        rep = load_imbalance(spans, elapsed=4.0, num_ranks=1)
        assert rep.ranks[0].idle_fraction == pytest.approx(0.75)

    def test_xfer_spans_excluded_from_busy_and_wait(self):
        spans = [
            Span("gemm", "executor", 0.0, 1.0, 0),
            Span("xfer", "comm", 0.0, 5.0, 0, {"dst": 1, "bytes": 8}),
        ]
        rep = load_imbalance(spans, elapsed=5.0, num_ranks=1)
        assert rep.ranks[0].busy_s == pytest.approx(1.0)
        assert rep.ranks[0].wait_s == 0.0


class TestCommMatrix:
    def test_pairs_phases_and_link_classes(self):
        spans = [
            Span("xfer", "comm", 0.0, 1.0, 0,
                 {"dst": 1, "bytes": 100, "intra": True,
                  "tag": _wire_tag(0, TAG_DIAG_ROW)}),
            Span("xfer", "comm", 1.0, 2.0, 0,
                 {"dst": 1, "bytes": 50, "intra": False,
                  "tag": _wire_tag(0, TAG_U_PANEL)}),
            Span("xfer", "comm", 0.0, 1.0, 1, {"dst": 0, "bytes": 7}),
            Span("gemm", "executor", 0.0, 1.0, 0),  # ignored
        ]
        cm = comm_matrix(spans, num_ranks=2)
        assert cm.total_bytes == 157
        assert cm.total_messages == 3
        assert cm.bytes_by_pair[(0, 1)] == 150
        assert cm.msgs_by_pair[(0, 1)] == 2
        assert cm.intra_bytes == 100 and cm.inter_bytes == 57
        assert cm.bytes_by_phase == {
            "diag_bcast": 100, "panel_bcast": 50, "comm": 7,
        }
        assert cm.matrix() == [[0, 150], [7, 0]]
        assert cm.top_pairs(1) == [(0, 1, 150, 2)]


class TestRegressionDeltas:
    def test_detects_growth_over_threshold(self):
        deltas = regression_deltas(
            {"a": 1.0, "b": 2.0}, {"a": 0.5, "b": 2.0}, threshold=0.25
        )
        by_name = {d.name: d for d in deltas}
        assert by_name["a"].regressed and by_name["a"].delta == pytest.approx(1.0)
        assert not by_name["b"].regressed
        # sorted worst-first
        assert deltas[0].name == "a"

    def test_min_seconds_floor_suppresses_noise(self):
        (d,) = regression_deltas(
            {"a": 2e-4}, {"a": 1e-4}, threshold=0.25, min_seconds=1e-3
        )
        assert d.delta == pytest.approx(1.0)
        assert not d.regressed

    def test_only_shared_names_compared(self):
        deltas = regression_deltas({"a": 1.0}, {"b": 1.0}, threshold=0.25)
        assert deltas == []

    def test_zero_baseline_never_regresses(self):
        (d,) = regression_deltas({"a": 1.0}, {"a": 0.0}, threshold=0.25)
        assert d.delta is None and not d.regressed


class TestMeasuredPhaseSeconds:
    def test_busiest_rank_basis(self):
        spans = [
            Span("gemm", "executor", 0.0, 1.0, 0),
            Span("gemm", "executor", 0.0, 3.0, 1),
        ]
        assert measured_phase_seconds(spans, 2) == {"gemm": 3.0}


class TestLoaders:
    def test_chrome_round_trip(self, observed, tmp_path):
        _cfg_, obs, _res = observed
        path = tmp_path / "trace.json"
        obs.export_chrome_trace(path)
        pi = load_profile_input(path)
        assert pi.num_ranks == 4
        assert len(pi.spans) == len(obs.tracer)
        assert pi.provenance is not None
        # driver-lane spans come back with the sentinel rank
        assert any(s.rank == -1 and s.cat == "driver" for s in pi.spans)
        live = from_observability(obs)
        assert live.elapsed == pytest.approx(pi.elapsed, rel=1e-6)

    def test_jsonl_round_trip(self, observed, tmp_path):
        _cfg_, obs, _res = observed
        path = tmp_path / "spans.jsonl"
        obs.export_jsonl(path)
        pi = load_profile_input(path)
        assert len(pi.spans) == len(obs.tracer)
        assert pi.num_ranks == 4
        # tagged comm attrs survive the round trip
        assert any(
            s.cat == "comm" and "tag" in s.attrs for s in pi.spans
        )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_profile_input(tmp_path / "nope.json")

    def test_non_trace_json_rejected(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text('{"hello": 1}')
        with pytest.raises(ConfigurationError):
            load_profile_input(p)

    def test_config_from_provenance_round_trip(self, observed):
        cfg, obs, _res = observed
        rebuilt = config_from_provenance(obs.provenance)
        assert (rebuilt.n, rebuilt.block) == (cfg.n, cfg.block)
        assert (rebuilt.p_rows, rebuilt.p_cols) == (cfg.p_rows, cfg.p_cols)
        assert rebuilt.machine.name == cfg.machine.name
        assert rebuilt.seed == cfg.seed

    def test_config_from_empty_provenance_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_provenance({})


class TestBuildProfile:
    def test_end_to_end_sections(self, observed):
        _cfg_, obs, res = observed
        rep = build_profile(from_observability(obs))
        assert rep.num_ranks == 4
        assert rep.elapsed == pytest.approx(res.elapsed, rel=0.05)
        assert rep.path.bounding_phase is not None
        assert rep.path.coverage > 0.5
        assert len(rep.imbalance.ranks) == 4
        assert rep.comm.total_bytes > 0
        assert rep.phase_seconds.get("gemm", 0.0) > 0
        # provenance rode along, so the model section exists
        assert rep.deviation is not None
        assert rep.deviation.total_deviation is not None

    def test_to_dict_passes_schema_checker(self, observed):
        from repro.analyze.checkers.trace_schema import check_profile_report

        _cfg_, obs, _res = observed
        doc = build_profile(from_observability(obs)).to_dict()
        assert check_profile_report(doc) == []
        # strict-JSON serializable
        assert json.loads(json.dumps(doc))["schema"] == "repro.obs.profile/v1"

    def test_render_text_mentions_every_section(self, observed):
        _cfg_, obs, _res = observed
        text = build_profile(from_observability(obs)).render_text()
        for needle in ("critical path", "load balance", "comm matrix",
                       "model vs measured"):
            assert needle in text

    def test_csv_rows_are_flat(self, observed):
        _cfg_, obs, _res = observed
        rows = build_profile(from_observability(obs)).csv_rows()
        assert rows[0] == ["section", "name", "value"]
        assert all(len(r) == 3 for r in rows)

    def test_no_model_skips_deviation(self, observed):
        _cfg_, obs, _res = observed
        rep = build_profile(from_observability(obs), with_model=False)
        assert rep.deviation is None
        assert "deviation" not in rep.to_dict()

    def test_empty_spans_rejected(self):
        with pytest.raises(ConfigurationError):
            build_profile(from_tracer(SpanTracer()))


class TestCompareProfiles:
    def test_self_comparison_is_clean(self, observed):
        _cfg_, obs, _res = observed
        doc = build_profile(from_observability(obs)).to_dict()
        deltas = compare_profiles(doc, doc, threshold=0.25)
        assert deltas and not any(d.regressed for d in deltas)

    def test_inflated_phase_regresses(self, observed):
        _cfg_, obs, _res = observed
        doc = build_profile(from_observability(obs)).to_dict()
        baseline = json.loads(json.dumps(doc))
        baseline["phase_seconds"] = {
            k: v / 100.0 for k, v in baseline["phase_seconds"].items()
        }
        deltas = compare_profiles(doc, baseline, threshold=0.25)
        assert any(d.regressed for d in deltas)

    def test_non_profile_document_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_profiles({"phase_seconds": {}}, {"nope": 1}, 0.25)


class TestLiveProgress:
    def test_prints_per_column_lines(self):
        cfg = _cfg()
        out = io.StringIO()
        rep = LiveProgressReporter(cfg, stream=out)
        for k in range(cfg.num_blocks):
            rep.append({"k": k, "panel": 0.01, "gemm": 0.02, "recv": 0.005})
        text = out.getvalue()
        assert len(rep) == cfg.num_blocks
        assert text.count("\n") == cfg.num_blocks
        assert f"[k {cfg.num_blocks}/{cfg.num_blocks}]" in text
        assert "GF/s/GCD" in text and "s total" in text

    def test_every_throttles_but_last_column_always_prints(self):
        cfg = _cfg()
        out = io.StringIO()
        rep = LiveProgressReporter(cfg, stream=out, every=cfg.num_blocks)
        for k in range(cfg.num_blocks):
            rep.append({"k": k, "panel": 0.01, "gemm": 0.02, "recv": 0.0})
        lines = out.getvalue().splitlines()
        assert len(lines) == 1
        assert f"[k {cfg.num_blocks}/{cfg.num_blocks}]" in lines[0]

    def test_projection_matches_perfect_model(self):
        cfg = _cfg()
        rep = LiveProgressReporter(cfg, stream=io.StringIO())
        assert rep.projected_total() is None  # nothing appended yet
        expected = rep._expected_step_times(cfg)
        assert len(expected) == cfg.num_blocks
        # feed the model's own times back: projection = model total
        rep.append({"k": 0, "panel": expected[0], "gemm": 0.0, "recv": 0.0})
        assert rep.projected_total() == pytest.approx(sum(expected))

    def test_malformed_record_never_raises(self):
        rep = LiveProgressReporter(_cfg(), stream=io.StringIO())
        rep.append({"k": "garbage", "panel": None})
        assert len(rep) == 1

    def test_warmup_columns_excluded_from_calibration(self):
        cfg = _cfg()
        rep = LiveProgressReporter(cfg, stream=io.StringIO(), warmup=2)
        expected = rep._expected_step_times(cfg)
        # Two pathological warm-up columns (10x the model), then
        # model-perfect columns: once past the warm-up window the
        # projection must calibrate on the clean steps only.
        for k in range(4):
            factor = 10.0 if k < 2 else 1.0
            rep.append({"k": k, "panel": factor * expected[k],
                        "gemm": 0.0, "recv": 0.0})
        measured_so_far = (
            10.0 * (expected[0] + expected[1]) + expected[2] + expected[3]
        )
        # ratio over steps 2..3 is exactly 1.0, so the projection is
        # elapsed + remaining model time — the warm-up spike does not
        # multiply the remaining-time estimate
        assert rep.projected_total() == pytest.approx(
            measured_so_far + sum(expected[4:])
        )

    def test_near_zero_model_divisor_yields_none(self):
        cfg = _cfg()
        rep = LiveProgressReporter(cfg, stream=io.StringIO())
        rep._expected = [0.0] * cfg.num_blocks  # degenerate model
        rep.append({"k": 0, "panel": 0.01, "gemm": 0.0, "recv": 0.0})
        assert rep.projected_total() is None

    def test_first_column_projection_is_stable(self):
        # Regression: the projection on the very first panel column used
        # to divide by a near-zero modelled prefix and swing wildly; it
        # must stay within an order of magnitude of the model total.
        cfg = _cfg()
        rep = LiveProgressReporter(cfg, stream=io.StringIO())
        expected = rep._expected_step_times(cfg)
        rep.append({"k": 0, "panel": 3.0 * expected[0],
                    "gemm": 0.0, "recv": 0.0})
        proj = rep.projected_total()
        assert proj is not None
        assert proj <= 10 * sum(expected)

    def test_step_flops_positive_and_decreasing(self):
        cfg = _cfg()
        series = [
            step_flops(cfg.n, cfg.block, cfg.num_ranks, k)
            for k in range(cfg.num_blocks)
        ]
        assert all(f > 0 for f in series)
        assert series == sorted(series, reverse=True)


class TestFilterSpans:
    def _tracer(self):
        tr = SpanTracer()
        tr.add("gemm", "executor", 1.0, 2.0, rank=1)
        tr.add("xfer", "comm", 0.0, 1.0, rank=0, attrs={"dst": 1})
        tr.add("gemm", "executor", 0.0, 1.0, rank=0)
        return tr

    def test_category_and_rank_filters(self):
        tr = self._tracer()
        assert all(
            s.cat == "comm" for s in filter_spans(tr, cats=["comm"])
        )
        assert all(s.rank == 0 for s in filter_spans(tr, ranks=[0]))
        assert len(filter_spans(tr, cats=["executor"], ranks=[0])) == 1

    def test_sort_is_canonical_and_deterministic(self):
        got = filter_spans(self._tracer(), sort=True)
        keys = [(s.start, s.end, s.rank, s.cat, s.name) for s in got]
        assert keys == sorted(keys)


class TestProfileCli:
    @pytest.fixture(scope="class")
    def trace_path(self, observed, tmp_path_factory):
        _cfg_, obs, _res = observed
        path = tmp_path_factory.mktemp("profile") / "trace.json"
        obs.export_chrome_trace(path)
        return path

    def test_text_report(self, trace_path, capsys):
        assert main(["profile", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "comm matrix" in out
        assert "model vs measured" in out

    def test_json_report_lints_clean(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        rc = main(["profile", str(trace_path), "--format", "json",
                   "--out", str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.obs.profile/v1"
        capsys.readouterr()
        assert main(["lint", str(out_path), "--select",
                     "profile-schema"]) == 0

    def test_against_self_passes(self, trace_path, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["profile", str(trace_path), "--format", "json",
                     "--out", str(base)]) == 0
        rc = main(["profile", str(trace_path), "--against", str(base)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all stages within budget" in out

    def test_against_tighter_baseline_fails(self, trace_path, tmp_path,
                                            capsys):
        base = tmp_path / "base.json"
        assert main(["profile", str(trace_path), "--format", "json",
                     "--out", str(base)]) == 0
        doc = json.loads(base.read_text())
        doc["phase_seconds"] = {
            k: v / 100.0 for k, v in doc["phase_seconds"].items()
        }
        doc["elapsed_s"] /= 100.0
        base.write_text(json.dumps(doc))
        rc = main(["profile", str(trace_path), "--against", str(base)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out

    def test_max_dev_without_model_is_an_error(self, trace_path, capsys):
        rc = main(["profile", str(trace_path), "--no-model",
                   "--max-dev", "0.5"])
        assert rc == 2
        assert "no model comparison" in capsys.readouterr().out

    def test_max_dev_gate_trips_on_tiny_budget(self, trace_path, capsys):
        rc = main(["profile", str(trace_path), "--max-dev", "1e-9"])
        assert rc == 1
        assert "deviates" in capsys.readouterr().out

    def test_csv_format(self, trace_path, capsys):
        assert main(["profile", str(trace_path), "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("section,name,value")


class TestTraceCliFilters:
    def test_filtered_export_is_sorted_and_narrow(self, tmp_path, capsys):
        out_path = tmp_path / "comm.json"
        rc = main(["trace", "--machine", "frontier", "-p", "2",
                   "--nl", "128", "-b", "32", "--out", str(out_path),
                   "--category", "comm", "--rank", "0", "--rank", "1"])
        assert rc == 0
        assert "after --category/--rank filters" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        assert {e["cat"] for e in xs} == {"comm"}
        assert {e["tid"] for e in xs} <= {0, 1}
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
