"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0

    def test_histogram_buckets(self):
        h = Histogram(boundaries=[1.0, 10.0, 100.0])
        for v in (0.5, 0.7, 5.0, 50.0, 5000.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.mean == pytest.approx(5056.2 / 5)
        assert h.min == 0.5 and h.max == 5000.0

    def test_histogram_boundary_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram(boundaries=[])
        with pytest.raises(ConfigurationError):
            Histogram(boundaries=[1.0, 1.0])

    def test_histogram_merge_mismatched_edges_rejected(self):
        h = Histogram(boundaries=[1.0, 2.0, 4.0])
        for snap_bounds in ([1.0, 2.0], [1.0, 2.0, 5.0], [0.5, 2.0, 4.0]):
            other = Histogram(boundaries=snap_bounds)
            other.observe(1.5)
            with pytest.raises(ConfigurationError, match="boundaries"):
                h.merge(other.snapshot())
        # the failed merges left the target untouched
        assert h.count == 0

    def test_histogram_merge_matching_edges_is_exact(self):
        a = Histogram(boundaries=[1.0, 2.0])
        b = Histogram(boundaries=[1.0, 2.0])
        for v in (0.5, 1.5):
            a.observe(v)
        for v in (1.5, 9.0):
            b.observe(v)
        a.merge(b.snapshot())
        assert a.count == 4
        assert a.bucket_counts == [1, 2, 1]
        assert a.min == 0.5 and a.max == 9.0
        assert a.sum == pytest.approx(12.5)

    def test_histogram_quantile(self):
        h = Histogram(boundaries=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 2.0
        assert Histogram().quantile(0.5) == 0.0


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", scope="intra")
        b = reg.counter("bytes", scope="intra")
        c = reg.counter("bytes", scope="inter")
        assert a is b and a is not c

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_snapshot_is_jsonable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a", k="v").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c", boundaries=[1.0, 2.0]).observe(1.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["a"]["series"][0] == {"labels": {"k": "v"}, "value": 3.0}

    def test_merge_cross_rank(self):
        """snapshot()/merge() is the cross-rank aggregation path."""
        ranks = []
        for _ in range(3):
            reg = MetricsRegistry()
            reg.counter("bytes").inc(100)
            reg.histogram("t", boundaries=[1.0, 2.0]).observe(0.5)
            ranks.append(reg.snapshot())
        total = MetricsRegistry()
        for snap in ranks:
            total.merge(snap)
        assert total.counter("bytes").value == 300
        h = total.histogram("t", boundaries=[1.0, 2.0])
        assert h.count == 3 and h.bucket_counts[0] == 3

    def test_merge_mismatched_histograms_rejected(self):
        a = MetricsRegistry()
        a.histogram("t", boundaries=[1.0]).observe(0.5)
        b = MetricsRegistry()
        b.histogram("t", boundaries=[2.0]).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_registry_object(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc()
        b.counter("n").inc(4)
        a.merge(b)
        assert a.counter("n").value == 5


class TestHistogramQuantileEdges:
    """The quantile corner cases the serve /metrics endpoint leans on."""

    def test_empty_histogram_every_quantile_is_zero(self):
        h = Histogram(boundaries=[1.0, 2.0])
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == 0.0

    def test_q0_is_the_first_bucket_boundary(self):
        h = Histogram(boundaries=[1.0, 2.0, 4.0])
        h.observe(3.0)
        assert h.quantile(0.0) == 1.0

    def test_q1_covers_the_last_observation(self):
        h = Histogram(boundaries=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(1.0) == 4.0

    def test_q1_overflow_bucket_returns_observed_max(self):
        h = Histogram(boundaries=[1.0])
        h.observe(9.0)
        assert h.quantile(1.0) == 9.0

    def test_single_bucket_histogram(self):
        h = Histogram(boundaries=[1.0])
        h.observe(0.5)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 1.0

    def test_out_of_range_quantile_rejected(self):
        h = Histogram(boundaries=[1.0])
        for q in (-0.1, 1.1):
            with pytest.raises(ConfigurationError):
                h.quantile(q)


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("comm.bytes", scope="inter").inc(42)
        reg.gauge("run.elapsed_s").set(1.25)
        text = to_prometheus_text(reg)
        assert '# TYPE comm_bytes counter' in text
        assert 'comm_bytes{scope="inter"} 42' in text
        assert "run_elapsed_s 1.25" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", boundaries=[1.0, 2.0])
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        text = to_prometheus_text(reg)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_registry_with_only_unobserved_instruments(self):
        reg = MetricsRegistry()
        reg.histogram("lat", boundaries=[1.0])
        text = to_prometheus_text(reg)
        assert "lat_count 0" in text
        assert "quantile" not in text

    def test_histogram_quantile_summary_lines(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", boundaries=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        text = to_prometheus_text(reg)
        assert f'lat{{quantile="0.5"}} {h.quantile(0.5):g}' in text
        assert f'lat{{quantile="0.9"}} {h.quantile(0.9):g}' in text
        assert f'lat{{quantile="0.99"}} {h.quantile(0.99):g}' in text

    def test_quantiles_keep_existing_labels(self):
        reg = MetricsRegistry()
        reg.histogram("lat", boundaries=[1.0], stage="gemm").observe(0.5)
        text = to_prometheus_text(reg)
        assert 'lat{stage="gemm",quantile="0.5"}' in text

    def test_empty_histogram_emits_no_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("lat", boundaries=[1.0])
        assert "quantile" not in to_prometheus_text(reg)
