"""Tests for the operational tooling (slow-node scan, warm-up, monitor)."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError, EarlyTerminationError
from repro.machine import FRONTIER, SUMMIT, GcdFleet
from repro.tools import (
    MiniBenchmark,
    PowerModel,
    ProgressMonitor,
    plan_warmup,
    project_run_series,
    scan_fleet,
)


class TestMiniBenchmark:
    def test_nominal_positive_and_deterministic(self):
        probe = MiniBenchmark(FRONTIER)
        assert probe.nominal_seconds() > 0
        assert probe.nominal_seconds() == probe.nominal_seconds()

    def test_slower_gcd_takes_longer(self):
        probe = MiniBenchmark(SUMMIT)
        assert probe.measure(0.95) > probe.measure(1.0)

    def test_invalid_multiplier(self):
        with pytest.raises(ConfigurationError):
            MiniBenchmark(SUMMIT).measure(0.0)


class TestScanFleet:
    def test_detects_seeded_outliers(self):
        fleet = GcdFleet(400, seed=11)
        report = scan_fleet(fleet, FRONTIER)
        # The fleet has ~2% seeded outliers at up to 5% penalty.
        assert len(report.slow_gcds) > 0
        assert report.max_variation > 0.03
        # Every truly slow GCD (>=3% down) must be flagged.
        truly_slow = set(np.nonzero(fleet.multipliers < 0.965)[0])
        assert truly_slow.issubset(set(report.slow_gcds))

    def test_exclusion_improves_pipeline(self):
        fleet = GcdFleet(400, seed=3)
        report = scan_fleet(fleet, FRONTIER)
        assert report.projected_speedup > 1.0
        assert report.pipeline_after >= report.pipeline_before

    def test_nodes_have_gcd_granularity(self):
        fleet = GcdFleet(160, seed=5)
        report = scan_fleet(fleet, FRONTIER)
        q = FRONTIER.node.gcds_per_node
        for g in report.slow_gcds:
            assert g // q in report.slow_nodes

    def test_clean_fleet_mostly_survives(self):
        fleet = GcdFleet(200, seed=7, sigma=0.0005, slow_fraction=0.0)
        report = scan_fleet(fleet, SUMMIT)
        assert report.slow_gcds == []
        assert report.projected_speedup == pytest.approx(1.0)

    def test_render(self):
        report = scan_fleet(GcdFleet(48, seed=1), SUMMIT)
        out = report.render()
        assert "GCD scan" in out and "probe_s" in out

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            scan_fleet(GcdFleet(8), SUMMIT, threshold=0.0)


class TestWarmup:
    def test_summit_plan(self):
        plan = plan_warmup(SUMMIT)
        assert plan.strategy == "full-mini-benchmark"
        assert plan.cold_multiplier < 0.85
        # A 20% cold penalty pays back quickly for long runs.
        assert plan.worthwhile_above_s < 3600

    def test_frontier_plan(self):
        plan = plan_warmup(FRONTIER)
        assert plan.strategy == "embedded-small-gemms"
        assert plan.worthwhile_above_s == float("inf")

    def test_series_shapes_match_fig12(self):
        summit = project_run_series(SUMMIT, base_elapsed_s=1000.0)
        assert summit[0]["elapsed_s"] > 1.15 * summit[1]["elapsed_s"]
        late = [r["relative_perf"] for r in summit[1:]]
        assert max(late) - min(late) < 0.005

        frontier = project_run_series(FRONTIER, base_elapsed_s=1000.0)
        assert frontier[0]["relative_perf"] > frontier[3]["relative_perf"]
        assert frontier[1]["relative_perf"] > frontier[4]["relative_perf"]

    def test_warmed_series_flat(self):
        series = project_run_series(SUMMIT, 500.0, warmed_up=True)
        perfs = [r["relative_perf"] for r in series]
        assert max(perfs) - min(perfs) < 0.01

    def test_bad_base_elapsed(self):
        with pytest.raises(ConfigurationError):
            project_run_series(SUMMIT, -1.0)


class TestProgressMonitor:
    def _cfg(self):
        return BenchmarkConfig(
            n=3072 * 8, block=3072, machine=FRONTIER, p_rows=2, p_cols=2
        )

    def test_healthy_run_passes(self):
        cfg = self._cfg()
        mon = ProgressMonitor(cfg, report_every=2)
        for k in range(cfg.num_blocks):
            mon.observe(k, mon.expected_iteration_s(k))
        assert all(r.healthy for r in mon.reports)
        assert len(mon.reports) >= cfg.num_blocks // 2

    def test_fabric_hang_terminates_early(self):
        cfg = self._cfg()
        mon = ProgressMonitor(cfg, tolerance=0.3, patience=2, report_every=1)
        with pytest.raises(EarlyTerminationError) as err:
            for k in range(cfg.num_blocks):
                # Simulate a hang: everything 5x slower.
                mon.observe(k, 5.0 * mon.expected_iteration_s(k))
        assert err.value.iteration is not None

    def test_transient_slowdown_tolerated(self):
        cfg = self._cfg()
        mon = ProgressMonitor(cfg, tolerance=0.3, patience=3, report_every=1)
        for k in range(cfg.num_blocks):
            factor = 5.0 if k == 2 else 1.0  # one bad interval only
            mon.observe(k, factor * mon.expected_iteration_s(k))
        assert any(not r.healthy for r in mon.reports)

    def test_watch_trace_from_driver(self):
        from repro.core.driver import simulate_run

        cfg = self._cfg()
        res = simulate_run(cfg)
        mon = ProgressMonitor(cfg, tolerance=1.0, report_every=4)
        reports = mon.watch_trace(res.trace)
        assert len(reports) > 0
        out = mon.render()
        assert "progress report" in out

    def test_validation(self):
        cfg = self._cfg()
        with pytest.raises(ConfigurationError):
            ProgressMonitor(cfg, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            ProgressMonitor(cfg).observe(0, -1.0)


class TestPowerModel:
    def test_energy(self):
        pm = PowerModel(busy_watts=300, idle_watts=100)
        assert pm.energy_joules(10, 5) == pytest.approx(3500)
        with pytest.raises(ConfigurationError):
            pm.energy_joules(-1, 0)

    def test_run_energy_from_stats(self):
        from repro.core.config import BenchmarkConfig
        from repro.core.driver import simulate_run

        cfg = BenchmarkConfig(
            n=3072 * 8, block=3072, machine=FRONTIER, p_rows=2, p_cols=2
        )
        res = simulate_run(cfg)
        pm = PowerModel()
        mj = pm.run_energy_mj(res.stats, res.elapsed)
        # Bounded by all-idle and all-busy envelopes.
        lo = 4 * res.elapsed * pm.idle_watts / 1e6
        hi = 4 * res.elapsed * pm.busy_watts / 1e6
        assert lo <= mj <= hi
