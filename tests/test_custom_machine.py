"""Tests for the custom machine builder."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark
from repro.errors import ConfigurationError
from repro.machine import FRONTIER
from repro.machine.custom import build_machine
from repro.model.perf_model import estimate_run


def _nextgen(**overrides):
    kw = dict(
        name="testgen",
        num_nodes=1024,
        gcds_per_node=8,
        fp16_tflops_per_gcd=300.0,
        fp64_tflops_per_gcd=55.0,
        gpu_memory_gib=96.0,
        nic_bw_gbs_per_node=50.0,
    )
    kw.update(overrides)
    return build_machine(**kw)


class TestBuilder:
    def test_consistency(self):
        m = _nextgen()
        assert m.total_gcds == 8192
        assert m.node.fp16_tflops == pytest.approx(2400.0)
        assert m.node.network.node_injection_bw_gbs == pytest.approx(50.0)
        assert m.gpu_kernels.gemm_peak_tflops == pytest.approx(225.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _nextgen(num_nodes=0)
        with pytest.raises(ConfigurationError):
            _nextgen(gemm_efficiency=2.0)
        with pytest.raises(ConfigurationError):
            _nextgen(fp16_tflops_per_gcd=-1.0)

    def test_runs_through_the_model(self):
        m = _nextgen()
        cfg = BenchmarkConfig(
            n=3072 * 32, block=3072, machine=m, p_rows=8, p_cols=8,
            q_rows=2, q_cols=4, bcast_algorithm="bcast",
        )
        res = estimate_run(cfg)
        assert res.gflops_per_gcd > 0
        # Twice Frontier's compute should comfortably beat Frontier's
        # per-GCD rate at the same configuration shape.
        f_cfg = BenchmarkConfig(
            n=3072 * 32, block=3072, machine=FRONTIER, p_rows=8, p_cols=8,
            q_rows=2, q_cols=4, bcast_algorithm="ring2m",
        )
        assert res.gflops_per_gcd > estimate_run(f_cfg).gflops_per_gcd

    def test_runs_through_the_engine_exactly(self):
        m = _nextgen()
        cfg = BenchmarkConfig(
            n=96, block=16, machine=m, p_rows=2, p_cols=2
        )
        res = run_benchmark(cfg, exact=True)
        assert res.ir_converged

    def test_mature_vs_young_mpi(self):
        mature = _nextgen(mature_mpi=True)
        young = _nextgen(name="younggen", mature_mpi=False)
        assert mature.mpi.bcast_hierarchical
        assert not young.mpi.bcast_hierarchical

        def ring_gap(machine):
            scores = {}
            for algo in ("bcast", "ring2m"):
                cfg = BenchmarkConfig(
                    n=3072 * 32, block=3072, machine=machine,
                    p_rows=8, p_cols=8, q_rows=2, q_cols=4,
                    bcast_algorithm=algo,
                )
                scores[algo] = estimate_run(cfg).gflops_per_gcd
            return scores["ring2m"] / scores["bcast"]

        # Rings help the young stack more than the mature one.
        assert ring_gap(young) > ring_gap(mature)
