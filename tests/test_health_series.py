"""Tests for the health layer's bounded time-series storage."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.health.series import DEFAULT_CAPACITY, RingSeries, SeriesBank


class TestRingSeries:
    def test_append_and_access(self):
        s = RingSeries(capacity=4)
        assert len(s) == 0
        assert s.last is None
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        assert len(s) == 2
        assert s[0] == (0.0, 1.0)
        assert s[-1] == (1.0, 2.0)
        assert s.last == (1.0, 2.0)
        assert s.times() == [0.0, 1.0]
        assert s.values() == [1.0, 2.0]
        assert list(s) == [(0.0, 1.0), (1.0, 2.0)]

    def test_bounded_capacity_drops_oldest(self):
        s = RingSeries(capacity=3)
        for i in range(5):
            s.append(float(i), float(i * 10))
        assert len(s) == 3
        assert s.dropped == 2
        assert s.times() == [2.0, 3.0, 4.0]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RingSeries(capacity=0)
        with pytest.raises(ConfigurationError):
            RingSeries(capacity=-3)

    def test_rate_backward_difference(self):
        s = RingSeries()
        s.append(0.0, 0.0)
        s.append(2.0, 10.0)
        s.append(4.0, 30.0)
        assert s.rate(1) == pytest.approx(10.0)  # (30-10)/(4-2)
        assert s.rate(2) == pytest.approx(7.5)  # (30-0)/(4-0)

    def test_rate_too_short_or_stalled_time(self):
        s = RingSeries()
        assert s.rate() is None
        s.append(1.0, 5.0)
        assert s.rate() is None
        s.append(1.0, 9.0)  # time did not advance
        assert s.rate() is None
        assert s.rate(0) is None

    def test_to_dict_downsamples(self):
        s = RingSeries(capacity=100)
        for i in range(50):
            s.append(float(i), float(i))
        d = s.to_dict(max_points=10)
        assert len(d["t"]) == 10
        assert len(d["v"]) == 10
        assert d["dropped"] == 0
        full = s.to_dict()
        assert len(full["t"]) == 50

    def test_default_capacity(self):
        assert RingSeries().capacity == DEFAULT_CAPACITY


class TestSeriesBank:
    def test_get_or_create_and_contains(self):
        bank = SeriesBank()
        s = bank.series("gflops")
        assert bank.series("gflops") is s
        assert "gflops" in bank
        assert "missing" not in bank
        assert len(bank) == 1

    def test_per_rank_series_are_distinct(self):
        bank = SeriesBank()
        s0 = bank.series("busy_s", rank=0)
        s1 = bank.series("busy_s", rank=1)
        sg = bank.series("busy_s")
        assert s0 is not s1
        assert s0 is not sg
        per_rank = bank.rank_series("busy_s")
        assert set(per_rank) == {0, 1}
        assert per_rank[0] is s0

    def test_names_and_to_dict_keys(self):
        bank = SeriesBank()
        bank.series("queue_depth").append(0.0, 3.0)
        bank.series("busy_s", rank=1).append(0.0, 0.5)
        assert bank.names() == ["busy_s", "queue_depth"]
        d = bank.to_dict()
        assert set(d) == {"queue_depth", "busy_s/rank1"}
        assert d["queue_depth"]["v"] == [3.0]

    def test_capacity_propagates(self):
        bank = SeriesBank(capacity=2)
        s = bank.series("x")
        for i in range(4):
            s.append(float(i), 0.0)
        assert len(s) == 2
