"""Fast sanity tests for the figure/table data generators.

The heavyweight assertions live in benchmarks/; these tests pin the
record *shapes* so CLI and examples can rely on them.
"""

import pytest

from repro.bench import figures as F
from repro.bench.reporting import render_records, render_series


class TestTables:
    def test_table1_rows(self):
        rows = F.table1_specs()
        assert {"spec", "Summit", "Frontier"} <= set(rows[0])
        assert len(rows) >= 9

    def test_table2_rows(self):
        rows = F.table2_blas_mapping()
        assert [r["BLAS"] for r in rows] == ["GEMM", "TRSM", "GETRF", "TRSV"]


class TestKernelFigures:
    def test_fig3_grid_shape(self):
        rows = F.fig3_gemm_heatmap(mn_values=(1024, 2048), k_values=(256, 512))
        assert len(rows) == 2
        assert set(rows[0]) == {"m=n", "k=256", "k=512"}

    def test_fig56_series(self):
        from repro.machine import SUMMIT

        rows = F.fig56_kernel_curves(SUMMIT, [512, 768], 12288, points=4)
        assert len(rows) == 8
        assert all(r["trailing"] >= r["B"] for r in rows)

    def test_fig7_contains_both_ldas(self):
        rows = F.fig7_lda_effect(ldas=(119808, 122880), points=3)
        assert {r["LDA"] for r in rows} == {119808, 122880}


class TestScaleFigures:
    def test_fig9_parallel_eff_baseline_is_100(self):
        rows = F.fig9_weak_scaling()
        for machine, grid in {(r["machine"], r["grid"]) for r in rows}:
            series = [r for r in rows
                      if r["machine"] == machine and r["grid"] == grid]
            assert series[0]["parallel_eff_pct"] == pytest.approx(100.0)

    def test_strong_scaling_speedup_monotone(self):
        rows = F.strong_scaling()
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)
        assert rows[0]["speedup"] == pytest.approx(1.0)

    def test_fig12_six_runs_each(self):
        rows = F.fig12_variability()
        assert len([r for r in rows if r["machine"] == "summit"]) == 6
        assert len([r for r in rows if r["machine"] == "frontier"]) == 6

    def test_slownode_scan_record(self):
        rec = F.slownode_scan(num_gcds=128)[0]
        assert rec["gcds_scanned"] == 128
        assert rec["projected_speedup"] >= 1.0


class TestRendering:
    def test_render_records_empty(self):
        assert "(no rows)" in render_records([], title="empty")

    def test_render_records_column_selection(self):
        out = render_records(
            [{"a": 1, "b": 2.5}], columns=["b"], float_fmt="{:.1f}"
        )
        assert "2.5" in out and "a" not in out.splitlines()[0]

    def test_render_series(self):
        out = render_series(
            "B", [256, 512],
            {"summit": [1.0, 2.0], "frontier": [3.0, 4.0]},
            title="demo",
        )
        assert "demo" in out
        assert "frontier" in out
        assert "4.00" in out
