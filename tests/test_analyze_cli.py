"""``repro lint`` CLI tests: formats, exit codes, baseline workflow."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

DIRTY = "try:\n    pass\nexcept:\n    pass\n"

VALID_TRACE = {
    "otherData": {"schema": 1},
    "traceEvents": [
        {"name": "gemm", "cat": "executor", "ph": "X",
         "pid": 0, "tid": 0, "ts": 0.0, "dur": 5.0},
    ],
}


def _write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return str(p)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main(["lint", path, "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = _write(tmp_path, "dirty.py", DIRTY)
        assert main(["lint", path, "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "[hygiene]" in out and ":3:0: error" in out

    def test_unknown_checker_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        rc = main(["lint", path, "--select", "no-such-checker"])
        assert rc == 2

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        path = _write(tmp_path, "broken.py", "def f(:\n")
        assert main(["lint", path, "--no-baseline"]) == 1
        assert "[parse]" in capsys.readouterr().out

    def test_list_checkers(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for checker_id in ("precision-flow", "tag-space",
                           "collective-matching", "hygiene", "trace-schema"):
            assert checker_id in out


class TestJsonFormat:
    def test_json_report_shape(self, tmp_path, capsys):
        path = _write(tmp_path, "dirty.py", DIRTY)
        out_file = tmp_path / "report.json"
        rc = main(["lint", path, "--no-baseline", "--format", "json",
                   "--out", str(out_file)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["files_checked"] == 1
        assert doc["findings"][0]["checker"] == "hygiene"
        # --out mirrors the same document to disk (the CI artifact).
        assert json.loads(out_file.read_text()) == doc


class TestBaselineWorkflow:
    def test_update_then_clean(self, tmp_path, capsys):
        path = _write(tmp_path, "dirty.py", DIRTY)
        base = str(tmp_path / "baseline.json")
        assert main(["lint", path, "--baseline", base,
                     "--update-baseline"]) == 0
        assert main(["lint", path, "--baseline", base]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        path = _write(tmp_path, "dirty.py", DIRTY)
        base = str(tmp_path / "baseline.json")
        main(["lint", path, "--baseline", base, "--update-baseline"])
        _write(tmp_path, "dirty.py", DIRTY + "def f(xs=[]):\n    return xs\n")
        assert main(["lint", path, "--baseline", base]) == 1

    def test_select_restricts_checkers(self, tmp_path, capsys):
        path = _write(
            tmp_path, "dirty.py",
            DIRTY + "import numpy as np\nH = np.float16(1.0)\n",
        )
        rc = main(["lint", path, "--no-baseline",
                   "--select", "precision-flow"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[precision-flow]" in out and "[hygiene]" not in out


class TestTraceArtifacts:
    def test_valid_trace_passes(self, tmp_path, capsys):
        path = _write(tmp_path, "trace.json", json.dumps(VALID_TRACE))
        assert main(["lint", path, "--no-baseline"]) == 0

    def test_invalid_trace_fails(self, tmp_path, capsys):
        doc = {"traceEvents": []}  # no spans, no otherData
        path = _write(tmp_path, "trace.json", json.dumps(doc))
        assert main(["lint", path, "--no-baseline"]) == 1
        assert "[trace-schema]" in capsys.readouterr().out

    def test_require_layers_flag(self, tmp_path, capsys):
        path = _write(tmp_path, "trace.json", json.dumps(VALID_TRACE))
        rc = main(["lint", path, "--no-baseline", "--require-layers"])
        assert rc == 1  # only 'executor' spans present
        assert "required layer" in capsys.readouterr().out


class TestRepositoryIsClean:
    def test_src_tree_clean_against_checked_in_baseline(self, monkeypatch,
                                                        capsys):
        """The acceptance gate: `repro lint src/` exits 0 at HEAD."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0
        assert "baseline: .lint-baseline.json" in capsys.readouterr().out


class TestChangedScoping:
    """``repro lint --changed``: diff-scoped analysis."""

    def _git_repo(self, tmp_path):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True,
                capture_output=True,
                env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                     "HOME": str(tmp_path), "PATH": "/usr/bin:/bin"},
            )

        git("init", "-q")
        (tmp_path / "committed.py").write_text(DIRTY)
        git("add", "committed.py")
        git("commit", "-qm", "seed")
        return git

    def test_only_touched_files_are_linted(self, tmp_path, monkeypatch,
                                           capsys):
        self._git_repo(tmp_path)
        # the committed dirty file is NOT touched; a new dirty file is
        (tmp_path / "fresh.py").write_text(DIRTY)
        monkeypatch.chdir(tmp_path)
        rc = main(["lint", str(tmp_path), "--no-baseline", "--changed",
                   "--select", "hygiene"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out
        assert "1 file(s)" in out

    def test_modified_tracked_file_is_linted(self, tmp_path, monkeypatch,
                                             capsys):
        self._git_repo(tmp_path)
        (tmp_path / "committed.py").write_text(DIRTY + "x = 1\n")
        monkeypatch.chdir(tmp_path)
        rc = main(["lint", str(tmp_path), "--no-baseline", "--changed",
                   "--select", "hygiene"])
        assert rc == 1
        assert "committed.py" in capsys.readouterr().out

    def test_no_changes_is_clean(self, tmp_path, monkeypatch, capsys):
        self._git_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        rc = main(["lint", str(tmp_path), "--no-baseline", "--changed"])
        assert rc == 0
        assert "no modified files" in capsys.readouterr().out

    def test_outside_git_falls_back_to_full_lint(self, tmp_path,
                                                 monkeypatch, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-repo"))
        rc = main(["lint", str(tmp_path), "--no-baseline", "--changed",
                   "--select", "hygiene"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "needs a git checkout" in err
