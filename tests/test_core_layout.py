"""Unit tests for the per-iteration layout bookkeeping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BenchmarkConfig
from repro.core.layout import (
    diag_columns_of,
    global_col_blocks_of,
    global_row_blocks_of,
    make_step_plan,
)
from repro.machine import SUMMIT


def _cfg(n=96, block=8, pr=3, pc=4):
    return BenchmarkConfig(
        n=n, block=block, machine=SUMMIT, p_rows=pr, p_cols=pc
    )


class TestStepPlan:
    def test_owner_identification(self):
        cfg = _cfg()
        for k in range(cfg.num_blocks):
            owners = [
                (pir, pic)
                for _r, pir, pic in cfg.grid.iter_ranks()
                if make_step_plan(cfg, pir, pic, k).is_owner
            ]
            assert owners == [(k % 3, k % 4)]

    def test_pivot_membership_counts(self):
        cfg = _cfg()
        for k in range(cfg.num_blocks):
            in_row = sum(
                make_step_plan(cfg, pir, pic, k).in_pivot_row
                for _r, pir, pic in cfg.grid.iter_ranks()
            )
            in_col = sum(
                make_step_plan(cfg, pir, pic, k).in_pivot_col
                for _r, pir, pic in cfg.grid.iter_ranks()
            )
            assert in_row == cfg.p_cols
            assert in_col == cfg.p_rows

    def test_trailing_shrinks_monotonically(self):
        cfg = _cfg()
        for _r, pir, pic in cfg.grid.iter_ranks():
            prev_rows = prev_cols = None
            for k in range(cfg.num_blocks):
                p = make_step_plan(cfg, pir, pic, k)
                if prev_rows is not None:
                    assert p.trail_rows <= prev_rows
                    assert p.trail_cols <= prev_cols
                prev_rows, prev_cols = p.trail_rows, p.trail_cols
            # After the final step, nothing trails.
            last = make_step_plan(cfg, pir, pic, cfg.num_blocks - 1)
            assert last.trail_rows == 0 or last.r1 + last.trail_rows == cfg.local_rows

    def test_trailing_region_is_local_tail(self):
        cfg = _cfg()
        for _r, pir, pic in cfg.grid.iter_ranks():
            for k in range(cfg.num_blocks):
                p = make_step_plan(cfg, pir, pic, k)
                assert p.r1 + p.trail_rows == cfg.local_rows
                assert p.c1 + p.trail_cols == cfg.local_cols

    @given(st.integers(0, 11))
    @settings(max_examples=12, deadline=None)
    def test_global_trailing_sums(self, k):
        cfg = _cfg()
        total_rows = sum(
            make_step_plan(cfg, pir, 0, k).trail_rows
            for pir in range(cfg.p_rows)
        )
        assert total_rows == cfg.n - min((k + 1) * cfg.block, cfg.n)

    def test_owns_next_flags(self):
        cfg = _cfg()
        for k in range(cfg.num_blocks - 1):
            owners_next_row = {
                pir
                for _r, pir, pic in cfg.grid.iter_ranks()
                if make_step_plan(cfg, pir, pic, k).owns_next_row
            }
            assert owners_next_row == {(k + 1) % cfg.p_rows}
        # Last step: no next panels.
        last = make_step_plan(cfg, 0, 0, cfg.num_blocks - 1)
        assert not last.owns_next_row and not last.owns_next_col

    def test_diag_local_offsets(self):
        cfg = _cfg()
        for k in range(cfg.num_blocks):
            pir, pic = cfg.grid.diagonal_owner(k)
            p = make_step_plan(cfg, pir, pic, k)
            # The diag block's local offset corresponds to global block k.
            assert cfg.row_dim.global_block(pir, p.diag_r // cfg.block) == k
            assert cfg.col_dim.global_block(pic, p.diag_c // cfg.block) == k


class TestOwnershipHelpers:
    def test_row_blocks_partition(self):
        cfg = _cfg()
        seen = []
        for pir in range(cfg.p_rows):
            seen.extend(global_row_blocks_of(cfg, pir))
        assert sorted(seen) == list(range(cfg.num_blocks))

    def test_col_blocks_partition(self):
        cfg = _cfg()
        seen = []
        for pic in range(cfg.p_cols):
            seen.extend(global_col_blocks_of(cfg, pic))
        assert sorted(seen) == list(range(cfg.num_blocks))

    def test_diag_columns_partition(self):
        cfg = _cfg()
        seen = []
        for _r, pir, pic in cfg.grid.iter_ranks():
            seen.extend(diag_columns_of(cfg, pir, pic))
        assert sorted(seen) == list(range(cfg.num_blocks))

    def test_diag_columns_match_owner(self):
        cfg = _cfg()
        for _r, pir, pic in cfg.grid.iter_ranks():
            for j in diag_columns_of(cfg, pir, pic):
                assert cfg.grid.diagonal_owner(j) == (pir, pic)
