"""Tests for the campaign (fleet) dashboard renderer and its CLI path.

The non-negotiable property: the emitted page must survive
``validate_self_contained`` — it gets attached to CI runs and mailed
around, so any external fetch is a broken image on someone's laptop.
"""

import json

import pytest

from repro.campaign import CampaignEngine, Job, JobQueue, ResultStore, RunCache
from repro.obs.health.dashboard import validate_self_contained
from repro.obs.fleet import build_fleet, render_campaign_dashboard

CODE = "fleet-dash-test-v1"


def _sweep(tmp_path, grids=(2, 4), bcasts=("bcast", "ring2m")):
    store = ResultStore(tmp_path / "store.jsonl")
    engine = CampaignEngine(
        store, RunCache(tmp_path / "cache"), log=lambda _m: None
    )
    jobs = [
        Job(machine="frontier", nl=3072, block=768, grid=g, bcast=b,
            num_runs=2)
        for g in grids for b in bcasts
    ]
    engine.run_sweep(jobs, JobQueue(tmp_path / "q.json"), code=CODE)
    return store


@pytest.fixture()
def fleet_doc(tmp_path):
    return build_fleet(_sweep(tmp_path))


class TestRenderCampaignDashboard:
    def test_page_is_self_contained(self, fleet_doc):
        html = render_campaign_dashboard(fleet_doc)
        assert validate_self_contained(html) == []

    def test_panels_present(self, fleet_doc):
        html = render_campaign_dashboard(fleet_doc)
        assert "Sweep heatmap" in html
        assert "<svg" in html
        assert "Run trajectories" in html
        assert "Worker utilization" in html
        assert "Health findings rollup" in html

    def test_heatmap_carries_every_cell_value(self, fleet_doc):
        html = render_campaign_dashboard(fleet_doc)
        for cell in fleet_doc["heatmap"]["cells"]:
            assert f"{cell['gflops_per_gcd']:.1f}" in html

    def test_trend_panel_shows_drift_verdict(self, fleet_doc, tmp_path):
        src = tmp_path / "store.jsonl"
        fast = tmp_path / "fast.jsonl"
        rows = [json.loads(line) for line in
                src.read_text().splitlines() if line.strip()]
        with fast.open("w") as f:
            for row in rows:
                row["best"]["elapsed_s"] *= 0.5
                f.write(json.dumps(row) + "\n")
        doc = build_fleet(src, baselines=[str(fast)])
        html = render_campaign_dashboard(doc)
        assert "DRIFT: cell(s) regressed" in html
        assert validate_self_contained(html) == []

    def test_title_is_escaped(self, fleet_doc):
        html = render_campaign_dashboard(
            fleet_doc, title="<script>alert(1)</script>"
        )
        assert "<script>" not in html

    def test_single_cell_store(self, tmp_path):
        doc = build_fleet(_sweep(tmp_path, grids=(2,), bcasts=("bcast",)))
        html = render_campaign_dashboard(doc)
        assert validate_self_contained(html) == []
        assert "2x2" in html


class TestDashboardCli:
    def test_campaign_flag_builds_valid_page(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setenv("REPRO_CODE_VERSION", CODE)
        from repro.cli import main

        store = tmp_path / "store.jsonl"
        assert main([
            "campaign", "--nl", "3072", "-b", "768", "--grids", "2",
            "--bcasts", "bcast,ring2m", "--runs", "1",
            "--store", str(store),
        ]) == 0
        out = tmp_path / "campaign.html"
        rc = main(["dashboard", "--campaign", str(store),
                   "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert validate_self_contained(html) == []
        assert "Sweep heatmap" in html
