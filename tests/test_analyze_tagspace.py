"""``tag-space`` checker tests, including the pre-PR-2 LASWP regression.

The fixture ``fixtures/analyze/laswp_tag_aliasing.py`` reproduces the
per-column row-interchange protocol that shipped before the batched
LASWP rewrite: ``_tag(k, 7, j) + span_idx`` aliases column ``j+1``'s
window.  The checker must flag every such site — this is the regression
test that the aliasing class can never come back unnoticed.
"""

from pathlib import Path

from repro.analyze.checkers.tag_space import TagSpaceChecker
from repro.analyze.findings import Severity
from repro.analyze.framework import SourceModule

FIXTURES = Path(__file__).parent / "fixtures" / "analyze"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: the hpl_dist-shaped formula used by inline snippets below
_FORMULA = (
    "_TAG_BASE = 1 << 24\n"
    "def _tag(k, phase, j=0):\n"
    "    return _TAG_BASE + (k * 8 + phase) * 4096 + j\n"
)


def _lint(text_or_path, path="snippet.py"):
    if isinstance(text_or_path, Path):
        module = SourceModule.parse(str(text_or_path))
    else:
        module = SourceModule.parse(path, text_or_path)
    return list(TagSpaceChecker().check(module))


class TestLaswpAliasingRegression:
    def test_every_offset_site_is_an_error(self):
        findings = _lint(FIXTURES / "laswp_tag_aliasing.py")
        errors = [f for f in findings if f.severity == Severity.ERROR]
        # Four exchange sites compute `_tag(k, 7, j) + span_idx`.
        assert len(errors) == 4
        assert {f.line for f in errors} == {46, 49, 56, 59}
        assert all(f.checker == "tag-space" for f in errors)
        assert all("arithmetic applied to a _tag(...)" in f.message
                   for f in errors)

    def test_message_names_the_bug_class(self):
        findings = _lint(FIXTURES / "laswp_tag_aliasing.py")
        assert all("alias" in f.message for f in findings)


class TestCurrentTreeIsClean:
    def test_hpl_dist_proves_disjoint(self):
        assert _lint(REPO_SRC / "repro" / "core" / "hpl_dist.py") == []

    def test_hplai_proves_disjoint(self):
        assert _lint(REPO_SRC / "repro" / "core" / "hplai.py") == []


class TestImportedConstants:
    """Tag formulas built from constants imported from another module
    (the repro.obs.phases idiom) must still resolve statically."""

    def test_import_from_resolves(self):
        snippet = (
            "from repro.obs.phases import STEP_STRIDE\n"
            "def _tag(k, phase):\n"
            "    return STEP_STRIDE * k + phase\n"
        )
        assert _lint(snippet) == []

    def test_import_asname_resolves(self):
        snippet = (
            "from repro.obs.phases import STEP_STRIDE as _STRIDE\n"
            "def _tag(k, phase):\n"
            "    return _STRIDE * k + phase\n"
        )
        assert _lint(snippet) == []

    def test_unresolvable_import_still_warns(self):
        snippet = (
            "from no_such_module_xyz import STRIDE\n"
            "def _tag(k, phase):\n"
            "    return STRIDE * k + phase\n"
        )
        findings = _lint(snippet)
        assert len(findings) == 1
        assert "could not evaluate" in findings[0].message


class TestPhaseRules:
    def test_non_constant_phase_is_an_error(self):
        findings = _lint(_FORMULA +
                         "def prog(comm, k, phase):\n"
                         "    return _tag(k, phase)\n")
        assert len(findings) == 1
        assert "not a compile-time constant" in findings[0].message

    def test_out_of_range_phase_is_an_error(self):
        # dk/dphase = 8, so phase 9 walks into step k+1's window.
        findings = _lint(_FORMULA + "TAG_BAD = _tag(0, 9)\n")
        assert len(findings) == 1
        assert "outside the per-step window" in findings[0].message

    def test_module_constant_phase_folds(self):
        findings = _lint(_FORMULA +
                         "TAG_SWAP = 1\n"
                         "T = _tag(0, TAG_SWAP + 2)\n")
        assert findings == []


class TestColumnRules:
    def test_loop_variable_column_accepted(self):
        findings = _lint(_FORMULA +
                         "def prog(k):\n"
                         "    return [_tag(k, 7, j) for j in range(4)]\n")
        assert findings == []

    def test_out_of_range_constant_column_is_an_error(self):
        # dphase/dj = 4096, so column 5000 aliases the next phase.
        findings = _lint(_FORMULA + "T = _tag(0, 1, 5000)\n")
        assert len(findings) == 1
        assert "outside the per-phase window" in findings[0].message

    def test_column_arithmetic_is_an_error(self):
        findings = _lint(_FORMULA +
                         "def prog(k, j):\n"
                         "    return _tag(k, 1, j + 1)\n")
        assert len(findings) == 1
        assert "contains arithmetic" in findings[0].message

    def test_keyword_column_checked_too(self):
        findings = _lint(_FORMULA + "T = _tag(0, 1, j=5000)\n")
        assert len(findings) == 1


class TestFormulaRecovery:
    def test_module_without_tag_func_yields_nothing(self):
        assert _lint("def f():\n    return 1\n") == []

    def test_nonlinear_formula_is_a_warning(self):
        findings = _lint("def _tag(k, phase):\n"
                         "    return k * k + phase\n"
                         "T = _tag(1, 2)\n")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "not linear" in findings[0].message

    def test_unevaluable_formula_is_a_warning(self):
        findings = _lint("def _tag(k, phase):\n"
                         "    return mystery_offset + k + phase\n")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "could not evaluate" in findings[0].message

    def test_annotated_formula_still_evaluates(self):
        # PEP-563 modules carry annotations the sandbox must strip.
        findings = _lint("from __future__ import annotations\n" + _FORMULA
                         .replace("def _tag(k, phase, j=0):",
                                  "def _tag(k: int, phase: int,"
                                  " j: int = 0) -> int:") +
                         "T = _tag(0, 9)\n")
        assert len(findings) == 1  # range check ran => formula evaluated
        assert "outside the per-step window" in findings[0].message
