"""Runtime precision sanitizer tests (``REPRO_SANITIZE=1``)."""

import numpy as np
import pytest

from repro.analyze.sanitize import (
    SANITIZE_ENV,
    SanitizedBlasShim,
    sanitize_enabled,
)
from repro.blas.shim import BlasShim, get_shim
from repro.errors import NumericsError, ReproError, SanitizerError


class TestEnvGate:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, value):
        assert sanitize_enabled({SANITIZE_ENV: value})

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsy_values(self, value):
        assert not sanitize_enabled({SANITIZE_ENV: value})

    def test_get_shim_plain_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        shim = get_shim("cuda")
        assert type(shim) is BlasShim

    def test_get_shim_sanitized_under_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        shim = get_shim("rocm", record_calls=True)
        assert isinstance(shim, SanitizedBlasShim)
        # Drop-in: the vendor-name dispatch surface is unchanged.
        assert shim.vendor_name("gemm") == "rocblas_gemm_ex"
        assert shim.record_calls


class TestErrorTaxonomy:
    def test_sanitizer_error_is_a_numerics_error(self):
        assert issubclass(SanitizerError, NumericsError)
        assert issubclass(SanitizerError, ReproError)


@pytest.fixture
def shim():
    return SanitizedBlasShim("cuda")


class TestGemmContracts:
    def test_clean_update_passes_and_counts_checks(self, shim):
        c = np.full((2, 2), 4.0, dtype=np.float32)
        a = np.full((2, 2), 0.5, dtype=np.float32)
        b = np.full((2, 2), 0.5, dtype=np.float32)
        out = shim.gemm_update(c, a, b)
        np.testing.assert_allclose(out, 4.0 - 0.5)
        assert shim.checks_run > 0

    def test_c_must_be_fp32(self, shim):
        c = np.zeros((2, 2), dtype=np.float64)
        a = b = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(SanitizerError, match="must be float32"):
            shim.gemm_update(c, a, b)

    def test_non_finite_operand_rejected(self, shim):
        c = np.zeros((2, 2), dtype=np.float32)
        a = np.ones((2, 2), dtype=np.float32)
        a[0, 1] = np.inf
        b = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(SanitizerError, match=r"non-finite"):
            shim.gemm_update(c, a, b)

    def test_fp16_overflow_operand_rejected(self, shim):
        c = np.zeros((2, 2), dtype=np.float32)
        a = np.full((2, 2), 1.0e5, dtype=np.float32)  # > 65504
        b = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(SanitizerError, match="FP16 max"):
            shim.gemm_update(c, a, b)

    def test_already_fp16_operand_is_not_range_checked(self, shim):
        c = np.zeros((2, 2), dtype=np.float32)
        a = np.ones((2, 2), dtype=np.float16)
        b = np.ones((2, 2), dtype=np.float16)
        out = shim.gemm_update(c, a, b)
        np.testing.assert_allclose(out, -2.0)


class TestFactorizationContracts:
    def test_getrf_clean_square_block(self, shim):
        a = (np.eye(4) * 4.0 + 0.01).astype(np.float32)
        out = shim.getrf(a.copy())
        assert np.isfinite(out).all()

    def test_getrf_rejects_non_square(self, shim):
        a = np.ones((3, 4), dtype=np.float32)
        with pytest.raises(SanitizerError, match="square"):
            shim.getrf(a)

    def test_getrf_rejects_non_finite_input(self, shim):
        a = np.eye(3, dtype=np.float32)
        a[1, 1] = np.nan
        with pytest.raises(SanitizerError, match="non-finite"):
            shim.getrf(a)


class TestSolveContracts:
    def test_trsv_clean(self, shim):
        t = np.eye(3, dtype=np.float32)
        x = np.ones(3, dtype=np.float32)
        out = shim.trsv_lower_unit(t, x.copy())
        assert np.isfinite(out).all()

    def test_trsv_rejects_non_finite_rhs(self, shim):
        t = np.eye(3, dtype=np.float32)
        x = np.array([1.0, np.nan, 1.0], dtype=np.float32)
        with pytest.raises(SanitizerError, match="non-finite"):
            shim.trsv_upper(t, x)

    def test_trsm_rejects_non_finite_factor(self, shim):
        t = np.eye(2, dtype=np.float32)
        t[0, 0] = np.inf
        b = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(SanitizerError, match="non-finite"):
            shim.trsm("left", "lower", t, b)

    def test_phantom_payloads_are_skipped(self, shim):
        # Cost-model-only runs pass non-ndarray payloads through the
        # shim surface; the sanitizer must not choke on them.
        before = shim.checks_run
        shim._require_finite("gemm", "A", None)
        shim._require_fp16_safe("gemm", "A", "phantom:1024x1024")
        assert shim.checks_run == before


class TestEndToEndUnderSanitizer:
    def test_small_hplai_solve_stays_clean(self, monkeypatch):
        # The whole mixed-precision pipeline honours the contracts: a
        # small end-to-end solve must not trip a single assertion.
        monkeypatch.setenv(SANITIZE_ENV, "1")
        from repro.core.driver import solve_hplai

        res = solve_hplai(n=64, block=16, p_rows=2, p_cols=2)
        assert res.ir_converged


def _dispatch_ops():
    """Every BlasShim entry point that records a vendor call."""
    import inspect

    return sorted(
        name for name, fn in vars(BlasShim).items()
        if callable(fn) and not name.startswith("_")
        and "_record(" in inspect.getsource(fn)
    )


class TestShimCoverage:
    """The sanitizer must wrap every BLAS shim entry point — a new op
    added to :class:`BlasShim` without a sanitized override silently
    escapes the dtype/finiteness contracts."""

    def test_dispatch_surface_is_what_we_think(self):
        assert _dispatch_ops() == [
            "gemm_update", "gemv", "gemv_update", "getrf",
            "trsm", "trsv_lower_unit", "trsv_upper",
        ]

    @pytest.mark.parametrize("op", [
        "gemm_update", "gemv", "gemv_update", "getrf",
        "trsm", "trsv_lower_unit", "trsv_upper",
    ])
    def test_entry_point_is_wrapped(self, op):
        assert op in vars(SanitizedBlasShim), (
            f"BlasShim.{op} has no SanitizedBlasShim override: calls "
            "would bypass the runtime precision contracts"
        )

    def test_no_unwrapped_dispatch_ops(self):
        unwrapped = [
            op for op in _dispatch_ops()
            if op not in vars(SanitizedBlasShim)
        ]
        assert unwrapped == []


class TestGemvContracts:
    def test_clean_gemv(self, shim):
        a = np.ones((4, 4))
        x = np.ones(4)
        assert np.allclose(shim.gemv(a, x), 4.0)

    def test_gemv_rejects_non_finite_tile(self, shim):
        a = np.ones((4, 4))
        a[2, 1] = np.inf
        with pytest.raises(SanitizerError, match=r"gemv.*A"):
            shim.gemv(a, np.ones(4))

    def test_gemv_update_rejects_non_finite_vector(self, shim):
        y = np.zeros(4)
        x = np.ones(4)
        x[0] = np.nan
        with pytest.raises(SanitizerError, match=r"gemv.*x"):
            shim.gemv_update(y, np.ones((4, 4)), x)

    def test_gemv_update_in_place(self, shim):
        y = np.full(4, 10.0)
        shim.gemv_update(y, np.ones((4, 4)), np.ones(4))
        assert np.allclose(y, 6.0)

    def test_vendor_names_cover_gemv(self):
        for platform in ("cuda", "rocm"):
            assert BlasShim(platform).vendor_name("gemv")
