"""Unit tests for the exact and phantom executors."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.executors import ExactExecutor, PhantomExecutor
from repro.lcg.matrix import HplAiMatrix
from repro.machine import SUMMIT
from repro.simulate.phantom import PhantomArray


def _cfg(n=64, block=8, pr=2, pc=2, machine=SUMMIT, **kw):
    return BenchmarkConfig(
        n=n, block=block, machine=machine, p_rows=pr, p_cols=pc, **kw
    )


def _exact(cfg, pir=0, pic=0):
    rank = cfg.grid.rank_of(pir, pic)
    ex = ExactExecutor(cfg, pir, pic, rank)
    ex.fill_local()
    return ex


class TestFill:
    def test_local_matrix_matches_block_cyclic_layout(self):
        cfg = _cfg()
        matrix = HplAiMatrix(cfg.n, cfg.seed)
        dense = matrix.dense(dtype=np.float32)
        b = cfg.block
        for _r, pir, pic in cfg.grid.iter_ranks():
            ex = _exact(cfg, pir, pic)
            for lr in range(cfg.row_dim.blocks_per_proc):
                gr = cfg.row_dim.global_block(pir, lr)
                for lc in range(cfg.col_dim.blocks_per_proc):
                    gc = cfg.col_dim.global_block(pic, lc)
                    np.testing.assert_array_equal(
                        ex.local[lr * b:(lr + 1) * b, lc * b:(lc + 1) * b],
                        dense[gr * b:(gr + 1) * b, gc * b:(gc + 1) * b],
                    )

    def test_fill_time_positive_and_matches_phantom(self):
        cfg = _cfg()
        ex = ExactExecutor(cfg, 0, 0, 0)
        ph = PhantomExecutor(cfg, 0, 0, 0)
        assert ex.fill_local() == pytest.approx(ph.fill_local())
        assert ph.fill_local() > 0


class TestTimingParity:
    """Exact and phantom executors must charge identical times."""

    def test_factorization_ops(self):
        cfg = _cfg(n=96, block=16, pr=2, pc=3)
        pir, pic = 0, 0
        rank = cfg.grid.rank_of(pir, pic)
        ex = ExactExecutor(cfg, pir, pic, rank)
        ex.fill_local()
        ph = PhantomExecutor(cfg, pir, pic, rank)
        k = 0  # rank (0,0) owns the step-0 diagonal
        diag, t_exact = ex.getrf_diag(k)
        _pd, t_ph = ph.getrf_diag(k)
        assert t_exact == pytest.approx(t_ph)
        assert ex.trsm_row_panel(k, diag) == pytest.approx(
            ph.trsm_row_panel(k, None)
        )
        u_ex, tc_ex = ex.trans_cast_u(k)
        u_ph, tc_ph = ph.trans_cast_u(k)
        assert tc_ex == pytest.approx(tc_ph)
        assert u_ex.shape == u_ph.shape
        assert u_ex.dtype == np.float16 and u_ph.dtype == np.float16
        assert ex.trsm_col_panel(k, diag) == pytest.approx(
            ph.trsm_col_panel(k, None)
        )
        l_ex, _ = ex.cast_l(k)
        l_ph, _ = ph.cast_l(k)
        assert l_ex.shape == l_ph.shape
        assert ex.gemm_trailing(k, l_ex, u_ex, False, False) == pytest.approx(
            ph.gemm_trailing(k, l_ph, u_ph, False, False)
        )

    def test_phantom_payload_shapes(self):
        cfg = _cfg(n=96, block=16, pr=2, pc=3)
        ph = PhantomExecutor(cfg, 0, 0, 0)
        diag, _ = ph.getrf_diag(0)
        assert isinstance(diag, PhantomArray)
        assert diag.shape == (16, 16) and diag.dtype == np.float32
        u, _ = ph.trans_cast_u(0)
        plan = ph.plan(0)
        assert u.shape == (plan.trail_cols, 16)
        l16, _ = ph.cast_l(0)
        assert l16.shape == (plan.trail_rows, 16)


class TestExactKernels:
    def test_getrf_produces_packed_lu(self):
        cfg = _cfg(n=32, block=8, pr=1, pc=1)
        ex = _exact(cfg)
        before = ex.local[:8, :8].astype(np.float64).copy()
        diag, _ = ex.getrf_diag(0)
        lower = np.tril(diag.astype(np.float64), -1) + np.eye(8)
        upper = np.triu(diag.astype(np.float64))
        np.testing.assert_allclose(lower @ upper, before, rtol=1e-5, atol=1e-6)

    def test_full_local_factorization_single_rank(self):
        # On a 1x1 grid the executor steps reproduce an unpivoted LU of
        # the whole matrix.
        cfg = _cfg(n=32, block=8, pr=1, pc=1)
        ex = _exact(cfg)
        for k in range(cfg.num_blocks):
            diag, _ = ex.getrf_diag(k)
            ex.trsm_row_panel(k, diag)
            u16, _ = ex.trans_cast_u(k)
            ex.trsm_col_panel(k, diag)
            l16, _ = ex.cast_l(k)
            ex.gemm_trailing(k, l16, u16, False, False)
        lu = ex.local.astype(np.float64)
        lower = np.tril(lu, -1) + np.eye(32)
        upper = np.triu(lu)
        a = HplAiMatrix(32, cfg.seed).dense()
        # FP16 panels limit reconstruction accuracy to ~2^-11 levels.
        err = np.max(np.abs(lower @ upper - a))
        assert err < 1e-2
        assert err > 0  # mixed precision is genuinely lossy pre-IR

    def test_strip_plus_remainder_equals_full_update(self):
        # Look-ahead path: strip updates + skipped trailing update must
        # equal the plain full trailing update.
        cfg = _cfg(n=64, block=8, pr=2, pc=2)

        def run(lookahead_split):
            pir = pic = 1  # owns row/col block 1 (= k+1 for k=0)
            ex = _exact(cfg, pir, pic)
            k = 0
            rows = [cfg.row_dim.global_block(pir, i) for i in
                    range(cfg.row_dim.blocks_per_proc)]
            cols = [cfg.col_dim.global_block(pic, i) for i in
                    range(cfg.col_dim.blocks_per_proc)]
            b = cfg.block
            l_rows = [g for g in rows if g > k]
            u_cols = [g for g in cols if g > k]
            # Build rank (1,1)'s step-0 panel chunks from the dense
            # factors (it shares no local rows/cols with the owner).
            a = HplAiMatrix(cfg.n, cfg.seed).dense(dtype=np.float32)
            from repro.blas.getrf import getrf_nopiv, unpack_lu

            lu = getrf_nopiv(a[:b, :b].astype(np.float32).copy())
            lmat, umat = unpack_lu(lu)
            import scipy.linalg as sla

            lpanel = sla.solve_triangular(
                umat.astype(np.float64).T,
                a[b:, :b].astype(np.float64).T, lower=True,
            ).T
            upanel = sla.solve_triangular(
                lmat.astype(np.float64), a[:b, b:].astype(np.float64),
                lower=True, unit_diagonal=True,
            )
            my_l = np.vstack([
                lpanel[g * b - b:(g + 1) * b - b] for g in l_rows
            ]).astype(np.float16)
            my_ut = np.vstack([
                upanel[:, g * b - b:(g + 1) * b - b].T for g in u_cols
            ]).astype(np.float16)
            if lookahead_split:
                ex.strip_col_update(k, my_l, my_ut)
                ex.strip_row_update(k, my_l, my_ut, owns_col=True)
                ex.gemm_trailing(k, my_l, my_ut, skip_row=True, skip_col=True)
            else:
                ex.gemm_trailing(k, my_l, my_ut, False, False)
            return ex.local.copy()

        split = run(True)
        full = run(False)
        np.testing.assert_allclose(split, full, rtol=1e-5, atol=1e-5)


class TestIrConvergedBehaviour:
    def test_phantom_fixed_iterations(self):
        cfg = _cfg(ir_fixed_iters=3)
        ph = PhantomExecutor(cfg, 0, 0, 0)
        decisions = [ph.ir_converged(None) for _ in range(5)]
        assert decisions == [False, False, False, True, True]

    def test_exact_convergence_is_tolerance_based(self):
        cfg = _cfg(n=32, block=8, pr=1, pc=1)
        ex = _exact(cfg)
        ex.ir_setup()
        # A tiny residual converges immediately; a large one does not.
        assert ex.ir_converged(np.zeros(cfg.n))
        assert not ex.ir_converged(np.ones(cfg.n))
        assert ex.last_residual_norm == 1.0
