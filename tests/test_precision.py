"""Tests for precision descriptors, casts, and error analysis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.precision import (
    FP16,
    FP32,
    FP64,
    cast,
    hpl_ai_tolerance,
    precision_of,
    round_to,
    trans_cast,
    unit_roundoff,
)
from repro.precision.analysis import scaled_residual
from repro.precision.rounding import cast_bytes_moved


class TestPrecisionTypes:
    def test_bytes(self):
        assert (FP16.bytes, FP32.bytes, FP64.bytes) == (2, 4, 8)

    def test_eps_ordering(self):
        assert FP16.eps > FP32.eps > FP64.eps

    def test_eps_values(self):
        assert FP16.eps == pytest.approx(2**-10)
        assert FP32.eps == pytest.approx(2**-23)
        assert FP64.eps == pytest.approx(2**-52)

    def test_lookup_by_name_dtype_array(self):
        assert precision_of("FP16") is FP16
        assert precision_of(np.float32) is FP32
        assert precision_of(np.zeros(2, dtype=np.float64)) is FP64
        assert precision_of(FP16) is FP16

    def test_lookup_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            precision_of("fp8")
        with pytest.raises(ConfigurationError):
            precision_of(np.int32)

    def test_unit_roundoff(self):
        assert unit_roundoff(FP16) == FP16.eps / 2


class TestCasts:
    def test_cast_dtype_and_contiguity(self):
        a = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
        out = cast(a, FP16)
        assert out.dtype == np.float16
        assert out.flags.c_contiguous

    def test_trans_cast_transposes(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = trans_cast(a, FP16)
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out.astype(np.float32), a.T)
        assert out.flags.c_contiguous

    def test_round_to_keeps_container_dtype(self):
        a = np.array([1.0 + 2**-20], dtype=np.float64)
        r = round_to(a, FP16)
        assert r.dtype == np.float64
        assert r[0] == 1.0  # 2^-20 is below fp16 resolution at 1.0

    def test_round_to_error_bounded_by_unit_roundoff(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0.5, 2.0, size=1000)
        r = round_to(a, FP16)
        rel = np.abs(r - a) / np.abs(a)
        assert rel.max() <= FP16.unit_roundoff * 1.0000001

    def test_cast_bytes_moved(self):
        assert cast_bytes_moved((10, 20), FP32, FP16) == 200 * 6


class TestTolerance:
    def test_hpl_ai_tolerance_formula(self):
        tol = hpl_ai_tolerance(100, 2.0, 3.0, 4.0, eps=1e-16)
        assert tol == pytest.approx(8 * 100 * 1e-16 * (2 * 2.0 * 3.0 + 4.0))

    def test_defaults_to_fp64_eps(self):
        assert hpl_ai_tolerance(10, 1, 1, 1) == pytest.approx(
            8 * 10 * FP64.eps * 3
        )

    def test_scaled_residual(self):
        assert scaled_residual(0.0, 10, 1.0, 1.0) == 0.0
        assert scaled_residual(1e-12, 10, 0.0, 0.0) == float("inf")
        val = scaled_residual(10 * FP64.eps, 10, 1.0, 1.0)
        assert val == pytest.approx(1.0)
