"""``precision-flow`` checker tests: unguarded FP16 down-casts."""

from pathlib import Path

from repro.analyze.checkers.precision_flow import PrecisionFlowChecker
from repro.analyze.findings import Severity
from repro.analyze.framework import SourceModule

FIXTURES = Path(__file__).parent / "fixtures" / "analyze"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _lint(text_or_path, path="snippet.py"):
    if isinstance(text_or_path, Path):
        module = SourceModule.parse(str(text_or_path))
    else:
        module = SourceModule.parse(path, text_or_path)
    return list(PrecisionFlowChecker().check(module))


class TestUnguardedDowncast:
    def test_fixture_both_sites_flagged(self):
        findings = _lint(FIXTURES / "unguarded_fp16_cast.py")
        errors = [f for f in findings if f.severity == Severity.ERROR]
        assert len(errors) == 2
        assert {f.line for f in errors} == {12, 17}
        assert all("unguarded" in f.message for f in errors)
        assert all(f.checker == "precision-flow" for f in errors)

    def test_astype_half_alias_flagged(self):
        findings = _lint("import numpy as np\n"
                         "def f(x):\n"
                         "    return x.astype(np.half)\n")
        assert len(findings) == 1 and findings[0].line == 3

    def test_dtype_string_flagged(self):
        findings = _lint("def f(x):\n"
                         "    return x.astype('float16')\n")
        assert len(findings) == 1

    def test_np_dtype_call_flagged(self):
        findings = _lint("import numpy as np\n"
                         "def f(x):\n"
                         "    return x.astype(np.dtype('float16'))\n")
        assert len(findings) == 1

    def test_direct_float16_call_flagged(self):
        findings = _lint("import numpy as np\n"
                         "def f(x):\n"
                         "    return np.float16(x)\n")
        assert len(findings) == 1

    def test_module_scope_cast_flagged(self):
        findings = _lint("import numpy as np\n"
                         "HALF_ONE = np.float16(1.0)\n")
        assert len(findings) == 1
        assert "module scope" in findings[0].message


class TestGuardedAndBenign:
    def test_isfinite_guard_accepted(self):
        findings = _lint(
            "import numpy as np\n"
            "def f(x):\n"
            "    if not np.isfinite(x).all():\n"
            "        raise ValueError('non-finite')\n"
            "    return x.astype(np.float16)\n"
        )
        assert findings == []

    def test_precision_error_guard_accepted(self):
        findings = _lint(
            "import numpy as np\n"
            "from repro.errors import PrecisionError\n"
            "def f(x):\n"
            "    if (np.abs(x) > 65504.0).any():\n"
            "        raise PrecisionError('overflow')\n"
            "    return x.astype(np.float16)\n"
        )
        assert findings == []

    def test_fp32_cast_not_flagged(self):
        findings = _lint("import numpy as np\n"
                         "def f(x):\n"
                         "    return x.astype(np.float32)\n")
        assert findings == []

    def test_repo_gemm_module_is_clean(self):
        # gemm_mixed's _to_fp16 carries the canonical guard pattern.
        assert _lint(REPO_SRC / "repro" / "blas" / "gemm.py") == []

    def test_repo_bfloat_module_is_clean(self):
        # cast_panel gained its guard from this PR's own lint run.
        assert _lint(REPO_SRC / "repro" / "precision" / "bfloat.py") == []


class TestMixedDtypeArithmetic:
    def test_one_sided_downcast_in_binop_warns(self):
        findings = _lint(
            "import numpy as np\n"
            "FP16_MAX = 65504.0  # guard marker: isolate the warning\n"
            "def f(a, b):\n"
            "    assert FP16_MAX\n"
            "    return a * b.astype(np.float16)\n"
        )
        warnings = [f for f in findings if f.severity == Severity.WARNING]
        assert len(warnings) == 1
        assert "mixed-dtype" in warnings[0].message

    def test_both_sides_downcast_is_symmetric(self):
        findings = _lint(
            "import numpy as np\n"
            "def f(a, b):\n"
            "    assert np.isfinite(a).all() and np.isfinite(b).all()\n"
            "    return a.astype(np.float16) * b.astype(np.float16)\n"
        )
        assert [f for f in findings if f.severity == Severity.WARNING] == []
