"""Tests for formatting helpers (repro.util.format)."""

import pytest

from repro.util.format import (
    format_bytes,
    format_flops,
    format_seconds,
    format_si,
    render_table,
)


class TestFormatSi:
    def test_exaflops(self):
        assert format_si(2.387e18, "FLOPS") == "2.387 EFLOPS"

    def test_zero(self):
        assert format_si(0, "FLOPS") == "0 FLOPS"

    def test_no_unit(self):
        assert format_si(1500, precision=1) == "1.5 K"

    def test_small_value_unchanged(self):
        assert format_si(12.0, "B", precision=0) == "12 B"

    def test_format_flops_wrapper(self):
        assert format_flops(1.411e18) == "1.411 EFLOPS"


class TestFormatBytes:
    def test_gib(self):
        assert format_bytes(16 * 2**30) == "16.0 GiB"

    def test_bytes(self):
        assert format_bytes(512) == "512.0 B"


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (5e-7, "0.5 us"),
            (0.0032, "3.20 ms"),
            (42.0, "42.00 s"),
            (600.0, "10.0 min"),
            (7200.0, "2.00 h"),
        ],
    )
    def test_ranges(self, value, expected):
        assert format_seconds(value) == expected

    def test_negative(self):
        assert format_seconds(-42.0) == "-42.00 s"


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "value"],
            [["B", 768], ["N", 9953280]],
            title="params",
        )
        lines = out.splitlines()
        assert lines[0] == "params"
        assert "name" in lines[2] and "value" in lines[2]
        assert all(len(line) <= len(lines[3]) + 2 for line in lines[2:])

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])
