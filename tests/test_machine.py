"""Tests for machine specs, kernel models, variability and topology."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT, CommCosts, GcdFleet, WarmupModel, get_machine
from repro.util import flops as fl


class TestTableI:
    def test_node_counts(self):
        assert SUMMIT.num_nodes == 4608
        assert FRONTIER.num_nodes == 9408

    def test_gcds(self):
        assert SUMMIT.node.gcds_per_node == 6
        assert FRONTIER.node.gcds_per_node == 8
        assert SUMMIT.total_gcds == 27648
        assert FRONTIER.total_gcds == 75264

    def test_node_fp16_peaks_match_table(self):
        assert SUMMIT.node.fp16_tflops == pytest.approx(750.0)
        assert FRONTIER.node.fp16_tflops == pytest.approx(1192.0)

    def test_frontier_per_node_advantage(self):
        # Paper: Frontier has 1.58x per-node FP16 over Summit.
        ratio = FRONTIER.node.fp16_tflops / SUMMIT.node.fp16_tflops
        assert ratio == pytest.approx(1.58, abs=0.02)

    def test_gpu_memory_vs_cpu_memory_finding1(self):
        # Finding 1: on Frontier, available GPU memory exceeds available
        # CPU memory by over 30 GB.
        node = FRONTIER.node
        assert node.gpu_memory_gib - node.cpu_memory_available_gib > 30

    def test_summit_gpu_memory_smaller_than_cpu(self):
        node = SUMMIT.node
        assert node.gpu_memory_gib < node.cpu_memory_available_gib

    def test_describe_contains_table_rows(self):
        d = SUMMIT.describe()
        assert d["Number of Nodes"] == 4608
        assert "V100" in d["GPU / # of GCDs (Node)"]
        assert d["# of NICs"] == 2

    def test_get_machine(self):
        assert get_machine("Summit") is SUMMIT
        assert get_machine("frontier") is FRONTIER
        with pytest.raises(ConfigurationError):
            get_machine("aurora")

    def test_max_local_n(self):
        # Paper: N_L = 61440 for Summit (~14 GB of fp32) fits a 16 GB V100;
        # N_L = 119808 (~53 GB) fits a 64 GB MI250X GCD.
        assert SUMMIT.max_local_n_fp32() >= 61440
        assert FRONTIER.max_local_n_fp32() >= 119808


class TestGpuKernelModels:
    def test_rates_grow_with_block_size(self):
        for spec in (SUMMIT, FRONTIER):
            km = spec.gpu_kernels
            sizes = [128, 256, 512, 1024, 2048, 4096]
            # Compare on smooth saturation only (fixed large m=n) by
            # averaging out texture with aligned dims.
            rates = [km.gemm_rate(8192, 8192, b) for b in sizes]
            assert all(b > a * 0.95 for a, b in zip(rates, rates[1:]))
            getrf = [km.getrf_rate(b) for b in sizes]
            assert getrf == sorted(getrf)

    def test_rates_never_exceed_peak(self):
        km = FRONTIER.gpu_kernels
        rng = np.random.default_rng(0)
        for _ in range(200):
            m, n, k = rng.integers(1, 20000, 3)
            assert km.gemm_rate(int(m), int(n), int(k)) <= km.gemm_peak_tflops * 1e12

    def test_optimal_b_regions(self):
        # V100 is already efficient at B=768; MI250X needs B~3072 to
        # reach a similar fraction of its own ceiling (Figs 5/6).
        v100 = SUMMIT.gpu_kernels
        mi = FRONTIER.gpu_kernels
        eff_v100_768 = v100.gemm_rate(8192, 8192, 768) / (v100.gemm_peak_tflops * 1e12)
        eff_mi_768 = mi.gemm_rate(8192, 8192, 768) / (mi.gemm_peak_tflops * 1e12)
        eff_mi_3072 = mi.gemm_rate(8192, 8192, 3072) / (mi.gemm_peak_tflops * 1e12)
        assert eff_v100_768 > 0.75
        assert eff_mi_768 < eff_v100_768 - 0.1
        assert eff_mi_3072 > 0.6
        assert eff_mi_3072 > eff_mi_768 + 0.2

    def test_lda_pathology_frontier_only(self):
        # Fig 7: LDA=122880 (divisible by 8192) is slow; 119808 is not.
        mi = FRONTIER.gpu_kernels
        slow = mi.gemm_rate(8192, 8192, 3072, lda=122880)
        fast = mi.gemm_rate(8192, 8192, 3072, lda=119808)
        assert slow < 0.7 * fast
        v100 = SUMMIT.gpu_kernels
        assert v100.gemm_rate(8192, 8192, 768, lda=122880) == pytest.approx(
            v100.gemm_rate(8192, 8192, 768, lda=119808)
        )

    def test_rocblas_rougher_than_cublas(self):
        # Finding 3: rocBLAS shows more size-dependent variation.
        def spread(km, b):
            rates = [
                km.gemm_rate(m, m, b)
                for m in range(4096, 4096 + 640, 64)
            ]
            return (max(rates) - min(rates)) / max(rates)

        assert spread(FRONTIER.gpu_kernels, 3072) > spread(SUMMIT.gpu_kernels, 768)

    def test_getrf_much_slower_than_gemm(self):
        for spec in (SUMMIT, FRONTIER):
            km = spec.gpu_kernels
            assert km.getrf_rate(2048) < 0.05 * km.gemm_rate(8192, 8192, 2048)

    def test_times_positive_and_zero_size(self):
        km = SUMMIT.gpu_kernels
        assert km.gemm_time(0, 10, 10) == 0.0
        assert km.getrf_time(0) == 0.0
        assert km.trsm_time(768, 0) == 0.0
        assert km.gemm_time(100, 100, 100) > 0
        assert km.cast_time(0) == 0.0
        assert km.cast_time(1000) > 0
        assert km.h2d_time(10**9) == pytest.approx(1e9 / (45.0 * 1e9))

    def test_gemm_time_consistent_with_rate(self):
        km = FRONTIER.gpu_kernels
        m = n = 4096
        k = 3072
        t = km.gemm_time(m, n, k)
        assert t == pytest.approx(
            fl.gemm_flops(m, n, k) / km.gemm_rate(m, n, k) + km.kernel_launch_s
        )


class TestCpuKernelModels:
    def test_gemv_time(self):
        cm = SUMMIT.cpu_kernels
        assert cm.gemv_time(1000, 1000) == pytest.approx(2e6 / 11.0e9)
        assert cm.gemv_time(0, 5) == 0.0

    def test_trsv_and_regen(self):
        cm = FRONTIER.cpu_kernels
        assert cm.trsv_time(2000) > 0
        assert cm.regen_time(10**6) == pytest.approx(1e6 / cm.regen_entries_per_s)


class TestVariability:
    def test_deterministic(self):
        a = GcdFleet(100, seed=1).multipliers
        b = GcdFleet(100, seed=1).multipliers
        np.testing.assert_array_equal(a, b)

    def test_multipliers_in_range_with_outliers(self):
        fleet = GcdFleet(1000, seed=3)
        m = fleet.multipliers
        assert m.max() <= 1.0
        assert m.min() >= 1.0 - fleet.slow_penalty - 3 * fleet.sigma
        # ~5% max variation (paper) -> some GCDs near the slow floor.
        assert m.min() < 1.0 - 0.5 * fleet.slow_penalty

    def test_slowest_and_exclude(self):
        fleet = GcdFleet(500, seed=4)
        slow = fleet.slowest(10)
        assert len(slow) == 10
        trimmed = fleet.exclude(slow)
        assert trimmed.num_gcds == 490
        assert trimmed.pipeline_multiplier() > fleet.pipeline_multiplier()

    def test_pipeline_gated_by_slowest(self):
        fleet = GcdFleet(64, seed=5)
        assert fleet.pipeline_multiplier() == pytest.approx(
            float(fleet.multipliers.min())
        )

    def test_multipliers_read_only(self):
        fleet = GcdFleet(10)
        with pytest.raises(ValueError):
            fleet.multipliers[0] = 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GcdFleet(0)
        with pytest.raises(ConfigurationError):
            GcdFleet(10, slow_fraction=1.5)
        with pytest.raises(ConfigurationError):
            GcdFleet(10).multiplier(10)


class TestWarmup:
    def test_summit_cold_first_run(self):
        wm = WarmupModel("summit")
        series = wm.series(6)
        # First run ~20% slower than the rest (Fig 12).
        assert series[0] < 0.85
        rest = [series[i] for i in range(1, 6)]
        assert max(rest) - min(rest) < 0.005
        # Warm-up mini-benchmark removes the penalty.
        assert wm.run_multiplier(0, warmed_up=True) > 0.99

    def test_frontier_early_boost_then_settle(self):
        wm = WarmupModel("frontier")
        series = wm.series(6)
        assert series[0] > 1.005 and series[1] > 1.005
        late = [series[i] for i in range(2, 6)]
        assert all(v < 1.0 for v in late)
        assert max(late) - min(late) < 0.005

    def test_style_validation(self):
        with pytest.raises(ConfigurationError):
            WarmupModel("aurora")
        with pytest.raises(ConfigurationError):
            WarmupModel("summit").run_multiplier(-1)


class TestCommCosts:
    def test_port_binding_quadruples_summit_bandwidth(self):
        # Bound: both EDR rails (2 x 12.5).  Unbound: one rail, and the
        # far socket reaches it across the SMP bus (0.5 x 12.5).
        bound = CommCosts(SUMMIT, port_binding=True)
        unbound = CommCosts(SUMMIT, port_binding=False)
        assert bound.node_nic_bw == pytest.approx(25.0e9)
        assert unbound.node_nic_bw == pytest.approx(6.25e9)

    def test_gpu_aware_removes_staging(self):
        aware = CommCosts(FRONTIER, gpu_aware=True)
        staged = CommCosts(FRONTIER, gpu_aware=False)
        nbytes = 100 * 2**20
        assert aware.staging_time(nbytes) == 0.0
        assert staged.staging_time(nbytes) > 0.0
        assert staged.inter_node_time(nbytes) > aware.inter_node_time(nbytes)

    def test_sharing_scales_time(self):
        cc = CommCosts(FRONTIER)
        nbytes = 10**8
        t1 = cc.inter_node_time(nbytes, sharing=1)
        t4 = cc.inter_node_time(nbytes, sharing=4)
        assert t4 > 3.5 * (t1 - cc.inter_latency)

    def test_intra_faster_than_inter(self):
        cc = CommCosts(SUMMIT)
        nbytes = 2**24
        assert cc.intra_node_time(nbytes) < cc.inter_node_time(nbytes)

    def test_negative_bytes_rejected(self):
        cc = CommCosts(SUMMIT)
        with pytest.raises(ConfigurationError):
            cc.inter_node_time(-1)
        with pytest.raises(ConfigurationError):
            cc.intra_node_time(-1)

    def test_describe(self):
        d = CommCosts(FRONTIER).describe()
        assert d["machine"] == "frontier"
        # Table I: 25+25 GB/s effective node NIC bandwidth on Frontier.
        assert d["node_nic_bw_gbs"] == pytest.approx(25.0)


class TestTopologyHops:
    def test_same_node_zero_hops(self):
        assert SUMMIT.node.network.hops(5, 5) == 0

    def test_fat_tree_leaf_locality(self):
        net = SUMMIT.node.network
        assert net.topology == "fat-tree"
        assert net.hops(0, 1) == 2       # same leaf switch
        assert net.hops(0, 1000) == 6    # across the tree

    def test_dragonfly_group_locality(self):
        net = FRONTIER.node.network
        assert net.topology == "dragonfly"
        assert net.hops(0, 100) == 2     # same group (128 nodes)
        assert net.hops(0, 5000) == 5    # across groups

    def test_latency_scales_with_hops(self):
        net = SUMMIT.node.network
        near = net.latency_between(0, 1)
        far = net.latency_between(0, 1000)
        assert far > near
        assert near == pytest.approx(net.inter_node_latency_s)

    def test_commcosts_hop_latency(self):
        cc = CommCosts(FRONTIER)
        assert cc.latency_between(0, 5000) > cc.latency_between(0, 1)
        staged = CommCosts(FRONTIER, gpu_aware=False)
        assert staged.latency_between(0, 1) > cc.latency_between(0, 1)
