"""Tests for the roofline analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT
from repro.model.roofline import (
    machine_balance,
    memory_roofline,
    min_local_size_for_compute_bound,
    network_roofline,
)


class TestMemoryRoofline:
    def test_gemm_compute_bound_at_paper_blocks(self):
        for machine, b, nl in ((SUMMIT, 768, 61440), (FRONTIER, 3072, 119808)):
            points = {p.name: p for p in memory_roofline(machine, b, nl)}
            assert points["gemm"].bound == "compute"
            # GEMM AI ~ B/4 for m >> B.
            assert points["gemm"].arithmetic_intensity == pytest.approx(
                b / 4, rel=0.05
            )
            assert points["cast"].bound == "memory"

    def test_small_blocks_push_gemm_toward_memory_bound(self):
        big = {p.name: p for p in memory_roofline(FRONTIER, 3072, 119808)}
        small = {p.name: p for p in memory_roofline(FRONTIER, 128, 119808)}
        assert small["gemm"].arithmetic_intensity < \
            big["gemm"].arithmetic_intensity
        # At B = 128, AI ~ 32 flops/byte < Frontier's ~93 balance: the
        # quantitative floor under "B must be large enough".
        assert small["gemm"].bound == "memory"

    def test_balance_points(self):
        assert machine_balance(SUMMIT) == pytest.approx(125e12 / 900e9)
        assert machine_balance(FRONTIER) == pytest.approx(149e12 / 1600e9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            memory_roofline(SUMMIT, 0, 100)
        with pytest.raises(ConfigurationError):
            network_roofline(SUMMIT, 1024, 512)


class TestNetworkRoofline:
    def test_paper_local_sizes_sit_above_the_knee(self):
        # The headline insight: both papers' N_L choices are just above
        # the smallest N_L at which the iteration stops being
        # network-bound — the surface-to-volume sweet spot.
        assert min_local_size_for_compute_bound(SUMMIT) <= 61440
        assert min_local_size_for_compute_bound(FRONTIER) <= 119808
        # ...and not by much (within ~2x): memory capacity, not slack,
        # set the ceiling.
        assert min_local_size_for_compute_bound(SUMMIT) > 61440 / 2
        assert min_local_size_for_compute_bound(FRONTIER) > 119808 / 2

    def test_iteration_compute_bound_at_paper_config(self):
        for machine, b, nl in ((SUMMIT, 768, 61440), (FRONTIER, 3072, 119808)):
            p = network_roofline(machine, b, nl)
            assert p.bound == "compute"
            assert p.arithmetic_intensity == pytest.approx(nl / 2)

    def test_small_local_problem_network_bound(self):
        p = network_roofline(FRONTIER, 3072, 12288)
        assert p.bound == "network"
        assert p.attainable_tflops < FRONTIER.node.gpu.fp16_tflops

    def test_port_binding_moves_the_knee(self):
        bound = min_local_size_for_compute_bound(SUMMIT, port_binding=True)
        unbound = min_local_size_for_compute_bound(SUMMIT, port_binding=False)
        assert unbound > bound  # worse network -> larger N_L needed
