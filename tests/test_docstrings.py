"""Meta-test: every public item in the library carries a docstring.

Documentation is a deliverable; this test keeps it from rotting.
Private names (leading underscore), dataclass-generated members and
re-exports are exempt.
"""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _walk_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_function_and_class_documented():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if not inspect.getdoc(meth):
                        missing.append(
                            f"{module.__name__}.{name}.{meth_name}"
                        )
    assert not missing, (
        f"{len(missing)} public items lack docstrings:\n"
        + "\n".join(sorted(missing)[:40])
    )
