"""Tests for the on-the-fly HPL-AI matrix (repro.lcg.matrix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.lcg.matrix import FP16_SAFE_N, HplAiMatrix


@pytest.fixture
def mat64():
    return HplAiMatrix(n=64, seed=2022)


class TestEntryConsistency:
    def test_entry_matches_block(self, mat64):
        dense = mat64.dense()
        for i, j in [(0, 0), (5, 7), (63, 0), (31, 31), (12, 60)]:
            assert mat64.entry(i, j) == dense[i, j]

    def test_block_matches_dense_slices(self, mat64):
        dense = mat64.dense()
        blk = mat64.block(8, 24, 40, 64)
        np.testing.assert_array_equal(blk, dense[8:24, 40:64])

    def test_rows_cols_helpers(self, mat64):
        dense = mat64.dense()
        np.testing.assert_array_equal(mat64.rows(3, 9), dense[3:9, :])
        np.testing.assert_array_equal(mat64.cols(10, 12), dense[:, 10:12])

    def test_diagonal_helper(self, mat64):
        dense = mat64.dense()
        np.testing.assert_array_equal(mat64.diagonal(), np.diag(dense))
        np.testing.assert_array_equal(mat64.diagonal(5, 20), np.diag(dense)[5:20])

    @given(st.integers(2, 40), st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_blocks_tile_consistently(self, n, seed):
        # Regenerating disjoint blocks must agree with one big block —
        # this is the property the distributed fill relies on.
        m = HplAiMatrix(n=n, seed=seed)
        full = m.dense()
        h = n // 2
        top = m.block(0, h, 0, n)
        bottom = m.block(h, n, 0, n)
        np.testing.assert_array_equal(np.vstack([top, bottom]), full)

    def test_same_seed_same_matrix(self):
        a = HplAiMatrix(17, seed=5).dense()
        b = HplAiMatrix(17, seed=5).dense()
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_matrix(self):
        a = HplAiMatrix(17, seed=5).dense()
        b = HplAiMatrix(17, seed=6).dense()
        assert not np.array_equal(a, b)


class TestConditioning:
    def test_strict_diagonal_dominance(self):
        m = HplAiMatrix(n=200, seed=1)
        dense = m.dense()
        offdiag_sums = np.sum(np.abs(dense), axis=1) - np.abs(np.diag(dense))
        margin = np.abs(np.diag(dense)) - offdiag_sums
        assert margin.min() > 0
        assert margin.min() >= m.dominance_margin() - 1e-12

    def test_dominance_margin_positive_even_for_huge_n(self):
        assert HplAiMatrix(n=20_606_976).dominance_margin() > 0.2

    def test_well_conditioned(self):
        dense = HplAiMatrix(n=128, seed=3).dense()
        assert np.linalg.cond(dense) < 50

    def test_unpivoted_lu_is_stable(self):
        # The whole point of the construction: scipy's unpivoted-equivalent
        # check via explicit elimination stays bounded.
        dense = HplAiMatrix(n=96, seed=9).dense()
        x_true = np.ones(96)
        b = dense @ x_true
        x = np.linalg.solve(dense, b)
        assert np.max(np.abs(x - x_true)) < 1e-10


class TestRhsAndLimits:
    def test_rhs_deterministic_and_in_range(self, mat64):
        b1 = mat64.rhs()
        b2 = HplAiMatrix(64, seed=2022).rhs()
        np.testing.assert_array_equal(b1, b2)
        assert b1.shape == (64,)
        assert np.all((b1 >= -0.5) & (b1 < 0.5))

    def test_rhs_independent_of_matrix_tail(self, mat64):
        # b must not overlap the matrix's LCG positions.
        dense_last = mat64.entry(63, 63)
        _ = mat64.rhs()
        assert mat64.entry(63, 63) == dense_last

    def test_fp16_safety_check(self):
        HplAiMatrix(FP16_SAFE_N).check_fp16_safe()
        with pytest.raises(ConfigurationError):
            HplAiMatrix(FP16_SAFE_N + 1).check_fp16_safe()

    def test_index_validation(self, mat64):
        with pytest.raises(ConfigurationError):
            mat64.entry(64, 0)
        with pytest.raises(ConfigurationError):
            mat64.block(0, 65, 0, 1)
        with pytest.raises(ConfigurationError):
            mat64.block(5, 3, 0, 1)

    def test_block_dtype(self, mat64):
        assert mat64.block(0, 4, 0, 4, dtype=np.float32).dtype == np.float32
