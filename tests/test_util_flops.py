"""Tests for flop accounting (repro.util.flops)."""

import pytest

from repro.util import flops as fl


class TestKernelCounts:
    def test_gemm(self):
        assert fl.gemm_flops(2, 3, 4) == 48

    def test_gemm_square(self):
        n = 100
        assert fl.gemm_flops(n, n, n) == 2 * n**3

    def test_getrf_small_exact(self):
        # n=1: no work. n=2: 1 div + 1 mul + 1 sub = 3 flops.
        assert fl.getrf_flops(1) == 0
        assert fl.getrf_flops(2) == 3

    def test_getrf_leading_order(self):
        n = 1000
        exact = fl.getrf_flops(n)
        assert abs(exact - (2 / 3) * n**3) / exact < 0.01

    def test_trsm(self):
        assert fl.trsm_flops(4, 10) == 160

    def test_trsv_matches_single_rhs_trsm(self):
        assert fl.trsv_flops(64) == fl.trsm_flops(64, 1)

    def test_gemv(self):
        assert fl.gemv_flops(10, 20) == 400


class TestBenchmarkCounts:
    def test_hpl_ai_flops_formula(self):
        n = 300
        assert fl.hpl_ai_flops(n) == (2 * n**3) // 3 + (3 * n**2) // 2

    def test_hpl_ai_exceeds_lu(self):
        assert fl.hpl_ai_flops(1000) > fl.lu_flops(1000)

    def test_per_gcd_gflops_summit_headline(self):
        # Sanity-check the paper's headline: 1.411 EFLOPS on 26244 GCDs.
        n = 9_953_280  # N_L = 61440 x P_r = 162
        total_flops = fl.hpl_ai_flops(n)
        runtime = total_flops / 1.411e18
        rate = fl.per_gcd_gflops(n, 162 * 162, runtime)
        assert rate == pytest.approx(1.411e18 / (162 * 162) / 1e9, rel=1e-9)

    def test_per_gcd_gflops_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fl.per_gcd_gflops(100, 4, 0.0)
        with pytest.raises(ValueError):
            fl.per_gcd_gflops(100, 0, 1.0)
