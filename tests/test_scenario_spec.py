"""Tests for the declarative scenario DSL and its JSON round-trip."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    SCENARIO_SCHEMA,
    ContentionWindow,
    GlobalSpeed,
    Limplock,
    LinkJitter,
    RankCrash,
    RateMultipliers,
    Scenario,
    SlowGcds,
    SlowRank,
    ThermalThrottle,
    Warmup,
    injection_from_dict,
)


def _kitchen_sink() -> Scenario:
    """One scenario exercising every injection kind."""
    return Scenario(
        name="kitchen-sink",
        description="every kind once",
        injections=(
            SlowGcds(seed=7, sigma=0.01, slow_fraction=0.05,
                     slow_penalty=0.04),
            SlowRank(rank=2, factor=1.5),
            Limplock(rank=3, factor=4.0, onset_frac=0.25),
            RankCrash(rank=1, at_s=0.5, restart_delay_s=0.1, regen_s=0.05),
            LinkJitter(amplitude_s=2e-5, seed=11),
            ContentionWindow(t0_s=0.1, t1_s=0.3, bw_factor=2.5),
            ThermalThrottle(floor=0.9, tau_s=5.0, onset_frac=0.5),
            Warmup(style="summit", run_index=0),
            GlobalSpeed(factor=0.95),
            RateMultipliers(values=(1.0, 0.9, 1.0, 1.0)),
        ),
    )


class TestRoundTrip:
    def test_json_round_trip_lossless(self):
        sc = _kitchen_sink()
        assert Scenario.from_json(sc.to_json()) == sc

    def test_dict_round_trip_lossless(self):
        sc = _kitchen_sink()
        assert Scenario.from_dict(sc.to_dict()) == sc

    def test_document_carries_schema_tag(self):
        doc = _kitchen_sink().to_dict()
        assert doc["schema"] == SCENARIO_SCHEMA
        assert len(doc["injections"]) == 10
        assert all("kind" in inj for inj in doc["injections"])

    def test_save_load_file(self, tmp_path):
        sc = _kitchen_sink()
        path = tmp_path / "sc.json"
        sc.save(path)
        assert Scenario.load(path) == sc
        # the on-disk document is strict, indented JSON
        doc = json.loads(path.read_text())
        assert doc["name"] == "kitchen-sink"

    def test_shipped_examples_parse(self):
        from pathlib import Path

        folder = Path(__file__).parent.parent / "examples" / "scenarios"
        files = sorted(folder.glob("*.json"))
        assert len(files) >= 3
        for f in files:
            sc = Scenario.load(f)
            assert sc.injections
            assert Scenario.from_json(sc.to_json()) == sc


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown injection kind"):
            injection_from_dict({"kind": "meteor_strike"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown field"):
            injection_from_dict({"kind": "slow_rank", "rank": 0, "speed": 2})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="unsupported"):
            Scenario.from_dict({"schema": "repro.scenario/v99",
                                "injections": []})

    def test_bad_json_text_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            Scenario.from_json("{nope")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            Scenario.load(tmp_path / "absent.json")

    def test_factor_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            SlowRank(rank=0, factor=0.0).validate()

    def test_negative_rank_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            SlowRank(rank=-1).validate()

    def test_scenario_constructor_validates_injections(self):
        with pytest.raises(ConfigurationError, match="positive"):
            Scenario(injections=(SlowRank(rank=0, factor=-1.0),))

    def test_time_pair_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            Limplock(rank=0, onset_s=1.0, onset_frac=0.5).validate()

    def test_frac_bounds(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            Limplock(rank=0, onset_frac=1.5).validate()

    def test_crash_requires_a_time(self):
        with pytest.raises(ConfigurationError, match="required"):
            RankCrash(rank=0).validate()

    def test_contention_window_ordering(self):
        with pytest.raises(ConfigurationError, match="t1 > t0"):
            ContentionWindow(t0_s=0.5, t1_s=0.2, bw_factor=2.0).validate()

    def test_contention_must_slow_not_speed(self):
        with pytest.raises(ConfigurationError, match="bw_factor"):
            ContentionWindow(t0_s=0.0, t1_s=1.0, bw_factor=0.5).validate()

    def test_rate_multipliers_positivity(self):
        with pytest.raises(ConfigurationError, match="positive"):
            RateMultipliers(values=(1.0, 0.0)).validate()

    def test_rank_bounds_checked_against_world(self):
        sc = Scenario(injections=(SlowRank(rank=7, factor=2.0),))
        with pytest.raises(ConfigurationError, match="outside"):
            sc.validate_for(4)

    def test_rate_multiplier_shape_checked_against_world(self):
        sc = Scenario(injections=(RateMultipliers(values=(1.0, 1.0)),))
        with pytest.raises(ConfigurationError, match="2 entries"):
            sc.validate_for(4)

    def test_warmup_style_checked(self):
        with pytest.raises(ConfigurationError, match="style"):
            Warmup(style="aurora").validate()


class TestSugarAndIntrospection:
    def test_single_slow_rank_sugar(self):
        sc = Scenario.single_slow_rank(3, 2.0)
        assert len(sc.injections) == 1
        inj = sc.injections[0]
        assert isinstance(inj, SlowRank)
        assert inj.rank == 3 and inj.factor == 2.0

    def test_from_legacy_builds_adapter_injections(self):
        sc = Scenario.from_legacy(rate_multipliers=[1.0, 0.5],
                                  global_speed=0.8)
        kinds = sorted(i.kind for i in sc.injections)
        assert kinds == ["global_speed", "rate_multipliers"]

    def test_from_legacy_empty_is_clean(self):
        assert Scenario.from_legacy().injections == ()

    def test_from_legacy_rejects_nonpositive_rates(self):
        with pytest.raises(ConfigurationError, match="positive"):
            Scenario.from_legacy(rate_multipliers=[1.0, -0.5])

    def test_degraded_ranks(self):
        sc = _kitchen_sink()
        assert sc.degraded_ranks == [1, 2, 3]

    def test_of_kind(self):
        sc = _kitchen_sink()
        assert len(sc.of_kind("limplock")) == 1
        assert sc.of_kind("nonexistent") == []

    def test_describe_names_faults(self):
        text = _kitchen_sink().describe()
        assert "limplock rank 3" in text
        assert "crash rank 1" in text


class TestScenarioChecker:
    def test_valid_document_clean(self):
        from repro.analyze.checkers.scenario_schema import check_scenario

        assert check_scenario(_kitchen_sink().to_dict()) == []

    def test_problems_reported_per_injection(self):
        from repro.analyze.checkers.scenario_schema import check_scenario

        doc = {
            "schema": SCENARIO_SCHEMA,
            "injections": [
                {"kind": "bogus"},
                {"kind": "slow_rank", "rank": 0, "factor": -1.0},
            ],
        }
        problems = check_scenario(doc)
        assert len(problems) == 2
        assert "injections[0]" in problems[0]
        assert "injections[1]" in problems[1]

    def test_empty_injections_flagged(self):
        from repro.analyze.checkers.scenario_schema import check_scenario

        problems = check_scenario({"schema": SCENARIO_SCHEMA,
                                   "injections": []})
        assert any("does nothing" in p for p in problems)

    def test_checker_registered_in_suite(self):
        from repro.analyze.checkers import all_checkers

        ids = {c.id for c in all_checkers()}
        assert "scenario-schema" in ids

    def test_lint_cli_validates_scenario_file(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.json"
        good.write_text(_kitchen_sink().to_json())
        assert main(["lint", str(good), "--select", "scenario-schema",
                     "--no-baseline"]) == 0

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "schema": SCENARIO_SCHEMA,
            "injections": [{"kind": "bogus"}],
        }))
        assert main(["lint", str(bad), "--select", "scenario-schema",
                     "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "scenario-schema" in out

    def test_trace_schema_skips_scenario_documents(self, tmp_path):
        """A scenario file must not be flagged as a malformed trace."""
        from repro.cli import main

        path = tmp_path / "sc.json"
        path.write_text(_kitchen_sink().to_json())
        assert main(["lint", str(path), "--select", "trace-schema",
                     "--no-baseline"]) == 0
