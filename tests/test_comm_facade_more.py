"""Cross-mode communication contracts: in-band vs routed delivery."""

import numpy as np
import pytest

from repro.comm import BCAST_ALGORITHMS, RankComm
from repro.errors import CommunicationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.simulate import Engine


@pytest.mark.parametrize("algo", sorted(BCAST_ALGORITHMS))
def test_inband_and_routed_deliver_identical_payloads(algo):
    """The two progression modes are timing models, not data models:
    every member must receive byte-identical payloads from both."""
    world, root = 7, 2
    payload = np.arange(48, dtype=np.float64).reshape(12, 4)

    def inband(rank):
        comm = RankComm(rank, FRONTIER.mpi, bcast_algorithm=algo)
        data = yield from comm.bcast(
            payload.copy() if rank == root else None, root,
            list(range(world)), tag=1,
        )
        return np.asarray(data)

    def routed(rank):
        comm = RankComm(rank, FRONTIER.mpi, bcast_algorithm=algo,
                        node_of=lambda r: r // 4)
        if rank == root:
            yield from comm.bcast_start(payload.copy(), root,
                                        list(range(world)), tag=1)
            return payload.copy()
        return np.asarray((yield from comm.bcast_finish(root, tag=1)))

    res_a = Engine(world, CommCosts(FRONTIER)).run(inband)
    res_b = Engine(world, CommCosts(FRONTIER),
                   node_of_rank=lambda r: r // 4).run(routed)
    for rank in range(world):
        np.testing.assert_array_equal(res_a.returns[rank], payload)
        np.testing.assert_array_equal(res_b.returns[rank], payload)


def test_bcast_algorithm_override_per_call():
    """A RankComm configured for rings can still issue a tree bcast."""
    def prog(rank):
        comm = RankComm(rank, SUMMIT.mpi, bcast_algorithm="ring2m")
        v = yield from comm.bcast(
            np.float64(7.0) if rank == 0 else None, 0, [0, 1, 2],
            tag=1, algorithm="bcast",
        )
        return float(v)

    res = Engine(3, CommCosts(SUMMIT)).run(prog)
    assert res.returns == [7.0, 7.0, 7.0]


def test_tag_namespaces_do_not_cross():
    """Two concurrent broadcasts with different tags between overlapping
    members must not steal each other's messages."""
    def prog(rank):
        comm = RankComm(rank, SUMMIT.mpi, bcast_algorithm="ring1")
        members = [0, 1, 2, 3]
        a = yield from comm.bcast(
            np.full(8, 1.0) if rank == 0 else None, 0, members, tag=5
        )
        b = yield from comm.bcast(
            np.full(8, 2.0) if rank == 0 else None, 0, members, tag=6
        )
        return (float(np.asarray(a)[0]), float(np.asarray(b)[0]))

    res = Engine(4, CommCosts(SUMMIT)).run(prog)
    assert all(r == (1.0, 2.0) for r in res.returns)


def test_routed_bcast_rejects_unknown_algorithm():
    def prog(rank):
        comm = RankComm(rank, SUMMIT.mpi)
        yield from comm.bcast_start(1.0, 0, [0, 1], tag=0,
                                    algorithm="gossip")

    with pytest.raises(CommunicationError):
        Engine(2, CommCosts(SUMMIT)).run(prog)


def test_allreduce_algorithm_unknown_rejected():
    def prog(rank):
        comm = RankComm(rank, SUMMIT.mpi)
        yield from comm.allreduce(np.ones(4), [0, 1], algorithm="butterfly")

    with pytest.raises(CommunicationError):
        Engine(2, CommCosts(SUMMIT)).run(prog)


def test_facade_now_matches_engine_clock():
    def prog(rank):
        comm = RankComm(rank, SUMMIT.mpi)
        from repro.simulate import Compute

        yield Compute("w", 0.25)
        return (yield from comm.now())

    res = Engine(1, CommCosts(SUMMIT)).run(prog)
    assert res.returns[0] == pytest.approx(0.25)
