"""``collective-matching`` checker tests: one-sided wire protocols."""

from repro.analyze.checkers.collectives import CollectiveMatchingChecker
from repro.analyze.findings import Severity
from repro.analyze.framework import SourceModule


def _lint(text, path="snippet.py"):
    module = SourceModule.parse(path, text)
    return list(CollectiveMatchingChecker().check(module))


class TestBcastPairing:
    def test_one_sided_bcast_start_is_an_error(self):
        findings = _lint(
            "def prog(comm, k):\n"
            "    yield from comm.bcast_start(0, None, 8, tag=8 * k + 2)\n"
        )
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "bcast_start" in findings[0].message
        assert "no matching comm.bcast_finish" in findings[0].message

    def test_one_sided_bcast_finish_is_an_error(self):
        findings = _lint(
            "def prog(comm, k):\n"
            "    panel = yield from comm.bcast_finish(0, tag=8 * k + 2)\n"
        )
        assert len(findings) == 1
        assert "no matching comm.bcast_start" in findings[0].message

    def test_matched_pair_is_clean(self):
        findings = _lint(
            "def root(comm, k, payload):\n"
            "    yield from comm.bcast_start(0, payload, 8, tag=8 * k + 2)\n"
            "def member(comm, k):\n"
            "    panel = yield from comm.bcast_finish(0, tag=8 * k + 2)\n"
        )
        assert findings == []

    def test_different_tag_spelling_is_flagged(self):
        # Same value, different expression: the checker demands the
        # protocol be spelled identically on both sides.
        findings = _lint(
            "def root(comm, k, payload):\n"
            "    yield from comm.bcast_start(0, payload, 8, tag=8 * k + 2)\n"
            "def member(comm, k):\n"
            "    panel = yield from comm.bcast_finish(0, tag=2 + 8 * k)\n"
        )
        assert len(findings) == 2  # each side reports the other missing


class TestSendRecvPairing:
    def test_unmatched_send_tag_is_a_warning(self):
        findings = _lint(
            "def prog(comm, peer, x, k):\n"
            "    yield from comm.send(peer, x, tag=_tag(k, 1))\n"
            "    y = yield from comm.recv(peer, tag=_tag(k, 2))\n"
        )
        assert len(findings) == 2
        assert all(f.severity == Severity.WARNING for f in findings)

    def test_matched_send_recv_is_clean(self):
        findings = _lint(
            "def prog(comm, peer, x, k):\n"
            "    yield from comm.send(peer, x, tag=_tag(k, 1))\n"
            "    y = yield from comm.recv(peer, tag=_tag(k, 1))\n"
        )
        assert findings == []

    def test_bare_name_tags_are_skipped(self):
        # A shared `tag` variable is trivially symmetric where bound.
        findings = _lint(
            "def prog(comm, peer, x, tag):\n"
            "    yield from comm.send(peer, x, tag)\n"
        )
        assert findings == []

    def test_positional_tags_are_recorded(self):
        findings = _lint(
            "def prog(comm, peer, x, k):\n"
            "    yield from comm.send(peer, x, 8 * k + 1)\n"
            "    y = yield from comm.recv(peer, 8 * k + 1)\n"
        )
        assert findings == []


class TestConditionalCollectives:
    def test_rank_conditional_allreduce_warns(self):
        findings = _lint(
            "def prog(comm, ex):\n"
            "    if ex.rank == 0:\n"
            "        total = yield from comm.allreduce(1.0)\n"
        )
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "every member" in findings[0].message

    def test_cfg_conditional_allreduce_is_uniform(self):
        # cfg is shared by construction: every rank takes the branch.
        findings = _lint(
            "def prog(comm, cfg):\n"
            "    if cfg.check_residual:\n"
            "        total = yield from comm.allreduce(1.0)\n"
        )
        assert findings == []

    def test_unconditional_barrier_is_clean(self):
        findings = _lint(
            "def prog(comm):\n"
            "    yield from comm.barrier()\n"
        )
        assert findings == []

    def test_rank_conditional_barrier_warns(self):
        findings = _lint(
            "def prog(comm, rank):\n"
            "    if rank % 2 == 0:\n"
            "        yield from comm.barrier()\n"
        )
        assert len(findings) == 1

    def test_rank_conditional_raw_barrier_event_warns(self):
        findings = _lint(
            "def prog(ex, engine):\n"
            "    if ex.p_ir == 0:\n"
            "        yield Barrier(name='phase')\n"
        )
        assert len(findings) == 1
        assert "Barrier event" in findings[0].message


class TestReceiverHeuristic:
    def test_non_comm_receiver_is_ignored(self):
        findings = _lint(
            "def prog(sock, peer, x):\n"
            "    sock.send(peer, x, tag=9)\n"
        )
        assert findings == []

    def test_named_comm_variants_match(self):
        # e.g. `row_comm`, `subcomm` — anything ending in `comm`.
        findings = _lint(
            "def prog(row_comm, peer, x, k):\n"
            "    yield from row_comm.send(peer, x, tag=16 * k)\n"
        )
        assert len(findings) == 1


class TestReduceSymmetry:
    def test_rank_conditional_reduce_warns(self):
        findings = _lint(
            "def prog(comm, members):\n"
            "    if comm.rank == members[0]:\n"
            "        y = yield from comm.reduce(1.0, members[0], members)\n"
        )
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "comm.reduce" in findings[0].message

    def test_membership_guard_is_exempt(self):
        # The refine.py idiom: the guard selects exactly the subgroup
        # the reduce runs over.
        findings = _lint(
            "def prog(ex, comm, grid, contrib, owner, jr):\n"
            "    if ex.p_ir == jr:\n"
            "        y = yield from comm.reduce("
            "contrib, owner, grid.row_members(jr))\n"
        )
        assert findings == []


class TestMemberSymmetry:
    def test_comprehension_filtered_by_rank_is_an_error(self):
        findings = _lint(
            "def prog(comm, members, rank):\n"
            "    yield from comm.barrier("
            "tuple(r for r in members if r != rank))\n"
        )
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "different member lists" in findings[0].message

    def test_subscript_by_rank_is_an_error(self):
        findings = _lint(
            "def prog(comm, members, rank):\n"
            "    y = yield from comm.allreduce(1.0, members[rank:])\n"
        )
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR

    def test_literal_element_rank_is_an_error(self):
        findings = _lint(
            "def prog(comm, rank):\n"
            "    yield from comm.barrier((0, rank))\n"
        )
        assert len(findings) == 1
        assert "rank" in findings[0].message

    def test_raw_barrier_slice_is_an_error(self):
        findings = _lint(
            "def prog(members, rank):\n"
            "    yield Barrier(members[rank:])\n"
        )
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR

    def test_selector_argument_is_uniform(self):
        # All members of row p_ir share the coordinate: symmetric.
        findings = _lint(
            "def prog(ex, comm, grid, contrib, owner):\n"
            "    if ex.p_ir == owner:\n"
            "        y = yield from comm.reduce("
            "contrib, owner, grid.row_members(ex.p_ir))\n"
        )
        assert findings == []

    def test_shared_variable_members_is_clean(self):
        findings = _lint(
            "def prog(comm, members):\n"
            "    yield from comm.barrier(members)\n"
        )
        assert findings == []


class TestRankConditionalBarrierFixture:
    """The shipped fixture module must keep producing its findings."""

    def _fixture_findings(self):
        from pathlib import Path

        path = (
            Path(__file__).parent / "fixtures" / "analyze"
            / "rank_conditional_barrier.py"
        )
        module = SourceModule.parse(str(path), path.read_text())
        return list(CollectiveMatchingChecker().check(module))

    def test_fixture_defects_are_flagged(self):
        findings = self._fixture_findings()
        messages = "\n".join(f.message for f in findings)
        assert "comm.barrier under a condition on `rank`" in messages
        assert "comm.reduce under a condition" in messages
        assert "different member lists" in messages
        assert "Barrier members `members[rank:]`" in messages
        assert len(findings) == 4

    def test_ok_variants_are_not_flagged(self):
        findings = self._fixture_findings()
        flagged_lines = {f.line for f in findings}
        import ast
        from pathlib import Path

        path = (
            Path(__file__).parent / "fixtures" / "analyze"
            / "rank_conditional_barrier.py"
        )
        tree = ast.parse(path.read_text())
        ok_spans = [
            range(node.lineno, node.end_lineno + 1)
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
            and node.name.endswith("_ok")
        ]
        assert ok_spans, "fixture lost its _ok control functions"
        for span in ok_spans:
            assert not (flagged_lines & set(span))
