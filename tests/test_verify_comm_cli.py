"""``repro verify-comm`` CLI: proof matrix, fixtures, exit codes."""

import json

from repro.cli import main


class TestProofMatrix:
    def test_small_matrix_proves_and_reports(self, capsys, tmp_path):
        out = tmp_path / "verify.json"
        rc = main([
            "verify-comm", "--grids", "2x2", "--bcasts", "bcast,ring1",
            "--modes", "routed", "--programs", "hplai",
            "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "proved  hplai/2x2/bcast/routed" in text
        assert "all proofs held" in text
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        # 2 bcast cases + ring/doubling allreduce + gmres variants
        assert len(doc["cases"]) == 5
        assert all(c["ok"] for c in doc["cases"])

    def test_json_format(self, capsys):
        rc = main([
            "verify-comm", "--grids", "1x2", "--bcasts", "bcast",
            "--modes", "inband", "--programs", "hplai", "--format", "json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["cases"][0]["stats"]["matches"] >= 0

    def test_empty_matrix_is_a_usage_error(self, capsys):
        rc = main([
            "verify-comm", "--grids", "2x2", "--programs", "nosuch",
        ])
        assert rc == 2


class TestFixtureMode:
    def test_laswp_aliasing_detected_with_counterexample(self, capsys):
        # detection is the expected outcome: exit 0, race printed
        rc = main(["verify-comm", "--fixture", "laswp-aliasing"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "defect detected as expected" in text
        assert "tag aliasing" in text
        assert "counterexample schedule (aliased wire channel):" in text

    def test_all_fixtures_detected(self, capsys):
        assert main(["verify-comm", "--fixture", "all"]) == 0
        text = capsys.readouterr().out
        for name in ("laswp-aliasing", "deadlock", "race",
                     "collective-mismatch"):
            assert f"fixture {name}: defect detected" in text

    def test_unknown_fixture_is_a_usage_error(self, capsys):
        assert main(["verify-comm", "--fixture", "nosuch"]) == 2
        assert "unknown fixture" in capsys.readouterr().err

    def test_missed_detection_fails(self, capsys, monkeypatch):
        # a fixture the verifier proves clean is a verifier regression
        import repro.analyze.schedule.fixtures as fixtures
        from repro.analyze.schedule.model import CommOp, Schedule

        def clean():
            sched = Schedule(num_ranks=2, meta={"program": "clean"},
                             ops=[[], []])
            sched.ops[0] = [CommOp(rank=0, seq=0, kind="send", peer=1,
                                   wire_tag=1024, nbytes=8)]
            sched.ops[1] = [CommOp(rank=1, seq=0, kind="recv", peer=0,
                                   wire_tag=1024)]
            return sched

        monkeypatch.setitem(fixtures.FIXTURES, "clean", clean)
        assert main(["verify-comm", "--fixture", "clean"]) == 1
        assert "verifier regressed" in capsys.readouterr().out


class TestTraceMode:
    def test_missing_trace_is_a_usage_error(self, tmp_path, capsys):
        rc = main(["verify-comm", "--trace", str(tmp_path / "nope.json")])
        assert rc == 2
