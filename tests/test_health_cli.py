"""CLI coverage: repro health / repro dashboard / metrics --format."""

import json

import pytest

from repro.cli import main

RUN_ARGS = ["--machine", "frontier", "-p", "2", "--nl", "256", "-b", "64"]


class TestHealthCommand:
    def test_slow_rank_flagged_json(self, tmp_path, capsys):
        out = tmp_path / "health.json"
        rc = main(["health", *RUN_ARGS, "--slow-rank", "1",
                   "--json", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.obs.health/v1"
        assert 1 in doc["degraded_ranks"]
        assert any(
            f["kind"] == "straggler_drift" for f in doc["findings"]
        )

    def test_clean_run_text_and_exit_zero(self, capsys):
        rc = main(["health", *RUN_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "health report" in out
        assert "none — run looks healthy" in out

    def test_fail_on_findings_gate(self):
        assert main(["health", *RUN_ARGS, "--fail-on-findings"]) == 0
        assert main(["health", *RUN_ARGS, "--slow-rank", "1",
                     "--fail-on-findings"]) == 1

    def test_slow_rank_out_of_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["health", *RUN_ARGS, "--slow-rank", "99"])

    def test_lint_accepts_generated_report(self, tmp_path, capsys):
        out = tmp_path / "health.json"
        main(["health", *RUN_ARGS, "--slow-rank", "1",
              "--json", "--out", str(out)])
        rc = main(["lint", str(out), "--select", "health-report"])
        assert rc == 0


class TestDashboardCommand:
    def test_simulated_dashboard_is_self_contained(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        rc = main(["dashboard", *RUN_ARGS, "--slow-rank", "1",
                   "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert "<!DOCTYPE html>" in html
        assert "straggler_drift" in html
        for marker in ("http://", "https://", "<script src"):
            assert marker not in html

    def test_dashboard_from_exported_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        health = tmp_path / "health.json"
        assert main(["trace", *RUN_ARGS, "--out", str(trace)]) == 0
        assert main(["health", *RUN_ARGS, "--json",
                     "--out", str(health)]) == 0
        out = tmp_path / "dash.html"
        rc = main(["dashboard", "--trace", str(trace),
                   "--health", str(health), "--out", str(out)])
        assert rc == 0
        assert "Per-rank timeline" in out.read_text()


class TestMetricsFormat:
    def test_prometheus_format_has_quantiles(self, capsys):
        rc = main(["metrics", *RUN_ARGS, "--format", "prometheus"])
        assert rc == 0
        out = capsys.readouterr().out
        assert 'quantile="0.5"' in out
        assert 'quantile="0.99"' in out
        assert "# TYPE" in out

    def test_prom_alias_still_works(self, capsys):
        rc = main(["metrics", *RUN_ARGS, "--prom"])
        assert rc == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_table_is_default(self, capsys):
        rc = main(["metrics", *RUN_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metric" in out
        assert "# TYPE" not in out
