"""Closed-loop tests: a scenario injects a fault, the health layer
must diagnose it — right detector, right rank, plausible onset — and
the watchdog must not cry wolf over a survivable crash/restart."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.machine import FRONTIER
from repro.obs import Observability
from repro.obs.health import HealthMonitor
from repro.scenario import (
    Limplock,
    LinkJitter,
    RankCrash,
    Scenario,
    compile_scenario,
)

EXAMPLES = Path(__file__).parent.parent / "examples" / "scenarios"

RUN_ARGS = ["--machine", "frontier", "-p", "4", "--nl", "256", "-b", "64"]


def _cfg(nl=256):
    # 4x4 grid: the limplock detector needs a fleet median to lag behind
    return BenchmarkConfig(n=nl * 4, block=64, machine=FRONTIER,
                           p_rows=4, p_cols=4)


def _monitored(cfg, scenario):
    obs = Observability(health=HealthMonitor())
    return simulate_run(cfg, scenario=scenario, obs=obs)


class TestLimplockClosedLoop:
    def test_injected_limplock_is_diagnosed(self):
        # a run long enough (nl=384) for the lag detector to build a
        # 2-step deficit after the mid-run onset
        cfg = _cfg(nl=384)
        sc = Scenario(injections=(
            Limplock(rank=5, factor=8.0, onset_frac=0.15),
        ))
        compiled = compile_scenario(sc, cfg)
        onset = 0.15 * compiled.horizon
        res = _monitored(cfg, sc)
        rep = res.health
        limp = [f for f in rep.findings if f["kind"] == "limplock"]
        assert limp, f"no limplock finding in {rep.findings}"
        # the injected rank is the first one diagnosed, at/after onset
        first = min(limp, key=lambda f: f["t_s"])
        assert first["ranks"] == [5]
        assert first["t_s"] >= onset
        assert 5 in rep.degraded_ranks

    def test_no_limplock_before_onset(self):
        cfg = _cfg(nl=384)
        sc = Scenario(injections=(
            Limplock(rank=5, factor=8.0, onset_frac=0.15),
        ))
        compiled = compile_scenario(sc, cfg)
        onset = 0.15 * compiled.horizon
        rep = _monitored(cfg, sc).health
        assert all(f["t_s"] >= onset for f in rep.findings
                   if f["kind"] == "limplock")

    def test_clean_scenario_raises_no_findings(self):
        cfg = _cfg()
        sc = Scenario(injections=(LinkJitter(amplitude_s=1e-7),))
        rep = _monitored(cfg, sc).health
        assert [f for f in rep.findings if f["kind"] == "limplock"] == []


class TestWatchdogUnderCrash:
    def test_survivable_crash_restart_does_not_trip(self):
        # A crashed-and-regenerated rank stretches the run but stays
        # far inside the watchdog's 25x analytic margin: no false stall.
        cfg = _cfg()
        sc = Scenario(injections=(
            RankCrash(rank=9, at_frac=0.45, restart_delay_s=0.002),
        ))
        res = _monitored(cfg, sc)
        assert res.health.watchdog.get("tripped") is False
        # the run completed, slower than clean
        clean = simulate_run(cfg)
        assert res.elapsed > clean.elapsed

    def test_acceptance_scenario_end_to_end(self):
        # The shipped composed scenario: limplock + crash/restart +
        # jitter in one file, one run, every layer in the loop.
        cfg = _cfg()
        sc = Scenario.load(EXAMPLES / "limplock_crash_jitter.json")
        res = _monitored(cfg, sc)
        rep = res.health
        limp_ranks = {r for f in rep.findings
                      if f["kind"] == "limplock" for r in f["ranks"]}
        assert 5 in limp_ranks
        assert rep.watchdog.get("tripped") is False


class TestScenarioCli:
    def test_run_scenario_flag_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "health.json"
        rc = main(["run", *RUN_ARGS,
                   "--scenario",
                   str(EXAMPLES / "limplock_crash_jitter.json"),
                   "--health-json", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "scenario: limplock-crash-jitter" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.obs.health/v1"
        assert doc["watchdog"]["tripped"] is False
        limp_ranks = {r for f in doc["findings"]
                      if f["kind"] == "limplock" for r in f["ranks"]}
        assert 5 in limp_ranks

    def test_model_scenario_flag(self, capsys):
        rc = main(["model", *RUN_ARGS, "--scenario",
                   str(EXAMPLES / "limplock_crash_jitter.json")])
        assert rc == 0
        assert "elapsed" in capsys.readouterr().out

    def test_health_scenario_flag(self, capsys):
        rc = main(["health", *RUN_ARGS, "--scenario",
                   str(EXAMPLES / "limplock.json")])
        assert rc == 0
        # the injected rank is implicated (on this small grid the
        # drift detector flags it before the lag detector can)
        assert "(rank [5])" in capsys.readouterr().out

    def test_health_scenario_composes_with_slow_rank_sugar(self, capsys):
        rc = main(["health", *RUN_ARGS,
                   "--scenario", str(EXAMPLES / "crash_restart.json"),
                   "--slow-rank", "1", "--slow-factor", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank(s) 1" in out or "rank 1" in out

    def test_campaign_scenario_flag(self, capsys):
        rc = main(["campaign", "--machine", "frontier", "-p", "4",
                   "--nl", "256", "-b", "64", "--runs", "2",
                   "--scenario", str(EXAMPLES / "limplock.json")])
        assert rc == 0

    def test_rank_outside_grid_exits_cleanly(self):
        # the acceptance scenario targets rank 5/9: impossible on 2x2
        with pytest.raises(SystemExit, match="scenario"):
            main(["run", "--machine", "frontier", "-p", "2",
                  "--nl", "256", "-b", "64",
                  "--scenario",
                  str(EXAMPLES / "limplock_crash_jitter.json")])

    def test_missing_scenario_file_exits_cleanly(self):
        with pytest.raises(SystemExit, match="scenario"):
            main(["run", *RUN_ARGS, "--scenario", "/nonexistent.json"])

    def test_slow_rank_sugar_still_works_without_scenario(self, capsys):
        rc = main(["health", *RUN_ARGS, "--slow-rank", "1"])
        assert rc == 0
        assert "straggler_drift" in capsys.readouterr().out


class TestCampaignScenario:
    def test_campaign_throughput_degrades_under_scenario(self):
        from repro.tools.campaign import run_campaign

        cfg = _cfg()
        sc = Scenario(injections=(Limplock(rank=5, factor=6.0),))
        clean = run_campaign(cfg, num_runs=2)
        degraded = run_campaign(cfg, num_runs=2, scenario=sc)
        assert degraded.runs[0].elapsed_s > clean.runs[0].elapsed_s * 2
