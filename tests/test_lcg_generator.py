"""Tests for the 64-bit LCG and its jump-ahead (repro.lcg.generator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.lcg.generator import (
    LCG_A,
    LCG_C,
    Lcg64,
    affine_compose,
    affine_power,
    states_at,
)

MASK = (1 << 64) - 1


class TestAffineMaps:
    def test_identity_power(self):
        assert affine_power(LCG_A, LCG_C, 0) == (1, 0)

    def test_power_one(self):
        assert affine_power(LCG_A, LCG_C, 1) == (LCG_A, LCG_C)

    def test_compose_is_application_order(self):
        # (f o g)(x) = f(g(x))
        f, g, x = (3, 5), (7, 11), 13
        a, c = affine_compose(f, g)
        assert (a * x + c) & MASK == (3 * ((7 * x + 11) & MASK) + 5) & MASK

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_power_additivity(self, m, n):
        # f^(m+n) == f^m o f^n — the algebraic heart of jump-ahead.
        fm = affine_power(LCG_A, LCG_C, m)
        fn = affine_power(LCG_A, LCG_C, n)
        fmn = affine_power(LCG_A, LCG_C, m + n)
        assert affine_compose(fm, fn) == fmn

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            affine_power(LCG_A, LCG_C, -1)


class TestLcg64:
    def test_step_matches_recurrence(self):
        gen = Lcg64(seed=12345)
        s1 = gen.next_uint64()
        assert s1 == (LCG_A * 12345 + LCG_C) & MASK

    def test_advance_equals_n_steps(self):
        a = Lcg64(seed=99)
        b = Lcg64(seed=99)
        for _ in range(137):
            a.next_uint64()
        b.advance(137)
        assert a.state == b.state
        assert a.position == b.position == 137

    def test_jumped_leaves_original_untouched(self):
        gen = Lcg64(seed=7)
        ahead = gen.jumped(1000)
        assert gen.position == 0
        assert ahead.position == 1000
        gen.advance(1000)
        assert gen.state == ahead.state

    def test_huge_jump_is_fast_and_consistent(self):
        # O(log n): a jump of 2^62 must complete instantly and agree with
        # composing two half jumps.
        gen = Lcg64(seed=1)
        half = 1 << 61
        once = Lcg64(seed=1)
        once.advance(2 * half)
        gen.advance(half)
        gen.advance(half)
        assert gen.state == once.state

    def test_uniform_range(self):
        gen = Lcg64(seed=3)
        vals = [gen.uniform() for _ in range(1000)]
        assert all(-0.5 <= v < 0.5 for v in vals)
        # Mean of uniform(-0.5, 0.5) should be near zero.
        assert abs(float(np.mean(vals))) < 0.05


class TestStatesAt:
    def test_matches_scalar_generator(self):
        gen = Lcg64(seed=4242)
        expected = [gen.next_uint64() for _ in range(20)]
        bulk = states_at(4242, np.arange(1, 21))
        assert bulk.dtype == np.uint64
        assert [int(x) for x in bulk] == expected

    def test_position_zero_returns_seed(self):
        assert int(states_at(123, np.array([0]))[0]) == 123

    def test_shape_preserved(self):
        out = states_at(5, np.arange(12).reshape(3, 4))
        assert out.shape == (3, 4)

    def test_rejects_negative_positions(self):
        with pytest.raises(ConfigurationError):
            states_at(5, np.array([-1]))

    def test_rejects_float_positions(self):
        # A float array would silently truncate in the uint64 cast.
        with pytest.raises(ConfigurationError, match="integer dtype"):
            states_at(5, np.array([0.0, 1.5]))

    def test_rejects_bool_positions(self):
        with pytest.raises(ConfigurationError, match="integer dtype"):
            states_at(5, np.array([True, False]))

    def test_accepts_any_integer_dtype(self):
        for dt in (np.int32, np.uint32, np.int64, np.uint64):
            out = states_at(5, np.arange(3, dtype=dt))
            assert int(out[0]) == 5

    @given(st.integers(0, 2**63), st.integers(0, 2**64 - 1))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_affine_power(self, pos, seed):
        a, c = affine_power(LCG_A, LCG_C, pos)
        expected = (a * seed + c) & MASK
        got = int(states_at(seed, np.array([pos], dtype=np.uint64))[0])
        assert got == expected

    def test_custom_constants(self):
        # A trivial LCG: x -> x + 1.
        out = states_at(0, np.arange(5), a=1, c=1)
        assert [int(x) for x in out] == [0, 1, 2, 3, 4]
