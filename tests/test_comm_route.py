"""Tests for route-based (hardware-progressed) broadcasts."""

import numpy as np
import pytest

from repro.comm import ROUTE_BUILDERS, RankComm
from repro.comm.route import route_ring1, route_ring1m, route_ring2m, route_tree
from repro.errors import CommunicationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.simulate import Compute, Engine, Now, PhantomArray, RouteSpec


class TestRouteSpecs:
    def test_tree_covers_all_members(self):
        for n in (1, 2, 5, 8, 13):
            spec = route_tree(0, list(range(n)))
            assert set(spec.destinations) == set(range(1, n))

    def test_tree_depth_logarithmic(self):
        spec = route_tree(0, list(range(16)))
        # Depth of member 15 (relative) must be <= log2(16).
        depth = {0: 0}
        for src, dst in spec.edges:
            depth[dst] = depth[src] + 1
        assert max(depth.values()) <= 4

    @pytest.mark.parametrize("builder", [route_ring1, route_ring1m, route_ring2m])
    def test_rings_cover_all_members(self, builder):
        for n in (2, 3, 4, 9):
            spec = builder(1, list(range(n)))
            assert set(spec.destinations) == set(range(n)) - {1}

    def test_ring2m_halves_depth(self):
        n = 18
        d1 = {0: 0}
        for src, dst in route_ring1(0, list(range(n))).edges:
            d1[dst] = d1[src] + 1
        d2 = {0: 0}
        for src, dst in route_ring2m(0, list(range(n))).edges:
            d2[dst] = d2[src] + 1
        assert max(d2.values()) <= max(d1.values()) // 2 + 1

    def test_ring1m_direct_edge_first(self):
        spec = route_ring1m(3, [3, 4, 5, 6, 7])
        assert spec.edges[0] == (3, 4)

    def test_spec_validation(self):
        with pytest.raises(CommunicationError):
            RouteSpec(root=0, edges=((1, 2),))  # src has no data
        with pytest.raises(CommunicationError):
            RouteSpec(root=0, edges=((0, 1), (0, 1)))  # duplicate delivery
        with pytest.raises(CommunicationError):
            RouteSpec(root=0, edges=((0, 1),), segments=0)

    def test_nonmember_root_rejected(self):
        with pytest.raises(CommunicationError):
            route_tree(9, [0, 1, 2])


def run_routed(algo, world, root, payload_factory, machine=SUMMIT,
               node_of=None, compute_between=0.0):
    def prog(rank):
        comm = RankComm(rank, machine.mpi, bcast_algorithm=algo,
                        node_of=node_of)
        if rank == root:
            yield from comm.bcast_start(payload_factory(), root,
                                        list(range(world)), tag=1)
            data = payload_factory()
        else:
            if compute_between:
                yield Compute("gemm", compute_between)
            data = yield from comm.bcast_finish(root, tag=1)
        t = yield Now()
        return (data, t)

    return Engine(world, CommCosts(machine), node_of_rank=node_of).run(prog)


class TestRoutedDelivery:
    @pytest.mark.parametrize("algo", sorted(ROUTE_BUILDERS))
    @pytest.mark.parametrize("world,root", [(1, 0), (2, 1), (7, 3), (12, 0)])
    def test_payload_reaches_everyone(self, algo, world, root):
        res = run_routed(algo, world, root, lambda: np.arange(24.0))
        for rank in range(world):
            np.testing.assert_array_equal(res.returns[rank][0], np.arange(24.0))

    @pytest.mark.parametrize("algo", sorted(ROUTE_BUILDERS))
    def test_phantom_delivery(self, algo):
        res = run_routed(algo, 9, 0, lambda: PhantomArray((64, 64), np.float16))
        for rank in range(1, 9):
            assert res.returns[rank][0].shape == (64, 64)

    def test_overlap_with_compute(self):
        # A routed ring broadcast in flight during compute must cost the
        # receivers (almost) nothing beyond the compute itself: the hops
        # progress in the background while ranks are busy.
        payload = PhantomArray((64 * 2**20,), np.uint8)
        # Unoverlapped delivery time for reference:
        idle = run_routed("ring1m", 16, 0, lambda: payload,
                          machine=FRONTIER, node_of=lambda r: r // 8)
        t_bcast = max(t for _d, t in idle.returns)

        compute = 2.0 * t_bcast
        res = run_routed(
            "ring1m", 16, 0, lambda: payload, machine=FRONTIER,
            node_of=lambda r: r // 8, compute_between=compute,
        )
        finish = max(t for _d, t in res.returns)
        # All transfer time hidden behind compute (plus small epsilon).
        assert finish < compute * 1.1

    def test_blocking_bcast_root_waits(self):
        payload = PhantomArray((64 * 2**20,), np.uint8)

        def timing(algo):
            def prog(rank):
                comm = RankComm(rank, FRONTIER.mpi, bcast_algorithm=algo)
                if rank == 0:
                    yield from comm.bcast_start(payload, 0, list(range(4)), tag=1)
                    return (yield Now())
                yield from comm.bcast_finish(0, tag=1)
                return (yield Now())

            return Engine(
                4, CommCosts(FRONTIER), node_of_rank=lambda r: r
            ).run(prog).returns[0]

        assert timing("bcast") > 10 * timing("ring1")  # ring root returns fast

    def test_pipelined_ring_beats_tree_at_scale_frontier(self):
        payload = PhantomArray((32 * 2**20,), np.uint8)

        def finish(algo):
            res = run_routed(algo, 32, 0, lambda: payload,
                             machine=FRONTIER, node_of=lambda r: r // 8)
            return max(t for _d, t in res.returns)

        assert finish("ring2m") < finish("bcast")
        assert finish("ring1m") < finish("bcast")

    def test_summit_library_bcast_competitive(self):
        # Paper-shaped configuration: a Summit process row of 54 ranks
        # under a 3x2 node grid moving a ~94 MB panel chunk.
        payload = PhantomArray((94 * 2**20,), np.uint8)

        def finish(algo):
            res = run_routed(algo, 54, 0, lambda: payload,
                             machine=SUMMIT, node_of=lambda r: r // 3)
            return max(t for _d, t in res.returns)

        # Finding 6: rings do NOT beat the tuned vendor broadcast on
        # Summit (they measured 2.3-11.5% slower overall with rings).
        assert finish("bcast") <= finish("ring1")
        assert finish("bcast") <= finish("ring2m")

    def test_route_from_wrong_rank_rejected(self):
        from repro.simulate import RouteSend
        from repro.comm.route import route_tree as rt

        def prog(rank):
            spec = rt(0, [0, 1])
            yield RouteSend(spec, 1.0, 0)

        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            Engine(2, CommCosts(SUMMIT)).run(prog)
