"""Calibration guards: the paper's headline numbers must stay in band.

These tests exist so that any future change to the kernel/network
constants that silently breaks the reproduction (e.g. making rings lose
on Frontier, or pushing the achievement runs out of the paper's zone)
fails loudly.  Tolerances are intentionally wide — we reproduce shapes
and ratios, not wall-clock — but one-sided findings must keep their
sign.
"""

import pytest

from repro.bench.figures import (
    FRONTIER_ACHIEVEMENT,
    SUMMIT_ACHIEVEMENT,
    fig8_comm_strategies,
)
from repro.core.config import BenchmarkConfig
from repro.core.hpl import hpl_gflops_per_gcd
from repro.machine import FRONTIER, SUMMIT
from repro.model.perf_model import estimate_run
from repro.model.tuner import best_block_size


@pytest.fixture(scope="module")
def fig8():
    return fig8_comm_strategies()


class TestHeadlines:
    def test_summit_achievement_within_10pct(self):
        res = estimate_run(BenchmarkConfig(**SUMMIT_ACHIEVEMENT))
        assert res.total_flops_per_s == pytest.approx(1.411e18, rel=0.10)

    def test_frontier_achievement_within_10pct(self):
        res = estimate_run(BenchmarkConfig(**FRONTIER_ACHIEVEMENT))
        assert res.total_flops_per_s == pytest.approx(2.387e18, rel=0.10)

    def test_full_frontier_projection_clears_5ef(self):
        cfg = BenchmarkConfig(
            machine=FRONTIER, n=119808 * 272, block=3072,
            p_rows=272, p_cols=272, q_rows=4, q_cols=2,
            bcast_algorithm="ring2m",
        )
        res = estimate_run(cfg)
        assert 5.0e18 < res.total_flops_per_s < 8.0e18

    def test_summit_mixed_precision_speedup(self):
        res = estimate_run(BenchmarkConfig(**SUMMIT_ACHIEVEMENT))
        ratio = res.gflops_per_gcd / hpl_gflops_per_gcd(SUMMIT)
        assert ratio == pytest.approx(9.5, rel=0.2)

    def test_frontier_vs_summit_scaling_expectation(self):
        # Paper: ~3x HPL-AI improvement at full scale; our achievement
        # pair gives the per-GCD and machine-size ingredients.
        s = estimate_run(BenchmarkConfig(**SUMMIT_ACHIEVEMENT))
        f = estimate_run(BenchmarkConfig(**FRONTIER_ACHIEVEMENT))
        per_gcd_ratio = f.gflops_per_gcd / s.gflops_per_gcd
        # Per-node: 8 GCDs/node at that rate vs 6 -> paper's 1.58x zone.
        per_node_ratio = per_gcd_ratio * 8 / 6
        assert 1.2 < per_node_ratio < 2.6


class TestOneSidedFindings:
    def test_optimal_blocks(self):
        assert best_block_size(
            SUMMIT, 61440, 54, [256, 512, 768, 1024, 2048],
            q_rows=3, q_cols=2, bcast_algorithm="bcast",
        ) in (768, 1024)
        assert best_block_size(
            FRONTIER, 119808, 32, [768, 1536, 2304, 3072],
            q_rows=2, q_cols=4, bcast_algorithm="ring2m",
        ) == 3072

    def test_rings_win_frontier_lose_summit(self, fig8):
        def val(machine, algo, grid):
            return next(
                r["gflops_per_gcd"] for r in fig8
                if r["machine"] == machine and r["algorithm"] == algo
                and r["grid"] == grid
            )

        assert val("frontier", "ring2m", "2x4") > val("frontier", "bcast", "2x4")
        assert val("summit", "bcast", "3x2") >= val("summit", "ring1", "3x2")

    def test_ibcast_pathological_on_summit_only(self, fig8):
        def val(machine, algo, grid):
            return next(
                r["gflops_per_gcd"] for r in fig8
                if r["machine"] == machine and r["algorithm"] == algo
                and r["grid"] == grid
            )

        # Summit IBcast collapses (Spectrum MPI); Frontier's does not.
        assert val("summit", "ibcast", "3x2") < 0.5 * val("summit", "bcast", "3x2")
        assert val("frontier", "ibcast", "2x4") > 0.5 * val("frontier", "bcast", "2x4")

    def test_findings_5_and_7_signs(self):
        from repro.bench.figures import (
            fig8_finding5_port_binding,
            fig8_finding7_gpu_aware,
        )

        assert all(r["improvement_pct"] > 0 for r in fig8_finding5_port_binding())
        assert all(r["improvement_pct"] > 0 for r in fig8_finding7_gpu_aware())

    def test_lda_pathology_sign(self):
        km = FRONTIER.gpu_kernels
        assert km.gemm_rate(80000, 80000, 3072, lda=122880) < \
            0.7 * km.gemm_rate(80000, 80000, 3072, lda=119808)
