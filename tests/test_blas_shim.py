"""Tests for the cross-platform BLAS shim (Table II)."""

import numpy as np
import pytest

from repro.blas.shim import VENDOR_NAMES, BlasShim, get_shim
from repro.errors import ConfigurationError


class TestTableII:
    def test_vendor_names_match_paper(self):
        assert VENDOR_NAMES["cuda"]["gemm"] == "cublasSgemmEx"
        assert VENDOR_NAMES["rocm"]["gemm"] == "rocblas_gemm_ex"
        assert VENDOR_NAMES["cuda"]["getrf"] == "cusolverDnSgetrf"
        assert VENDOR_NAMES["rocm"]["getrf"] == "rocsolver_sgetrf"
        # TRSV maps to openBLAS on both systems.
        assert VENDOR_NAMES["cuda"]["trsv"] == VENDOR_NAMES["rocm"]["trsv"]

    def test_vendor_name_accessor(self):
        assert get_shim("rocm").vendor_name("trsm") == "rocblas_strsm"
        with pytest.raises(ConfigurationError):
            get_shim("cuda").vendor_name("syrk")


class TestQuirks:
    def test_cuda_needs_workspace_query(self):
        assert get_shim("cuda").needs_getrf_workspace_query
        assert not get_shim("rocm").needs_getrf_workspace_query

    def test_workspace_sizes(self):
        assert get_shim("cuda").getrf_workspace_elements(768) > 0
        assert get_shim("rocm").getrf_workspace_elements(768) == 0


class TestDispatch:
    def _diag_block(self, n=16):
        rng = np.random.default_rng(0)
        a = rng.uniform(-0.5, 0.5, (n, n)).astype(np.float32)
        a += n * np.eye(n, dtype=np.float32)
        return a

    @pytest.mark.parametrize("platform", ["cuda", "rocm"])
    def test_platforms_produce_identical_numerics(self, platform):
        # The shim layer is dispatch only: both platforms must compute
        # bit-identical results (same underlying kernels).
        a = self._diag_block()
        ref = get_shim("cuda").getrf(a.copy())
        out = get_shim(platform).getrf(a.copy())
        np.testing.assert_array_equal(ref, out)

    def test_call_recording(self):
        shim = get_shim("rocm", record_calls=True)
        a = self._diag_block()
        shim.getrf(a.copy())
        b = np.ones((16, 4), dtype=np.float32)
        lower = np.tril(a, -1) + np.eye(16, dtype=np.float32)
        shim.trsm("L", "LOW", lower, b)
        names = [c.vendor_name for c in shim.calls]
        assert names == ["rocsolver_sgetrf", "rocblas_strsm"]

    def test_gemm_update_via_shim(self):
        shim = get_shim("cuda")
        c = np.zeros((4, 4), dtype=np.float32)
        a16 = np.eye(4, dtype=np.float16)
        b16 = np.full((4, 4), 2.0, dtype=np.float16)
        shim.gemm_update(c, a16, b16)
        np.testing.assert_array_equal(c, -2.0 * np.ones((4, 4)))

    def test_unknown_platform(self):
        with pytest.raises(ConfigurationError):
            get_shim("oneapi")
        with pytest.raises(ConfigurationError):
            BlasShim("metal")

    def test_trsv_via_shim(self):
        shim = get_shim("cuda", record_calls=True)
        n = 8
        rng = np.random.default_rng(1)
        lower = np.tril(rng.normal(size=(n, n)), -1) + np.eye(n)
        upper = np.triu(rng.normal(size=(n, n))) + 2 * np.eye(n)
        x = rng.normal(size=n)
        y = shim.trsv_lower_unit(lower, x)
        z = shim.trsv_upper(upper, y)
        np.testing.assert_allclose(upper @ z, y, atol=1e-10)
        assert all(c.vendor_name == "openBLAS_strsv" for c in shim.calls)
