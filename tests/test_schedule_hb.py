"""Happens-before model checking: known-bad fixtures must keep failing
with *readable counterexamples* — the output is asserted, not just the
verdict.
"""

from repro.analyze.schedule import ScheduleCase, analyze_schedule, extract_case
from repro.analyze.schedule.fixtures import (
    FIXTURES,
    collective_mismatch_schedule,
    deadlock_schedule,
    laswp_aliasing_schedule,
    race_schedule,
)


def _errors(report):
    return [f for f in report.findings if f.severity == "error"]


class TestDeadlockFixture:
    def test_cycle_is_found_and_printed(self):
        report = analyze_schedule(deadlock_schedule())
        errs = _errors(report)
        assert not report.ok
        rules = {f.rule for f in errs}
        assert "comm-deadlock" in rules
        deadlock = next(f for f in errs if f.rule == "comm-deadlock")
        text = deadlock.format()
        # the counterexample walks the actual cycle through both ranks
        assert "counterexample schedule (happens-before cycle):" in text
        assert "rank 0 #0 recv" in text
        assert "rank 1 #0 recv" in text
        assert "(happens-before)" in text


class TestRaceFixture:
    def test_aliasing_names_both_logical_messages(self):
        report = analyze_schedule(race_schedule())
        errs = _errors(report)
        assert not report.ok
        race = next(f for f in errs if f.rule == "comm-race")
        assert "tag aliasing" in race.message
        assert "[8, 64]" in race.message or "[64, 8]" in race.message
        text = race.format()
        assert "counterexample schedule (aliased wire channel):" in text
        # both distinct logical senders appear in the counterexample
        assert "send_pivot_row" in text
        assert "send_done_flag" in text


class TestLaswpAliasingFixture:
    """The pre-PR-2 LASWP exchange: spans of unequal width collide on
    one wire.  This is the regression the verifier exists for."""

    def test_reported_as_race_with_counterexample(self):
        report = analyze_schedule(laswp_aliasing_schedule())
        errs = _errors(report)
        assert not report.ok
        races = [f for f in errs if f.rule == "comm-race"]
        assert races, "aliasing must surface as comm-race"
        text = races[0].format()
        assert "tag aliasing" in races[0].message
        # unequal span widths: 2 and 4 doubles = 16 and 32 bytes
        assert "[16, 32]" in races[0].message
        assert "counterexample schedule (aliased wire channel):" in text
        assert "matched by" in text

    def test_runs_to_completion(self):
        # the defect is silent cross-delivery, NOT a deadlock: the
        # schedule itself extracts fine
        sched = laswp_aliasing_schedule()
        assert sched.num_ops > 0


class TestCollectiveMismatchFixture:
    def test_asymmetric_membership_is_an_error(self):
        report = analyze_schedule(collective_mismatch_schedule())
        errs = _errors(report)
        assert not report.ok
        coll = next(f for f in errs if f.rule == "comm-collective")
        assert "member" in coll.message
        text = coll.format()
        assert "counterexample (asymmetric membership):" in text
        assert "rank 1" in text


class TestFixtureRegistry:
    def test_every_fixture_is_rejected(self):
        for name, build in FIXTURES.items():
            report = analyze_schedule(build())
            assert not report.ok, f"fixture {name} was proved clean"


class TestCleanSchedules:
    def test_small_grid_is_proved(self):
        result = extract_case(ScheduleCase(
            program="hplai", p_rows=2, p_cols=2, n=128, block=32,
        ))
        report = analyze_schedule(result.schedule)
        assert report.ok, [f.message for f in report.findings]
        assert report.stats["matches"] > 0
        assert report.stats["hb_edges"] > report.stats["hb_nodes"] // 2

    def test_doubling_allreduce_warns_but_proves(self):
        # back-to-back recursive-doubling rounds re-use wires; safe
        # only under transport FIFO non-overtaking, which the verifier
        # surfaces as a warning, not an error
        result = extract_case(ScheduleCase(
            program="hplai", p_rows=2, p_cols=2, n=128, block=32,
            allreduce="doubling",
        ))
        report = analyze_schedule(result.schedule)
        assert report.ok
        warnings = [f for f in report.findings if f.severity == "warning"]
        assert any("FIFO non-overtaking" in f.message for f in warnings)
