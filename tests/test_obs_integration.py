"""End-to-end observability: instrumented runs, context handle, CLI,
and the trace-schema lint."""

import json
import sys
from pathlib import Path

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.machine import get_machine
from repro.obs import Observability, current, set_current, use

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from check_trace_schema import check_trace  # noqa: E402


def _cfg(**kwargs):
    defaults = dict(
        n=512, block=64, machine=get_machine("frontier"), p_rows=2, p_cols=2
    )
    defaults.update(kwargs)
    return BenchmarkConfig(**defaults)


@pytest.fixture()
def observed():
    obs = Observability()
    res = simulate_run(_cfg(), obs=obs)
    return obs, res


class TestContext:
    def test_default_is_disabled_noop(self):
        assert current().enabled is False

    def test_use_restores(self):
        obs = Observability()
        with use(obs):
            assert current() is obs
        assert current().enabled is False

    def test_set_current_none_restores_default(self):
        obs = Observability()
        prev = set_current(obs)
        try:
            assert current() is obs
        finally:
            set_current(prev)
        assert current().enabled is False


class TestInstrumentedRun:
    def test_spans_cover_all_layers(self, observed):
        obs, _res = observed
        cats = obs.tracer.categories()
        for layer in ("engine", "executor", "comm", "driver"):
            assert cats.get(layer, 0) > 0, f"no spans from {layer}"

    def test_span_times_within_run(self, observed):
        obs, res = observed
        for s in obs.tracer:
            assert s.end >= s.start >= 0.0

    def test_metrics_populated(self, observed):
        obs, res = observed
        m = obs.metrics
        assert m.gauge("run.elapsed_s").value == pytest.approx(res.elapsed)
        total_bytes = (
            m.counter("comm.bytes_sent", scope="intra").value
            + m.counter("comm.bytes_sent", scope="inter").value
        )
        assert total_bytes == pytest.approx(
            sum(st.bytes_sent for st in res.stats), rel=0.01
        )
        assert m.histogram("driver.iteration_s").count == len(res.trace)
        assert m.counter("comm.bcast_bytes", algorithm="bcast").value > 0

    def test_provenance_stamped(self, observed):
        obs, res = observed
        assert res.provenance["machine"] == "frontier"
        assert obs.provenance == res.provenance

    def test_disabled_run_records_nothing(self):
        obs = Observability.disabled()
        res = simulate_run(_cfg(), obs=obs)
        assert len(obs.tracer) == 0
        assert len(obs.metrics) == 0
        assert res.provenance is not None  # provenance is always stamped

    def test_engine_waits_match_stats(self, observed):
        """Span stream and legacy RankStats agree on wait accounting."""
        obs, res = observed
        span_wait = sum(
            s.duration for s in obs.tracer
            if s.cat == "engine" and s.name.startswith("wait_")
        )
        stat_wait = sum(st.total_wait for st in res.stats)
        # comm_post/BlockUntil waits are also engine spans; allow slack
        assert span_wait == pytest.approx(stat_wait, rel=0.05)

    def test_gantt_adapter_from_instrumented_run(self, observed):
        from repro.simulate.timeline import render_gantt

        obs, _res = observed
        out = render_gantt(
            obs.tracer.as_timeline(cats=["executor", "engine"]), width=40
        )
        assert "r0" in out and "legend:" in out


class TestChromeTraceSchema:
    def test_exported_trace_validates(self, observed, tmp_path):
        obs, _res = observed
        path = obs.export_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert check_trace(doc, require_layers=True) == []

    def test_lint_catches_missing_layers(self):
        doc = {
            "traceEvents": [
                {"name": "a", "cat": "executor", "ph": "X", "ts": 0,
                 "dur": 1, "pid": 0, "tid": 0},
            ],
            "otherData": {"schema": 1},
        }
        problems = check_trace(doc, require_layers=True)
        assert any("engine" in p and "comm" in p for p in problems)

    def test_lint_catches_bad_events(self):
        doc = {
            "traceEvents": [
                {"name": "a", "cat": "x", "ph": "X", "ts": -5, "dur": 1,
                 "pid": 0, "tid": 0},
                {"name": "b", "ph": "Z", "pid": 0, "tid": 0},
            ],
            "otherData": {"schema": 1},
        }
        problems = check_trace(doc)
        assert any("'ts'" in p for p in problems)
        assert any("'Z'" in p for p in problems)


class TestReportIntegration:
    def test_report_carries_provenance_and_metrics(self, observed, tmp_path):
        from repro.core.report import run_report, save_report

        obs, res = observed
        rep = run_report(res, obs=obs)
        assert rep["provenance"]["config"]["machine"] == "frontier"
        assert "run.elapsed_s" in rep["metrics"]
        path = save_report(res, tmp_path / "r.json", obs=obs)
        loaded = json.loads(
            path.read_text(),
            parse_constant=lambda s: pytest.fail(f"bare {s} token"),
        )
        assert loaded["provenance"]["seed"] == res.config.seed


class TestCli:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "t.json"
        jsonl = tmp_path / "s.jsonl"
        rc = main([
            "trace", "--machine", "frontier", "-p", "2", "--nl", "256",
            "-b", "64", "--out", str(out_json), "--jsonl", str(jsonl),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spans" in out and "perfetto" in out
        doc = json.loads(out_json.read_text())
        assert check_trace(doc, require_layers=True) == []
        assert jsonl.exists()

    def test_metrics_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["metrics", "--machine", "summit", "-p", "2",
                   "--nl", "128", "-b", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "executor.gemm_gflops" in out
        assert "run.elapsed_s" in out

    def test_metrics_prom_dump(self, capsys):
        from repro.cli import main

        rc = main(["metrics", "--machine", "summit", "-p", "2",
                   "--nl", "128", "-b", "32", "--prom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE run_elapsed_s gauge" in out

    def test_trace_bounded_spans(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "t.json"
        rc = main([
            "trace", "--machine", "frontier", "-p", "2", "--nl", "256",
            "-b", "64", "--out", str(out_json), "--max-spans", "50",
        ])
        assert rc == 0
        doc = json.loads(out_json.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 50
        assert doc["otherData"]["dropped_spans"] > 0
