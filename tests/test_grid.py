"""Tests for block-cyclic distribution, process grid, and node grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, RankError
from repro.grid import BlockCyclicDim, NodeGrid, ProcessGrid, node_comm_volume


class TestBlockCyclicDim:
    def test_basic_layout(self):
        d = BlockCyclicDim(n=24, b=2, p=3)
        assert d.num_blocks == 12
        assert d.blocks_per_proc == 4
        assert d.local_n == 8

    def test_requires_exact_divisibility(self):
        with pytest.raises(ConfigurationError):
            BlockCyclicDim(n=25, b=2, p=3)

    def test_owner_round_robin(self):
        d = BlockCyclicDim(n=24, b=2, p=3)
        assert [d.owner(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_block_roundtrip(self):
        d = BlockCyclicDim(n=60, b=5, p=4)
        for blk in range(d.num_blocks):
            proc = d.owner(blk)
            loc = d.local_block(blk)
            assert d.global_block(proc, loc) == blk

    @given(
        st.integers(1, 6),  # p
        st.integers(1, 8),  # b
        st.integers(1, 10),  # blocks per proc
    )
    @settings(max_examples=50, deadline=None)
    def test_element_map_is_bijection(self, p, b, k):
        d = BlockCyclicDim(n=p * b * k, b=b, p=p)
        seen = set()
        for i in range(d.n):
            proc = d.owner_of_index(i)
            loc = d.local_index(i)
            assert d.global_index(proc, loc) == i
            seen.add((proc, loc))
        assert len(seen) == d.n  # bijection: no two globals share a slot

    def test_trailing_block_count(self):
        d = BlockCyclicDim(n=48, b=4, p=3)  # 12 blocks, 4 per proc
        # At k=0 everyone holds all their blocks.
        for proc in range(3):
            assert d.local_blocks_at_or_after(proc, 0) == 4
        # Global blocks 0..11; owner(k)=k%3. After block 5, proc 0 owns
        # blocks {6, 9}, proc 1 owns {7, 10}, proc 2 owns {5, 8, 11}.
        assert d.local_blocks_at_or_after(0, 5) == 2
        assert d.local_blocks_at_or_after(1, 5) == 2
        assert d.local_blocks_at_or_after(2, 5) == 3
        assert d.local_blocks_at_or_after(0, 12) == 0

    def test_trailing_counts_sum_to_remaining(self):
        d = BlockCyclicDim(n=120, b=4, p=5)
        for k in range(d.num_blocks + 1):
            total = sum(d.local_blocks_at_or_after(p, k) for p in range(5))
            assert total == d.num_blocks - min(k, d.num_blocks)


class TestProcessGrid:
    def test_col_major_numbering(self):
        g = ProcessGrid(3, 2, order="col")
        # rank 0..2 walk down the first column.
        assert [g.coords_of(r) for r in range(6)] == [
            (0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1),
        ]

    def test_row_major_numbering(self):
        g = ProcessGrid(2, 3, order="row")
        assert g.coords_of(4) == (1, 1)

    def test_rank_roundtrip(self):
        g = ProcessGrid(4, 5)
        for rank in range(g.size):
            assert g.rank_of(*g.coords_of(rank)) == rank

    def test_diagonal_owner(self):
        g = ProcessGrid(3, 4)
        assert g.diagonal_owner(0) == (0, 0)
        assert g.diagonal_owner(7) == (1, 3)

    def test_row_col_members(self):
        g = ProcessGrid(2, 3)
        assert len(g.row_members(0)) == 3
        assert len(g.col_members(1)) == 2
        # Row and column of the diagonal owner intersect at that owner.
        pr, pc = g.diagonal_owner(4)
        rank = g.rank_of(pr, pc)
        assert rank in g.row_members(pr)
        assert rank in g.col_members(pc)

    def test_validation(self):
        with pytest.raises(RankError):
            ProcessGrid(2, 2).coords_of(4)
        with pytest.raises(RankError):
            ProcessGrid(2, 2).rank_of(2, 0)
        with pytest.raises(ConfigurationError):
            ProcessGrid(2, 2, order="diag")


class TestNodeGrid:
    def test_summit_3x2(self):
        grid = ProcessGrid(6, 6)
        ng = NodeGrid(grid, q_rows=3, q_cols=2)
        assert ng.gcds_per_node == 6
        assert ng.k_rows == 2 and ng.k_cols == 3
        assert ng.num_nodes == 6

    def test_column_major_is_qx1(self):
        # Column-major placement with Q ranks/node == NodeGrid(Q, 1).
        grid = ProcessGrid(6, 2, order="col")
        ng = NodeGrid(grid, q_rows=6, q_cols=1)
        for rank in range(grid.size):
            assert ng.node_of_rank(rank) == rank // 6

    def test_every_node_gets_q_ranks(self):
        grid = ProcessGrid(8, 8)
        ng = NodeGrid(grid, q_rows=2, q_cols=4)
        from collections import Counter

        counts = Counter(ng.node_of_rank(r) for r in range(grid.size))
        assert set(counts.values()) == {8}
        assert len(counts) == ng.num_nodes

    def test_gcd_index_unique_within_node(self):
        grid = ProcessGrid(4, 4)
        ng = NodeGrid(grid, q_rows=2, q_cols=2)
        seen = {}
        for rank in range(grid.size):
            key = (ng.node_of_rank(rank), ng.gcd_of_rank(rank))
            assert key not in seen
            seen[key] = rank

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            NodeGrid(ProcessGrid(5, 4), q_rows=2, q_cols=2)

    def test_nic_sharing(self):
        ng = NodeGrid(ProcessGrid(8, 8), q_rows=2, q_cols=4)
        assert ng.nic_sharing() == (2, 4)

    def test_same_node(self):
        grid = ProcessGrid(4, 4)
        ng = NodeGrid(grid, q_rows=4, q_cols=1)
        assert ng.same_node(0, 3)
        assert not ng.same_node(0, 4)


class TestCommVolume:
    def test_eq4_balanced_grid_minimizes_total(self):
        # For Q=8 on a 16x16 grid, balanced Q_r x Q_c should minimize
        # 2N^2/K_r + 2N^2/K_c among the options (paper: K_r ~ K_c best).
        grid = ProcessGrid(16, 16)
        n = 10_000
        totals = {}
        for qr, qc in [(8, 1), (4, 2), (2, 4), (1, 8)]:
            ng = NodeGrid(grid, q_rows=qr, q_cols=qc)
            row, col = node_comm_volume(n, ng)
            totals[(qr, qc)] = row + col
        # (4,2) and (2,4) tie and beat the skewed layouts.
        assert totals[(4, 2)] == totals[(2, 4)]
        assert totals[(4, 2)] < totals[(8, 1)]
        assert totals[(4, 2)] < totals[(1, 8)]

    def test_eq4_values(self):
        grid = ProcessGrid(8, 8)
        ng = NodeGrid(grid, q_rows=2, q_cols=2)  # K = 4x4
        row, col = node_comm_volume(1000, ng)
        assert row == pytest.approx(2 * 1000**2 / 4)
        assert col == pytest.approx(2 * 1000**2 / 4)


class TestNodeGridRender:
    def test_fig2_style_rendering(self):
        # Fig 2's 3x2 Summit example: tiles of the same letter.
        ng = NodeGrid(ProcessGrid(6, 4), q_rows=3, q_cols=2)
        out = ng.render()
        assert "NodeGrid(Q=3x2" in out
        lines = [l for l in out.splitlines() if l.startswith("r")]
        assert len(lines) == 6
        # Rows 0-2, cols 0-1 share node 'A'.
        assert lines[0].split()[1] == lines[2].split()[1] == "A"
        # Column 2 starts a different node tile.
        assert lines[0].split()[3] != "A"

    def test_truncation(self):
        ng = NodeGrid(ProcessGrid(32, 32), q_rows=2, q_cols=4)
        out = ng.render(max_dim=8)
        assert "..." in out


class TestFp64MachineRatio:
    def test_frontier_8x_summit_double_precision(self):
        # Paper Section II: "Frontier will be 8x more powerful than
        # Summit in double precision" (rough peak accounting).
        from repro.machine import FRONTIER, SUMMIT

        f = FRONTIER.node.gpu.fp64_tflops * FRONTIER.total_gcds
        s = SUMMIT.node.gpu.fp64_tflops * SUMMIT.total_gcds
        assert 7.0 < f / s < 11.0
