"""Framework tests: finding model, baseline, suppression, driver."""

import ast

import pytest

from repro.analyze.findings import Finding, Severity, sort_findings
from repro.analyze.framework import Baseline, SourceModule, run_analysis
from repro.analyze.checkers.hygiene import HygieneChecker


def _finding(**kw):
    base = dict(checker="hygiene", path="pkg/mod.py", line=3,
                message="bad thing")
    base.update(kw)
    return Finding(**base)


class TestFinding:
    def test_fingerprint_ignores_line(self):
        assert _finding(line=3).fingerprint == _finding(line=99).fingerprint

    def test_fingerprint_distinguishes_checker_path_message(self):
        f = _finding()
        assert f.fingerprint != _finding(checker="tag-space").fingerprint
        assert f.fingerprint != _finding(path="other.py").fingerprint
        assert f.fingerprint != _finding(message="other").fingerprint

    def test_format_is_clickable(self):
        f = _finding(line=7, col=4, severity=Severity.WARNING)
        assert f.format() == "pkg/mod.py:7:4: warning [hygiene] bad thing"

    def test_path_normalized_to_posix(self):
        # Redundant separators collapse; posix paths pass through
        # unchanged, so baselines are stable across platforms.
        assert _finding(path="pkg//sub/./mod.py").path == "pkg/sub/mod.py"
        assert _finding(path="pkg/mod.py").path == "pkg/mod.py"

    def test_to_dict_round_trips_fields(self):
        d = _finding(col=2).to_dict()
        assert d["checker"] == "hygiene"
        assert d["line"] == 3 and d["col"] == 2
        assert d["severity"] == "error"
        assert "context" not in d  # omitted when empty

    def test_sort_by_path_line_then_severity(self):
        fs = [
            _finding(path="b.py", line=1),
            _finding(path="a.py", line=9, severity=Severity.WARNING),
            _finding(path="a.py", line=9, severity=Severity.ERROR,
                     message="worse"),
            _finding(path="a.py", line=2),
        ]
        ordered = sort_findings(fs)
        assert [(f.path, f.line, f.severity) for f in ordered] == [
            ("a.py", 2, "error"), ("a.py", 9, "error"),
            ("a.py", 9, "warning"), ("b.py", 1, "error"),
        ]


class TestSuppression:
    def _mod(self, text):
        return SourceModule.parse("mod.py", text)

    def test_bare_ignore_suppresses_everything(self):
        m = self._mod("x = 1  # lint: ignore\n")
        assert m.suppressed(1, "hygiene")
        assert m.suppressed(1, "tag-space")

    def test_scoped_ignore_matches_only_named_checker(self):
        m = self._mod("x = 1  # lint: ignore[hygiene]\n")
        assert m.suppressed(1, "hygiene")
        assert not m.suppressed(1, "tag-space")

    def test_multiple_ids(self):
        m = self._mod("x = 1  # lint: ignore[hygiene, tag-space]\n")
        assert m.suppressed(1, "tag-space")

    def test_plain_comment_is_not_a_suppression(self):
        m = self._mod("x = 1  # just a comment\n")
        assert not m.suppressed(1, "hygiene")

    def test_out_of_range_line(self):
        m = self._mod("x = 1\n")
        assert not m.suppressed(99, "hygiene")


class TestSourceModule:
    def test_parent_and_enclosing_function(self):
        m = SourceModule.parse(
            "mod.py", "def f():\n    return 1 + 2\n"
        )
        binop = next(n for n in ast.walk(m.tree) if isinstance(n, ast.BinOp))
        fn = m.enclosing_function(binop)
        assert isinstance(fn, ast.FunctionDef) and fn.name == "f"
        assert m.parent_of(m.tree) is None


class TestBaseline:
    def test_round_trip(self, tmp_path):
        f = _finding()
        path = tmp_path / "base.json"
        Baseline.from_findings([f]).save(str(path))
        loaded = Baseline.load(str(path))
        assert f in loaded
        # Line-number drift must not invalidate the baseline entry.
        assert _finding(line=123) in loaded
        assert _finding(message="new problem") not in loaded

    def test_rejects_non_baseline_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestRunAnalysis:
    def _write(self, tmp_path, name, text):
        p = tmp_path / name
        p.write_text(text)
        return str(p)

    def test_findings_and_file_count(self, tmp_path):
        self._write(tmp_path, "dirty.py",
                    "try:\n    pass\nexcept:\n    pass\n")
        self._write(tmp_path, "clean.py", "x = 1\n")
        report = run_analysis([str(tmp_path)], checkers=[HygieneChecker()])
        assert report.files_checked == 2
        assert len(report.findings) == 1
        assert report.findings[0].checker == "hygiene"
        assert not report.ok

    def test_inline_suppression_is_honoured(self, tmp_path):
        self._write(
            tmp_path, "dirty.py",
            "try:\n    pass\nexcept:  # lint: ignore[hygiene]\n    pass\n",
        )
        report = run_analysis([str(tmp_path)], checkers=[HygieneChecker()])
        assert report.ok and not report.findings

    def test_baseline_subtracts_known_findings(self, tmp_path):
        path = self._write(tmp_path, "dirty.py",
                           "try:\n    pass\nexcept:\n    pass\n")
        first = run_analysis([path], checkers=[HygieneChecker()])
        baseline = Baseline.from_findings(first.findings)
        second = run_analysis([path], checkers=[HygieneChecker()],
                              baseline=baseline)
        assert second.ok
        assert len(second.baselined) == 1 and not second.findings

    def test_parse_error_reported_not_raised(self, tmp_path):
        path = self._write(tmp_path, "broken.py", "def f(:\n")
        report = run_analysis([path], checkers=[HygieneChecker()])
        assert not report.ok
        assert report.parse_errors and report.parse_errors[0][0] == path

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no-such-checker"):
            run_analysis([str(tmp_path)], checkers=[HygieneChecker()],
                         select=["no-such-checker"])

    def test_pycache_is_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("try:\n    pass\nexcept:\n    pass\n")
        report = run_analysis([str(tmp_path)], checkers=[HygieneChecker()])
        assert report.files_checked == 0 and report.ok
