"""Regression fixture: the pre-PR-2 LASWP tag-aliasing wire protocol.

This reproduces the per-column row-interchange exchange that shipped
before the batched LASWP rewrite: each panel column ``j`` swapped rows
span by span, deriving the wire tag as ``_tag(k, 7, j) + span_idx``.
Because the ``_tag`` formula packs columns contiguously
(``... + j``), the offset aliases the neighbouring column's window:

    _tag(k, 7, j) + span == _tag(k, 7, j + span)

so with two spans, column ``j``'s span-1 message carried the same tag
as column ``j+1``'s span-0 message between the same rank pair — and the
engine's FIFO matching could cross-deliver them.  The ``tag-space``
checker must flag every ``_tag(...) + span_idx`` site in this file.

(Not a test module: imported as data by tests/test_analyze_tagspace.py.)
"""

_TAG_BASE = 1 << 24


def _tag(k, phase, j=0):
    return _TAG_BASE + (k * 8 + phase) * 4096 + j


TAG_SWAP_COL = 7


def apply_interchanges_per_column(cfg, ex, comm, grid, k, spans, ipiv):
    """One panel's row interchanges, column by column (the old scheme)."""
    b = cfg.block
    for j in range(b):
        col = k * b + j
        pivot_row = ipiv[col]
        if pivot_row == col:
            continue
        owner_a = cfg.row_dim.owner_of_index(col)
        owner_b = cfg.row_dim.owner_of_index(pivot_row)
        if owner_a == owner_b:
            continue
        for span_idx, (lo, hi) in enumerate(spans):
            if ex.p_ir == owner_a:
                mine = ex.get_row_segment(col, lo, hi)
                peer = grid.rank_of(owner_b, ex.p_ic)
                yield from comm.send(
                    peer, mine, _tag(k, TAG_SWAP_COL, j) + span_idx
                )
                theirs = yield from comm.recv(
                    peer, _tag(k, TAG_SWAP_COL, j) + span_idx
                )
                ex.set_row_segment(col, lo, hi, theirs)
            elif ex.p_ir == owner_b:
                mine = ex.get_row_segment(pivot_row, lo, hi)
                peer = grid.rank_of(owner_a, ex.p_ic)
                theirs = yield from comm.recv(
                    peer, _tag(k, TAG_SWAP_COL, j) + span_idx
                )
                yield from comm.send(
                    peer, mine, _tag(k, TAG_SWAP_COL, j) + span_idx
                )
                ex.set_row_segment(pivot_row, lo, hi, theirs)
