"""Deliberately broken collective protocols (checker fixture only).

Imported as *data* by ``tests/test_analyze_collectives.py`` — never
executed.  Each function is one defect class the ``collective-matching``
checker must flag (or, for the ``_ok`` variants, must NOT flag).
"""

import numpy as np

from repro.comm.vmpi import RankComm
from repro.simulate.events import Barrier


def rank_conditional_barrier(rank: int, members):
    """Only rank 0 posts the barrier: everyone else sails past it and
    rank 0 waits forever."""
    comm = RankComm(rank)
    if rank == 0:
        yield from comm.barrier(members)


def rank_conditional_reduce(rank: int, members):
    """A reduce posted only by the lexicographically first rank."""
    comm = RankComm(rank)
    contrib = np.zeros(4)
    if comm.rank == members[0]:
        yield from comm.reduce(contrib, members[0], members)


def asymmetric_barrier_members(rank: int, members):
    """Every rank excludes *itself* from the member list, so no two
    ranks agree on the group."""
    comm = RankComm(rank)
    yield from comm.barrier(tuple(r for r in members if r != rank))


def asymmetric_raw_barrier(rank: int, members):
    """Raw Barrier event whose member tuple is sliced by rank."""
    yield Barrier(members[rank:])


def membership_guarded_reduce_ok(ex, comm, grid, contrib, owner, jr):
    """The refine.py idiom: a reduce over one process row, guarded by
    the matching row-coordinate test.  Must NOT be flagged."""
    if ex.p_ir == jr:
        result = yield from comm.reduce(contrib, owner, grid.row_members(jr))
        return result
    return None


def selector_members_ok(ex, comm, grid, contrib, owner):
    """A rank-local *selector* argument is group-uniform (all members of
    row ``ex.p_ir`` share ``p_ir``).  Must NOT be flagged."""
    if ex.p_ir == owner:
        result = yield from comm.reduce(
            contrib, owner, grid.row_members(ex.p_ir)
        )
        return result
    return None
