"""Fixture: an unguarded FP16 down-cast the precision-flow checker
must flag (finite values above 65504 silently become inf here).

(Not a test module: imported as data by tests/test_analyze_precision.py.)
"""

import numpy as np


def pack_panel(panel):
    """Down-cast a panel with no overflow guard — the bug pattern."""
    return panel.astype(np.float16)


def pack_panel_buffer(panel):
    """Same bug via array construction."""
    return np.ascontiguousarray(panel, dtype=np.float16)
