"""Tests for the campaign engine: jobs, queue, cache, store, sweeps.

The determinism pair the engine is built around:

- an interrupted-then-resumed sweep completes exactly the pending jobs
  and ends with store contents identical to an uninterrupted sweep;
- re-running an identical sweep is 100% cache hits (verified both via
  the cache's own counters and the mirrored ``campaign.run_cache`` obs
  counters, the ``lcg.tile_cache`` idiom).
"""

import json

import pytest

from repro.campaign import (
    CampaignEngine,
    Job,
    JobQueue,
    ResultStore,
    RunCache,
    SweepSpec,
    compare_stores,
    execute_job,
)
from repro.campaign.store import check_result_row
from repro.errors import ConfigurationError

CODE = "test-code-v1"

SCENARIO = {
    "schema": "repro.scenario/v1",
    "name": "limp1",
    "injections": [
        {"kind": "limplock", "rank": 1, "factor": 6.0, "onset_frac": 0.25}
    ],
}


def _job(grid=2, bcast="ring2m", **kw):
    kw.setdefault("machine", "frontier")
    kw.setdefault("nl", 3072)
    kw.setdefault("block", 768)
    kw.setdefault("num_runs", 1)
    return Job(grid=grid, bcast=bcast, **kw)


def _jobs():
    return [
        _job(grid=2, bcast="bcast"),
        _job(grid=2, bcast="ring2m"),
        _job(grid=4, bcast="bcast"),
        _job(grid=4, bcast="ring2m"),
    ]


def _engine(tmp_path, workers=1, sub=""):
    store = ResultStore(tmp_path / f"store{sub}.jsonl")
    cache = RunCache(tmp_path / f"cache{sub}")
    return CampaignEngine(store, cache, workers=workers, log=lambda _m: None)


class TestJobKeys:
    def test_key_is_stable_and_code_sensitive(self):
        assert _job().key(CODE) == _job().key(CODE)
        assert _job().key(CODE) != _job().key("other-code")
        assert _job(grid=4).key(CODE) != _job(grid=2).key(CODE)

    def test_scenario_hashed_by_content_not_path(self, tmp_path):
        p = tmp_path / "sc.json"
        p.write_text(json.dumps(SCENARIO))
        from_path = Job.from_dict(
            {"machine": "frontier", "scenario": str(p)}
        )
        inline = Job.from_dict(
            {"machine": "frontier", "scenario": SCENARIO}
        )
        assert from_path.key(CODE) == inline.key(CODE)

    def test_label_names_the_config(self):
        job = _job(grid=2, bcast="bcast", scenario=SCENARIO)
        assert job.label == "frontier/N=6144/B=768/2x2/bcast/limp1"

    def test_machine_defaults_fill_in(self):
        job = Job.from_dict({"machine": "summit"})
        assert (job.nl, job.block, job.bcast) == (61440, 768, "bcast")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job field"):
            Job.from_dict({"machine": "frontier", "blocksize": 768})

    def test_custom_machine_needs_explicit_shape(self):
        with pytest.raises(ConfigurationError, match="needs explicit"):
            Job.from_dict({"machine": "mystery"})


class TestSweepSpec:
    def test_expand_is_the_cartesian_product(self):
        spec = SweepSpec(
            machine="frontier", nl=3072, block=768,
            grids=(2, 4), bcasts=("bcast", "ring2m"),
            scenarios=(None, SCENARIO), num_runs=1,
        )
        jobs = spec.expand()
        assert len(jobs) == 8
        assert len({j.label for j in jobs}) == 8

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep field"):
            SweepSpec.from_dict({"machine": "frontier", "grid": [2]})

    def test_load_round_trip(self, tmp_path):
        spec = SweepSpec(machine="frontier", nl=3072, block=768,
                         grids=(2,), bcasts=("bcast",))
        p = tmp_path / "sweep.json"
        p.write_text(json.dumps(spec.to_dict()))
        assert SweepSpec.load(p).expand()[0].label == spec.expand()[0].label


class TestJobQueue:
    def test_checkpoint_round_trip(self, tmp_path):
        q = JobQueue(tmp_path / "queue.json")
        q.add("k1", {"machine": "frontier"})
        q.add("k2", {"machine": "frontier", "grid": 4})
        q.mark_done("k1")
        q.checkpoint()
        q2 = JobQueue(tmp_path / "queue.json")
        assert q2.status_of("k1") == "done"
        assert [k for k, _ in q2.pending()] == ["k2"]
        assert q2.counts() == {"pending": 1, "done": 1, "failed": 0}

    def test_failed_jobs_stay_pending_for_retry(self, tmp_path):
        q = JobQueue(tmp_path / "queue.json")
        q.add("k1", {})
        q.mark_failed("k1", "worker died")
        assert [k for k, _ in q.pending()] == ["k1"]

    def test_malformed_checkpoint_rejected(self, tmp_path):
        p = tmp_path / "queue.json"
        p.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ConfigurationError):
            JobQueue(p)


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        c = RunCache(tmp_path / "cache")
        assert c.get("deadbeefdeadbeef") is None
        c.put("deadbeefdeadbeef", {"key": "deadbeefdeadbeef", "x": 1})
        assert c.get("deadbeefdeadbeef")["x"] == 1
        assert c.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "stores": 1,
        }

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        c = RunCache(tmp_path / "cache")
        c.put("deadbeefdeadbeef", {"key": "deadbeefdeadbeef"})
        (tmp_path / "cache" / "deadbeefdeadbeef.json").write_text("{trunc")
        assert c.get("deadbeefdeadbeef") is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        c = RunCache(tmp_path / "cache")
        c.put("deadbeefdeadbeef", {"key": "somethingelse0000"})
        assert c.get("deadbeefdeadbeef") is None


class TestExecuteJob:
    def test_row_validates_and_carries_the_job(self):
        job = _job()
        row = execute_job(job.to_dict(), code=CODE)
        assert check_result_row(row) == []
        assert row["key"] == job.key(CODE)
        assert row["label"] == job.label
        assert row["best"]["elapsed_s"] > 0
        assert "completed_utc" in row["meta"]

    def test_scenario_degrades_the_run(self):
        clean = execute_job(_job().to_dict(), code=CODE)
        limped = execute_job(
            _job(scenario=SCENARIO).to_dict(), code=CODE
        )
        assert limped["best"]["elapsed_s"] > clean["best"]["elapsed_s"]


class TestSweepDeterminism:
    def test_sweep_computes_everything_once(self, tmp_path):
        eng = _engine(tmp_path)
        out = eng.run_sweep(_jobs(), JobQueue(tmp_path / "q.json"), code=CODE)
        assert (out.total, out.computed, out.cached, out.failed) == (
            4, 4, 0, 0,
        )
        assert len(eng.store) == 4
        assert JobQueue(tmp_path / "q.json").counts()["done"] == 4

    def test_resume_completes_exactly_the_pending_jobs(self, tmp_path):
        jobs = _jobs()
        # Reference: one uninterrupted sweep.
        ref = _engine(tmp_path, sub="_ref")
        ref.run_sweep(jobs, JobQueue(tmp_path / "q_ref.json"), code=CODE)

        # Interrupted sweep: die after 2 completions (post-checkpoint,
        # exactly where a kill -9 would leave a consistent queue).
        class Killed(RuntimeError):
            pass

        eng = _engine(tmp_path)
        done = []

        def killer(key, _row):
            done.append(key)
            if len(done) == 2:
                raise Killed(key)

        with pytest.raises(Killed):
            eng.run_sweep(jobs, JobQueue(tmp_path / "q.json"), code=CODE,
                          on_complete=killer)
        counts = JobQueue(tmp_path / "q.json").counts()
        assert counts["done"] == 2 and counts["pending"] == 2

        # Resume with fresh objects (a new process would reload all
        # three files from disk exactly like this).
        eng2 = _engine(tmp_path)
        out = eng2.run_sweep(jobs, JobQueue(tmp_path / "q.json"), code=CODE)
        assert out.total == 4
        assert out.computed + out.cached == 2  # exactly the pending two
        assert JobQueue(tmp_path / "q.json").counts()["done"] == 4

        # Store contents identical to the uninterrupted sweep.
        final = ResultStore(tmp_path / "store.jsonl").snapshot()
        assert final == ResultStore(tmp_path / "store_ref.jsonl").snapshot()

    def test_rerun_is_all_cache_hits(self, tmp_path):
        from repro.obs import Observability, use

        jobs = _jobs()
        first = _engine(tmp_path)
        first.run_sweep(jobs, JobQueue(tmp_path / "q1.json"), code=CODE)

        obs = Observability()
        with use(obs):
            again = CampaignEngine(
                ResultStore(tmp_path / "store2.jsonl"),
                RunCache(tmp_path / "cache"),  # same cache dir
                log=lambda _m: None,
            )
            out = again.run_sweep(
                jobs, JobQueue(tmp_path / "q2.json"), code=CODE
            )
        assert (out.computed, out.cached) == (0, 4)
        assert out.cache_hit_ratio == 1.0
        assert again.cache.stats()["hits"] == 4

        def val(event):
            return obs.metrics.counter(
                "campaign.run_cache", event=event
            ).value

        assert val("hit") == 4 and val("miss") == 0

        # ...and the rebuilt store matches the computed one exactly.
        assert again.store.snapshot() == first.store.snapshot()

    def test_code_version_bump_invalidates_the_cache(self, tmp_path):
        jobs = _jobs()[:1]
        _engine(tmp_path).run_sweep(
            jobs, JobQueue(tmp_path / "q1.json"), code="v1"
        )
        out = _engine(tmp_path).run_sweep(
            jobs, JobQueue(tmp_path / "q2.json"), code="v2"
        )
        assert (out.computed, out.cached) == (1, 0)

    def test_sharded_sweep_matches_sequential(self, tmp_path):
        jobs = _jobs()
        seq = _engine(tmp_path, sub="_seq")
        seq.run_sweep(jobs, JobQueue(tmp_path / "q_seq.json"), code=CODE)
        par = _engine(tmp_path, sub="_par", workers=2)
        out = par.run_sweep(jobs, JobQueue(tmp_path / "q_par.json"),
                            code=CODE)
        assert out.computed == 4 and out.workers == 2
        assert par.store.snapshot() == seq.store.snapshot()

    def test_failed_job_recorded_not_fatal(self, tmp_path):
        eng = _engine(tmp_path)
        jobs = [_job(), _job(bcast="no-such-algorithm")]
        out = eng.run_sweep(jobs, JobQueue(tmp_path / "q.json"), code=CODE)
        assert (out.computed, out.failed) == (1, 1)
        (key, error), = out.errors
        assert "no-such-algorithm" in error
        assert JobQueue(tmp_path / "q.json").status_of(key) == "failed"


class TestStoreQueries:
    def test_compare_stores_clean_and_regressed(self, tmp_path):
        eng = _engine(tmp_path)
        eng.run_sweep(_jobs()[:2], JobQueue(tmp_path / "q.json"), code=CODE)
        store = eng.store

        deltas = compare_stores(store, store, max_regress=0.25)
        assert len(deltas) == 2 and not any(d.regressed for d in deltas)

        slow = ResultStore(tmp_path / "slow.jsonl")
        for key in store.keys():
            row = json.loads(json.dumps(store.get(key)))
            row["best"]["elapsed_s"] *= 2.0
            slow.put(row)
        deltas = compare_stores(slow, store, max_regress=0.25)
        assert all(d.regressed for d in deltas)

    def test_against_exported_document(self, tmp_path):
        from repro.util.atomicio import atomic_write_json

        eng = _engine(tmp_path)
        eng.run_sweep(_jobs()[:1], JobQueue(tmp_path / "q.json"), code=CODE)
        export = tmp_path / "export.json"
        atomic_write_json(export, eng.store.export_document())
        (d,) = compare_stores(eng.store, str(export))
        assert not d.regressed

    def test_store_rejects_corrupt_rows(self, tmp_path):
        p = tmp_path / "store.jsonl"
        p.write_text('{"schema": "repro.campaign.result/v1"}\n')
        with pytest.raises(ConfigurationError):
            ResultStore(p)

    def test_rows_filter_by_machine(self, tmp_path):
        eng = _engine(tmp_path)
        eng.run_sweep(_jobs()[:2], JobQueue(tmp_path / "q.json"), code=CODE)
        assert len(eng.store.rows(machine="frontier")) == 2
        assert eng.store.rows(machine="summit") == []


class TestLabelCollisions:
    """Two rows may share a label (seed/num_runs/spare_nodes are not in
    it) — the gate join must refuse to silently pick one."""

    def _two_rows_one_label(self, tmp_path):
        eng = _engine(tmp_path)
        eng.run_sweep(_jobs()[:1], JobQueue(tmp_path / "q.json"), code=CODE)
        row = json.loads(json.dumps(eng.store.get(eng.store.keys()[0])))
        variant = _job(grid=2, bcast="bcast", seed=999)
        row["key"] = variant.key(CODE)
        row["job"]["seed"] = 999
        eng.store.put(row)
        return eng.store

    def test_duplicate_label_raises_with_both_keys(self, tmp_path):
        store = self._two_rows_one_label(tmp_path)
        assert len(store) == 2
        with pytest.raises(ConfigurationError, match="duplicate job label"):
            store.elapsed_by_label()
        try:
            store.elapsed_by_label()
        except ConfigurationError as exc:
            for key in store.keys():
                assert key in str(exc)

    def test_compare_stores_refuses_colliding_store(self, tmp_path):
        store = self._two_rows_one_label(tmp_path)
        with pytest.raises(ConfigurationError, match="duplicate job label"):
            compare_stores(store, store)

    def test_export_document_join_also_guarded(self, tmp_path):
        from repro.campaign.store import _elapsed_map

        store = self._two_rows_one_label(tmp_path)
        with pytest.raises(ConfigurationError, match="duplicate job label"):
            _elapsed_map(store.export_document())

    def test_distinct_labels_unaffected(self, tmp_path):
        eng = _engine(tmp_path)
        eng.run_sweep(_jobs(), JobQueue(tmp_path / "q.json"), code=CODE)
        assert len(eng.store.elapsed_by_label()) == 4


class TestWorkerMeta:
    """pool_execute stamps fleet-utilization facts into row meta."""

    def test_pool_execute_records_worker_and_queue_wait(self):
        import time

        from repro.campaign.runner import pool_execute

        job = _job()
        enqueued = time.time() - 1.0
        key, row, err = pool_execute(
            (job.key(CODE), job.to_dict(), CODE, enqueued)
        )
        assert err == "" and row is not None
        meta = row["meta"]
        assert meta["worker"] == "MainProcess"
        assert meta["queue_wait_s"] >= 1.0
        assert meta["started_unix"] > enqueued
        assert "completed_utc" in meta and "compute_wall_s" in meta

    def test_legacy_three_tuple_still_accepted(self):
        from repro.campaign.runner import pool_execute

        job = _job()
        key, row, err = pool_execute((job.key(CODE), job.to_dict(), CODE))
        assert err == "" and row["meta"]["worker"] == "MainProcess"
        assert "queue_wait_s" not in row["meta"]

    def test_sweep_rows_carry_worker_meta(self, tmp_path):
        eng = _engine(tmp_path, workers=2)
        eng.run_sweep(_jobs(), JobQueue(tmp_path / "q.json"), code=CODE)
        for key in eng.store.keys():
            meta = eng.store.get(key)["meta"]
            assert meta["worker"]
            assert meta["queue_wait_s"] >= 0.0

    def test_worker_counters_mirrored_to_obs(self, tmp_path):
        from repro.obs import Observability, use

        obs = Observability()
        with use(obs):
            eng = _engine(tmp_path)
            eng.run_sweep(_jobs()[:2], JobQueue(tmp_path / "q.json"),
                          code=CODE)
        counter = obs.metrics.counter(
            "campaign.worker", worker="MainProcess", event="jobs"
        )
        assert counter.value == 2
        hist = obs.metrics.histogram(
            "campaign.worker.run_s", worker="MainProcess"
        )
        assert hist.count == 2


class TestCampaignStoreChecker:
    def _findings(self, path):
        from repro.analyze.checkers import CampaignStoreChecker

        return list(CampaignStoreChecker().check_file(str(path)))

    def test_valid_store_passes(self, tmp_path):
        eng = _engine(tmp_path)
        eng.run_sweep(_jobs()[:2], JobQueue(tmp_path / "q.json"), code=CODE)
        assert self._findings(eng.store.path) == []

    def test_corrupted_row_flagged_with_line(self, tmp_path):
        eng = _engine(tmp_path)
        eng.run_sweep(_jobs()[:1], JobQueue(tmp_path / "q.json"), code=CODE)
        row = json.loads(eng.store.path.read_text())
        del row["best"]
        row["exclusion_applied"] = "yes"
        eng.store.path.write_text("\n" + json.dumps(row) + "\n")
        findings = self._findings(eng.store.path)
        assert findings and all(f.line == 2 for f in findings)
        messages = " ".join(f.message for f in findings)
        assert "best" in messages and "exclusion_applied" in messages

    def test_non_campaign_json_ignored(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"schema": "repro.trace/v1", "events": []}))
        assert self._findings(p) == []

    def test_registered_in_default_suite(self):
        from repro.analyze.checkers import all_checkers

        assert "campaign-store" in {c.id for c in all_checkers()}
