"""Tests for the distributed FP64 HPL baseline (partial pivoting)."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark
from repro.core.hpl_dist import solve_hpl_distributed
from repro.lcg.matrix import HplAiMatrix
from repro.machine import SUMMIT


class DenseMatrix:
    """Adapter exposing an arbitrary dense matrix through the generator
    interface (block + rhs), for pivot-requiring test systems."""

    def __init__(self, a: np.ndarray, b: np.ndarray):
        self._a = a
        self._b = b
        self.n = a.shape[0]

    def block(self, r0, r1, c0, c1):
        return self._a[r0:r1, c0:c1].copy()

    def rhs(self):
        return self._b.copy()


def _cfg(n=64, block=8, pr=2, pc=2, **kw):
    return BenchmarkConfig(
        n=n, block=block, machine=SUMMIT, p_rows=pr, p_cols=pc, **kw
    )


def _random_general(n, seed):
    """Well-conditioned (cond <= ~10) but with no diagonal dominance:
    partial pivoting genuinely reorders rows."""
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    scales = rng.uniform(1.0, 3.0, size=n) * rng.choice([-1.0, 1.0], size=n)
    a = scales[:, None] * q
    b = rng.normal(size=n)
    return a, b


class TestDistributedHpl:
    @pytest.mark.parametrize(
        "n,block,pr,pc",
        [(32, 8, 1, 1), (64, 8, 2, 2), (96, 8, 3, 2), (64, 16, 2, 2),
         (96, 8, 2, 3)],
    )
    def test_solves_general_system(self, n, block, pr, pc):
        a, b = _random_general(n, seed=n + pr)
        res = solve_hpl_distributed(
            _cfg(n=n, block=block, pr=pr, pc=pc), matrix=DenseMatrix(a, b)
        )
        x_ref = np.linalg.solve(a, b)
        assert np.max(np.abs(res["x"] - x_ref)) < 1e-9
        assert res["residual_norm"] < 1e-10

    def test_pivoting_actually_happens(self):
        a, b = _random_general(64, seed=3)
        res = solve_hpl_distributed(_cfg(), matrix=DenseMatrix(a, b))
        swaps = sum(1 for g, p in enumerate(res["ipiv"]) if p != g)
        assert swaps > 10  # a general matrix reorders plenty of rows

    def test_matches_serial_pivoted_lu(self):
        import scipy.linalg as sla

        a, b = _random_general(48, seed=7)
        res = solve_hpl_distributed(
            _cfg(n=48, block=8, pr=2, pc=2), matrix=DenseMatrix(a, b)
        )
        lu, piv = sla.lu_factor(a)
        x_ref = sla.lu_solve((lu, piv), b)
        np.testing.assert_allclose(res["x"], x_ref, atol=1e-9)

    def test_default_matrix_barely_pivots(self):
        # The HPL-AI matrix is diagonally dominant: pivots stay put.
        res = solve_hpl_distributed(_cfg(n=64, block=8, pr=2, pc=2))
        swaps = sum(1 for g, p in enumerate(res["ipiv"]) if p != g)
        assert swaps == 0
        m = HplAiMatrix(64, 42)
        x_ref = np.linalg.solve(m.dense(), m.rhs())
        assert np.max(np.abs(res["x"] - x_ref)) < 1e-10

    def test_grid_shape_invariance(self):
        a, b = _random_general(64, seed=11)
        xs = []
        for pr, pc in [(1, 1), (2, 2), (4, 2)]:
            res = solve_hpl_distributed(
                _cfg(n=64, block=8, pr=pr, pc=pc), matrix=DenseMatrix(a, b)
            )
            xs.append(res["x"])
        for x in xs[1:]:
            np.testing.assert_allclose(x, xs[0], atol=1e-10)


class TestMixedPrecisionSpeedupInEngine:
    def test_hplai_faster_than_hpl_at_same_problem(self):
        # The headline claim, measured end-to-end inside the event
        # engine rather than via published anchors: the same N on the
        # same machine model, FP64 HPL vs mixed-precision HPL-AI.
        cfg = _cfg(n=512, block=64, pr=2, pc=2)
        hpl = solve_hpl_distributed(cfg)
        hplai = run_benchmark(cfg, exact=True)
        assert hplai.ir_converged
        speedup = hpl["t_total"] / hplai.elapsed
        # Small N underutilizes the model GPUs for both, but mixed
        # precision must already win clearly.
        assert speedup > 2.0
        # Both produce the same solution to FP64 accuracy.
        np.testing.assert_allclose(hpl["x"], hplai.x, atol=1e-9)
