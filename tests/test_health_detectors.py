"""Tests for the online health detectors (synthetic series + end-to-end)."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.errors import ConfigurationError
from repro.machine import get_machine
from repro.obs import Observability
from repro.obs.health import (
    CommStallDetector,
    HealthEvent,
    HealthMonitor,
    LimplockDetector,
    StragglerDriftDetector,
    ThroughputCollapseDetector,
    default_detectors,
)
from repro.obs.health.series import SeriesBank


def _cfg(**kwargs):
    defaults = dict(
        n=512, block=64, machine=get_machine("frontier"), p_rows=2, p_cols=2
    )
    defaults.update(kwargs)
    return BenchmarkConfig(**defaults)


def _feed_busy(bank, t, rates):
    """Append one cumulative-busy sample per rank at time t."""
    for r, rate in enumerate(rates):
        s = bank.series("busy_s", rank=r)
        prev = s.last[1] if s.last else 0.0
        prev_t = s.last[0] if s.last else t - 1.0
        s.append(t, prev + rate * (t - prev_t))


class TestHealthEvent:
    def test_to_dict_shape(self):
        ev = HealthEvent(
            kind="straggler_drift", t=1.5, severity="warning",
            ranks=(3,), message="m", attrs={"drift": 1.4},
        )
        d = ev.to_dict()
        assert d["kind"] == "straggler_drift"
        assert d["t_s"] == 1.5
        assert d["ranks"] == [3]
        assert d["attrs"]["drift"] == 1.4


class TestStragglerDriftDetector:
    def test_flags_sustained_straggler_within_patience(self):
        det = StragglerDriftDetector(threshold=0.3, window=2, patience=3)
        bank = SeriesBank()
        events = []
        # rank 1 runs 1.5x busier per virtual second than its peers
        for i in range(8):
            _feed_busy(bank, float(i), [1.0, 1.5, 1.0, 1.0])
            events += det.update(bank, float(i))
        assert len(events) == 1
        ev = events[0]
        assert ev.kind == "straggler_drift"
        assert ev.ranks == (1,)
        assert ev.severity == "warning"
        assert ev.attrs["drift"] == pytest.approx(1.5, rel=0.01)
        # the onset fired as soon as patience allowed: window + patience
        assert ev.t <= 5.0

    def test_one_onset_event_despite_oscillation(self):
        det = StragglerDriftDetector(threshold=0.3, window=1, patience=2)
        bank = SeriesBank()
        events = []
        for i in range(20):
            # the slow rank dips below the cutoff every 4th sample (a
            # bulk-sync wait) — exit hysteresis must keep it flagged
            slow = 1.0 if i % 4 == 3 else 1.6
            _feed_busy(bank, float(i), [1.0, slow, 1.0])
            events += det.update(bank, float(i))
        assert len(events) == 1

    def test_clean_fleet_stays_silent(self):
        det = StragglerDriftDetector(threshold=0.3)
        bank = SeriesBank()
        for i in range(20):
            _feed_busy(bank, float(i), [1.0, 1.01, 0.99, 1.0])
            assert det.update(bank, float(i)) == []

    def test_requires_two_ranks_and_full_window(self):
        det = StragglerDriftDetector(window=4)
        bank = SeriesBank()
        _feed_busy(bank, 0.0, [1.0])
        assert det.update(bank, 0.0) == []  # one rank: no peers
        bank2 = SeriesBank()
        _feed_busy(bank2, 0.0, [1.0, 2.0])
        assert det.update(bank2, 0.0) == []  # window not filled yet

    def test_idle_window_not_flagged(self):
        det = StragglerDriftDetector(window=1, patience=1)
        bank = SeriesBank()
        for i in range(4):
            _feed_busy(bank, float(i), [0.0, 0.0])
        assert det.update(bank, 3.0) == []

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            StragglerDriftDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            StragglerDriftDetector(threshold=1.5)
        with pytest.raises(ConfigurationError):
            StragglerDriftDetector(patience=0)


class TestThroughputCollapseDetector:
    def test_fires_on_sustained_collapse(self):
        det = ThroughputCollapseDetector(
            series="gflops", fraction=0.25, min_history=4, patience=2
        )
        bank = SeriesBank()
        s = bank.series("gflops")
        events = []
        for i in range(6):
            s.append(float(i), 100.0)
            events += det.update(bank, float(i))
        assert events == []
        for i in range(6, 9):
            s.append(float(i), 5.0)  # 5% of the median
            events += det.update(bank, float(i))
        assert len(events) == 1
        assert events[0].kind == "throughput_collapse"
        assert events[0].severity == "critical"
        assert events[0].ranks == ()

    def test_single_dip_is_ignored(self):
        det = ThroughputCollapseDetector(min_history=4, patience=2)
        bank = SeriesBank()
        s = bank.series("gflops")
        for i in range(6):
            s.append(float(i), 100.0)
            det.update(bank, float(i))
        s.append(6.0, 1.0)
        assert det.update(bank, 6.0) == []  # patience not met
        s.append(7.0, 100.0)
        assert det.update(bank, 7.0) == []  # recovered


class TestCommStallDetector:
    def test_fires_when_bytes_stuck_and_nobody_computes(self):
        det = CommStallDetector(patience=2)
        bank = SeriesBank()
        # progress phase
        for i in range(2):
            t = float(i)
            bank.series("bytes_in_flight").append(t, 0.0)
            bank.series("steps_min").append(t, float(i))
            _feed_busy(bank, t, [1.0, 1.0])
        # stall: bytes pending, steps frozen, busy flat
        events = []
        for i in range(2, 6):
            t = float(i)
            bank.series("bytes_in_flight").append(t, 4096.0)
            bank.series("steps_min").append(t, 1.0)
            _feed_busy(bank, t, [0.0, 0.0])
            events += det.update(bank, t)
        assert len(events) == 1
        assert events[0].kind == "comm_stall"
        assert events[0].attrs["bytes_in_flight"] == 4096.0

    def test_quiet_when_compute_continues(self):
        det = CommStallDetector(patience=2)
        bank = SeriesBank()
        for i in range(6):
            t = float(i)
            bank.series("bytes_in_flight").append(t, 4096.0)
            bank.series("steps_min").append(t, 1.0)
            _feed_busy(bank, t, [1.0, 1.0])  # still busy: overlap, not stall
            assert det.update(bank, t) == []


class TestLimplockDetector:
    def test_flags_lagging_but_computing_rank(self):
        det = LimplockDetector(lag_steps=2, window=1, patience=2)
        bank = SeriesBank()
        events = []
        for i in range(8):
            t = float(i)
            _feed_busy(bank, t, [1.0, 1.0, 0.4])
            # rank 2 falls ever further behind the fleet's step count
            bank.series("steps", rank=0).append(t, float(i))
            bank.series("steps", rank=1).append(t, float(i))
            bank.series("steps", rank=2).append(t, float(i) / 4)
            events += det.update(bank, t)
        assert len(events) == 1
        assert events[0].kind == "limplock"
        assert events[0].ranks == (2,)
        assert events[0].severity == "critical"
        assert events[0].attrs["lag_steps"] >= 2

    def test_dead_rank_is_not_limplock(self):
        # a rank that stopped computing entirely is a deadlock/stall
        # case, not a limper
        det = LimplockDetector(lag_steps=2, window=1, patience=2)
        bank = SeriesBank()
        for i in range(8):
            t = float(i)
            _feed_busy(bank, t, [1.0, 1.0, 0.0])
            bank.series("steps", rank=0).append(t, float(i))
            bank.series("steps", rank=1).append(t, float(i))
            bank.series("steps", rank=2).append(t, 0.0)
            assert det.update(bank, t) == []


class TestDefaultSuite:
    def test_default_detectors_cover_all_kinds(self):
        kinds = {d.kind for d in default_detectors()}
        assert kinds == {
            "straggler_drift", "throughput_collapse", "comm_stall",
            "limplock",
        }


class TestEndToEnd:
    """The ISSUE acceptance scenarios on real simulated runs."""

    def test_injected_straggler_is_flagged(self):
        cfg = _cfg()
        obs = Observability(health=HealthMonitor())
        mult = [1.0] * cfg.num_ranks
        mult[1] = 1.0 / 1.5  # tools/slownode-style 1.5x slow GCD
        res = simulate_run(cfg, rate_multipliers=mult, obs=obs)
        rep = res.health
        assert rep is not None
        kinds = {f["kind"] for f in rep.findings}
        assert "straggler_drift" in kinds
        assert rep.degraded_ranks == [1]
        # flagged online, well before the run ended
        onset = min(
            f["t_s"] for f in rep.findings
            if f["kind"] == "straggler_drift"
        )
        assert onset < res.elapsed
        # findings also landed in the trace stream as health spans
        health_spans = [s for s in obs.tracer.spans if s.cat == "health"]
        assert health_spans
        assert health_spans[0].name.startswith("health.")

    def test_clean_run_has_zero_findings(self):
        cfg = _cfg()
        obs = Observability(health=HealthMonitor())
        res = simulate_run(cfg, obs=obs)
        rep = res.health
        assert rep.findings == []
        assert rep.degraded_ranks == []
        assert rep.healthy
        assert rep.num_samples > 10
        assert rep.num_ranks == cfg.num_ranks

    def test_unmonitored_run_has_no_health_report(self):
        cfg = _cfg()
        obs = Observability()
        res = simulate_run(cfg, obs=obs)
        assert res.health is None

    def test_monitor_collects_collectives_and_series(self):
        cfg = _cfg()
        monitor = HealthMonitor()
        obs = Observability(health=monitor)
        simulate_run(cfg, obs=obs)
        assert monitor.collectives_seen > 0
        bank = monitor.bank
        for name in ("queue_depth", "events", "bytes_in_flight",
                     "steps_min", "cache_hit_ratio"):
            assert name in bank, name
        assert set(bank.rank_series("busy_s")) == set(range(cfg.num_ranks))
        # steps advanced to completion on every rank
        for s in bank.rank_series("steps").values():
            assert s.last[1] == cfg.num_blocks
