"""Tests for engine timeline recording and Gantt rendering."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.simulate import Compute, Engine, Recv, Send
from repro.simulate.timeline import busy_fraction, render_gantt, timeline_to_csv


def _run_with_timeline():
    def prog(rank):
        yield Compute("gemm", 0.01 * (rank + 1))
        if rank == 0:
            yield Send(1, np.ones(4), tag=0)
        elif rank == 1:
            _ = yield Recv(0, tag=0)
        yield Compute("trsm", 0.005)
        return None

    engine = Engine(2, CommCosts(SUMMIT), record_timeline=True)
    result = engine.run(prog)
    return engine, result


class TestRecording:
    def test_spans_recorded(self):
        engine, result = _run_with_timeline()
        kinds = {k for _r, _s, _e, k in engine.timeline}
        assert "gemm" in kinds and "trsm" in kinds
        # rank 1 waited for rank 0's slower... rank 1 computes longer, so
        # wait may be zero; at minimum every span is well-formed.
        for rank, s, e, kind in engine.timeline:
            assert 0 <= s <= e <= result.elapsed + 1e-12
            assert rank in (0, 1)

    def test_off_by_default(self):
        def prog(rank):
            yield Compute("gemm", 0.01)
            return None

        engine = Engine(1, CommCosts(SUMMIT))
        engine.run(prog)
        assert engine.timeline == []

    def test_benchmark_run_timeline(self):
        from repro.core.config import BenchmarkConfig
        from repro.core.executors import PhantomExecutor
        from repro.core.hplai import hplai_rank_program

        cfg = BenchmarkConfig(n=3072 * 4, block=3072, machine=FRONTIER,
                              p_rows=2, p_cols=2)
        engine = Engine(
            4, CommCosts(FRONTIER), node_of_rank=cfg.node_grid.node_of_rank,
            mpi=FRONTIER.mpi, record_timeline=True,
        )

        def factory(rank):
            pir, pic = cfg.grid.coords_of(rank)
            return hplai_rank_program(
                cfg, PhantomExecutor(cfg, pir, pic, rank), rank, None
            )

        result = engine.run(factory)
        kinds = {k for _r, _s, _e, k in engine.timeline}
        assert {"gemm", "getrf", "trsm"} <= kinds
        frac = busy_fraction(engine.timeline, result.elapsed)
        assert set(frac) == {0, 1, 2, 3}
        assert all(0 < v <= 1 for v in frac.values())


class TestRendering:
    def test_gantt_rows_and_legend(self):
        engine, _res = _run_with_timeline()
        out = render_gantt(engine.timeline, width=40)
        assert out.splitlines()[1].startswith("r0  |")
        assert "legend:" in out
        assert "#" in out  # gemm glyph

    def test_gantt_window_and_rank_selection(self):
        engine, res = _run_with_timeline()
        out = render_gantt(engine.timeline, width=20, ranks=[1],
                           t0=0.0, t1=res.elapsed)
        assert "r1" in out and "r0 " not in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_gantt([])
        with pytest.raises(ConfigurationError):
            timeline_to_csv([], "/tmp/never.csv")
        with pytest.raises(ConfigurationError):
            busy_fraction([(0, 0.0, 1.0, "gemm")], 0.0)

    def test_csv_roundtrip(self, tmp_path):
        engine, _res = _run_with_timeline()
        path = timeline_to_csv(engine.timeline, tmp_path / "tl.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# legend: ")
        assert lines[1] == "rank,start_s,end_s,kind"
        assert len(lines) == len(engine.timeline) + 2
        # every kind present in the data is documented in the legend
        kinds = {row[3] for row in (ln.split(",") for ln in lines[2:])}
        for kind in kinds:
            assert f"{kind}=" in lines[0]
