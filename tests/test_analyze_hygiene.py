"""``hygiene`` checker tests: small patterns, big blast radius."""

from repro.analyze.checkers.hygiene import HygieneChecker
from repro.analyze.findings import Severity
from repro.analyze.framework import SourceModule


def _lint(text, path="snippet.py"):
    module = SourceModule.parse(path, text)
    return list(HygieneChecker().check(module))


class TestExceptHandlers:
    def test_bare_except_is_an_error(self):
        findings = _lint("try:\n    pass\nexcept:\n    pass\n")
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "bare `except:`" in findings[0].message

    def test_blanket_exception_is_a_warning(self):
        findings = _lint("try:\n    pass\nexcept Exception:\n    pass\n")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING

    def test_blanket_base_exception_is_a_warning(self):
        findings = _lint("try:\n    pass\nexcept BaseException:\n    pass\n")
        assert len(findings) == 1

    def test_narrow_handler_is_clean(self):
        findings = _lint("try:\n    pass\n"
                         "except (ValueError, KeyError) as exc:\n"
                         "    raise RuntimeError('x') from exc\n")
        assert findings == []


class TestMutableDefaults:
    def test_list_literal_default_is_an_error(self):
        findings = _lint("def f(xs=[]):\n    return xs\n")
        assert len(findings) == 1
        assert "mutable default" in findings[0].message
        assert "'f'" in findings[0].message

    def test_ctor_call_default_is_an_error(self):
        findings = _lint("def f(cache=dict()):\n    return cache\n")
        assert len(findings) == 1

    def test_kwonly_default_checked(self):
        findings = _lint("def f(*, xs=set()):\n    return xs\n")
        assert len(findings) == 1

    def test_none_default_is_clean(self):
        findings = _lint("def f(xs=None):\n    return xs or []\n")
        assert findings == []

    def test_immutable_defaults_are_clean(self):
        findings = _lint("def f(n=0, name='x', dims=(2, 3)):\n"
                         "    return n\n")
        assert findings == []


class TestCommGeneratorCalls:
    def test_call_without_yield_from_is_an_error(self):
        # The quietest deadlock: building a generator and dropping it.
        findings = _lint("def prog(comm, peer, x):\n"
                         "    comm.send(peer, x, 7)\n")
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "yield from" in findings[0].message

    def test_assigned_generator_is_still_an_error(self):
        findings = _lint("def prog(comm, peer):\n"
                         "    msg = comm.recv(peer, 7)\n"
                         "    return msg\n")
        assert len(findings) == 1

    def test_yield_from_is_clean(self):
        findings = _lint("def prog(comm, peer, x):\n"
                         "    yield from comm.send(peer, x, 7)\n"
                         "    msg = yield from comm.recv(peer, 7)\n"
                         "    return msg\n")
        assert findings == []

    def test_non_comm_objects_are_ignored(self):
        findings = _lint("def prog(queue, x):\n"
                         "    queue.send(x)\n")
        assert findings == []

    def test_suffix_comm_names_are_covered(self):
        findings = _lint("def prog(row_comm, peer, x):\n"
                         "    row_comm.send(peer, x, 7)\n")
        assert len(findings) == 1
