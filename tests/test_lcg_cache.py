"""Tests for the bounded shared LCG tile cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lcg.cache import TileCache, clear_tile_cache, tile_cache
from repro.lcg.matrix import HplAiMatrix


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_tile_cache()
    yield
    clear_tile_cache()


class TestTileCacheMechanics:
    def test_put_get_roundtrip(self):
        c = TileCache(max_bytes=1 << 20)
        key = (8, 1, 2, 3, 0, 4, 0, 8)
        a = np.arange(32.0).reshape(4, 8)
        c.put(key, a)
        got = c.get(key)
        np.testing.assert_array_equal(got, a)
        assert not got.flags.writeable  # stored entries are frozen

    def test_miss_returns_none_and_counts(self):
        c = TileCache()
        assert c.get((1, 2, 3, 4, 0, 1, 0, 1)) is None
        assert c.stats()["misses"] == 1

    def test_byte_budget_enforced_lru(self):
        row = np.zeros((1, 128))  # 1 KiB each
        c = TileCache(max_bytes=4 * row.nbytes)
        keys = [(i, 0, 0, 0, 0, 1, 0, 128) for i in range(6)]
        for k in keys:
            c.put(k, row)
        assert c.total_bytes <= c.max_bytes
        assert len(c) == 4
        # Oldest two were evicted, newest four retained.
        assert c.get(keys[0]) is None and c.get(keys[1]) is None
        assert c.get(keys[5]) is not None
        assert c.stats()["evictions"] == 2

    def test_get_refreshes_lru_order(self):
        row = np.zeros((1, 128))
        c = TileCache(max_bytes=2 * row.nbytes)
        k1, k2, k3 = [(i, 0, 0, 0, 0, 1, 0, 128) for i in range(3)]
        c.put(k1, row)
        c.put(k2, row)
        c.get(k1)  # refresh: k2 becomes the eviction victim
        c.put(k3, row)
        assert c.get(k1) is not None
        assert c.get(k2) is None

    def test_oversized_entry_skipped(self):
        c = TileCache(max_bytes=64)
        c.put((0,) * 8, np.zeros(1024))
        assert len(c) == 0

    def test_zero_budget_disables_retention(self):
        c = TileCache(max_bytes=0)
        c.put((0,) * 8, np.zeros(4))
        assert len(c) == 0 and c.total_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            TileCache(max_bytes=-1)
        with pytest.raises(ConfigurationError):
            TileCache().resize(-5)

    def test_resize_shrink_evicts(self):
        row = np.zeros((1, 128))
        c = TileCache(max_bytes=4 * row.nbytes)
        for i in range(4):
            c.put((i, 0, 0, 0, 0, 1, 0, 128), row)
        c.resize(2 * row.nbytes)
        assert len(c) == 2 and c.total_bytes <= c.max_bytes


class TestMatrixCacheIntegration:
    def test_cached_blocks_bitwise_identical(self):
        m_cached = HplAiMatrix(64, 7)
        m_direct = HplAiMatrix(64, 7, use_cache=False)
        cold = m_cached.block(0, 16, 0, 64)   # populates
        warm = m_cached.block(0, 16, 0, 64)   # hits
        direct = m_direct.block(0, 16, 0, 64)
        np.testing.assert_array_equal(cold, direct)
        np.testing.assert_array_equal(warm, direct)
        assert tile_cache().stats()["hits"] >= 1

    def test_shared_across_instances(self):
        HplAiMatrix(64, 7).block(0, 16, 0, 64)
        before = tile_cache().stats()["hits"]
        HplAiMatrix(64, 7).block(0, 16, 0, 64)  # same matrix, new object
        assert tile_cache().stats()["hits"] == before + 1

    def test_distinct_matrices_do_not_collide(self):
        a = HplAiMatrix(64, 7).block(0, 8, 0, 64)
        b = HplAiMatrix(64, 8).block(0, 8, 0, 64)  # different seed
        assert not np.array_equal(a, b)

    def test_returned_arrays_are_private_copies(self):
        m = HplAiMatrix(64, 7)
        first = m.block(0, 8, 0, 64)
        first[0, 0] = 1e9  # caller scribbles on its copy
        again = m.block(0, 8, 0, 64)
        assert again[0, 0] != 1e9
        assert again.flags.writeable

    def test_non_fp64_request_from_cache(self):
        m = HplAiMatrix(64, 7)
        ref = m.block(0, 8, 0, 64).astype(np.float32)
        m.block(0, 8, 0, 64)  # ensure cached
        np.testing.assert_array_equal(
            m.block(0, 8, 0, 64, dtype=np.float32), ref
        )

    def test_use_cache_false_bypasses(self):
        m = HplAiMatrix(64, 7, use_cache=False)
        m.block(0, 8, 0, 64)
        m.block(0, 8, 0, 64)
        s = tile_cache().stats()
        assert s["entries"] == 0 and s["hits"] == 0 and s["misses"] == 0

    def test_bounded_memory_under_sweep(self):
        """A band sweep far larger than the budget stays within it."""
        from repro.lcg.cache import configure_tile_cache

        band_bytes = 8 * 64 * 8  # one 8x64 FP64 band
        configure_tile_cache(3 * band_bytes)
        try:
            m = HplAiMatrix(64, 7)
            for g in range(8):
                m.block(g * 8, (g + 1) * 8, 0, 64)
            s = tile_cache().stats()
            assert s["bytes"] <= s["max_bytes"]
            assert s["evictions"] >= 5
            # Evicted bands regenerate identically.
            np.testing.assert_array_equal(
                m.block(0, 8, 0, 64),
                HplAiMatrix(64, 7, use_cache=False).block(0, 8, 0, 64),
            )
        finally:
            from repro.lcg.cache import DEFAULT_MAX_BYTES

            configure_tile_cache(DEFAULT_MAX_BYTES)


class TestCacheObservability:
    """Cache events mirror into the obs metrics registry when enabled."""

    def test_hits_misses_evictions_counted(self):
        from repro.obs import Observability, use

        obs = Observability()
        with use(obs):
            row = np.zeros((1, 128))
            c = TileCache(max_bytes=2 * row.nbytes)
            k1 = (1, 1, 1, 1, 0, 1, 0, 128)
            k2 = (2, 2, 2, 2, 0, 1, 0, 128)
            k3 = (3, 3, 3, 3, 0, 1, 0, 128)
            c.get(k1)            # miss
            c.put(k1, row)
            c.get(k1)            # hit
            c.put(k2, row)
            c.put(k3, row)       # evicts k1

        def val(event):
            return obs.metrics.counter("lcg.tile_cache", event=event).value

        assert val("miss") == 1
        assert val("hit") == 1
        assert val("eviction") == 1
        # the cache's own counters agree
        assert c.stats()["hits"] == 1
        assert c.stats()["evictions"] == 1

    def test_disabled_handle_records_nothing(self):
        from repro.obs import context as obs_context

        assert not obs_context.current().enabled  # module default
        c = TileCache()
        c.get((9, 9, 9, 9, 0, 1, 0, 1))
        assert c.stats()["misses"] == 1  # plain counters still work
