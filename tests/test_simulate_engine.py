"""Tests for the discrete-event SPMD engine."""

import numpy as np
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.simulate import (
    Allreduce,
    Barrier,
    Compute,
    Engine,
    Irecv,
    Isend,
    Now,
    PhantomArray,
    Recv,
    Reduce,
    Send,
    Wait,
    nbytes_of,
)


def _engine(n, machine=SUMMIT, node_of=None, **kw):
    return Engine(n, CommCosts(machine), node_of_rank=node_of, **kw)


class TestPhantom:
    def test_nbytes(self):
        p = PhantomArray((100, 50), np.float16)
        assert p.nbytes == 100 * 50 * 2
        assert p.T.shape == (50, 100)
        assert p.astype(np.float32).nbytes == 2 * p.nbytes

    def test_reshape(self):
        p = PhantomArray((6, 4), np.float32)
        assert p.reshape(24).shape == (24,)
        with pytest.raises(Exception):
            p.reshape(5, 5)

    def test_no_data_access(self):
        with pytest.raises(Exception):
            np.asarray(PhantomArray((2,), np.float64))

    def test_nbytes_of_payloads(self):
        assert nbytes_of(None) == 0
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
        assert nbytes_of(PhantomArray((10,), np.float16)) == 20
        assert nbytes_of(3.14) == 8
        assert nbytes_of((1, np.zeros(4))) > 32


class TestBasicOps:
    def test_compute_advances_clock(self):
        def prog(rank):
            yield Compute("gemm", 2.0)
            yield Compute("trsm", 1.0)
            return "done"

        res = _engine(1).run(prog)
        assert res.elapsed == pytest.approx(3.0)
        assert res.returns == ["done"]
        assert res.stats[0].times["gemm"] == pytest.approx(2.0)

    def test_send_recv_moves_real_data(self):
        def prog(rank):
            if rank == 0:
                data = np.arange(5, dtype=np.float64)
                yield Send(1, data, tag=7)
                return None
            got = yield Recv(0, tag=7)
            return got

        res = _engine(2).run(prog)
        np.testing.assert_array_equal(res.returns[1], np.arange(5.0))

    def test_send_copies_buffer(self):
        # Mutating after a nonblocking send must not affect the receiver.
        def prog(rank):
            if rank == 0:
                data = np.ones(4)
                h = yield Isend(1, data, tag=1)
                data[:] = -1
                yield Wait(h)
                return None
            return (yield Recv(0, tag=1))

        res = _engine(2).run(prog)
        np.testing.assert_array_equal(res.returns[1], np.ones(4))

    def test_message_order_fifo(self):
        def prog(rank):
            if rank == 0:
                for i in range(5):
                    yield Send(1, i, tag=3)
                return None
            got = []
            for _ in range(5):
                got.append((yield Recv(0, tag=3)))
            return got

        assert _engine(2).run(prog).returns[1] == [0, 1, 2, 3, 4]

    def test_recv_waits_for_arrival(self):
        # 100 MB across nodes at 25 GB/s (summit, bound) ~ 4 ms.
        payload = PhantomArray((100 * 2**20,), np.uint8)

        def prog(rank):
            if rank == 0:
                yield Send(1, payload, tag=0)
                return None
            yield Recv(0, tag=0)
            return (yield Now())

        res = _engine(2, node_of=lambda r: r).run(prog)
        expected = payload.nbytes / CommCosts(SUMMIT).node_nic_bw
        assert res.returns[1] == pytest.approx(expected, rel=0.05)
        assert res.stats[1].times["wait_recv"] > 0

    def test_intra_node_faster_than_inter(self):
        payload = PhantomArray((2**24,), np.uint8)

        def prog(rank):
            if rank == 0:
                yield Send(1, payload, tag=0)
                return None
            yield Recv(0, tag=0)
            return (yield Now())

        t_intra = _engine(2, node_of=lambda r: 0).run(prog).returns[1]
        t_inter = _engine(2, node_of=lambda r: r).run(prog).returns[1]
        assert t_intra < t_inter

    def test_irecv_wait(self):
        def prog(rank):
            if rank == 0:
                yield Compute("x", 1.0)
                yield Send(1, 42, tag=9)
                return None
            h = yield Irecv(0, tag=9)
            yield Compute("y", 0.1)
            return (yield Wait(h))

        assert _engine(2).run(prog).returns[1] == 42

    def test_now(self):
        def prog(rank):
            t0 = yield Now()
            yield Compute("k", 1.5)
            t1 = yield Now()
            return t1 - t0

        assert _engine(1).run(prog).returns[0] == pytest.approx(1.5)


class TestContention:
    def test_nic_sharing_serializes(self):
        # Two ranks on node 0 each send 50 MB to distinct ranks on node 1:
        # the shared egress NIC must roughly double the finish time
        # relative to a single send (eq. 5's mechanism).
        payload = PhantomArray((50 * 2**20,), np.uint8)

        def node_of(r):
            return 0 if r < 2 else 1

        def prog_two(rank):
            if rank < 2:
                yield Send(rank + 2, payload, tag=0)
                return None
            yield Recv(rank - 2, tag=0)
            return (yield Now())

        res = Engine(4, CommCosts(SUMMIT), node_of_rank=node_of).run(prog_two)
        t_two = max(res.returns[2], res.returns[3])

        def prog_one(rank):
            if rank == 0:
                yield Send(2, payload, tag=0)
            elif rank == 2:
                yield Recv(0, tag=0)
                return (yield Now())
            return None

        res1 = Engine(4, CommCosts(SUMMIT), node_of_rank=node_of).run(prog_one)
        t_one = res1.returns[2]
        assert t_two > 1.8 * t_one

    def test_isend_overlaps_compute(self):
        # Nonblocking send lets compute proceed while the wire is busy.
        payload = PhantomArray((100 * 2**20,), np.uint8)
        xfer = payload.nbytes / CommCosts(SUMMIT).node_nic_bw

        def prog(rank):
            if rank == 0:
                h = yield Isend(1, payload, tag=0)
                yield Compute("gemm", xfer)  # overlaps the transfer
                yield Wait(h)
                return (yield Now())
            yield Recv(0, tag=0)
            return None

        res = _engine(2, node_of=lambda r: r).run(prog)
        # Total ~ xfer (overlapped), not 2*xfer (serialized).
        assert res.returns[0] < 1.5 * xfer

    def test_speed_factor_scales_transfer(self):
        payload = PhantomArray((2**26,), np.uint8)

        def make(speed):
            def prog(rank):
                if rank == 0:
                    yield Send(1, payload, tag=0, speed=speed)
                    return None
                yield Recv(0, tag=0)
                return (yield Now())
            return prog

        slow = _engine(2, node_of=lambda r: r).run(make(0.5)).returns[1]
        fast = _engine(2, node_of=lambda r: r).run(make(2.0)).returns[1]
        assert slow > 3.0 * fast


class TestCollectives:
    def test_barrier_aligns_clocks(self):
        def prog(rank):
            yield Compute("w", float(rank))
            yield Barrier((0, 1, 2))
            return (yield Now())

        res = _engine(3).run(prog)
        assert res.returns[0] == res.returns[1] == res.returns[2]
        assert res.returns[0] >= 2.0

    def test_allreduce_sums_arrays(self):
        def prog(rank):
            vec = np.full(4, float(rank + 1))
            return (yield Allreduce((0, 1, 2), vec))

        res = _engine(3).run(prog)
        for r in range(3):
            np.testing.assert_array_equal(res.returns[r], np.full(4, 6.0))

    def test_allreduce_phantom_stays_phantom(self):
        def prog(rank):
            return (yield Allreduce((0, 1), PhantomArray((8,), np.float64)))

        res = _engine(2).run(prog)
        assert isinstance(res.returns[0], PhantomArray)

    def test_reduce_to_root(self):
        def prog(rank):
            return (yield Reduce((0, 1, 2, 3), 2, float(rank)))

        res = _engine(4).run(prog)
        assert res.returns[2] == pytest.approx(6.0)
        assert res.returns[0] is None

    def test_successive_collectives_dont_mix(self):
        def prog(rank):
            a = yield Allreduce((0, 1), 1.0)
            b = yield Allreduce((0, 1), 10.0)
            return (a, b)

        res = _engine(2).run(prog)
        assert res.returns[0] == (2.0, 20.0)


class TestFaults:
    def test_deadlock_detected(self):
        def prog(rank):
            yield Recv(1 - rank, tag=0)  # both wait, nobody sends

        with pytest.raises(DeadlockError):
            _engine(2).run(prog)

    def test_invalid_destination(self):
        def prog(rank):
            yield Send(5, 1, tag=0)

        with pytest.raises(SimulationError):
            _engine(2).run(prog)

    def test_negative_compute_rejected(self):
        def prog(rank):
            yield Compute("x", -1.0)

        with pytest.raises(SimulationError):
            _engine(1).run(prog)

    def test_unknown_op_rejected(self):
        def prog(rank):
            yield "not an op"

        with pytest.raises(SimulationError):
            _engine(1).run(prog)

    def test_max_events_guard(self):
        def prog(rank):
            while True:
                yield Compute("spin", 0.001)

        with pytest.raises(SimulationError):
            _engine(1, max_events=100).run(prog)

    def test_bad_rate_multipliers(self):
        with pytest.raises(SimulationError):
            Engine(2, CommCosts(SUMMIT), rate_multipliers=[1.0])
        with pytest.raises(SimulationError):
            Engine(2, CommCosts(SUMMIT), rate_multipliers=[1.0, 0.0])


class TestVariability:
    def test_slow_gcd_takes_longer(self):
        def prog(rank):
            yield Compute("gemm", 1.0)
            return (yield Now())

        res = Engine(
            2, CommCosts(FRONTIER), rate_multipliers=[1.0, 0.5]
        ).run(prog)
        assert res.returns[0] == pytest.approx(1.0)
        assert res.returns[1] == pytest.approx(2.0)

    def test_stats_totals(self):
        def prog(rank):
            if rank == 0:
                yield Compute("gemm", 1.0)
                yield Send(1, np.zeros(1000), tag=0)
                return None
            yield Recv(0, tag=0)
            return None

        res = _engine(2).run(prog)
        assert res.stats[0].bytes_sent == 8000
        assert res.stats[0].messages_sent == 1
        assert res.stats[0].total_compute >= 1.0
        assert res.stats[1].total_wait > 0


class TestMailboxHygiene:
    def test_clean_program_drains_mailboxes(self):
        def prog(rank):
            if rank == 0:
                yield Send(1, 1.0, tag=0)
                return None
            return (yield Recv(0, tag=0))

        res = _engine(2).run(prog)
        assert res.undelivered == 0

    def test_leaked_message_reported(self):
        def prog(rank):
            if rank == 0:
                yield Send(1, 1.0, tag=0)
                yield Send(1, 2.0, tag=0)  # never received
            else:
                yield Recv(0, tag=0)
            return None

        res = _engine(2).run(prog)
        assert res.undelivered == 1

    def test_full_benchmark_drains_mailboxes(self):
        from repro.core.config import BenchmarkConfig
        from repro.core.driver import run_benchmark
        from repro.machine import FRONTIER as _F

        cfg = BenchmarkConfig(n=3072 * 4, block=3072, machine=_F,
                              p_rows=2, p_cols=2)
        res = run_benchmark(cfg, exact=False)
        # The engine's undelivered count is surfaced via engine_events
        # bookkeeping; re-run at engine level for the assertion.
        from repro.core.executors import PhantomExecutor
        from repro.core.hplai import hplai_rank_program
        from repro.machine.topology import CommCosts as _CC

        eng = Engine(4, _CC(_F), node_of_rank=cfg.node_grid.node_of_rank,
                     mpi=_F.mpi)

        def factory(rank):
            pir, pic = cfg.grid.coords_of(rank)
            return hplai_rank_program(
                cfg, PhantomExecutor(cfg, pir, pic, rank), rank, None
            )

        out = eng.run(factory)
        assert out.undelivered == 0


class TestCollectiveValidation:
    def test_shape_mismatch_rejected(self):
        def prog(rank):
            vec = np.ones(4 if rank == 0 else 5)
            return (yield Allreduce((0, 1), vec))

        with pytest.raises(SimulationError):
            _engine(2).run(prog)

    def test_matching_shapes_fine(self):
        def prog(rank):
            return (yield Allreduce((0, 1), np.ones(4)))

        res = _engine(2).run(prog)
        np.testing.assert_array_equal(res.returns[0], 2 * np.ones(4))
