"""Edge-case tests for ProgressMonitor and PowerModel (paper VI-B)."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError, EarlyTerminationError
from repro.machine import get_machine
from repro.obs import Observability, use
from repro.tools.monitor import PowerModel, ProgressMonitor


def _cfg(num_blocks=12):
    block = 32
    return BenchmarkConfig(
        n=block * 2 * (num_blocks // 2), block=block,
        machine=get_machine("summit"), p_rows=2, p_cols=2,
    )


def _monitor(**kwargs):
    defaults = dict(tolerance=0.5, patience=3, report_every=2)
    defaults.update(kwargs)
    return ProgressMonitor(_cfg(), **defaults)


class TestProgressMonitorEdges:
    def test_zero_report_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            _monitor(report_every=0)
        with pytest.raises(ConfigurationError):
            _monitor(patience=0)
        with pytest.raises(ConfigurationError):
            _monitor(tolerance=0.0)

    def test_negative_measurement_rejected(self):
        with pytest.raises(ConfigurationError):
            _monitor().observe(0, -1.0)

    def test_no_report_between_intervals(self):
        mon = _monitor(report_every=4)
        assert mon.observe(0, mon.expected_iteration_s(0)) is None
        assert mon.observe(1, mon.expected_iteration_s(1)) is None

    def test_final_partial_window_reports(self):
        """The last iteration reports even off the report_every stride."""
        mon = _monitor(report_every=10)
        nb = mon.cfg.num_blocks
        report = None
        for k in range(nb):
            report = mon.observe(k, mon.expected_iteration_s(k))
        assert report is not None
        assert report.iteration == nb - 1
        assert report.healthy

    def test_recovery_resets_unhealthy_streak(self):
        """A healthy interval after a transient slowdown resets patience."""
        mon = _monitor(patience=2, report_every=1, tolerance=0.5)
        slow, ok = 10.0, 1.0
        mon.observe(0, slow * mon.expected_iteration_s(0))   # unhealthy 1
        mon.observe(1, ok * mon.expected_iteration_s(1))     # recovery
        # another single unhealthy interval must NOT terminate
        report = mon.observe(2, slow * mon.expected_iteration_s(2))
        assert not report.healthy
        assert mon._unhealthy_streak == 1

    def test_terminates_only_after_consecutive_count(self):
        mon = _monitor(patience=3, report_every=1, tolerance=0.5)
        for k in range(2):
            mon.observe(k, 10.0 * mon.expected_iteration_s(k))
        with pytest.raises(EarlyTerminationError) as exc:
            mon.observe(2, 10.0 * mon.expected_iteration_s(2))
        assert exc.value.iteration == 2
        assert len(mon.reports) == 3

    def test_observe_emits_monitor_metrics(self):
        obs = Observability()
        with use(obs):
            mon = _monitor(report_every=1)
            mon.observe(0, 10.0 * mon.expected_iteration_s(0))
        assert obs.metrics.counter("monitor.reports").value == 1
        assert obs.metrics.counter("monitor.unhealthy_reports").value == 1
        assert obs.metrics.gauge("monitor.slowdown").value > 0.5

    def test_watch_result_requires_trace(self):
        from repro.core.driver import RunResult

        mon = _monitor()
        res = RunResult(
            config=mon.cfg, elapsed=1.0, elapsed_factorization=1.0,
            elapsed_refinement=0.0, gflops_per_gcd=1.0,
            total_flops_per_s=1.0, ir_iterations=0, ir_converged=True,
            exact=False, trace=[],
        )
        with pytest.raises(ConfigurationError):
            mon.watch_result(res)


class TestPowerModel:
    def test_energy_over_empty_timeline_is_pure_idle(self):
        pm = PowerModel(busy_watts=300.0, idle_watts=90.0)
        mj = pm.energy_from_spans([], elapsed=100.0, num_ranks=4)
        assert mj == pytest.approx(4 * 100.0 * 90.0 / 1e6)

    def test_zero_elapsed_empty_timeline(self):
        pm = PowerModel()
        assert pm.energy_from_spans([], elapsed=0.0, num_ranks=8) == 0.0

    def test_busy_spans_integrate(self):
        pm = PowerModel(busy_watts=200.0, idle_watts=100.0)
        timeline = [
            (0, 0.0, 6.0, "gemm"),          # 6 s busy
            (0, 6.0, 10.0, "wait_recv"),    # waits are idle draw
            (1, 0.0, 2.0, "getrf"),         # 2 s busy
        ]
        mj = pm.energy_from_spans(timeline, elapsed=10.0, num_ranks=2)
        expected = (6 * 200 + 4 * 100) + (2 * 200 + 8 * 100)
        assert mj == pytest.approx(expected / 1e6)

    def test_accepts_span_objects(self):
        from repro.obs.tracer import SpanTracer

        tr = SpanTracer()
        tr.add("gemm", "executor", 0.0, 5.0, rank=0)
        tr.add("wait_recv", "engine", 5.0, 10.0, rank=0)
        pm = PowerModel(busy_watts=300.0, idle_watts=90.0)
        mj = pm.energy_from_spans(tr, elapsed=10.0, num_ranks=1)
        assert mj == pytest.approx((5 * 300 + 5 * 90) / 1e6)

    def test_validation(self):
        pm = PowerModel()
        with pytest.raises(ConfigurationError):
            pm.energy_from_spans([], elapsed=-1.0, num_ranks=1)
        with pytest.raises(ConfigurationError):
            pm.energy_from_spans([], elapsed=1.0, num_ranks=0)
        with pytest.raises(ConfigurationError):
            pm.energy_joules(-1.0, 0.0)
