"""Tests for run-report serialization."""

import json

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run, solve_hplai
from repro.core.report import (
    compare_reports,
    load_report,
    load_trace_csv,
    run_report,
    save_report,
    save_trace_csv,
)
from repro.errors import ConfigurationError
from repro.machine import FRONTIER
from repro.model.perf_model import estimate_run


@pytest.fixture(scope="module")
def phantom_result():
    cfg = BenchmarkConfig(
        n=3072 * 8, block=3072, machine=FRONTIER, p_rows=2, p_cols=2
    )
    return simulate_run(cfg)


class TestRunReport:
    def test_event_report_fields(self, phantom_result):
        rep = run_report(phantom_result)
        assert rep["kind"] == "event"
        assert rep["config"]["machine"] == "frontier"
        assert rep["gflops_per_gcd"] > 0
        assert "gemm" in rep["components"]
        assert rep["bytes_sent_total"] > 0

    def test_exact_report_has_residual(self):
        res = solve_hplai(n=64, block=16, p_rows=2, p_cols=2)
        rep = run_report(res)
        assert rep["kind"] == "exact"
        assert rep["residual_norm"] < 1e-12

    def test_analytic_report(self):
        cfg = BenchmarkConfig(
            n=3072 * 8, block=3072, machine=FRONTIER, p_rows=2, p_cols=2
        )
        rep = run_report(estimate_run(cfg))
        assert rep["kind"] == "analytic"
        assert "breakdown_s" in rep

    def test_json_roundtrip(self, phantom_result, tmp_path):
        path = save_report(phantom_result, tmp_path / "run.json")
        loaded = load_report(path)
        assert loaded == json.loads(path.read_text())
        assert loaded["elapsed_s"] == pytest.approx(phantom_result.elapsed)

    def test_nan_residual_serializes_as_null(self, phantom_result, tmp_path):
        """Phantom runs carry a NaN residual; the report must still be
        strict JSON (NaN is not valid JSON and breaks json.loads in
        strict parsers)."""
        import math

        assert math.isnan(phantom_result.residual_norm)
        path = save_report(phantom_result, tmp_path / "run.json")
        text = path.read_text()
        assert "NaN" not in text
        loaded = json.loads(
            text, parse_constant=lambda s: pytest.fail(f"bare {s} token")
        )
        assert loaded["residual_norm"] is None


class TestTraceCsv:
    def test_roundtrip(self, phantom_result, tmp_path):
        path = save_trace_csv(phantom_result, tmp_path / "trace.csv")
        back = load_trace_csv(path)
        assert len(back) == len(phantom_result.trace)
        assert back[0]["k"] == phantom_result.trace[0]["k"]
        assert back[3]["gemm"] == pytest.approx(phantom_result.trace[3]["gemm"])

    def test_rejects_traceless(self, tmp_path):
        cfg = BenchmarkConfig(
            n=3072 * 4, block=3072, machine=FRONTIER, p_rows=1, p_cols=1
        )
        ana = estimate_run(cfg)
        with pytest.raises(ConfigurationError):
            save_trace_csv(ana, tmp_path / "x.csv")


class TestCompare:
    def test_detects_slowdown(self, phantom_result):
        base = run_report(phantom_result)
        slow = dict(base)
        slow["elapsed_s"] = base["elapsed_s"] * 1.3
        diff = compare_reports(base, slow)
        assert diff["elapsed_change"] == pytest.approx(0.3)

    def test_nan_on_missing(self):
        import math

        diff = compare_reports({}, {"elapsed_s": 1.0})
        assert math.isnan(diff["elapsed_change"])
