"""Tests for the analytic performance model and tuner."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.model import (
    bcast_time,
    estimate_run,
    sweep_block_sizes,
    sweep_local_sizes,
    sweep_node_grids,
)
from repro.model.tuner import best_block_size


def _cfg(machine=FRONTIER, nl=3072 * 8, block=3072, p=4, **kw):
    return BenchmarkConfig(
        n=nl * p, block=block, machine=machine, p_rows=p, p_cols=p, **kw
    )


class TestBcastTime:
    def test_single_member_free(self):
        costs = CommCosts(SUMMIT)
        assert bcast_time("bcast", 1e6, 1, costs, SUMMIT.mpi) == 0.0

    def test_grows_with_size_and_members(self):
        costs = CommCosts(FRONTIER)
        t1 = bcast_time("ring2m", 1e6, 8, costs, FRONTIER.mpi)
        t2 = bcast_time("ring2m", 1e7, 8, costs, FRONTIER.mpi)
        t3 = bcast_time("ring2m", 1e6, 64, costs, FRONTIER.mpi)
        assert t2 > t1
        assert t3 > t1

    def test_sharing_slows_broadcast(self):
        costs = CommCosts(FRONTIER)
        t1 = bcast_time("ring1", 1e7, 16, costs, FRONTIER.mpi, sharing=1)
        t4 = bcast_time("ring1", 1e7, 16, costs, FRONTIER.mpi, sharing=4)
        assert t4 > t1

    def test_frontier_rings_beat_flat_tree(self):
        costs = CommCosts(FRONTIER)
        args = (64e6, 172, costs, FRONTIER.mpi)
        assert bcast_time("ring2m", *args) < bcast_time("bcast", *args)

    def test_summit_mature_bcast_beats_rings(self):
        costs = CommCosts(SUMMIT)
        kw = dict(sharing=2, nodes_spanned=27)
        args = (94e6, 54, costs, SUMMIT.mpi)
        assert bcast_time("bcast", *args, **kw) < bcast_time("ring1", *args, **kw)

    def test_ibcast_derated_on_summit(self):
        costs = CommCosts(SUMMIT)
        args = (16e6, 24, costs, SUMMIT.mpi)
        assert bcast_time("ibcast", *args) > bcast_time("ring1", *args)

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            bcast_time("gossip", 1e6, 4, CommCosts(SUMMIT), SUMMIT.mpi)


class TestEstimateRun:
    def test_iteration_totals_sum_to_factorization(self):
        cfg = _cfg()
        res = estimate_run(cfg, keep_iterations=True)
        parts = sum(it.total for it in res.iterations)
        # factorization = per-iteration criticals + d2h transfer
        assert res.elapsed_factorization == pytest.approx(
            parts + cfg.machine.gpu_kernels.h2d_time(cfg.local_fp32_bytes),
            rel=1e-9,
        )
        assert res.elapsed == pytest.approx(
            res.elapsed_factorization + res.elapsed_refinement
        )
        # With look-ahead, an iteration's critical time is the max of its
        # streams, never their sum.
        for it in res.iterations:
            assert it.total <= it.getrf + it.diag_bcast + it.trsm + it.cast \
                + it.gemm + it.panel_bcast + 1e-12

    def test_keep_iterations(self):
        cfg = _cfg(p=2)
        res = estimate_run(cfg, keep_iterations=True)
        assert len(res.iterations) == cfg.num_blocks
        # Trailing sizes shrink: GEMM time decreases over iterations.
        gemms = [it.gemm for it in res.iterations]
        assert gemms[0] > gemms[-1]

    def test_pipeline_multiplier_slows_compute_only(self):
        cfg = _cfg()
        fast = estimate_run(cfg, pipeline_multiplier=1.0)
        slow = estimate_run(cfg, pipeline_multiplier=0.9)
        assert slow.elapsed > fast.elapsed
        assert slow.breakdown["gemm"] == pytest.approx(
            fast.breakdown["gemm"] / 0.9
        )

    def test_scales_to_paper_size_instantly(self):
        import time

        t0 = time.time()
        cfg = BenchmarkConfig(
            n=119808 * 172, block=3072, machine=FRONTIER,
            p_rows=172, p_cols=172, q_rows=4, q_cols=2,
            bcast_algorithm="ring2m",
        )
        res = estimate_run(cfg)
        assert time.time() - t0 < 5.0
        # Headline zone: within 15% of the paper's 2.387 EFLOPS.
        assert res.total_flops_per_s == pytest.approx(2.387e18, rel=0.15)

    def test_summit_achievement_run(self):
        cfg = BenchmarkConfig(
            n=61440 * 162, block=768, machine=SUMMIT,
            p_rows=162, p_cols=162, q_rows=3, q_cols=2,
            bcast_algorithm="bcast",
        )
        res = estimate_run(cfg)
        assert res.total_flops_per_s == pytest.approx(1.411e18, rel=0.15)


class TestCrossValidation:
    """Analytic model vs discrete-event engine at overlapping scales."""

    @pytest.mark.parametrize(
        "machine,nl,block,p,algo",
        [
            (FRONTIER, 3072 * 16, 3072, 4, "ring2m"),
            (FRONTIER, 3072 * 16, 3072, 4, "bcast"),
            (SUMMIT, 768 * 64, 768, 6, "bcast"),
        ],
    )
    def test_model_brackets_engine(self, machine, nl, block, p, algo):
        # The analytic model is the paper's guideline upper bound: it
        # must land above the (more aggressively pipelined) engine but
        # within a factor that keeps it useful for tuning.
        cfg = _cfg(machine=machine, nl=nl, block=block, p=p,
                   bcast_algorithm=algo)
        engine = simulate_run(cfg)
        model = estimate_run(cfg)
        ratio = model.elapsed_factorization / engine.elapsed_factorization
        assert 0.8 < ratio < 1.8

    def test_model_preserves_algorithm_ordering_frontier(self):
        kw = dict(machine=FRONTIER, nl=3072 * 8, block=3072, p=8,
                  q_rows=2, q_cols=4)
        times = {}
        for algo in ("bcast", "ring2m"):
            times[algo] = {
                "engine": simulate_run(
                    _cfg(**kw, bcast_algorithm=algo)
                ).elapsed_factorization,
                "model": estimate_run(
                    _cfg(**kw, bcast_algorithm=algo)
                ).elapsed_factorization,
            }
        eng_order = times["ring2m"]["engine"] < times["bcast"]["engine"]
        mod_order = times["ring2m"]["model"] < times["bcast"]["model"]
        assert eng_order == mod_order


class TestTuner:
    def test_block_sweep_shapes(self):
        rows = sweep_block_sizes(
            FRONTIER, n_local=61440, p=4,
            blocks=[512, 1024, 2048, 3072],
        )
        assert [r["B"] for r in rows] == [512, 1024, 2048, 3072]
        assert all(r["gflops_per_gcd"] > 0 for r in rows)

    def test_optimal_b_large_on_frontier_small_on_summit(self):
        # Finding 4 / Fig 4: the tuner picks ~3072 for MI250X and
        # 768-1024 for V100.
        blocks = [256, 512, 768, 1024, 1536, 3072]
        b_frontier = best_block_size(
            FRONTIER, n_local=119808 // 2, p=8, blocks=[512, 1024, 1536, 3072],
            q_rows=2, q_cols=4, bcast_algorithm="ring2m",
        )
        b_summit = best_block_size(
            SUMMIT, n_local=61440 // 2, p=12, blocks=blocks,
            q_rows=3, q_cols=2, bcast_algorithm="bcast",
        )
        assert b_frontier >= 1536
        assert b_summit <= 1024

    def test_local_size_sweep_lda_effect(self):
        rows = sweep_local_sizes(
            FRONTIER, block=3072, p=4, locals_=[119808, 122880]
        )
        by_nl = {r["N_L"]: r["gflops_per_gcd"] for r in rows}
        assert by_nl[119808] > by_nl[122880]

    def test_node_grid_sweep(self):
        rows = sweep_node_grids(
            FRONTIER, n_local=3072 * 8, block=3072, p=8,
            bcast_algorithm="ring2m",
        )
        grids = {r["grid"] for r in rows}
        assert "8x1" in grids and "2x4" in grids
        # Balanced grids should not be the worst choice (Finding 8).
        ranked = sorted(rows, key=lambda r: -r["gflops_per_gcd"])
        assert ranked[0]["grid"] != "1x8"

    def test_sweeps_reject_impossible_inputs(self):
        with pytest.raises(ConfigurationError):
            sweep_block_sizes(FRONTIER, n_local=1000, p=2, blocks=[512])
        with pytest.raises(ConfigurationError):
            sweep_local_sizes(FRONTIER, block=3072, p=2, locals_=[1000])
