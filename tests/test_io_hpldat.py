"""Tests for the HPL.dat-style configuration parser."""

import pytest

from repro.errors import ConfigurationError
from repro.io.hpldat import HplDat, expand_configs, parse_hpldat, render_hpldat

SAMPLE = """\
HPLinpack benchmark input file (repro dialect)
device out (ignored line)
1            # of problems sizes (N)
245760       Ns
2            # of NBs
768 1024     NBs
1            # of process grids (P x Q)
4            Ps
4            Qs
machine      frontier
bcast        ring2m
lookahead    1
q_grid       2 4
"""


class TestParse:
    def test_sample(self):
        dat = parse_hpldat(SAMPLE)
        assert dat.ns == [245760]
        assert dat.nbs == [768, 1024]
        assert dat.ps == [4] and dat.qs == [4]
        assert dat.machine == "frontier"
        assert dat.bcast == "ring2m"
        assert dat.q_grid == (2, 4)
        assert dat.num_runs() == 2

    def test_from_file(self, tmp_path):
        p = tmp_path / "HPL.dat"
        p.write_text(SAMPLE)
        dat = parse_hpldat(p)
        assert dat.ns == [245760]

    def test_classic_blocks_only(self):
        text = (
            "header\nheader2\n"
            "2  sizes\n1024 2048  Ns\n"
            "1  nbs\n128  NBs\n"
            "2  grids\n2 4  Ps\n2 2  Qs\n"
        )
        dat = parse_hpldat(text)
        assert dat.ns == [1024, 2048]
        assert list(zip(dat.ps, dat.qs)) == [(2, 2), (4, 2)]

    def test_count_mismatch_rejected(self):
        bad = "h\nh\n3 sizes\n1024 2048 Ns\n1 nbs\n128\n1 g\n2\n2\n"
        with pytest.raises(ConfigurationError):
            parse_hpldat(bad)

    def test_unknown_extension_rejected(self):
        bad = SAMPLE + "frobnicate on\n"
        with pytest.raises(ConfigurationError):
            parse_hpldat(bad)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_hpldat("just\nthree\nlines")

    def test_boolean_extensions(self):
        dat = parse_hpldat(SAMPLE + "gpu_aware 0\nport_binding false\n")
        assert dat.gpu_aware is False
        assert dat.port_binding is False


class TestExpand:
    def test_expands_cross_product(self):
        dat = parse_hpldat(SAMPLE)
        cfgs = list(expand_configs(dat))
        assert len(cfgs) == 2  # both NBs tile 245760 on a 4x4 grid
        assert {c.block for c in cfgs} == {768, 1024}
        for c in cfgs:
            assert c.machine.name == "frontier"
            assert c.bcast_algorithm == "ring2m"
            assert (c.q_rows, c.q_cols) == (2, 4)

    def test_untileable_combinations_skipped(self):
        dat = HplDat(ns=[1000, 1024], nbs=[128], ps=[2], qs=[2],
                     machine="summit")
        cfgs = list(expand_configs(dat))
        assert len(cfgs) == 1
        assert cfgs[0].n == 1024

    def test_nothing_tiles_raises(self):
        dat = HplDat(ns=[1000], nbs=[128], ps=[3], qs=[3], machine="summit")
        with pytest.raises(ConfigurationError):
            list(expand_configs(dat))

    def test_runs_end_to_end(self):
        dat = HplDat(ns=[128], nbs=[16], ps=[2], qs=[2], machine="summit")
        from repro.core.driver import run_benchmark

        cfg = next(expand_configs(dat))
        res = run_benchmark(cfg, exact=True)
        assert res.ir_converged


class TestRoundTrip:
    def test_render_parse_roundtrip(self):
        dat = parse_hpldat(SAMPLE)
        again = parse_hpldat(render_hpldat(dat))
        assert again.ns == dat.ns
        assert again.nbs == dat.nbs
        assert again.ps == dat.ps and again.qs == dat.qs
        assert again.machine == dat.machine
        assert again.bcast == dat.bcast
        assert again.q_grid == dat.q_grid
        assert again.lookahead == dat.lookahead
