"""Tests for the exporters (repro.obs.export) and provenance capture."""

import json

import pytest

from repro.obs.context import Observability
from repro.obs.export import (
    dumps_strict,
    read_jsonl,
    sanitize_json,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.provenance import run_provenance, same_experiment
from repro.obs.tracer import SpanTracer


def _tracer():
    tr = SpanTracer()
    tr.add("gemm", "executor", 0.0, 1e-3, rank=0, attrs={"k": 1})
    tr.add("xfer", "comm", 0.0, 5e-4, rank=1, attrs={"bytes": 128})
    tr.add("factorization", "driver", 0.0, 1e-3)  # rank -1 -> driver lane
    return tr


class TestSanitize:
    def test_non_finite_to_null(self):
        data = {"a": float("nan"), "b": [1.0, float("inf")], "c": "NaN"}
        clean = sanitize_json(data)
        assert clean == {"a": None, "b": [1.0, None], "c": "NaN"}

    def test_dumps_strict_never_emits_nan(self):
        text = dumps_strict({"x": float("nan")})
        assert "NaN" not in text
        assert json.loads(text) == {"x": None}


class TestChromeTrace:
    def test_structure(self):
        doc = to_chrome_trace(_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        gemm = next(e for e in xs if e["name"] == "gemm")
        assert gemm["cat"] == "executor"
        assert gemm["ts"] == 0.0
        assert gemm["dur"] == pytest.approx(1e3)  # microseconds
        assert gemm["tid"] == 0
        assert gemm["args"] == {"k": 1}

    def test_driver_lane_after_ranks(self):
        doc = to_chrome_trace(_tracer())
        drv = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "factorization"
        )
        assert drv["tid"] == 2  # max rank 1 + 1
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"rank 0", "rank 1", "driver"} <= names

    def test_observability_handle_carries_provenance_and_metrics(self):
        obs = Observability()
        obs.tracer.add("gemm", "executor", 0.0, 1.0, rank=0)
        obs.metrics.counter("n").inc()
        obs.provenance = {"schema": 1, "version": "x"}
        doc = to_chrome_trace(obs)
        assert doc["otherData"]["provenance"]["version"] == "x"
        assert "n" in doc["otherData"]["metrics"]

    def test_written_file_is_strict_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", _tracer())
        strict = json.loads(
            path.read_text(),
            parse_constant=lambda s: pytest.fail(f"bare {s} in output"),
        )
        assert strict["otherData"]["schema"] == 1


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = write_jsonl(tmp_path / "spans.jsonl", _tracer())
        back = read_jsonl(path)
        assert len(back) == 3
        assert back[0]["name"] == "gemm"
        assert back[0]["dur_s"] == pytest.approx(1e-3)
        assert back[1]["attrs"] == {"bytes": 128}


class TestProvenance:
    def test_captures_environment(self):
        prov = run_provenance()
        assert prov["package"] == "repro"
        assert prov["schema"] == 1
        assert prov["python"].count(".") == 2
        assert "timestamp_utc" in prov

    def test_captures_config(self):
        from repro.core.config import BenchmarkConfig
        from repro.machine import get_machine

        cfg = BenchmarkConfig(
            n=128, block=32, machine=get_machine("summit"), p_rows=2, p_cols=2
        )
        prov = run_provenance(cfg, extra={"campaign": 7})
        assert prov["machine"] == "summit"
        assert prov["seed"] == cfg.seed
        assert prov["config"]["N"] == 128
        assert prov["extra"] == {"campaign": 7}
        assert json.loads(json.dumps(prov)) == prov

    def test_same_experiment(self):
        from repro.core.config import BenchmarkConfig
        from repro.machine import get_machine

        cfg = BenchmarkConfig(
            n=128, block=32, machine=get_machine("summit"), p_rows=2, p_cols=2
        )
        a, b = run_provenance(cfg), run_provenance(cfg)
        assert same_experiment(a, b)  # timestamps differ, experiment same
        cfg2 = BenchmarkConfig(
            n=128, block=32, machine=get_machine("summit"), p_rows=2,
            p_cols=2, seed=99,
        )
        assert not same_experiment(a, run_provenance(cfg2))
