"""Tests for the hplai-sim command-line interface."""

import pytest

from repro.cli import FIGURES, main


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "hplai-sim" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSolve:
    def test_small_exact_solve(self, capsys):
        rc = main(["solve", "-n", "128", "-b", "16", "-p", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged=True" in out
        assert "residual" in out

    def test_machine_choice(self, capsys):
        rc = main(["solve", "-n", "64", "-b", "16", "-p", "1",
                   "--machine", "summit"])
        assert rc == 0
        assert "summit" in capsys.readouterr().out


class TestRunAndModel:
    def test_run_small(self, capsys):
        rc = main(["run", "--machine", "frontier", "-p", "2",
                   "--nl", "6144", "-b", "3072"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "event-engine" in out
        assert "EFLOPS" in out or "TFLOPS" in out or "GFLOPS" in out

    def test_model_paper_scale(self, capsys):
        rc = main(["model", "--machine", "frontier", "-p", "172",
                   "--qr", "4", "--qc", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "breakdown" in out
        assert "EFLOPS" in out  # the achievement run is exascale

    def test_model_flags(self, capsys):
        rc = main(["model", "--machine", "summit", "-p", "6",
                   "--no-lookahead", "--no-gpu-aware", "--no-port-binding",
                   "--bcast", "ring1"])
        assert rc == 0


class TestTuneScanFigures:
    def test_tune_block(self, capsys):
        rc = main(["tune", "block", "--machine", "frontier", "-p", "8",
                   "--values", "1536,3072"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "B sweep" in out

    def test_tune_grid(self, capsys):
        rc = main(["tune", "grid", "--machine", "summit", "-p", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "node-grid sweep" in out

    def test_scan(self, capsys):
        rc = main(["scan", "--gcds", "64", "--machine", "frontier"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GCD scan" in out

    @pytest.mark.parametrize("fig", ["table1", "table2", "fig3", "fig7",
                                     "nl", "scan", "fig12"])
    def test_cheap_figures(self, fig, capsys):
        rc = main(["figure", fig])
        assert rc == 0
        assert len(capsys.readouterr().out) > 50

    def test_figures_registry_complete(self):
        from repro.bench import figures as figmod

        for fn_name, _title in FIGURES.values():
            assert hasattr(figmod, fn_name)

    def test_specs(self, capsys):
        rc = main(["specs"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4608" in out and "9408" in out


class TestDatCommand:
    SAMPLE = (
        "HPLinpack benchmark input file\n"
        "device out\n"
        "1 sizes\n49152 Ns\n"
        "1 nbs\n3072 NBs\n"
        "1 grids\n2 Ps\n2 Qs\n"
        "machine frontier\n"
    )

    def test_dat_model_sweep(self, tmp_path, capsys):
        f = tmp_path / "HPL.dat"
        f.write_text(self.SAMPLE)
        rc = main(["dat", str(f)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "HPL.dat sweep" in out and "best:" in out

    def test_dat_engine_sweep(self, tmp_path, capsys):
        f = tmp_path / "HPL.dat"
        f.write_text(self.SAMPLE)
        rc = main(["dat", str(f), "--engine"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "event engine" in out


class TestReportCommand:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "EXPERIMENTS.md"
        rc = main(["report", "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "## Fig 11" in text
        assert "## Roofline" in text
        assert "Correctness anchor" in text


class TestGanttCommand:
    def test_gantt_small_run(self, capsys):
        rc = main(["gantt", "--machine", "frontier", "-p", "2",
                   "--nl", "6144", "--width", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gantt:" in out and "legend:" in out
        assert "busy fraction" in out

    def test_gantt_refuses_large_grids(self, capsys):
        rc = main(["gantt", "--machine", "frontier", "-p", "16",
                   "--nl", "6144"])
        assert rc == 1
