"""End-to-end correctness of the distributed HPL-AI solve (exact mode)."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark, solve_hplai
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.machine import FRONTIER, SUMMIT
from repro.precision import FP64


def _reference(n, seed=42):
    m = HplAiMatrix(n, seed)
    return np.linalg.solve(m.dense(), m.rhs())


class TestSolveCorrectness:
    @pytest.mark.parametrize(
        "n,block,pr,pc",
        [
            (64, 16, 1, 1),
            (64, 16, 2, 2),
            (96, 16, 2, 3),
            (128, 16, 4, 2),
            (120, 8, 3, 5),
            (128, 32, 2, 2),
        ],
    )
    def test_solution_matches_dense_solve(self, n, block, pr, pc):
        res = solve_hplai(n=n, block=block, p_rows=pr, p_cols=pc)
        assert res.ir_converged
        x_ref = _reference(n)
        assert np.max(np.abs(res.x - x_ref)) < 1e-10

    def test_residual_reaches_fp64_level(self):
        res = solve_hplai(n=128, block=16, p_rows=2, p_cols=2)
        # Residual below the HPL-AI tolerance ~ 8 N eps * O(1).
        assert res.residual_norm < 8 * 128 * FP64.eps * 10

    def test_grid_shape_does_not_change_answer(self):
        rs = [
            solve_hplai(n=96, block=8, p_rows=pr, p_cols=pc)
            for pr, pc in [(1, 1), (2, 2), (3, 4), (4, 3), (6, 2)]
        ]
        for r in rs[1:]:
            np.testing.assert_allclose(r.x, rs[0].x, atol=1e-13)

    def test_lookahead_matches_synchronous(self):
        a = solve_hplai(n=96, block=16, p_rows=2, p_cols=2, lookahead=True)
        b = solve_hplai(n=96, block=16, p_rows=2, p_cols=2, lookahead=False)
        # Same arithmetic, same rounding order within each kernel:
        # solutions agree to FP64 noise.
        np.testing.assert_allclose(a.x, b.x, atol=1e-12)
        assert a.ir_iterations == b.ir_iterations

    @pytest.mark.parametrize("algo", ["bcast", "ibcast", "ring1", "ring1m", "ring2m"])
    def test_all_broadcast_algorithms_correct(self, algo):
        res = solve_hplai(
            n=96, block=16, p_rows=3, p_cols=2, bcast_algorithm=algo
        )
        assert res.ir_converged
        assert np.max(np.abs(res.x - _reference(96))) < 1e-10

    def test_machine_choice_does_not_change_numerics(self):
        a = solve_hplai(n=64, block=16, p_rows=2, p_cols=2, machine=SUMMIT)
        b = solve_hplai(n=64, block=16, p_rows=2, p_cols=2, machine=FRONTIER)
        np.testing.assert_array_equal(a.x, b.x)

    def test_mixed_precision_actually_used(self):
        # A pure-FP64 factorization would converge with 0 refinement
        # iterations; FP16 panels force at least one correction.
        res = solve_hplai(n=256, block=32, p_rows=2, p_cols=2)
        assert res.ir_iterations >= 1
        assert res.ir_converged

    def test_seed_changes_problem(self):
        a = solve_hplai(n=64, block=16, seed=1)
        b = solve_hplai(n=64, block=16, seed=2)
        assert np.max(np.abs(a.x - b.x)) > 1e-6


class TestRunMetadata:
    def test_timing_fields_positive_and_consistent(self):
        res = solve_hplai(n=96, block=16, p_rows=2, p_cols=2)
        assert res.elapsed > 0
        assert res.elapsed_factorization > 0
        assert res.elapsed_refinement > 0
        assert res.elapsed == pytest.approx(
            res.elapsed_factorization + res.elapsed_refinement, rel=1e-6
        )
        assert res.gflops_per_gcd > 0

    def test_trace_collected_per_iteration(self):
        res = solve_hplai(n=128, block=16, p_rows=2, p_cols=2)
        assert len(res.trace) == 128 // 16
        for entry in res.trace:
            assert entry["panel"] >= 0
            assert entry["gemm"] >= 0

    def test_summary_keys(self):
        res = solve_hplai(n=64, block=16)
        s = res.summary()
        assert s["N"] == 64 and s["B"] == 16
        assert "gflops_per_gcd" in s and "residual_norm" in s

    def test_stats_have_gemm_time(self):
        res = solve_hplai(n=128, block=16, p_rows=2, p_cols=2)
        assert all(st.times.get("gemm", 0) > 0 for st in res.stats)

    def test_fp16_unsafe_n_rejected_in_exact_mode(self):
        cfg = BenchmarkConfig(
            n=8192, block=1024, machine=SUMMIT, p_rows=1, p_cols=1
        )
        with pytest.raises(ConfigurationError):
            run_benchmark(cfg, exact=True)


class TestConfigValidation:
    def test_indivisible_n_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(n=100, block=16, machine=SUMMIT, p_rows=2, p_cols=2)

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(
                n=64, block=16, machine=SUMMIT, p_rows=1, p_cols=1,
                bcast_algorithm="gossip",
            )

    def test_bad_node_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(
                n=768 * 12, block=768, machine=SUMMIT, p_rows=12, p_cols=12,
                q_rows=4, q_cols=4,  # 16 != 6 GCDs/node
            )

    def test_gpu_memory_check(self):
        cfg = BenchmarkConfig(
            n=120 * 4096, block=4096, machine=SUMMIT, p_rows=2, p_cols=2
        )
        with pytest.raises(ConfigurationError):
            cfg.check_gpu_memory()  # ~230k local > 16 GB V100

    def test_describe(self):
        cfg = BenchmarkConfig(
            n=61440 * 2, block=768, machine=SUMMIT, p_rows=2, p_cols=2
        )
        d = cfg.describe()
        assert d["N_L"] == "61440x61440"
        assert d["GCDs"] == 4
