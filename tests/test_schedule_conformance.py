"""Trace conformance: recorded transfers replayed against the static
schedule.  A fresh trace must conform exactly; a mutated-tag trace must
be rejected.
"""

import json

import pytest

from repro.analyze.checkers.schedule import TraceConformanceChecker
from repro.analyze.schedule import conformance_from_trace
from repro.cli import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("conformance") / "trace.json"
    rc = main([
        "trace", "--machine", "frontier", "-p", "2", "--nl", "256",
        "-b", "64", "--out", str(path),
    ])
    assert rc == 0
    return path


@pytest.fixture()
def mutated_trace_path(trace_path, tmp_path):
    doc = json.loads(trace_path.read_text())
    for event in doc["traceEvents"]:
        if event.get("name") == "xfer" and "tag" in event.get("args", {}):
            # shift one transfer onto a wire the model never uses
            event["args"]["tag"] += 17 * 1024
            break
    else:
        raise AssertionError("trace carries no tagged xfer spans")
    path = tmp_path / "mutated.json"
    path.write_text(json.dumps(doc))
    return path


class TestFreshTraceConforms:
    def test_every_transfer_is_matched(self, trace_path):
        report = conformance_from_trace(str(trace_path))
        assert report.ok, [i.message for i in report.issues]
        assert report.stats["observed_transfers"] > 0
        assert report.stats["observed_channels"] > 0
        assert (report.stats["observed_transfers"]
                == report.stats["model_transfers"])

    def test_label_names_the_configuration(self, trace_path):
        report = conformance_from_trace(str(trace_path))
        assert "2x2" in report.label


class TestMutatedTraceFails:
    def test_shifted_tag_is_rejected(self, mutated_trace_path):
        report = conformance_from_trace(str(mutated_trace_path))
        assert not report.ok
        messages = "\n".join(i.message for i in report.issues)
        # the shifted transfer is unmatched AND leaves its home channel
        # one short
        assert "unmatched transfer" in messages or "out-of-model" in messages
        assert "count mismatch" in messages


class TestLintIntegration:
    def test_checker_sniffs_trace_artifacts(self, trace_path, tmp_path):
        checker = TraceConformanceChecker()
        assert checker.matches(str(trace_path))
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"results": []}))
        assert not checker.matches(str(other))

    def test_lint_passes_on_fresh_trace(self, trace_path):
        rc = main([
            "lint", str(trace_path), "--select", "trace-conformance",
            "--no-baseline",
        ])
        assert rc == 0

    def test_lint_fails_on_mutated_trace(self, mutated_trace_path, capsys):
        rc = main([
            "lint", str(mutated_trace_path), "--select", "trace-conformance",
            "--no-baseline",
        ])
        assert rc == 1
        assert "[trace-conformance]" in capsys.readouterr().out


class TestVerifyCommTraceMode:
    def test_cli_conforms_and_rejects(self, trace_path, mutated_trace_path,
                                      capsys):
        assert main(["verify-comm", "--trace", str(trace_path)]) == 0
        assert "conforms" in capsys.readouterr().out
        assert main(["verify-comm", "--trace", str(mutated_trace_path)]) == 1
        assert "FAILED" in capsys.readouterr().out
