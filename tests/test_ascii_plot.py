"""Tests for the terminal plotting helpers."""

import pytest

from repro.bench.ascii_plot import heat_map, line_plot, records_to_series
from repro.errors import ConfigurationError


class TestLinePlot:
    def test_basic_plot_contains_marks_and_legend(self):
        out = line_plot(
            {"a": [(1, 1.0), (2, 4.0)], "b": [(1, 2.0), (2, 3.0)]},
            width=20, height=8, title="demo", x_label="x", y_label="y",
        )
        assert "demo" in out
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_extremes_on_canvas_edges(self):
        out = line_plot({"s": [(0, 0.0), (10, 100.0)]}, width=10, height=5)
        lines = [l for l in out.splitlines() if "|" in l]
        # Max value mark on the top row, min on the bottom row.
        assert "o" in lines[0]
        assert "o" in lines[-1]

    def test_log_x(self):
        out = line_plot(
            {"s": [(10, 1.0), (100, 2.0), (1000, 3.0)]},
            width=21, height=5, logx=True, x_label="n",
        )
        # Log spacing: the three marks are evenly spaced columns.
        cols = []
        for line in out.splitlines():
            if "|" in line:
                row = line.split("|", 1)[1]
                cols.extend(i for i, ch in enumerate(row) if ch == "o")
        cols.sort()
        assert len(cols) == 3
        assert (cols[1] - cols[0]) == (cols[2] - cols[1])

    def test_flat_series_ok(self):
        out = line_plot({"s": [(0, 5.0), (1, 5.0)]}, width=8, height=4)
        assert "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            line_plot({})
        with pytest.raises(ConfigurationError):
            line_plot({"s": []})
        with pytest.raises(ConfigurationError):
            line_plot({"s": [(0, 1.0)]}, logx=True)


class TestHeatMap:
    def test_shading_ordered(self):
        out = heat_map([[0.0, 10.0]], ["r"], ["a", "b"])
        row = [l for l in out.splitlines() if l.strip().startswith("r")][0]
        assert "@@@" in row  # max cell uses the densest shade

    def test_labels_present(self):
        out = heat_map([[1, 2], [3, 4]], [1024, 2048], [256, 512],
                       title="hm")
        assert "hm" in out and "1024" in out and "scale:" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            heat_map([], [], [])


class TestRecordsToSeries:
    def test_grouping_and_sorting(self):
        recs = [
            {"x": 2, "y": 20.0, "g": "a"},
            {"x": 1, "y": 10.0, "g": "a"},
            {"x": 1, "y": 5.0, "g": "b"},
        ]
        series = records_to_series(recs, "x", "y", "g")
        assert series["a"] == [(1, 10.0), (2, 20.0)]
        assert series["b"] == [(1, 5.0)]


class TestCliPlots:
    @pytest.mark.parametrize("fig", ["fig3", "fig12"])
    def test_plot_flag(self, fig, capsys):
        from repro.cli import main

        rc = main(["figure", fig, "--plot"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scale:" in out or "legend:" in out
