"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert len(proc.stdout) > 100, f"{script.name} produced no real output"


def test_examples_exist():
    # The deliverable: a quickstart plus at least two domain scenarios.
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
