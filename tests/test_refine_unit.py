"""Unit tests for the distributed refinement pieces.

The end-to-end convergence is covered by test_core_exact; here we pin
the *internal* contracts: residual partials sum to b - A x, the
distributed triangular sweeps solve the same systems a direct packed
solve would, and the deferred-time bookkeeping drains correctly.
"""

import numpy as np
import pytest

from repro.blas.getrf import getrf_nopiv
from repro.blas.trsv import lu_solve_packed
from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark
from repro.core.executors import ExactExecutor, PhantomExecutor
from repro.lcg.matrix import HplAiMatrix
from repro.machine import SUMMIT


def _cfg(n=64, block=8, pr=2, pc=2, **kw):
    return BenchmarkConfig(
        n=n, block=block, machine=SUMMIT, p_rows=pr, p_cols=pc, **kw
    )


def _filled_executors(cfg):
    exs = {}
    for rank, pir, pic in cfg.grid.iter_ranks():
        ex = ExactExecutor(cfg, pir, pic, rank)
        ex.fill_local()
        ex.ir_setup()
        exs[rank] = ex
    return exs


class TestResidualPartials:
    def test_partials_sum_to_residual(self):
        cfg = _cfg()
        exs = _filled_executors(cfg)
        total = np.zeros(cfg.n)
        for ex in exs.values():
            partial, _secs = ex.ir_residual_partial()
            total += partial
        m = HplAiMatrix(cfg.n, cfg.seed)
        a, b = m.dense(), m.rhs()
        x0 = b / np.diag(a)
        np.testing.assert_allclose(total, b - a @ x0, atol=1e-12)

    def test_matvec_partials_sum_to_product(self):
        cfg = _cfg(n=96, block=8, pr=3, pc=2)
        exs = _filled_executors(cfg)
        rng = np.random.default_rng(5)
        v = rng.normal(size=cfg.n)
        total = np.zeros(cfg.n)
        for ex in exs.values():
            partial, _ = ex.ir_matvec_partial(v)
            total += partial
        a = HplAiMatrix(cfg.n, cfg.seed).dense()
        np.testing.assert_allclose(total, a @ v, atol=1e-10)

    def test_only_rank_zero_adds_b(self):
        cfg = _cfg()
        exs = _filled_executors(cfg)
        # Zero x isolates the b contribution.
        for ex in exs.values():
            ex.x = np.zeros(cfg.n)
        total = np.zeros(cfg.n)
        for ex in exs.values():
            partial, _ = ex.ir_residual_partial()
            total += partial
        np.testing.assert_allclose(total, HplAiMatrix(cfg.n, cfg.seed).rhs())


class TestDistributedSweeps:
    def _factored_executors(self, cfg):
        """Run the real distributed factorization and return executors
        holding the packed local LU factors."""
        from repro.core.driver import run_benchmark

        # The simplest correct way to get consistent local factors is to
        # factor the dense matrix once and distribute the result.
        m = HplAiMatrix(cfg.n, cfg.seed)
        lu = getrf_nopiv(m.dense(dtype=np.float32).copy())
        exs = {}
        b = cfg.block
        for rank, pir, pic in cfg.grid.iter_ranks():
            ex = ExactExecutor(cfg, pir, pic, rank)
            local = np.empty((cfg.local_rows, cfg.local_cols), dtype=np.float32)
            for lr in range(cfg.row_dim.blocks_per_proc):
                gr = cfg.row_dim.global_block(pir, lr)
                for lc in range(cfg.col_dim.blocks_per_proc):
                    gc = cfg.col_dim.global_block(pic, lc)
                    local[lr * b:(lr + 1) * b, lc * b:(lc + 1) * b] = (
                        lu[gr * b:(gr + 1) * b, gc * b:(gc + 1) * b]
                    )
            ex.local = local
            ex.ir_setup()
            exs[rank] = ex
        return exs, lu

    def _run_sweep(self, cfg, exs, rhs, lower):
        """Drive the sweep communication by hand (no engine)."""
        nb = cfg.num_blocks
        grid = cfg.grid
        order = range(nb) if lower else range(nb - 1, -1, -1)
        for ex in exs.values():
            ex.ir_reset_sweep(lower)
        for j in order:
            jr, jc = j % cfg.p_rows, j % cfg.p_cols
            owner = grid.rank_of(jr, jc)
            # Row reduce.
            y = np.zeros(cfg.block)
            for pic in range(cfg.p_cols):
                rank = grid.rank_of(jr, pic)
                contrib, _ = exs[rank].ir_row_contrib(j, rhs, lower)
                y += contrib
            w, _ = exs[owner].ir_diag_solve(j, y, lower)
            exs[owner].ir_store_solution_segment(j, w)
            # Column broadcast + local updates.
            for pir in range(cfg.p_rows):
                rank = grid.rank_of(pir, jc)
                exs[rank].ir_col_update(j, w, lower)
        total = np.zeros(cfg.n)
        for ex in exs.values():
            partial, _ = ex.ir_solution_partial()
            total += partial
        # Each segment is stored only by its owner, so the sum is exact.
        return total

    def test_forward_backward_solve_matches_packed(self):
        cfg = _cfg(n=64, block=8, pr=2, pc=2)
        exs, lu = self._factored_executors(cfg)
        rng = np.random.default_rng(7)
        r = rng.normal(size=cfg.n)
        w = self._run_sweep(cfg, exs, r, lower=True)
        d = self._run_sweep(cfg, exs, w, lower=False)
        expected = lu_solve_packed(lu.astype(np.float64), r)
        np.testing.assert_allclose(d, expected, rtol=1e-5, atol=1e-5)

    def test_sweep_on_rectangular_grid(self):
        cfg = _cfg(n=96, block=8, pr=3, pc=4)
        exs, lu = self._factored_executors(cfg)
        r = np.linspace(-1, 1, cfg.n)
        w = self._run_sweep(cfg, exs, r, lower=True)
        d = self._run_sweep(cfg, exs, w, lower=False)
        expected = lu_solve_packed(lu.astype(np.float64), r)
        np.testing.assert_allclose(d, expected, rtol=1e-4, atol=1e-4)

    def test_deferred_time_drains(self):
        cfg = _cfg()
        ph = PhantomExecutor(cfg, 0, 0, 0)
        ph.ir_col_update(0, None, lower=True)
        first = ph.ir_sweep_deferred()
        assert first >= 0
        assert ph.ir_sweep_deferred() == 0.0  # drained


class TestRefinementTimingParity:
    def test_exact_and_phantom_refinement_cost_match(self):
        kw = dict(n=96, block=8, pr=2, pc=2)
        exact = run_benchmark(_cfg(**kw), exact=True)
        phantom = run_benchmark(
            _cfg(**kw, ir_fixed_iters=exact.ir_iterations), exact=False
        )
        assert phantom.elapsed_refinement == pytest.approx(
            exact.elapsed_refinement, rel=1e-6
        )
