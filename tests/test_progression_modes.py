"""Routed (hardware-progressed) vs in-band broadcast progression."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run, solve_hplai
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.machine import FRONTIER, SUMMIT


class TestInbandCorrectness:
    @pytest.mark.parametrize("algo", ["bcast", "ring1", "ring1m", "ring2m"])
    def test_exact_solve_inband(self, algo):
        res = solve_hplai(
            n=96, block=16, p_rows=3, p_cols=2,
            bcast_algorithm=algo, lookahead=False, progression="inband",
        )
        assert res.ir_converged
        m = HplAiMatrix(96, 42)
        x_ref = np.linalg.solve(m.dense(), m.rhs())
        assert np.max(np.abs(res.x - x_ref)) < 1e-10

    def test_inband_and_routed_same_numerics(self):
        kw = dict(n=96, block=16, p_rows=2, p_cols=2, lookahead=False)
        inband = solve_hplai(**kw, progression="inband")
        routed = solve_hplai(**kw, progression="routed")
        np.testing.assert_array_equal(inband.x, routed.x)


class TestProgressionAblation:
    def test_inband_requires_no_lookahead(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(
                n=64, block=16, machine=SUMMIT, p_rows=1, p_cols=1,
                progression="inband", lookahead=True,
            )
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(
                n=64, block=16, machine=SUMMIT, p_rows=1, p_cols=1,
                progression="sideband",
            )

    def test_async_progression_pays_off(self):
        # The ablation: routed look-ahead < routed synchronous <= inband
        # synchronous (in-band relays serialize through rank programs).
        common = dict(
            n=3072 * 16, block=3072, machine=FRONTIER, p_rows=4, p_cols=4,
            bcast_algorithm="ring2m",
        )
        routed_la = simulate_run(BenchmarkConfig(**common, lookahead=True))
        routed_sync = simulate_run(BenchmarkConfig(**common, lookahead=False))
        inband_sync = simulate_run(
            BenchmarkConfig(**common, lookahead=False, progression="inband")
        )
        assert routed_la.elapsed < routed_sync.elapsed
        assert routed_sync.elapsed <= inband_sync.elapsed * 1.05
