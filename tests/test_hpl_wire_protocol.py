"""Wire-protocol regression tests for the distributed LU.

Two historical bugs are pinned here:

1. The per-column LASWP exchange tagged span ``s`` of column ``j`` as
   ``_tag(k, 7, j) + s``, which equals ``_tag(k, 7, j + 1)`` — column
   ``j+1``'s first span — so two different in-flight messages between
   the same rank pair shared a tag whenever a panel had multiple spans.
2. ``_pivot_reduce`` compared ``0 <= row < best[1]`` on value ties,
   which silently dropped a valid candidate whenever the running best
   was still the ``(-1.0, -1)`` sentinel — an arrival-order-dependent
   deviation from MPI_MAXLOC semantics.
"""

import itertools

import numpy as np
import pytest

from repro.comm.bcast import TAG_STRIDE
from repro.comm.vmpi import RankComm
from repro.core.config import BenchmarkConfig
from repro.core.hpl_dist import (
    TAG_LASWP,
    _TAG_BASE,
    _pivot_reduce,
    _tag,
    solve_hpl_distributed,
)
from repro.machine import SUMMIT

from tests.test_hpl_distributed import DenseMatrix, _random_general


def _phase_of(tag: int) -> int:
    """Recover the ``_tag`` phase from a pre-stride factorization tag."""
    return ((tag - _TAG_BASE) // 4096) % 8


class TestLaswpTagAliasing:
    def test_laswp_tags_unique_per_rank_pair(self, monkeypatch):
        """Every LASWP message between a rank pair carries a distinct tag.

        Run a pivot-requiring system on a 2x2 grid and record every
        point-to-point send.  Under the aliased per-column scheme, any
        panel whose row swaps cross process rows produced duplicate
        (src, dst, tag) triples; the batched exchange sends exactly one
        message per (panel, direction) with the bare phase tag.
        """
        sends = []
        orig_send = RankComm.send

        def spy_send(self, dst, payload, tag):
            sends.append((self.rank, dst, tag))
            return orig_send(self, dst, payload, tag)

        monkeypatch.setattr(RankComm, "send", spy_send)

        a, b = _random_general(64, seed=3)
        cfg = BenchmarkConfig(
            n=64, block=8, machine=SUMMIT, p_rows=2, p_cols=2
        )
        res = solve_hpl_distributed(cfg, matrix=DenseMatrix(a, b))
        assert res["residual_norm"] < 1e-10  # the run itself is healthy
        swaps = sum(1 for g, p in enumerate(res["ipiv"]) if p != g)
        assert swaps > 10  # pivoting genuinely exercised LASWP

        laswp = [
            (src, dst, tag) for src, dst, tag in sends
            if tag >= _TAG_BASE and _phase_of(tag) == TAG_LASWP
        ]
        assert laswp, "LASWP exchanges must occur on a pivoting 2x2 run"
        assert len(laswp) == len(set(laswp)), (
            "duplicate (src, dst, tag) among LASWP messages: the "
            "wire-tag aliasing bug is back"
        )

    def test_old_scheme_aliased(self):
        """The arithmetic fact the fix removes: span 1 of column j is
        indistinguishable from span 0 of column j+1."""
        assert _tag(3, TAG_LASWP, 5) + 1 == _tag(3, TAG_LASWP, 6)

    def test_laswp_tag_has_no_column_offset(self, monkeypatch):
        """Batched LASWP uses one tag per panel: j is always 0."""
        sends = []
        orig_send = RankComm.send

        def spy_send(self, dst, payload, tag):
            sends.append(tag)
            return orig_send(self, dst, payload, tag)

        monkeypatch.setattr(RankComm, "send", spy_send)
        a, b = _random_general(64, seed=11)
        cfg = BenchmarkConfig(
            n=64, block=8, machine=SUMMIT, p_rows=2, p_cols=2
        )
        solve_hpl_distributed(cfg, matrix=DenseMatrix(a, b))
        laswp = [t for t in sends
                 if t >= _TAG_BASE and _phase_of(t) == TAG_LASWP]
        for tag in laswp:
            assert (tag - _TAG_BASE) % 4096 == 0


class TestPivotReduceMaxloc:
    def test_sentinel_never_beats_tying_candidate(self):
        # Pre-fix: best stayed (-1, ...) sentinel-shaped and a candidate
        # tying the current best value was dropped when best[1] == -1.
        assert _pivot_reduce([(0.5, -1), (0.5, 2)]) == (0.5, 2)
        assert _pivot_reduce([(0.5, 2), (0.5, -1)]) == (0.5, 2)

    def test_all_sentinels(self):
        assert _pivot_reduce([(-1.0, -1), (-1.0, -1)]) == (-1.0, -1)

    def test_maxloc_lowest_row_on_tie(self):
        assert _pivot_reduce([(2.0, 7), (2.0, 3), (1.0, 0)]) == (2.0, 3)

    def test_order_invariance_property(self):
        """MPI_MAXLOC is commutative: every arrival order must agree."""
        candidates = [(0.5, -1), (2.0, 9), (2.0, 4), (-1.0, -1), (1.5, 0)]
        results = {
            _pivot_reduce(perm)
            for perm in itertools.permutations(candidates)
        }
        assert results == {(2.0, 4)}

    def test_order_invariance_random(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            vals = rng.choice([0.5, 1.0, 2.0], size=6)
            rows = rng.choice([-1, 0, 1, 2, 5, 9], size=6)
            cands = [
                (float(v), int(r)) if r >= 0 else (-1.0, -1)
                for v, r in zip(vals, rows)
            ]
            base = _pivot_reduce(cands)
            for _ in range(10):
                rng.shuffle(cands)
                assert _pivot_reduce(cands) == base


class TestTagWindowDisjointness:
    """Refinement sweep tags must never collide with factorization tags
    (both travel through the same engine mailboxes, scaled by
    TAG_STRIDE)."""

    @pytest.mark.parametrize("n,block", [(64, 8), (1024, 64), (4096, 128)])
    def test_refine_window_below_hpl_dist_window(self, n, block):
        from repro.core.refine import _REFINE_TAG_BASE, _sweep_tag

        cfg = BenchmarkConfig(
            n=n, block=block, machine=SUMMIT, p_rows=2, p_cols=2
        )
        nb = cfg.num_blocks
        refine_tags = {
            _sweep_tag(cfg, it, j, upper)
            for it in range(cfg.ir_max_iters)
            for j in range(nb)
            for upper in (False, True)
        }
        assert min(refine_tags) >= _REFINE_TAG_BASE
        # Entirely below the factorization window.
        assert max(refine_tags) < _TAG_BASE

        hpl_tags = {
            _tag(k, phase, j)
            for k in range(nb)
            for phase in range(8)
            for j in (0, block - 1)
        }
        assert not (refine_tags & hpl_tags)
        # And disjoint from the hplai factorization tags (8k + phase).
        hplai_tags = set(range(0, 8 * nb + 8))
        assert not (refine_tags & hplai_tags)
        assert not (hpl_tags & hplai_tags)

    def test_tag_stride_preserves_disjointness(self):
        # Distinct logical tags stay distinct on the wire.
        tags = [_tag(0, TAG_LASWP), _tag(1, TAG_LASWP), 8 * 3 + 2,
                (1 << 22) + 17]
        wire = [t * TAG_STRIDE for t in tags]
        assert len(set(wire)) == len(tags)
