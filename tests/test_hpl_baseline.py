"""Tests for the FP64 HPL baseline."""

import numpy as np
import pytest

from repro.core.hpl import (
    HplResult,
    hpl_gflops_per_gcd,
    hpl_solve_fp64,
    hpl_time_model,
)
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.machine import FRONTIER, SUMMIT
from repro.machine.spec import MachineSpec


class TestExactSolve:
    def test_solves_hplai_matrix(self):
        m = HplAiMatrix(128, seed=9)
        a, b = m.dense(), m.rhs()
        res = hpl_solve_fp64(a, b)
        np.testing.assert_allclose(a @ res.x, b, atol=1e-12)
        assert res.scaled_residual < 16.0  # HPL acceptance threshold

    def test_handles_matrices_that_need_pivoting(self):
        # Unpivoted LU would die on this; partial pivoting must not.
        a = np.array([[0.0, 2.0, 1.0],
                      [1.0, 0.0, 3.0],
                      [2.0, 1.0, 0.0]])
        b = np.array([1.0, 2.0, 3.0])
        res = hpl_solve_fp64(a, b)
        np.testing.assert_allclose(a @ res.x, b, atol=1e-12)

    def test_input_not_mutated(self):
        m = HplAiMatrix(32, seed=1)
        a, b = m.dense(), m.rhs()
        a0, b0 = a.copy(), b.copy()
        hpl_solve_fp64(a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)

    def test_flops_reported(self):
        m = HplAiMatrix(48, seed=2)
        res = hpl_solve_fp64(m.dense(), m.rhs())
        assert isinstance(res, HplResult)
        assert res.flops > (2 * 48**3) // 3

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            hpl_solve_fp64(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ConfigurationError):
            hpl_solve_fp64(np.eye(3), np.zeros(4))


class TestTimeModel:
    def test_anchored_to_published_rmax(self):
        # Time for the full-system HPL problem should imply ~R_max.
        n = 10_000_000
        t = hpl_time_model(SUMMIT, n, SUMMIT.total_gcds)
        implied = (2 / 3) * n**3 / t
        assert implied == pytest.approx(148.6e15, rel=0.01)

    def test_explicit_efficiency(self):
        t_low = hpl_time_model(SUMMIT, 10**6, 100, efficiency=0.5)
        t_high = hpl_time_model(SUMMIT, 10**6, 100, efficiency=0.8)
        assert t_low > t_high

    def test_per_gcd_throughput(self):
        assert hpl_gflops_per_gcd(SUMMIT) == pytest.approx(
            148.6e15 / 27648 / 1e9
        )
        assert hpl_gflops_per_gcd(FRONTIER) == pytest.approx(
            1102e15 / 75264 / 1e9
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hpl_time_model(SUMMIT, 0, 10)
        no_rmax = MachineSpec(
            name="custom", platform="cuda", num_nodes=1,
            node=SUMMIT.node, gpu_kernels=SUMMIT.gpu_kernels,
            cpu_kernels=SUMMIT.cpu_kernels,
        )
        with pytest.raises(ConfigurationError):
            hpl_time_model(no_rmax, 1000, 4)
        with pytest.raises(ConfigurationError):
            hpl_gflops_per_gcd(no_rmax)

    def test_mixed_precision_speedup_zone(self):
        # The anchor behind the 9.5x headline: HPL-AI per-GCD rates from
        # the model must exceed HPL's published per-GCD rate severalfold.
        from repro.bench.figures import SUMMIT_ACHIEVEMENT
        from repro.core.config import BenchmarkConfig
        from repro.model.perf_model import estimate_run

        res = estimate_run(BenchmarkConfig(**SUMMIT_ACHIEVEMENT))
        ratio = res.gflops_per_gcd / hpl_gflops_per_gcd(SUMMIT)
        assert 8.0 < ratio < 12.0
