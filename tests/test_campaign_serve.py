"""Tests for ``repro serve``: HTTP endpoints, caching, and single-flight
dedupe of identical concurrent requests."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import ResultStore, RunCache
from repro.campaign.serve import CampaignService, make_server

JOB = {"machine": "frontier", "nl": 3072, "block": 768, "grid": 2,
       "bcast": "bcast", "num_runs": 1}


@pytest.fixture()
def server(tmp_path):
    srv = make_server(
        tmp_path / "store.jsonl", tmp_path / "cache", port=0
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


def _url(server, path):
    host, port = server.server_address
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path)) as resp:
        return json.loads(resp.read())


def _post(server, path, body):
    req = urllib.request.Request(
        _url(server, path), data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


class TestEndpoints:
    def test_healthz(self, server):
        assert _get(server, "/healthz")["ok"] is True

    def test_run_then_cache_hit(self, server):
        first = _post(server, "/run", JOB)
        assert first["source"] == "computed"
        second = _post(server, "/run", JOB)
        assert second["source"] == "cache"
        assert second["result"]["key"] == first["result"]["key"]
        stats = _get(server, "/stats")
        assert stats["counters"]["computed"] == 1
        assert stats["counters"]["cache_hits"] == 1
        assert stats["store_rows"] == 1

    def test_results_listing_and_lookup(self, server):
        key = _post(server, "/run", JOB)["result"]["key"]
        rows = _get(server, "/results")["rows"]
        assert [r["key"] for r in rows] == [key]
        assert _get(server, f"/results/{key}")["key"] == key

    def test_unknown_result_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/results/ffffffffffffffff")
        assert err.value.code == 404

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404

    def test_bad_job_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/run", {"machine": "frontier", "bogus": 1})
        assert err.value.code == 400

    def test_tune(self, server):
        rows = _post(server, "/tune", {
            "machine": "frontier", "nl": 3072, "grid": 2,
            "blocks": [512, 768],
        })["rows"]
        assert len(rows) == 2

    def test_profile_with_deltas(self, server):
        key = _post(server, "/run", JOB)["result"]["key"]
        other = dict(JOB, bcast="ring2m")
        key2 = _post(server, "/run", other)["result"]["key"]
        out = _post(server, "/profile", {"key": key, "against": key2})
        assert out["against"] == key2
        assert any(d["name"] == "best" for d in out["deltas"])

    def test_stream_emits_progress_events(self, server):
        req = urllib.request.Request(
            _url(server, "/run?stream=1"), data=json.dumps(JOB).encode(),
        )
        with urllib.request.urlopen(req) as resp:
            events = [json.loads(line) for line in resp if line.strip()]
        names = [e["event"] for e in events]
        assert names == ["accepted", "start", "result"]
        assert events[-1]["source"] == "computed"


class TestServeTelemetry:
    def _metrics_text(self, server, *expect):
        """Scrape /metrics; poll briefly for ``expect`` lines — the
        handler thread records latency a hair after the client sees the
        response body, so an instant scrape can race the bookkeeping."""
        import time

        deadline = time.monotonic() + 5.0
        while True:
            with urllib.request.urlopen(_url(server, "/metrics")) as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode()
            if all(e in text for e in expect) or time.monotonic() > deadline:
                return text
            time.sleep(0.01)

    def test_run_responses_carry_source_header(self, server):
        req = urllib.request.Request(
            _url(server, "/run"), data=json.dumps(JOB).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            assert resp.headers["X-Repro-Source"] == "computed"
        with urllib.request.urlopen(req) as resp:
            assert resp.headers["X-Repro-Source"] == "cache"

    def test_error_bodies_are_structured_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/results/ffffffffffffffff")
        doc = json.loads(err.value.read())
        assert doc["status"] == 404
        assert doc["path"] == "/results/ffffffffffffffff"
        assert "ffffffffffffffff" in doc["error"]
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/run", {"machine": "frontier", "bogus": 1})
        doc = json.loads(err.value.read())
        assert doc["status"] == 400 and doc["path"] == "/run"

    def test_metrics_exposes_latency_and_request_counts(self, server):
        _get(server, "/healthz")
        _post(server, "/run", JOB)
        with pytest.raises(urllib.error.HTTPError):
            _get(server, "/results/ffffffffffffffff")
        text = self._metrics_text(
            server,
            'serve_requests{endpoint="/healthz",status="200"} 1',
            'serve_requests{endpoint="/run",status="200"} 1',
            'serve_requests{endpoint="/results/{key}",status="404"} 1',
        )
        assert 'serve_requests{endpoint="/healthz",status="200"} 1' in text
        assert 'serve_requests{endpoint="/run",status="200"} 1' in text
        # /results/<key> collapses to one endpoint label, tagged 404.
        assert (
            'serve_requests{endpoint="/results/{key}",status="404"} 1'
            in text
        )
        assert 'serve_latency_s_count{endpoint="/run"} 1' in text
        assert 'serve_latency_s{endpoint="/run",quantile="0.5"}' in text
        assert 'campaign_serve{event="computed"} 1' in text
        assert "serve_inflight" in text

    def test_metrics_scrape_counts_itself(self, server):
        self._metrics_text(server)
        text = self._metrics_text(
            server, 'serve_requests{endpoint="/metrics",status="200"} 1'
        )
        assert 'serve_requests{endpoint="/metrics",status="200"} 1' in text


class TestSingleFlight:
    def test_concurrent_duplicates_compute_once(self, tmp_path, monkeypatch):
        # Slow the real executor down so all duplicate requests are
        # in flight together, then assert exactly one computation.
        import repro.campaign.serve as serve_mod

        real = serve_mod.execute_job
        release = threading.Event()

        def slow(job_doc, code=None):
            # The owner parks here until the test has seen all four
            # requests arrive, so the other three must join the flight.
            release.wait(10)
            return real(job_doc, code=code)

        monkeypatch.setattr(serve_mod, "execute_job", slow)
        service = CampaignService(
            ResultStore(tmp_path / "store.jsonl"),
            RunCache(tmp_path / "cache"),
            code="test-code",
        )
        results = []

        def call():
            results.append(service.execute(dict(JOB)))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for t in threads:
            t.start()
        import time

        deadline = time.monotonic() + 10
        while (service.counters["requests"] < 4
               and time.monotonic() < deadline):
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join()

        sources = sorted(src for _row, src in results)
        assert sources.count("computed") == 1
        assert sources.count("joined") == 3
        assert service.counters["computed"] == 1
        assert service.counters["joined"] == 3
        keys = {row["key"] for row, _src in results}
        assert len(keys) == 1
        # The one computation landed in both cache and store.
        assert service.store.get(keys.pop()) is not None

    def test_failed_flight_propagates_to_joiners(self, tmp_path, monkeypatch):
        import repro.campaign.serve as serve_mod

        gate = threading.Event()

        def doomed(job_doc, code=None):
            gate.wait(5)
            raise RuntimeError("node fell over")

        monkeypatch.setattr(serve_mod, "execute_job", doomed)
        service = CampaignService(
            ResultStore(tmp_path / "store.jsonl"),
            RunCache(tmp_path / "cache"),
            code="test-code",
        )
        errors = []

        def call():
            try:
                service.execute(dict(JOB))
            except Exception as exc:  # noqa: BLE001 - capturing for assert
                errors.append(str(exc))

        threads = [threading.Thread(target=call) for _ in range(3)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(errors) == 3
        assert any("node fell over" in e for e in errors)
