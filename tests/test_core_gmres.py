"""Tests for the GMRES refinement variant (the HPL-AI reference solver)."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark, solve_hplai
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.machine import FRONTIER, SUMMIT


def _reference(n, seed=42):
    m = HplAiMatrix(n, seed)
    return np.linalg.solve(m.dense(), m.rhs())


class TestGmresExact:
    @pytest.mark.parametrize(
        "n,block,pr,pc",
        [(64, 16, 1, 1), (96, 16, 2, 3), (128, 16, 2, 2), (128, 32, 4, 2)],
    )
    def test_converges_to_fp64(self, n, block, pr, pc):
        res = solve_hplai(
            n=n, block=block, p_rows=pr, p_cols=pc,
            refinement_solver="gmres",
        )
        assert res.ir_converged
        assert np.max(np.abs(res.x - _reference(n))) < 1e-10

    def test_matches_classical_ir_solution(self):
        gm = solve_hplai(n=96, block=16, p_rows=2, p_cols=2,
                         refinement_solver="gmres")
        ir = solve_hplai(n=96, block=16, p_rows=2, p_cols=2,
                         refinement_solver="ir")
        # Both converge to the FP64 solution (paths differ, target same).
        np.testing.assert_allclose(gm.x, ir.x, atol=1e-11)

    def test_gmres_iterations_bounded(self):
        # The benchmark matrix is well conditioned; preconditioned GMRES
        # needs only a few applications.
        res = solve_hplai(n=256, block=32, p_rows=2, p_cols=2,
                          refinement_solver="gmres")
        assert res.ir_iterations <= 10

    def test_all_bcast_algorithms(self):
        for algo in ("bcast", "ring2m"):
            res = solve_hplai(n=96, block=16, p_rows=3, p_cols=2,
                              refinement_solver="gmres",
                              bcast_algorithm=algo)
            assert res.ir_converged


class TestGmresPhantom:
    def test_phantom_run_completes(self):
        cfg = BenchmarkConfig(
            n=3072 * 8, block=3072, machine=FRONTIER, p_rows=2, p_cols=2,
            refinement_solver="gmres", ir_fixed_iters=2,
        )
        res = run_benchmark(cfg, exact=False)
        assert res.elapsed > 0
        assert res.elapsed_refinement > 0

    def test_gmres_costs_more_comm_than_ir(self):
        # Each GMRES application includes a matvec AND a preconditioner
        # solve, so its refinement phase is at least as expensive.
        common = dict(n=3072 * 8, block=3072, machine=FRONTIER,
                      p_rows=2, p_cols=2, ir_fixed_iters=2)
        ir = run_benchmark(
            BenchmarkConfig(**common, refinement_solver="ir"), exact=False
        )
        gm = run_benchmark(
            BenchmarkConfig(**common, refinement_solver="gmres"), exact=False
        )
        assert gm.elapsed_refinement >= ir.elapsed_refinement * 0.9


class TestConfig:
    def test_solver_validation(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(
                n=64, block=16, machine=SUMMIT, p_rows=1, p_cols=1,
                refinement_solver="bicgstab",
            )
