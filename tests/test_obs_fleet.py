"""Tests for the fleet observability layer: analytics document, schema
checker, renderers, and the ``repro fleet`` CLI surface.

The axis coverage invariant the tentpole promises: after any sweep,
the fleet heatmap has one cell per stored (grid, bcast, scenario)
combination and explicitly lists the combinations with no row.
"""

import json

import pytest

from repro.campaign import CampaignEngine, Job, JobQueue, ResultStore, RunCache
from repro.errors import ConfigurationError
from repro.obs.fleet import (
    FLEET_SCHEMA,
    build_fleet,
    check_fleet_document,
    render_fleet_csv,
    render_fleet_text,
)

CODE = "fleet-test-v1"

SCENARIO = {
    "schema": "repro.scenario/v1",
    "name": "limp1",
    "injections": [
        {"kind": "limplock", "rank": 1, "factor": 6.0, "onset_frac": 0.25}
    ],
}


def _job(grid=2, bcast="bcast", **kw):
    kw.setdefault("machine", "frontier")
    kw.setdefault("nl", 3072)
    kw.setdefault("block", 768)
    kw.setdefault("num_runs", 2)
    return Job(grid=grid, bcast=bcast, **kw)


@pytest.fixture()
def swept(tmp_path):
    """A 2x2x1 sweep's store (grid × bcast, baseline scenario)."""
    store = ResultStore(tmp_path / "store.jsonl")
    engine = CampaignEngine(
        store, RunCache(tmp_path / "cache"), workers=1, log=lambda _m: None
    )
    jobs = [
        _job(grid=g, bcast=b)
        for g in (2, 4) for b in ("bcast", "ring2m")
    ]
    engine.run_sweep(jobs, JobQueue(tmp_path / "q.json"), code=CODE)
    return store


class TestBuildFleet:
    def test_document_is_valid_and_covers_every_cell(self, swept):
        doc = build_fleet(swept)
        assert doc["schema"] == FLEET_SCHEMA
        assert check_fleet_document(doc) == []
        heatmap = doc["heatmap"]
        assert heatmap["grids"] == ["2x2", "4x4"]
        assert heatmap["bcasts"] == ["bcast", "ring2m"]
        assert heatmap["scenarios"] == ["baseline"]
        assert len(heatmap["cells"]) == 4
        assert heatmap["missing"] == []
        covered = {
            (c["grid"], c["bcast"], c["scenario"])
            for c in heatmap["cells"]
        }
        assert len(covered) == 4

    def test_missing_axis_combinations_listed(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        engine = CampaignEngine(
            store, RunCache(tmp_path / "cache"), log=lambda _m: None
        )
        jobs = [_job(grid=2, bcast="bcast"),
                _job(grid=4, bcast="ring2m")]
        engine.run_sweep(jobs, JobQueue(tmp_path / "q.json"), code=CODE)
        heatmap = build_fleet(store)["heatmap"]
        assert len(heatmap["cells"]) == 2
        assert {(m["grid"], m["bcast"]) for m in heatmap["missing"]} == {
            ("2x2", "ring2m"), ("4x4", "bcast"),
        }

    def test_best_and_worst_cells_identified(self, swept):
        doc = build_fleet(swept)
        cells = doc["heatmap"]["cells"]
        by_gfs = sorted(cells, key=lambda c: c["gflops_per_gcd"])
        assert doc["best"]["cell"]["key"] == by_gfs[-1]["key"]
        assert doc["worst"]["cell"]["key"] == by_gfs[0]["key"]

    def test_phase_attribution_from_profile_artifacts(self, swept, tmp_path):
        doc0 = build_fleet(swept)
        best_key = doc0["best"]["cell"]["key"]
        profile = {
            "schema": "repro.obs.profile/v1",
            "phase_seconds": {"gemm": 1.5, "panel": 0.5},
            "critical_path": {"bounding_phase": "gemm"},
        }
        art = tmp_path / "artifacts"
        art.mkdir()
        (art / f"{best_key}.profile.json").write_text(json.dumps(profile))
        doc = build_fleet(swept, artifacts=art)
        assert doc["best"]["bounding_phase"] == "gemm"
        assert doc["best"]["phase_seconds"]["gemm"] == 1.5
        assert doc["worst"]["phase_seconds"] is None

    def test_health_rollup_counts_findings(self, swept, tmp_path):
        keys = swept.keys()
        art = tmp_path / "artifacts"
        art.mkdir()
        (art / f"{keys[0]}.health.json").write_text(json.dumps({
            "schema": "repro.obs.health/v1",
            "findings": [
                {"kind": "limplock", "severity": "critical"},
                {"kind": "straggler_drift", "severity": "warning"},
            ],
            "watchdog": {"tripped": False},
        }))
        (art / f"{keys[1]}.health.json").write_text(json.dumps({
            "schema": "repro.obs.health/v1",
            "findings": [],
            "watchdog": {"tripped": False},
        }))
        health = build_fleet(swept, artifacts=art)["rollup"]["health"]
        assert health["documents"] == 2
        assert health["findings"] == 2
        assert health["by_severity"] == {"critical": 1, "warning": 1}
        assert health["by_kind"] == {"limplock": 1, "straggler_drift": 1}
        assert health["unhealthy_keys"] == [keys[0]]

    def test_cache_rollup_from_summary(self, swept, tmp_path):
        summary = {
            "schema": "repro.campaign.summary/v1",
            "cache_hit_ratio": 0.5, "computed": 2, "cached": 2,
            "failed": 0, "wall_s": 1.0, "workers": 2,
        }
        p = tmp_path / "summary.json"
        p.write_text(json.dumps(summary))
        cache = build_fleet(swept, summary=p)["rollup"]["cache"]
        assert cache["cache_hit_ratio"] == 0.5
        assert cache["cached"] == 2
        assert build_fleet(swept)["rollup"]["cache"] is None

    def test_worker_utilization_from_row_meta(self, swept):
        workers = build_fleet(swept)["workers"]
        assert workers["jobs"] == 4
        (w,) = workers["per_worker"]
        assert w["worker"] == "MainProcess"
        assert w["jobs"] == 4
        assert w["queue_wait_s"]["max"] >= 0.0
        assert w["run_s"]["total"] > 0.0
        assert len(workers["timeline"]) == 4
        for entry in workers["timeline"]:
            assert entry["end_s"] >= entry["start_s"] >= 0.0

    def test_trend_gate_flags_regressions(self, swept, tmp_path):
        fast = ResultStore(tmp_path / "fast.jsonl")
        for key in swept.keys():
            row = json.loads(json.dumps(swept.get(key)))
            row["best"]["elapsed_s"] *= 0.5
            fast.put(row)
        doc = build_fleet(swept, baselines=[str(fast.path)])
        assert doc["regressed"] is True
        (entry,) = doc["trend"]
        assert entry["regressed"] is True
        assert all(c["regressed"] for c in entry["cells"])
        clean = build_fleet(swept, baselines=[str(swept.path)])
        assert clean["regressed"] is False

    def test_store_export_input(self, swept, tmp_path):
        export = tmp_path / "export.json"
        export.write_text(json.dumps(swept.export_document()))
        doc = build_fleet(export)
        assert len(doc["heatmap"]["cells"]) == 4

    def test_rejects_non_store_input(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"schema": "repro.trace/v1"}))
        with pytest.raises(ConfigurationError, match="not a campaign store"):
            build_fleet(p)


class TestRenderers:
    def test_text_report_names_the_axes(self, swept):
        text = render_fleet_text(build_fleet(swept))
        assert "GF/s per GCD — scenario: baseline" in text
        assert "ring2m" in text and "4x4" in text
        assert "worker utilization" in text
        assert "MainProcess" in text

    def test_csv_has_one_row_per_cell(self, swept):
        lines = render_fleet_csv(build_fleet(swept)).strip().splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("grid,bcast,scenario,key,label")


class TestFleetChecker:
    def _findings(self, path):
        from repro.analyze.checkers import FleetSchemaChecker

        return list(FleetSchemaChecker().check_file(str(path)))

    def test_valid_document_passes(self, swept, tmp_path):
        p = tmp_path / "fleet.json"
        p.write_text(json.dumps(build_fleet(swept)))
        assert self._findings(p) == []

    def test_broken_document_flagged(self, swept, tmp_path):
        doc = build_fleet(swept)
        del doc["heatmap"]["cells"][0]["key"]
        doc["regressed"] = "nope"
        p = tmp_path / "fleet.json"
        p.write_text(json.dumps(doc))
        messages = " ".join(f.message for f in self._findings(p))
        assert "key" in messages and "regressed" in messages

    def test_wrong_schema_tag_still_recognized(self, swept, tmp_path):
        doc = build_fleet(swept)
        doc["schema"] = "repro.obs.fleet/v999"
        p = tmp_path / "fleet.json"
        p.write_text(json.dumps(doc))
        assert self._findings(p)

    def test_other_documents_ignored(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"schema": "repro.trace/v1", "events": []}))
        assert self._findings(p) == []

    def test_registered_in_default_suite(self):
        from repro.analyze.checkers import all_checkers

        assert "fleet-schema" in {c.id for c in all_checkers()}

    def test_trace_schema_skips_fleet_documents(self, swept, tmp_path):
        from repro.analyze.checkers import TraceSchemaChecker

        p = tmp_path / "fleet.json"
        p.write_text(json.dumps(build_fleet(swept)))
        assert list(TraceSchemaChecker().check_file(str(p))) == []


class TestFleetCli:
    def _store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", CODE)
        from repro.cli import main

        store = tmp_path / "store.jsonl"
        rc = main([
            "campaign", "--nl", "3072", "-b", "768", "--grids", "2,4",
            "--bcasts", "bcast,ring2m", "--runs", "1",
            "--store", str(store),
        ])
        assert rc == 0
        return store

    def test_json_output_round_trips(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        store = self._store(tmp_path, monkeypatch)
        out = tmp_path / "fleet.json"
        rc = main(["fleet", str(store), "--format", "json",
                   "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert check_fleet_document(doc) == []
        assert len(doc["heatmap"]["cells"]) == 4

    def test_against_regressed_baseline_exits_1(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        store = self._store(tmp_path, monkeypatch)
        fast = tmp_path / "baseline.jsonl"
        rows = [json.loads(line) for line in
                store.read_text().splitlines() if line.strip()]
        with fast.open("w") as f:
            for row in rows:
                row["best"]["elapsed_s"] *= 0.5
                f.write(json.dumps(row) + "\n")
        rc = main(["fleet", str(store), "--against", str(fast)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "regression gate" in out

    def test_against_clean_baseline_exits_0(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        store = self._store(tmp_path, monkeypatch)
        rc = main(["fleet", str(store), "--against", str(store)])
        assert rc == 0
