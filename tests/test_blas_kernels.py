"""Tests for the BLAS kernels (gemm/getrf/trsm/trsv/gemv)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.blas import (
    gemm,
    gemm_mixed,
    gemm_update,
    getrf_nopiv,
    getrf_partial,
    recursive_getrf_nopiv,
    trsm,
    trsm_left_lower,
    trsm_right_upper,
    trsv_lower_unit,
    trsv_upper,
    gemv,
    gemv_update,
)
from repro.blas.getrf import apply_pivots, unpack_lu
from repro.blas.trsv import lu_solve_packed
from repro.errors import (
    ConfigurationError,
    PrecisionError,
    SingularMatrixError,
)
from repro.lcg.matrix import HplAiMatrix


def _well_conditioned(n, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-0.5, 0.5, (n, n))
    a += n * np.eye(n)
    return a.astype(dtype)


class TestGemm:
    def test_plain_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 7)), rng.normal(size=(7, 3))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_mixed_accumulates_in_fp32(self):
        # A sum long enough that fp16 accumulation would collapse:
        # 4096 terms of 1.0 => fp16 accum saturates near 2048, fp32 exact.
        k = 4096
        a = np.ones((1, k), dtype=np.float16)
        b = np.ones((k, 1), dtype=np.float16)
        out = gemm_mixed(a, b)
        assert out.dtype == np.float32
        assert out[0, 0] == k

    def test_mixed_rounds_operands_to_fp16(self):
        # 1 + 2^-12 is not representable in fp16; it must round to 1.
        a = np.array([[1.0 + 2**-12]], dtype=np.float32)
        b = np.array([[1.0]], dtype=np.float32)
        assert gemm_mixed(a, b)[0, 0] == 1.0

    def test_mixed_fp16_overflow_raises(self):
        # 70000 > FP16_MAX (65504): the cast would silently produce inf
        # and poison the accumulation; it must raise instead.
        a = np.array([[70000.0]], dtype=np.float32)
        b = np.ones((1, 1), dtype=np.float32)
        with pytest.raises(PrecisionError, match="FP16 max"):
            gemm_mixed(a, b)
        with pytest.raises(PrecisionError, match="operand B"):
            gemm_mixed(b, a)

    def test_mixed_overflow_message_counts_and_worst(self):
        a = np.array([[7e4, -1e5, 1.0]], dtype=np.float64)
        b = np.ones((3, 1))
        with pytest.raises(PrecisionError, match=r"2 value\(s\)"):
            gemm_mixed(a, b)

    def test_mixed_at_fp16_max_is_exact(self):
        # The boundary value itself is representable: no error.
        m = float(np.finfo(np.float16).max)
        out = gemm_mixed(np.array([[m]]), np.array([[1.0]]))
        assert out[0, 0] == np.float32(m)

    def test_mixed_existing_inf_nan_pass_through(self):
        # Already-nonfinite inputs cast faithfully: not an overflow.
        a = np.array([[np.inf, np.nan]], dtype=np.float32)
        b = np.zeros((2, 1), dtype=np.float32)
        with np.errstate(invalid="ignore"):  # inf * 0 is the point
            out = gemm_mixed(a, b)
        assert np.isnan(out[0, 0])

    def test_mixed_fp16_operands_skip_the_check(self):
        # FP16 inputs cannot overflow the cast; inf passes through.
        a = np.array([[np.inf]], dtype=np.float16)
        b = np.ones((1, 1), dtype=np.float16)
        assert np.isinf(gemm_mixed(a, b)[0, 0])

    def test_update_in_place(self):
        c = np.full((2, 2), 10.0, dtype=np.float32)
        a = np.eye(2, dtype=np.float16)
        b = np.ones((2, 2), dtype=np.float16)
        ret = gemm_update(c, a, b)
        assert ret is c
        np.testing.assert_array_equal(c, np.full((2, 2), 10.0) - np.ones((2, 2)))

    def test_update_requires_fp32_c(self):
        with pytest.raises(ConfigurationError):
            gemm_update(np.zeros((2, 2)), np.eye(2, dtype=np.float16),
                        np.eye(2, dtype=np.float16))

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            gemm(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ConfigurationError):
            gemm_update(
                np.zeros((3, 3), dtype=np.float32),
                np.zeros((2, 2), dtype=np.float16),
                np.zeros((2, 2), dtype=np.float16),
            )


class TestGetrf:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
    def test_nopiv_reconstructs(self, n):
        a = _well_conditioned(n, seed=n)
        lu = getrf_nopiv(a.copy())
        lower, upper = unpack_lu(lu)
        np.testing.assert_allclose(lower @ upper, a, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("n", [1, 7, 32, 64, 100])
    def test_recursive_matches_iterative(self, n):
        a = _well_conditioned(n, seed=n + 1)
        lu_iter = getrf_nopiv(a.copy())
        lu_rec = recursive_getrf_nopiv(a.copy(), threshold=8)
        np.testing.assert_allclose(lu_rec, lu_iter, rtol=1e-9, atol=1e-12)

    def test_nopiv_on_hplai_matrix_fp32(self):
        a = HplAiMatrix(n=96, seed=11).dense(dtype=np.float32)
        orig = a.copy()
        lu = getrf_nopiv(a)
        lower, upper = unpack_lu(lu.astype(np.float64))
        err = np.max(np.abs(lower @ upper - orig.astype(np.float64)))
        assert err < 96 * np.finfo(np.float32).eps * 10

    def test_zero_pivot_raises(self):
        a = np.zeros((3, 3))
        with pytest.raises(SingularMatrixError):
            getrf_nopiv(a)

    def test_partial_pivoting_matches_scipy(self):
        rng = np.random.default_rng(12)
        a = rng.normal(size=(20, 20))
        lu, piv = getrf_partial(a.copy())
        lower, upper = unpack_lu(lu)
        pa = apply_pivots(a.copy(), piv)
        np.testing.assert_allclose(lower @ upper, pa, rtol=1e-10, atol=1e-12)

    def test_partial_handles_zero_leading_pivot(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu, piv = getrf_partial(a.copy())
        assert piv[0] == 1  # swapped

    def test_partial_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            getrf_partial(np.zeros((2, 2)))

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            getrf_nopiv(np.zeros((2, 3)))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 12).map(lambda n: (n, n)),
            elements=st.floats(-0.4, 0.4),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_reconstruction_diag_dominant(self, a):
        n = a.shape[0]
        a = a + 2.0 * n * np.eye(n)
        lu = getrf_nopiv(a.copy())
        lower, upper = unpack_lu(lu)
        assert np.max(np.abs(lower @ upper - a)) < 1e-8 * n * n


class TestTrsm:
    def setup_method(self):
        rng = np.random.default_rng(3)
        n, m = 8, 12
        self.lower = np.tril(rng.normal(size=(n, n)), -1) + np.eye(n)
        self.upper = np.triu(rng.normal(size=(n, n))) + 3 * np.eye(n)
        self.b_left = rng.normal(size=(n, m))
        self.b_right = rng.normal(size=(m, n))

    def test_left_lower_unit(self):
        x = trsm_left_lower(self.lower, self.b_left)
        np.testing.assert_allclose(self.lower @ x, self.b_left, atol=1e-10)

    def test_right_upper(self):
        x = trsm_right_upper(self.upper, self.b_right)
        np.testing.assert_allclose(x @ self.upper, self.b_right, atol=1e-10)

    def test_dispatch_matches_direct(self):
        x1 = trsm("L", "LOW", self.lower, self.b_left)
        x2 = trsm_left_lower(self.lower, self.b_left)
        np.testing.assert_array_equal(x1, x2)

    def test_dispatch_all_variants_roundtrip(self):
        for side, uplo, t, b in [
            ("left", "lower", self.lower, self.b_left),
            ("left", "upper", self.upper, self.b_left),
            ("right", "upper", self.upper, self.b_right),
            ("right", "lower", self.lower, self.b_right),
        ]:
            x = trsm(side, uplo, t, b)
            recon = t @ x if side == "left" else x @ t
            np.testing.assert_allclose(recon, b, atol=1e-9)

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            trsm("middle", "low", self.lower, self.b_left)

    def test_preserves_dtype_fp32(self):
        x = trsm_left_lower(
            self.lower.astype(np.float32), self.b_left.astype(np.float32)
        )
        assert x.dtype == np.float32

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            trsm_left_lower(self.lower, self.b_right)


class TestTrsvGemv:
    def test_trsv_roundtrip(self):
        rng = np.random.default_rng(4)
        n = 10
        lower = np.tril(rng.normal(size=(n, n)), -1) + np.eye(n)
        upper = np.triu(rng.normal(size=(n, n))) + 2 * np.eye(n)
        x = rng.normal(size=n)
        np.testing.assert_allclose(lower @ trsv_lower_unit(lower, x), x, atol=1e-10)
        np.testing.assert_allclose(upper @ trsv_upper(upper, x), x, atol=1e-10)

    def test_lu_solve_packed(self):
        a = _well_conditioned(12, seed=5)
        b = np.arange(12, dtype=np.float64)
        lu = getrf_nopiv(a.copy())
        y = lu_solve_packed(lu, b)
        np.testing.assert_allclose(a @ y, b, atol=1e-8)

    def test_lu_solve_packed_fp32_solve_dtype(self):
        a = _well_conditioned(12, seed=6)
        b = np.ones(12)
        lu = getrf_nopiv(a.copy())
        y = lu_solve_packed(lu, b, solve_dtype=np.float32)
        assert y.dtype == np.float64
        # fp32 solve: residual at fp32 level, not fp64.
        assert np.max(np.abs(a @ y - b)) < 1e-4
        assert np.max(np.abs(a @ y - b)) > 1e-12

    def test_gemv_and_update(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(6, 4))
        x = rng.normal(size=4)
        y = rng.normal(size=6)
        np.testing.assert_allclose(gemv(a, x), a @ x)
        y2 = y.copy()
        gemv_update(y2, a, x)
        np.testing.assert_allclose(y2, y - a @ x)

    def test_gemv_shape_validation(self):
        with pytest.raises(ConfigurationError):
            gemv(np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(ConfigurationError):
            gemv_update(np.zeros(4), np.zeros((3, 3)), np.zeros(3))


class TestMixedPrecisionErrorBounds:
    @given(st.integers(2, 24), st.integers(2, 24), st.integers(2, 48))
    @settings(max_examples=30, deadline=None)
    def test_gemm_mixed_error_within_fp16_envelope(self, m, n, k):
        # Each operand element carries one fp16 rounding (u = 2^-11);
        # products/sums are fp32.  The classical forward bound gives
        # |mixed - exact| <= ~(2u + k*eps32) * k * max|a||b|.
        rng = np.random.default_rng(m * 1000 + n * 10 + k)
        a = rng.uniform(-1, 1, (m, k))
        b = rng.uniform(-1, 1, (k, n))
        exact = a @ b
        mixed = gemm_mixed(a.astype(np.float32), b.astype(np.float32))
        u16 = 2.0 ** -11
        bound = (2 * u16 + 1e-6 * k) * k * 1.0 * 1.0 * 1.05 + 1e-7
        assert np.max(np.abs(mixed - exact)) <= bound

    def test_mixed_worse_than_fp32_but_structured(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (64, 64))
        b = rng.uniform(-1, 1, (64, 64))
        exact = a @ b
        err_mixed = np.max(np.abs(
            gemm_mixed(a.astype(np.float32), b.astype(np.float32)) - exact
        ))
        err_fp32 = np.max(np.abs(
            (a.astype(np.float32) @ b.astype(np.float32)) - exact
        ))
        assert err_mixed > err_fp32  # fp16 inputs genuinely cost accuracy
