"""Tests for the hotpaths regression gate (repro.bench.regression) and
the bench record's relocated default path."""

import json

import pytest

from repro.bench.hotpaths import DEFAULT_OUT, LEGACY_OUT, SCHEMA, load_record
from repro.bench.regression import (
    MIN_GATE_SECONDS,
    compare_records,
    render_regressions,
    stage_seconds,
)
from repro.errors import ConfigurationError


def _record(stage_times, **config):
    cfg = dict(n=256, block=32, grid=2, machine="summit", seed=42)
    cfg.update(config)
    return {
        "schema": SCHEMA,
        "config": cfg,
        "results": [
            {"stage": stage, "reps": 2, "min_s": t, "mean_s": t, "max_s": t}
            for stage, t in stage_times.items()
        ],
    }


class TestStageSeconds:
    def test_extracts_min_s(self):
        rec = _record({"panel_factor": 0.5, "trailing_update": 1.5})
        assert stage_seconds(rec) == {
            "panel_factor": 0.5, "trailing_update": 1.5,
        }

    def test_rejects_non_record(self):
        with pytest.raises(ConfigurationError):
            stage_seconds({"schema": SCHEMA})

    def test_truncated_record_rejected(self):
        # A crash mid-write used to leave rows without 'min_s'; the old
        # coercion to 0.0 made every stage look infinitely faster and the
        # gate silently passed.  Malformed rows must be an error instead.
        rec = _record({"panel_factor": 0.5})
        del rec["results"][0]["min_s"]
        with pytest.raises(ConfigurationError, match="min_s"):
            stage_seconds(rec)

    def test_non_numeric_min_s_rejected(self):
        rec = _record({"panel_factor": 0.5})
        rec["results"][0]["min_s"] = "fast"
        with pytest.raises(ConfigurationError, match="min_s"):
            stage_seconds(rec)


class TestCompareRecords:
    def test_within_budget_passes(self):
        cur = _record({"panel_factor": 0.55})
        base = _record({"panel_factor": 0.5})
        deltas = compare_records(cur, base, max_regress=0.25)
        assert not any(d.regressed for d in deltas)

    def test_regression_detected(self):
        cur = _record({"panel_factor": 1.0})
        base = _record({"panel_factor": 0.5})
        (d,) = compare_records(cur, base, max_regress=0.25)
        assert d.regressed and d.delta == pytest.approx(1.0)

    def test_sub_millisecond_stages_are_noise_exempt(self):
        cur = _record({"tiny": MIN_GATE_SECONDS / 10})
        base = _record({"tiny": MIN_GATE_SECONDS / 100})
        (d,) = compare_records(cur, base, max_regress=0.25)
        assert not d.regressed

    def test_different_shapes_refused(self):
        cur = _record({"panel_factor": 1.0}, n=512)
        base = _record({"panel_factor": 1.0}, n=256)
        with pytest.raises(ConfigurationError):
            compare_records(cur, base)


class TestRenderRegressions:
    def test_verdict_column(self):
        deltas = compare_records(
            _record({"slow": 1.0, "ok": 0.5}),
            _record({"slow": 0.5, "ok": 0.5}),
            max_regress=0.25,
        )
        text = render_regressions(deltas, 0.25)
        assert "1 stage(s) FAILED" in text
        assert "FAIL" in text

    def test_clean_gate_summary(self):
        deltas = compare_records(
            _record({"ok": 0.5}), _record({"ok": 0.5})
        )
        assert "all stages within budget" in render_regressions(deltas, 0.25)


class TestLoadRecord:
    def test_reads_default_location(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        p = tmp_path / DEFAULT_OUT
        p.parent.mkdir(parents=True)
        p.write_text(json.dumps(_record({"a": 1.0})))
        rec = load_record()
        assert rec is not None and rec["schema"] == SCHEMA

    def test_falls_back_to_legacy_root_record(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / LEGACY_OUT).write_text(json.dumps(_record({"a": 1.0})))
        rec = load_record()
        assert rec is not None and rec["schema"] == SCHEMA

    def test_explicit_path_has_no_fallback(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / LEGACY_OUT).write_text(json.dumps(_record({"a": 1.0})))
        assert load_record(str(tmp_path / "elsewhere.json")) is None

    def test_wrong_schema_ignored(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        p = tmp_path / DEFAULT_OUT
        p.parent.mkdir(parents=True)
        p.write_text(json.dumps({"schema": "something/else"}))
        assert load_record() is None

    def test_missing_record_is_none(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert load_record() is None
