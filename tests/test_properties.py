"""Cross-cutting property-based tests (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.ring import _join, _split
from repro.comm.route import (
    route_ring1,
    route_ring1m,
    route_ring2m,
    route_tree,
)
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.model.comm_model import bcast_time
from repro.simulate.phantom import PhantomArray

members_lists = st.lists(
    st.integers(0, 500), min_size=1, max_size=24, unique=True
)


class TestRingSegmentation:
    @given(
        st.integers(1, 40),  # rows
        st.integers(1, 5),   # cols
        st.integers(1, 12),  # segments
    )
    @settings(max_examples=60, deadline=None)
    def test_split_join_roundtrip_ndarray(self, rows, cols, nseg):
        rng = np.random.default_rng(rows * 100 + cols)
        payload = rng.normal(size=(rows, cols))
        segs = _split(payload, nseg)
        back = _join(segs)
        np.testing.assert_array_equal(back, payload)

    @given(st.integers(1, 40), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_split_join_roundtrip_phantom(self, rows, nseg):
        payload = PhantomArray((rows, 7), np.float16)
        back = _join(_split(payload, nseg))
        assert back.shape == payload.shape
        assert back.dtype == payload.dtype

    @given(st.integers(2, 40), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_split_preserves_total_bytes(self, rows, nseg):
        payload = PhantomArray((rows, 3), np.float32)
        segs = _split(payload, nseg)
        assert sum(s.nbytes for s in segs) == payload.nbytes


class TestRouteBuilders:
    @given(members_lists)
    @settings(max_examples=60, deadline=None)
    def test_every_builder_covers_all_members(self, members):
        root = members[0]
        for builder in (
            lambda r, m: route_tree(r, m),
            lambda r, m: route_ring1(r, m),
            lambda r, m: route_ring1m(r, m),
            lambda r, m: route_ring2m(r, m),
        ):
            spec = builder(root, members)
            assert set(spec.destinations) == set(members) - {root}

    @given(members_lists, st.integers(0, 23))
    @settings(max_examples=40, deadline=None)
    def test_any_member_can_be_root(self, members, idx):
        root = members[idx % len(members)]
        spec = route_tree(root, members)
        assert spec.root == root
        assert root not in spec.destinations

    @given(members_lists)
    @settings(max_examples=40, deadline=None)
    def test_hierarchical_tree_with_arbitrary_node_map(self, members):
        spec = route_tree(members[0], members, node_of=lambda r: r // 4)
        assert set(spec.destinations) == set(members) - {members[0]}


class TestBcastTimeProperties:
    @given(
        st.sampled_from(["bcast", "ibcast", "ring1", "ring1m", "ring2m"]),
        st.integers(2, 300),
        st.floats(1e3, 1e9),
    )
    @settings(max_examples=80, deadline=None)
    def test_nonnegative_and_monotone_in_size(self, algo, members, nbytes):
        costs = CommCosts(FRONTIER)
        t1 = bcast_time(algo, nbytes, members, costs, FRONTIER.mpi)
        t2 = bcast_time(algo, nbytes * 2, members, costs, FRONTIER.mpi)
        assert t1 >= 0
        assert t2 >= t1

    @given(st.sampled_from(["ring1", "ring2m"]), st.integers(2, 200))
    @settings(max_examples=40, deadline=None)
    def test_more_sharing_never_faster(self, algo, members):
        costs = CommCosts(SUMMIT)
        t1 = bcast_time(algo, 1e7, members, costs, SUMMIT.mpi, sharing=1)
        t4 = bcast_time(algo, 1e7, members, costs, SUMMIT.mpi, sharing=4)
        assert t4 >= t1


class TestEngineDeterminism:
    @given(st.integers(2, 6), st.integers(1, 20))
    @settings(max_examples=15, deadline=None)
    def test_identical_runs_identical_clocks(self, world, steps):
        from repro.simulate import Compute, Engine, Recv, Send

        def make_prog():
            def prog(rank):
                for i in range(steps):
                    yield Compute("w", 0.001 * ((rank + i) % 3 + 1))
                    if rank == 0:
                        for dst in range(1, world):
                            yield Send(dst, i, tag=i)
                    else:
                        _ = yield Recv(0, tag=i)
                return None
            return prog

        a = Engine(world, CommCosts(SUMMIT)).run(make_prog())
        b = Engine(world, CommCosts(SUMMIT)).run(make_prog())
        assert a.elapsed == b.elapsed
        assert a.events == b.events

    @given(st.integers(16, 512).map(lambda n: n * 2))
    @settings(max_examples=10, deadline=None)
    def test_exact_solve_deterministic(self, n):
        from repro.core.driver import solve_hplai

        block = 16 if n % 16 == 0 else 8
        if n % (block * 2) != 0:
            n = (n // (block * 2)) * block * 2
            if n < block * 2:
                n = block * 2
        a = solve_hplai(n=n, block=block, p_rows=2, p_cols=1)
        b = solve_hplai(n=n, block=block, p_rows=2, p_cols=1)
        np.testing.assert_array_equal(a.x, b.x)
        assert a.elapsed == b.elapsed
