"""Tests for emulated bfloat16 and the bf16 panel-precision option."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import solve_hplai
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.precision.bfloat import BF16, cast_panel, round_to_bf16


class TestRounding:
    def test_representable_values_fixed_point(self):
        # bf16-representable values (low 16 bits zero) pass through.
        vals = np.array([1.0, -2.5, 0.0, 0.15625, float(2.0**68)],
                        dtype=np.float32)
        np.testing.assert_array_equal(round_to_bf16(vals), vals)

    def test_rounding_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.5, 2.0, size=5000).astype(np.float32)
        r = round_to_bf16(x)
        rel = np.abs(r.astype(np.float64) - x.astype(np.float64)) / x
        assert rel.max() <= BF16.unit_roundoff * 1.0001

    def test_coarser_than_fp16_near_one(self):
        # 1 + 2^-10 is representable in fp16 but not bf16.
        x = np.array([1.0 + 2.0**-10], dtype=np.float32)
        assert float(x.astype(np.float16)[0]) != 1.0
        assert float(round_to_bf16(x)[0]) == 1.0

    def test_wide_exponent_range_no_underflow(self):
        # Values far below fp16's min normal survive bf16 rounding.
        tiny = np.array([1e-20, -3e-30], dtype=np.float32)
        r = round_to_bf16(tiny)
        assert np.all(r != 0.0)
        assert np.all(np.abs(r - tiny) / np.abs(tiny) < 2.0**-7)

    def test_round_to_nearest_even(self):
        # Exactly halfway mantissas round to even (RNE).
        base = np.float32(1.0)
        half_ulp = np.float32(2.0**-8)  # half of bf16's ulp at 1.0
        x = np.array([base + half_ulp], dtype=np.float32)
        r = float(round_to_bf16(x)[0])
        assert r == 1.0  # ties-to-even: 1.0 has even mantissa

    def test_nan_inf_preserved(self):
        x = np.array([np.nan, np.inf, -np.inf], dtype=np.float32)
        r = round_to_bf16(x)
        assert np.isnan(r[0]) and np.isinf(r[1]) and np.isinf(r[2])

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, v):
        x = np.array([v], dtype=np.float32)
        once = round_to_bf16(x)
        twice = round_to_bf16(once)
        np.testing.assert_array_equal(once, twice)

    def test_cast_panel_dispatch(self):
        x = np.ones((3, 3), dtype=np.float32)
        assert cast_panel(x, "fp16").dtype == np.float16
        assert cast_panel(x, "bf16").dtype == np.float32
        with pytest.raises(ConfigurationError):
            cast_panel(x, "fp8")


class TestBf16Solve:
    def test_converges_to_fp64(self):
        res = solve_hplai(n=128, block=16, p_rows=2, p_cols=2,
                          panel_precision="bf16")
        assert res.ir_converged
        m = HplAiMatrix(128, 42)
        x_ref = np.linalg.solve(m.dense(), m.rhs())
        assert np.max(np.abs(res.x - x_ref)) < 1e-10

    def test_bf16_needs_at_least_as_many_iterations(self):
        # Fewer mantissa bits -> rougher factors -> >= refinement work.
        fp16 = solve_hplai(n=256, block=32, p_rows=2, p_cols=2,
                           panel_precision="fp16")
        bf16 = solve_hplai(n=256, block=32, p_rows=2, p_cols=2,
                           panel_precision="bf16")
        assert bf16.ir_iterations >= fp16.ir_iterations
        assert bf16.ir_converged and fp16.ir_converged

    def test_bf16_escapes_the_fp16_n_cap(self):
        # N beyond FP16_SAFE_N is rejected for fp16 panels but fine for
        # bf16 (wide exponent range).  Keep it small-ish for runtime.
        from repro.core.config import BenchmarkConfig
        from repro.core.driver import run_benchmark
        from repro.machine import SUMMIT

        n = 4608  # > FP16_SAFE_N = 4096
        cfg16 = BenchmarkConfig(n=n, block=512, machine=SUMMIT,
                                p_rows=3, p_cols=3)
        with pytest.raises(ConfigurationError):
            run_benchmark(cfg16, exact=True)
        cfgbf = BenchmarkConfig(n=n, block=512, machine=SUMMIT,
                                p_rows=3, p_cols=3,
                                panel_precision="bf16")
        res = run_benchmark(cfgbf, exact=True)
        assert res.ir_converged

    def test_gmres_with_bf16(self):
        res = solve_hplai(n=96, block=16, p_rows=2, p_cols=2,
                          panel_precision="bf16",
                          refinement_solver="gmres")
        assert res.ir_converged

    def test_config_validation(self):
        from repro.core.config import BenchmarkConfig
        from repro.machine import SUMMIT

        with pytest.raises(ConfigurationError):
            BenchmarkConfig(n=64, block=16, machine=SUMMIT, p_rows=1,
                            p_cols=1, panel_precision="fp8")
