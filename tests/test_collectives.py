"""Tests for hand-built all-reduce algorithms and run verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.collectives import (
    ALLREDUCE_ALGORITHMS,
    allreduce_recursive_doubling,
    allreduce_ring,
)
from repro.errors import CommunicationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.simulate import Engine, Now, PhantomArray


def run_allreduce(algo, world, n=64, members=None, machine=SUMMIT):
    members = members if members is not None else list(range(world))

    def prog(rank):
        if rank not in members:
            return None
        vec = np.arange(n, dtype=np.float64) * (rank + 1)
        out = yield from algo(rank, vec, members, tag=3)
        t = yield Now()
        return (out, t)

    return Engine(world, CommCosts(machine)).run(prog)


class TestAllreduceCorrectness:
    @pytest.mark.parametrize("algo", list(ALLREDUCE_ALGORITHMS.values()))
    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5, 7, 8, 12])
    def test_sums_across_members(self, algo, world):
        res = run_allreduce(algo, world)
        factor = sum(r + 1 for r in range(world))
        expected = np.arange(64, dtype=np.float64) * factor
        for rank in range(world):
            out, _t = res.returns[rank]
            np.testing.assert_allclose(out, expected, rtol=1e-12)

    @pytest.mark.parametrize("algo", list(ALLREDUCE_ALGORITHMS.values()))
    def test_subset_members(self, algo):
        members = [1, 3, 4]
        res = run_allreduce(algo, 6, members=members)
        factor = sum(r + 1 for r in members)
        for rank in members:
            np.testing.assert_allclose(
                res.returns[rank][0],
                np.arange(64, dtype=np.float64) * factor,
            )

    @pytest.mark.parametrize("algo", list(ALLREDUCE_ALGORITHMS.values()))
    def test_phantom_payloads(self, algo):
        def prog(rank):
            p = PhantomArray((1000,), np.float64)
            out = yield from algo(rank, p, [0, 1, 2, 3], tag=1)
            return out

        res = Engine(4, CommCosts(FRONTIER)).run(prog)
        for out in res.returns:
            assert isinstance(out, PhantomArray)

    def test_nonmember_rejected(self):
        def prog(rank):
            yield from allreduce_ring(rank, np.ones(4), [1, 2], tag=0)

        with pytest.raises(CommunicationError):
            Engine(3, CommCosts(SUMMIT)).run(prog)

    @given(st.integers(2, 9), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_ring_handles_any_length(self, world, n):
        # Segments may be empty when n < m; sums must still be right.
        def prog(rank):
            vec = np.full(n, float(rank + 1))
            out = yield from allreduce_ring(rank, vec, list(range(world)), 2)
            return out

        res = Engine(world, CommCosts(SUMMIT)).run(prog)
        total = sum(r + 1 for r in range(world))
        for out in res.returns:
            np.testing.assert_allclose(out, np.full(n, float(total)))


class TestAllreducePerformanceShapes:
    def test_ring_wins_large_payloads(self):
        # Bandwidth-optimal ring vs doubling for a big vector across
        # nodes: ring must be at least competitive.
        n = 2_000_000

        def timing(algo):
            def prog(rank):
                vec = PhantomArray((n,), np.float64)
                yield from algo(rank, vec, list(range(8)), tag=1)
                return (yield Now())

            res = Engine(
                8, CommCosts(FRONTIER), node_of_rank=lambda r: r
            ).run(prog)
            return max(res.returns)

        t_ring = timing(allreduce_ring)
        t_dbl = timing(allreduce_recursive_doubling)
        assert t_ring < t_dbl

    def test_doubling_wins_small_payloads(self):
        # Latency-dominated: log2(m) rounds beat 2(m-1) ring hops.
        def timing(algo):
            def prog(rank):
                vec = np.ones(4)
                yield from algo(rank, vec, list(range(16)), tag=1)
                return (yield Now())

            res = Engine(
                16, CommCosts(FRONTIER), node_of_rank=lambda r: r
            ).run(prog)
            return max(res.returns)

        assert timing(allreduce_recursive_doubling) < timing(allreduce_ring)


class TestVerification:
    def test_exact_run_passes_submission_checks(self):
        from repro.core.driver import solve_hplai
        from repro.core.verify import (
            check_flop_accounting,
            submission_record,
            verify_solution,
        )

        res = solve_hplai(n=256, block=32, p_rows=2, p_cols=2)
        report = verify_solution(res.x, n=256)
        assert report.passed
        assert report.scaled_residual < 1.0  # far below the 16 threshold
        assert "PASSED" in report.describe()

        record = submission_record(res)
        assert record["verified"] is True
        assert record["N"] == 256
        assert check_flop_accounting(res)

    def test_wrong_solution_fails(self):
        from repro.core.verify import verify_solution

        bad = np.ones(128)
        report = verify_solution(bad, n=128)
        assert not report.passed

    def test_phantom_record_has_no_verdict(self):
        from repro.core.config import BenchmarkConfig
        from repro.core.driver import simulate_run
        from repro.core.verify import submission_record

        cfg = BenchmarkConfig(n=3072 * 4, block=3072, machine=FRONTIER,
                              p_rows=2, p_cols=2)
        record = submission_record(simulate_run(cfg))
        assert record["verified"] is None

    def test_input_validation(self):
        from repro.core.verify import verify_solution
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            verify_solution(np.ones(4))
        with pytest.raises(ConfigurationError):
            verify_solution(np.ones(4), n=8)


class TestAllreduceInRefinement:
    @pytest.mark.parametrize("algo", [None, "ring", "doubling"])
    def test_exact_solve_with_each_allreduce(self, algo):
        from repro.core.driver import solve_hplai
        from repro.lcg.matrix import HplAiMatrix

        res = solve_hplai(n=96, block=16, p_rows=2, p_cols=3,
                          allreduce_algorithm=algo)
        assert res.ir_converged
        m = HplAiMatrix(96, 42)
        x_ref = np.linalg.solve(m.dense(), m.rhs())
        assert np.max(np.abs(res.x - x_ref)) < 1e-10

    def test_config_validation(self):
        from repro.core.config import BenchmarkConfig
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BenchmarkConfig(n=64, block=16, machine=SUMMIT, p_rows=1,
                            p_cols=1, allreduce_algorithm="butterfly")
