"""Tests for the five broadcast algorithms and the RankComm facade."""

import numpy as np
import pytest

from repro.comm import BCAST_ALGORITHMS, RankComm
from repro.errors import CommunicationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.simulate import Engine, Now, PhantomArray

ALGOS = sorted(BCAST_ALGORITHMS)


def run_bcast(
    algo,
    world,
    root,
    payload_factory,
    machine=SUMMIT,
    node_of=None,
    members=None,
    segments=8,
):
    members = members if members is not None else list(range(world))

    def prog(rank):
        comm = RankComm(rank, machine.mpi, bcast_algorithm=algo,
                        ring_segments=segments)
        if rank not in members:
            return None
        payload = payload_factory() if rank == root else None
        data = yield from comm.bcast(payload, root, members, tag=1)
        t = yield Now()
        return (data, t)

    engine = Engine(world, CommCosts(machine), node_of_rank=node_of)
    return engine.run(prog)


class TestCorrectness:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("world,root", [(1, 0), (2, 0), (2, 1), (5, 2),
                                            (8, 0), (8, 7), (13, 4)])
    def test_all_members_get_payload(self, algo, world, root):
        res = run_bcast(algo, world, root, lambda: np.arange(40.0))
        for rank in range(world):
            data, _ = res.returns[rank]
            np.testing.assert_array_equal(data, np.arange(40.0))

    @pytest.mark.parametrize("algo", ALGOS)
    def test_subset_members(self, algo):
        members = [1, 3, 4, 6]
        res = run_bcast(algo, 8, 3, lambda: np.ones(16), members=members)
        for rank in range(8):
            if rank in members:
                np.testing.assert_array_equal(res.returns[rank][0], np.ones(16))
            else:
                assert res.returns[rank] is None

    @pytest.mark.parametrize("algo", ALGOS)
    def test_phantom_payloads(self, algo):
        res = run_bcast(algo, 6, 0, lambda: PhantomArray((128, 64), np.float16))
        for rank in range(6):
            data, _ = res.returns[rank]
            assert isinstance(data, PhantomArray)
            assert data.shape == (128, 64)
            assert data.dtype == np.float16

    @pytest.mark.parametrize("algo", ["ring1", "ring1m", "ring2m"])
    def test_small_payload_fewer_rows_than_segments(self, algo):
        # Payload with 3 rows but 8 requested segments must still work.
        res = run_bcast(algo, 5, 0, lambda: np.ones((3, 4)), segments=8)
        for rank in range(5):
            np.testing.assert_array_equal(res.returns[rank][0], np.ones((3, 4)))

    @pytest.mark.parametrize("algo", ["ring1", "ring1m", "ring2m"])
    def test_unsplittable_payload(self, algo):
        res = run_bcast(algo, 4, 1, lambda: 123.0)
        for rank in range(4):
            assert res.returns[rank][0] == 123.0

    @pytest.mark.parametrize("algo", ALGOS)
    def test_successive_broadcasts_with_distinct_tags(self, algo):
        def prog(rank):
            comm = RankComm(rank, SUMMIT.mpi, bcast_algorithm=algo)
            members = [0, 1, 2]
            a = yield from comm.bcast(
                np.float64(1.0) if rank == 0 else None, 0, members, tag=1
            )
            b = yield from comm.bcast(
                np.float64(2.0) if rank == 1 else None, 1, members, tag=2
            )
            return (float(a), float(b))

        res = Engine(3, CommCosts(SUMMIT)).run(prog)
        assert res.returns == [(1.0, 2.0)] * 3


class TestPerformanceShapes:
    @staticmethod
    def _finish_time(algo, world, machine, gcds_per_node, size_mb=32):
        payload = PhantomArray((size_mb * 2**20,), np.uint8)
        res = run_bcast(
            algo,
            world,
            0,
            lambda: payload,
            machine=machine,
            node_of=lambda r: r // gcds_per_node,
        )
        return max(t for (_d, t) in res.returns)

    def test_ring_beats_tree_on_frontier(self):
        # Finding 6: ring broadcasts outperform the (untuned) library
        # broadcast on Frontier at scale.
        tree = self._finish_time("bcast", 32, FRONTIER, 8)
        ring = self._finish_time("ring2m", 32, FRONTIER, 8)
        assert ring < tree

    def test_tree_beats_ring_on_summit(self):
        # Finding 6 (converse): Spectrum MPI's tuned broadcast wins on
        # Summit's fat tree.
        tree = self._finish_time("bcast", 32, SUMMIT, 6, size_mb=8)
        ring = self._finish_time("ring1", 32, SUMMIT, 6, size_mb=8)
        assert tree < ring * 1.1  # tuned tree at least competitive

    def test_ibcast_slow_on_summit(self):
        fast = self._finish_time("bcast", 16, SUMMIT, 6)
        slow = self._finish_time("ibcast", 16, SUMMIT, 6)
        assert slow > 1.5 * fast

    def test_ring2m_shallower_than_ring1(self):
        r1 = self._finish_time("ring1", 33, FRONTIER, 8)
        r2 = self._finish_time("ring2m", 33, FRONTIER, 8)
        assert r2 < r1

    def test_ring1m_critical_rank_gets_data_early(self):
        # The modified ring's raison d'etre: the root's successor (the
        # next diagonal owner) finishes sooner than under plain ring1.
        def time_of_rank1(algo):
            res = run_bcast(
                algo, 16, 0,
                lambda: PhantomArray((64 * 2**20,), np.uint8),
                machine=FRONTIER, node_of=lambda r: r // 8,
            )
            return res.returns[1][1]

        assert time_of_rank1("ring1m") <= time_of_rank1("ring1")


class TestFacade:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(CommunicationError):
            RankComm(0, SUMMIT.mpi, bcast_algorithm="hypercube")

    def test_point_to_point_roundtrip(self):
        def prog(rank):
            comm = RankComm(rank, SUMMIT.mpi)
            if rank == 0:
                yield from comm.send(1, np.arange(3.0), tag=5)
                return (yield from comm.recv(1, tag=6))
            got = yield from comm.recv(0, tag=5)
            yield from comm.send(0, got * 2, tag=6)
            return None

        res = Engine(2, CommCosts(SUMMIT)).run(prog)
        np.testing.assert_array_equal(res.returns[0], np.arange(3.0) * 2)

    def test_isend_wait_all(self):
        def prog(rank):
            comm = RankComm(rank, SUMMIT.mpi)
            if rank == 0:
                handles = []
                for dst in (1, 2):
                    handles.append((yield from comm.isend(dst, dst * 10, tag=1)))
                yield from comm.wait_all(handles)
                return None
            return (yield from comm.recv(0, tag=1))

        res = Engine(3, CommCosts(SUMMIT)).run(prog)
        assert res.returns[1] == 10 and res.returns[2] == 20

    def test_reduce_and_allreduce(self):
        def prog(rank):
            comm = RankComm(rank, SUMMIT.mpi)
            total = yield from comm.allreduce(np.array([rank + 1.0]), [0, 1, 2])
            root_only = yield from comm.reduce(rank, 0, [0, 1, 2])
            yield from comm.barrier([0, 1, 2])
            return (float(total[0]), root_only)

        res = Engine(3, CommCosts(SUMMIT)).run(prog)
        assert [r[0] for r in res.returns] == [6.0, 6.0, 6.0]
        assert res.returns[0][1] == 3
        assert res.returns[1][1] is None

    def test_member_validation(self):
        def prog(rank):
            comm = RankComm(rank, SUMMIT.mpi)
            yield from comm.bcast(1.0, root=5, members=[0, 1], tag=0)

        with pytest.raises(CommunicationError):
            Engine(2, CommCosts(SUMMIT)).run(prog)
