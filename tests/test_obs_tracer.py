"""Tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.tracer import Span, SpanTracer
from repro.simulate.timeline import render_gantt


class TestSpanBasics:
    def test_add_and_iterate(self):
        tr = SpanTracer()
        tr.add("gemm", "executor", 0.0, 1.5, rank=3, attrs={"k": 2})
        tr.add("wait_recv", "engine", 1.5, 2.0, rank=3)
        assert len(tr) == 2
        spans = tr.spans
        assert spans[0].name == "gemm"
        assert spans[0].duration == pytest.approx(1.5)
        assert spans[0].attrs == {"k": 2}
        assert spans[1].cat == "engine"

    def test_rejects_backwards_span(self):
        tr = SpanTracer()
        with pytest.raises(ConfigurationError):
            tr.add("gemm", "executor", 2.0, 1.0)

    def test_categories(self):
        tr = SpanTracer()
        for _ in range(3):
            tr.add("a", "engine", 0.0, 1.0)
        tr.add("b", "comm", 0.0, 1.0)
        assert tr.categories() == {"engine": 3, "comm": 1}

    def test_total_by_name(self):
        tr = SpanTracer()
        tr.add("gemm", "executor", 0.0, 1.0)
        tr.add("gemm", "executor", 2.0, 2.5)
        tr.add("fill", "executor", 0.0, 0.25)
        totals = tr.total_by_name()
        assert totals["gemm"] == pytest.approx(1.5)
        assert totals["fill"] == pytest.approx(0.25)


class TestStartEnd:
    def test_explicit_times(self):
        tr = SpanTracer()
        token = tr.start("phase", "driver", rank=0, at=1.0)
        span = tr.end(token, at=3.0)
        assert span.start == 1.0 and span.end == 3.0

    def test_unknown_token_rejected(self):
        tr = SpanTracer()
        with pytest.raises(ConfigurationError):
            tr.end(99)

    def test_double_end_rejected(self):
        tr = SpanTracer()
        t = tr.start("x", "driver", at=0.0)
        tr.end(t, at=1.0)
        with pytest.raises(ConfigurationError):
            tr.end(t, at=2.0)

    def test_nesting_records_parent(self):
        tr = SpanTracer()
        outer = tr.start("outer", "driver", at=0.0)
        inner = tr.start("inner", "driver", at=0.5)
        tr.end(inner, at=0.7)
        tr.end(outer, at=1.0)
        inner_span, outer_span = tr.spans
        assert inner_span.parent == outer
        assert outer_span.parent is None

    def test_virtual_clock(self):
        clock = iter([10.0, 12.0])
        tr = SpanTracer(clock=lambda: next(clock))
        with tr.span("step", "driver", rank=1, k=4):
            pass
        (s,) = tr.spans
        assert (s.start, s.end) == (10.0, 12.0)
        assert s.attrs == {"k": 4}


class TestRing:
    def test_capacity_bounds_memory(self):
        tr = SpanTracer(capacity=3)
        for i in range(10):
            tr.add(f"s{i}", "engine", float(i), float(i) + 1)
        assert len(tr) == 3
        assert tr.dropped == 7
        assert [s.name for s in tr] == ["s7", "s8", "s9"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SpanTracer(capacity=0)

    def test_merge_respects_capacity(self):
        a = SpanTracer(capacity=2)
        b = SpanTracer()
        for i in range(4):
            b.add(f"s{i}", "engine", 0.0, 1.0)
        a.merge(b)
        assert len(a) == 2
        assert a.dropped == 2


class TestMerge:
    def test_merge_keeps_overlapping_rank_spans(self):
        """Per-rank tracers merged into one keep every overlapping span."""
        a, b = SpanTracer(), SpanTracer()
        a.add("gemm", "executor", 0.0, 2.0, rank=0)
        b.add("gemm", "executor", 1.0, 3.0, rank=1)  # overlaps rank 0's
        b.add("wait_recv", "engine", 3.0, 4.0, rank=1)
        a.merge(b)
        assert len(a) == 3
        assert a.categories() == {"executor": 2, "engine": 1}
        assert a.total_by_name()["gemm"] == pytest.approx(4.0)

    def test_merge_accepts_plain_iterable(self):
        tr = SpanTracer()
        tr.merge([
            Span("gemm", "executor", 0.0, 1.0, rank=0),
            Span("gemm", "executor", 0.5, 1.5, rank=1),
        ])
        assert len(tr) == 2

    def test_merged_timeline_interleaves_ranks(self):
        """as_timeline on a merged tracer exposes the concurrency: both
        ranks' tuples survive even where their intervals overlap."""
        merged = SpanTracer()
        for rank in range(3):
            per_rank = SpanTracer()
            per_rank.add("gemm", "executor", 0.25 * rank, 2.0, rank=rank)
            per_rank.add("fill", "executor", 2.0, 2.5 + 0.25 * rank,
                         rank=rank)
            merged.merge(per_rank)
        tl = merged.as_timeline()
        assert len(tl) == 6
        assert {t[0] for t in tl} == {0, 1, 2}
        # every rank's gemm overlaps t=1.0
        covering = [t for t in tl if t[1] <= 1.0 <= t[2] and t[3] == "gemm"]
        assert len(covering) == 3


class TestTimelineAdapter:
    def test_as_timeline_tuples(self):
        tr = SpanTracer()
        tr.add("gemm", "executor", 0.0, 1.0, rank=0)
        tr.add("wait_recv", "engine", 1.0, 2.0, rank=1)
        tr.add("factorization", "driver", 0.0, 2.0, rank=-1)  # no rank lane
        tl = tr.as_timeline()
        assert tl == [(0, 0.0, 1.0, "gemm"), (1, 1.0, 2.0, "wait_recv")]

    def test_category_filter(self):
        tr = SpanTracer()
        tr.add("gemm", "executor", 0.0, 1.0, rank=0)
        tr.add("xfer", "comm", 0.0, 0.5, rank=0)
        assert len(tr.as_timeline(cats=["executor"])) == 1

    def test_gantt_renders_spans(self):
        """The legacy Gantt renderer works on tracer output unchanged."""
        tr = SpanTracer()
        tr.add("gemm", "executor", 0.0, 0.6, rank=0)
        tr.add("wait_recv", "engine", 0.6, 1.0, rank=0)
        tr.add("gemm", "executor", 0.0, 1.0, rank=1)
        out = render_gantt(tr.as_timeline(), width=20)
        assert "r0" in out and "r1" in out
        assert "#=gemm" in out
