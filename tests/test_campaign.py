"""Tests for the achievement-run campaign workflow."""

import pytest

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT, GcdFleet
from repro.tools.campaign import run_campaign


def _cfg(machine=FRONTIER, p=8):
    block = 3072 if machine is FRONTIER else 768
    nl = block * 8
    qr, qc = (2, 4) if machine is FRONTIER else (3, 2)
    return BenchmarkConfig(
        n=nl * p, block=block, machine=machine, p_rows=p, p_cols=p,
        q_rows=qr, q_cols=qc,
        bcast_algorithm="ring2m" if machine is FRONTIER else "bcast",
    )


class TestCampaign:
    def test_basic_campaign(self):
        res = run_campaign(_cfg(), num_runs=3)
        assert len(res.runs) == 3
        assert res.best.total_flops_per_s >= max(
            r.total_flops_per_s for r in res.runs
        ) - 1e-9
        assert "campaign" in res.render()

    def test_exclusion_improves_throughput(self):
        cfg = _cfg()
        fleet = GcdFleet(cfg.num_ranks + 64, seed=13)
        with_excl = run_campaign(cfg, fleet=fleet, num_runs=1,
                                 exclude_slow_nodes=True)
        without = run_campaign(cfg, fleet=fleet, num_runs=1,
                               exclude_slow_nodes=False)
        assert with_excl.best.total_flops_per_s >= \
            without.best.total_flops_per_s

    def test_summit_warmup_matters_on_first_run(self):
        cfg = _cfg(machine=SUMMIT, p=6)
        fleet = GcdFleet(cfg.num_ranks + 24, seed=3)
        warmed = run_campaign(cfg, fleet=fleet, num_runs=2, do_warmup=True)
        cold = run_campaign(cfg, fleet=fleet, num_runs=2, do_warmup=False)
        # Cold first run ~20% slower; later runs match.
        assert cold.runs[0].elapsed_s > 1.15 * warmed.runs[0].elapsed_s
        assert cold.runs[1].elapsed_s == pytest.approx(
            warmed.runs[1].elapsed_s, rel=0.01
        )

    def test_post_first_variability_small(self):
        res = run_campaign(_cfg(), num_runs=5)
        # Paper: 0.12% (Summit) / 0.34% (Frontier) caps; allow some slack.
        assert res.variability < 0.02

    def test_fleet_too_small_rejected(self):
        cfg = _cfg()
        with pytest.raises(ConfigurationError):
            run_campaign(cfg, fleet=GcdFleet(4), num_runs=1)
        with pytest.raises(ConfigurationError):
            run_campaign(cfg, num_runs=0)


class TestExclusionReporting:
    """render() must say whether the scan's exclusions actually applied."""

    def test_undersized_fleet_reports_untrimmed_run(self):
        # A fleet with zero spares: the scan flags slow nodes, but
        # excluding them would leave fewer GCDs than the job needs, so
        # run_campaign falls back to the untrimmed fleet.  The report
        # must say so instead of claiming the exclusion happened.
        cfg = _cfg()
        res = run_campaign(
            cfg, fleet=GcdFleet(cfg.num_ranks, seed=13), num_runs=1
        )
        assert res.scan is not None and res.scan.slow_nodes  # precondition
        assert not res.exclusion_applied
        text = res.render()
        assert "untrimmed" in text
        assert "excluded" not in text

    def test_spared_fleet_reports_exclusion(self):
        cfg = _cfg()
        res = run_campaign(
            cfg, fleet=GcdFleet(cfg.num_ranks + 64, seed=13), num_runs=1
        )
        assert res.scan is not None and res.scan.slow_nodes  # precondition
        assert res.exclusion_applied
        assert "excluded" in res.render()
        assert "untrimmed" not in res.render()


class TestCustomMachineCampaign:
    def test_campaign_on_custom_machine(self):
        from repro.machine.custom import build_machine

        m = build_machine(
            name="customx", num_nodes=64, gcds_per_node=8,
            fp16_tflops_per_gcd=200.0, fp64_tflops_per_gcd=40.0,
            gpu_memory_gib=64.0, nic_bw_gbs_per_node=40.0,
        )
        cfg = BenchmarkConfig(
            n=3072 * 16, block=3072, machine=m, p_rows=4, p_cols=4,
            q_rows=2, q_cols=4, bcast_algorithm="bcast",
        )
        res = run_campaign(cfg, num_runs=2)
        assert len(res.runs) == 2
        assert res.warmup.machine == "customx"
        # Generic warm-up: no cold first run.
        assert res.runs[0].elapsed_s == pytest.approx(
            res.runs[1].elapsed_s, rel=0.01
        )
