"""Schedule extraction: the un-timed run-to-block interpreter."""

import numpy as np
import pytest

from repro.analyze.schedule import (
    Schedule,
    ScheduleCase,
    analyze_schedule,
    extract_case,
    extract_factory,
)
from repro.comm.vmpi import BCAST_ALGORITHMS, RankComm


def _case(**kw):
    base = dict(program="hplai", p_rows=2, p_cols=2, n=128, block=32)
    base.update(kw)
    return ScheduleCase(**base)


class TestHplaiExtraction:
    def test_small_grid_completes(self):
        result = extract_case(_case())
        assert result.completed
        sched = result.schedule
        assert sched.num_ranks == 4
        assert sched.num_ops > 0
        assert sched.matches, "extraction records concrete matches"

    def test_ops_carry_interprocedural_sites(self):
        sched = extract_case(_case()).schedule
        starts = [op for op in sched.all_ops() if op.kind == "bcast_start"]
        assert starts
        # innermost frame is the comm facade; outer frames name the
        # algorithm that asked for the broadcast
        files = {op.sites[-1][0] for op in starts if op.sites}
        assert any(f.endswith("vmpi.py") for f in files)
        assert all(len(op.sites) >= 2 for op in starts if op.sites)

    @pytest.mark.parametrize("bcast", sorted(BCAST_ALGORITHMS))
    def test_every_bcast_algorithm_proves(self, bcast):
        result = extract_case(_case(bcast=bcast))
        assert result.completed
        report = analyze_schedule(result.schedule)
        assert report.ok, [f.message for f in report.findings]

    @pytest.mark.parametrize("mode,lookahead",
                             [("routed", True), ("inband", False)])
    def test_both_progressions_prove(self, mode, lookahead):
        result = extract_case(_case(progression=mode, lookahead=lookahead))
        assert result.completed
        assert analyze_schedule(result.schedule).ok

    def test_rectangular_grid(self):
        result = extract_case(_case(p_rows=2, p_cols=3, n=192))
        assert result.completed
        assert analyze_schedule(result.schedule).ok


class TestHplExtraction:
    def test_pivoted_hpl_proves(self):
        result = extract_case(
            _case(program="hpl", n=64, block=8)
        )
        assert result.completed
        report = analyze_schedule(result.schedule)
        assert report.ok, [f.message for f in report.findings]
        # row swaps and panel factorization actually communicated
        kinds = {op.kind for op in result.schedule.all_ops()}
        assert "send" in kinds and "recv" in kinds


class TestDeadlockDiagnosis:
    def test_recv_before_send_cycle_is_diagnosed(self):
        def program(rank):
            comm = RankComm(rank)
            peer = 1 - rank
            payload = np.zeros(2)
            got = yield from comm.recv(peer, tag=5)
            yield from comm.send(peer, payload, tag=5)
            return got

        result = extract_factory(2, program, meta={"program": "test"})
        assert not result.completed
        assert result.deadlock is not None
        text = result.deadlock.describe()
        assert "counterexample schedule (deadlock):" in text
        assert "wait-for cycle: rank 0 -> rank 1 -> rank 0" in text
        assert "blocked on" in text

    def test_collective_member_mismatch_is_named(self):
        def program(rank):
            comm = RankComm(rank)
            members = (0, 1) if rank == 0 else (0, 1, 2)
            yield from comm.barrier(members)

        result = extract_factory(3, program, meta={"program": "test"})
        assert not result.completed
        assert result.deadlock is not None
        assert result.deadlock.member_mismatches


class TestScheduleRoundTrip:
    def test_to_dict_from_dict(self):
        sched = extract_case(_case()).schedule
        clone = Schedule.from_dict(sched.to_dict())
        assert clone.num_ranks == sched.num_ranks
        assert clone.num_ops == sched.num_ops
        assert clone.matches == sched.matches
        assert len(clone.collectives) == len(sched.collectives)
        a = next(iter(sched.all_ops()))
        b = clone.op(a.op_id)
        assert b.describe() == a.describe()
