"""Tests for scenario compilation and the engine's rate/link schedules."""

import numpy as np
import pytest

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark, simulate_run
from repro.errors import ConfigurationError
from repro.machine import FRONTIER, SUMMIT, CommCosts
from repro.scenario import (
    ContentionWindow,
    LinkJitter,
    LinkPlan,
    Limplock,
    RankCrash,
    RatePlan,
    RateMultipliers,
    Scenario,
    SlowRank,
    ThermalThrottle,
    compile_scenario,
    scenario_estimate,
)
from repro.simulate import Compute, Engine, Recv, Send


def _engine(n, machine=SUMMIT, node_of=None, **kw):
    return Engine(n, CommCosts(machine), node_of_rank=node_of, **kw)


def _cfg(p=2, nb=256, block=64, machine=FRONTIER):
    return BenchmarkConfig(n=nb * p, block=block, machine=machine,
                           p_rows=p, p_cols=p)


class TestRatePlan:
    def test_piecewise_integration(self):
        # rate 1 on [0, 10), then 0.5: 15 nominal seconds started at 0
        # take 10s (10 work) + 5/0.5 = 10s more.
        plan = RatePlan({0: [0.0, 10.0]}, {0: [1.0, 0.5]}, 1)
        end, outage = plan.advance(0, 0.0, 15.0)
        assert end == pytest.approx(20.0)
        assert outage == 0.0

    def test_advance_starting_mid_segment(self):
        plan = RatePlan({0: [0.0, 10.0]}, {0: [1.0, 0.5]}, 1)
        # 4 nominal seconds from t=8: 2 work by t=10, then 2/0.5 = 4s.
        end, _ = plan.advance(0, 8.0, 4.0)
        assert end == pytest.approx(14.0)

    def test_blackout_counts_as_outage(self):
        # up at rate 1, down on [5, 8), then up again.
        plan = RatePlan({0: [0.0, 5.0, 8.0]}, {0: [1.0, 0.0, 1.0]}, 1)
        end, outage = plan.advance(0, 0.0, 10.0)
        assert end == pytest.approx(13.0)
        assert outage == pytest.approx(3.0)
        assert plan.blackouts(0) == [(5.0, 8.0)]

    def test_rate_at_lookup(self):
        plan = RatePlan({0: [0.0, 5.0]}, {0: [1.0, 0.25]}, 2)
        assert plan.rate_at(0, 4.999) == 1.0
        assert plan.rate_at(0, 5.0) == 0.25
        assert plan.rate_at(1, 100.0) == 1.0  # unscheduled rank

    def test_permanent_blackout_rejected(self):
        with pytest.raises(ConfigurationError, match="permanent blackout"):
            RatePlan({0: [0.0, 1.0]}, {0: [1.0, 0.0]}, 1)

    def test_min_rate_schedule_gates_on_slowest(self):
        plan = RatePlan(
            {0: [0.0, 2.0], 1: [0.0, 4.0]},
            {0: [1.0, 0.5], 1: [1.0, 0.25]},
            2,
        )
        times, mins = plan.min_rate_schedule()
        assert times == [0.0, 2.0, 4.0]
        assert mins == [1.0, 0.5, 0.25]


class TestEngineRateSchedules:
    def test_multiplier_takes_effect_at_the_right_time(self):
        # One rank, 20 nominal seconds of gemm; speed halves at t=10.
        plan = RatePlan({0: [0.0, 10.0]}, {0: [1.0, 0.5]}, 1)

        def prog(rank):
            yield Compute("gemm", 20.0)

        res = _engine(1, rate_plan=plan).run(prog)
        assert res.elapsed == pytest.approx(10.0 + 10.0 / 0.5)
        assert res.stats[0].times["gemm"] == pytest.approx(30.0)

    def test_schedule_applies_per_op_not_per_program(self):
        # Two 6s ops across a t=10 breakpoint: the first runs entirely
        # at rate 1, the second straddles it (4s at 1, 2/0.5 = 4s).
        plan = RatePlan({0: [0.0, 10.0]}, {0: [1.0, 0.5]}, 1)

        def prog(rank):
            yield Compute("gemm", 6.0)
            yield Compute("gemm", 6.0)

        res = _engine(1, rate_plan=plan).run(prog)
        assert res.elapsed == pytest.approx(6.0 + 4.0 + 4.0)

    def test_blackout_accounted_as_wait_not_compute(self):
        plan = RatePlan({0: [0.0, 2.0, 5.0]}, {0: [1.0, 0.0, 1.0]}, 1)

        def prog(rank):
            yield Compute("gemm", 4.0)

        res = _engine(1, rate_plan=plan).run(prog)
        assert res.elapsed == pytest.approx(7.0)  # 4 work + 3 down
        assert res.stats[0].times["wait_outage"] == pytest.approx(3.0)
        assert res.stats[0].total_compute == pytest.approx(4.0)

    def test_unscheduled_ranks_run_at_full_speed(self):
        plan = RatePlan({1: [0.0, 1.0]}, {1: [1.0, 0.5]}, 2)

        def prog(rank):
            yield Compute("gemm", 3.0)

        res = _engine(2, rate_plan=plan).run(prog)
        assert res.stats[0].times["gemm"] == pytest.approx(3.0)
        assert res.stats[1].times["gemm"] == pytest.approx(1.0 + 2.0 / 0.5)


class TestLinkPlan:
    def test_jitter_is_deterministic(self):
        a = LinkPlan(jitter_amplitude=1e-4, jitter_seed=7)
        b = LinkPlan(jitter_amplitude=1e-4, jitter_seed=7)
        seq_a = [a.perturb(0, 1, 0.0, 100.0) for _ in range(20)]
        seq_b = [b.perturb(0, 1, 0.0, 100.0) for _ in range(20)]
        assert seq_a == seq_b

    def test_jitter_depends_on_seed_and_pair(self):
        a = LinkPlan(jitter_amplitude=1e-4, jitter_seed=7)
        b = LinkPlan(jitter_amplitude=1e-4, jitter_seed=8)
        assert a.perturb(0, 1, 0.0, 1.0) != b.perturb(0, 1, 0.0, 1.0)
        c = LinkPlan(jitter_amplitude=1e-4, jitter_seed=7)
        assert c.perturb(0, 1, 0.0, 1.0) != c.perturb(0, 2, 0.0, 1.0)

    def test_jitter_bounded_by_amplitude(self):
        plan = LinkPlan(jitter_amplitude=1e-4, jitter_seed=7)
        for _ in range(100):
            _, extra = plan.perturb(0, 1, 0.0, 1.0)
            assert 0.0 <= extra < 1e-4

    def test_contention_scales_messages_starting_in_window(self):
        plan = LinkPlan(windows=[(1.0, 2.0, 4.0)])
        assert plan.perturb(0, 1, 1.5, 1.0) == (4.0, 0.0)
        assert plan.perturb(0, 1, 0.5, 1.0) == (1.0, 0.0)
        assert plan.perturb(0, 1, 2.0, 1.0) == (1.0, 0.0)  # [t0, t1)

    def test_engine_internode_transfers_slowed_by_contention(self):
        big = np.zeros(1 << 20)

        def prog(rank):
            if rank == 0:
                yield Send(1, big, tag=1)
            else:
                yield Recv(0, tag=1)

        # ranks on distinct nodes so the message crosses the fabric
        clean = _engine(2, node_of=lambda r: r).run(prog)
        jam = LinkPlan(windows=[(0.0, 10.0, 8.0)])
        slow = _engine(2, node_of=lambda r: r, link_plan=jam).run(prog)
        assert slow.elapsed > clean.elapsed * 2

    def test_engine_jitter_reproducible_across_runs(self):
        data = np.zeros(1024)

        def prog(rank):
            if rank == 0:
                yield Send(1, data, tag=1)
            else:
                yield Recv(0, tag=1)

        def run():
            plan = LinkPlan(jitter_amplitude=1e-3, jitter_seed=42)
            return _engine(2, node_of=lambda r: r, link_plan=plan).run(prog)

        clean = _engine(2, node_of=lambda r: r).run(prog)
        first, second = run(), run()
        assert first.elapsed == second.elapsed
        assert first.elapsed > clean.elapsed


class TestCompileScenario:
    def test_static_scenario_keeps_fast_path(self):
        cfg = _cfg()
        sc = Scenario(injections=(SlowRank(rank=1, factor=2.0),))
        compiled = compile_scenario(sc, cfg)
        assert compiled.is_static
        assert compiled.rate_plan is None
        assert compiled.static_multipliers[1] == pytest.approx(0.5)
        assert compiled.pipeline_multiplier == pytest.approx(0.5)

    def test_onset_becomes_a_rate_plan(self):
        cfg = _cfg()
        sc = Scenario(injections=(
            Limplock(rank=2, factor=4.0, onset_frac=0.5),
        ))
        compiled = compile_scenario(sc, cfg)
        assert not compiled.is_static
        onset = 0.5 * compiled.horizon
        assert compiled.rate_plan.rate_at(2, onset * 0.99) == 1.0
        assert compiled.rate_plan.rate_at(2, onset * 1.01) == pytest.approx(0.25)
        # degraded from onset on -> effective multiplier strictly between
        assert 0.25 < compiled.pipeline_multiplier < 1.0

    def test_crash_compiles_to_blackout_window(self):
        cfg = _cfg()
        sc = Scenario(injections=(
            RankCrash(rank=3, at_frac=0.5, restart_delay_s=0.001),
        ))
        compiled = compile_scenario(sc, cfg)
        (t0, t1), = compiled.blackout_windows[3]
        assert t0 == pytest.approx(0.5 * compiled.horizon)
        # downtime = restart delay + machine-priced LCG regeneration
        assert t1 > t0 + 0.001
        assert compiled.rate_plan.rate_at(3, (t0 + t1) / 2) == 0.0
        assert compiled.rate_plan.blackouts(3) == [(t0, t1)]

    def test_composed_positivity_enforced(self):
        from repro.scenario import GlobalSpeed

        cfg = _cfg()
        sc = Scenario(injections=(
            RateMultipliers(values=(1.0,) * (cfg.num_ranks - 1) + (0.5,)),
            GlobalSpeed(factor=0.5),
        ))
        assert compile_scenario(sc, cfg).static_multipliers[-1] == 0.25
        # every injection individually validates positive, but the
        # composed product can still underflow to zero — the compiler's
        # backstop must catch it before the virtual clock stalls
        dead = Scenario(injections=(
            GlobalSpeed(factor=1e-200),
            GlobalSpeed(factor=1e-200),
        ))
        with pytest.raises(ConfigurationError, match="positive"):
            compile_scenario(dead, cfg)

    def test_thermal_throttle_staircase_descends(self):
        cfg = _cfg()
        sc = Scenario(injections=(
            ThermalThrottle(floor=0.8, tau_s=0.01, onset_s=0.0, steps=4),
        ))
        compiled = compile_scenario(sc, cfg)
        plan = compiled.rate_plan
        rates = [plan.rate_at(0, t) for t in (0.005, 0.02, 10.0)]
        assert rates[0] > rates[1] > 0.8
        assert rates[2] == pytest.approx(0.8)

    def test_frac_times_require_priceable_config(self):
        cfg = _cfg()
        # absolute times never need the model
        sc_abs = Scenario(injections=(RankCrash(rank=0, at_s=0.01),))
        assert compile_scenario(sc_abs, cfg).blackout_windows

    def test_scenario_estimate_matches_pipeline_multiplier(self):
        cfg = _cfg()
        from repro.model.perf_model import estimate_run

        sc = Scenario(injections=(SlowRank(rank=0, factor=2.0),))
        est = scenario_estimate(cfg, sc)
        clean = estimate_run(cfg)
        direct = estimate_run(cfg, pipeline_multiplier=0.5)
        # the scenario collapses to pipeline_multiplier = 1/factor
        assert est.elapsed == pytest.approx(direct.elapsed)
        assert est.elapsed > clean.elapsed * 1.5
        # estimate_run(scenario=) is the same thing
        assert estimate_run(cfg, scenario=sc).elapsed == pytest.approx(
            est.elapsed
        )


class TestDriverScenarioPath:
    def test_scenario_slows_the_simulated_run(self):
        cfg = _cfg()
        clean = simulate_run(cfg)
        sc = Scenario(injections=(SlowRank(rank=0, factor=2.0),))
        slow = simulate_run(cfg, scenario=sc)
        assert slow.elapsed > clean.elapsed * 1.3

    def test_onset_scenario_lands_between_clean_and_static(self):
        cfg = _cfg()
        clean = simulate_run(cfg)
        static = simulate_run(
            cfg, scenario=Scenario(injections=(
                SlowRank(rank=0, factor=3.0),
            ))
        )
        onset = simulate_run(
            cfg, scenario=Scenario(injections=(
                SlowRank(rank=0, factor=3.0, onset_frac=0.5),
            ))
        )
        assert clean.elapsed < onset.elapsed < static.elapsed

    def test_legacy_parameters_still_work(self):
        cfg = _cfg()
        mult = np.ones(cfg.num_ranks)
        mult[0] = 0.5
        legacy = simulate_run(cfg, rate_multipliers=mult)
        sc = simulate_run(cfg, scenario=Scenario(injections=(
            RateMultipliers(values=tuple(mult)),
        )))
        assert legacy.elapsed == pytest.approx(sc.elapsed)

    def test_legacy_and_scenario_mutually_exclusive(self):
        cfg = _cfg()
        sc = Scenario(injections=(SlowRank(rank=0, factor=2.0),))
        with pytest.raises(ConfigurationError, match="not both"):
            run_benchmark(cfg, exact=False, scenario=sc,
                          rate_multipliers=np.ones(cfg.num_ranks))

    def test_rate_multiplier_positivity_via_shared_path(self):
        # regression: run_benchmark used to accept zero/negative
        # multipliers and hang the virtual clock
        cfg = _cfg()
        bad = np.ones(cfg.num_ranks)
        bad[2] = 0.0
        with pytest.raises(ConfigurationError, match="positive"):
            run_benchmark(cfg, exact=False, rate_multipliers=bad)
        bad[2] = -1.0
        with pytest.raises(ConfigurationError, match="positive"):
            run_benchmark(cfg, exact=False, rate_multipliers=bad)

    def test_scenario_run_is_deterministic(self):
        cfg = _cfg()
        sc = Scenario(injections=(
            Limplock(rank=1, factor=3.0, onset_frac=0.25),
            LinkJitter(amplitude_s=2e-5, seed=11),
        ))
        a = simulate_run(cfg, scenario=sc)
        b = simulate_run(cfg, scenario=sc)
        assert a.elapsed == b.elapsed


class TestCrashRestartReplay:
    def test_lcg_blocks_replay_bitwise_identically(self):
        # Restart-from-regeneration leans on the matrix being a pure
        # function of (n, seed): a "restarted" rank's refilled tiles
        # must equal the lost ones bit for bit.
        from repro.lcg.matrix import HplAiMatrix

        before = HplAiMatrix(512, seed=42, use_cache=False)
        lost = before.block(128, 256, 64, 192)
        restarted = HplAiMatrix(512, seed=42, use_cache=False)
        regen = restarted.block(128, 256, 64, 192)
        assert np.array_equal(lost, regen)  # bitwise, not approx

    def test_crash_restart_run_reproduces_exact_numerics(self):
        # A crash is a timing fault, not a data fault: the exact run
        # under a crash/restart scenario must produce bitwise-identical
        # numerics to the clean run, only later.
        cfg = BenchmarkConfig(n=256, block=32, machine=SUMMIT,
                              p_rows=2, p_cols=2)
        clean = run_benchmark(cfg, exact=True)
        sc = Scenario(injections=(
            RankCrash(rank=1, at_frac=0.5, restart_delay_s=0.002),
        ))
        crashed = run_benchmark(cfg, exact=True, scenario=sc)
        assert np.array_equal(clean.x, crashed.x)
        assert crashed.residual_norm == clean.residual_norm
        assert crashed.elapsed > clean.elapsed
        # the outage shows up on the crashed rank's books
        assert crashed.stats[1].times["wait_outage"] > 0.002
