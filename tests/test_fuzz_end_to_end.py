"""Configuration-space fuzzing: any valid combination must solve exactly.

One hypothesis-driven test sweeps the cross product of grid shapes,
broadcast algorithms, look-ahead, refinement solver, panel precision,
progression mode and all-reduce algorithm, and requires FP64-accurate
convergence against a dense reference solve every time.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import BenchmarkConfig
from repro.core.driver import run_benchmark
from repro.lcg.matrix import HplAiMatrix
from repro.machine import FRONTIER, SUMMIT

configs = st.fixed_dictionaries(
    {
        "grid": st.sampled_from([(1, 1), (1, 2), (2, 1), (2, 2), (2, 3), (3, 2)]),
        "blocks_per_dim": st.sampled_from([2, 3, 4]),
        "block": st.sampled_from([8, 16]),
        "bcast": st.sampled_from(["bcast", "ibcast", "ring1", "ring1m", "ring2m"]),
        "lookahead": st.booleans(),
        "solver": st.sampled_from(["ir", "gmres"]),
        "precision": st.sampled_from(["fp16", "bf16"]),
        "allreduce": st.sampled_from([None, "ring", "doubling"]),
        "machine": st.sampled_from(["summit", "frontier"]),
        "seed": st.integers(1, 10_000),
    }
)


@given(configs)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_valid_configuration_solves(params):
    pr, pc = params["grid"]
    b = params["block"]
    n = b * params["blocks_per_dim"] * pr * pc  # tiles both dimensions
    machine = SUMMIT if params["machine"] == "summit" else FRONTIER
    cfg = BenchmarkConfig(
        n=n,
        block=b,
        machine=machine,
        p_rows=pr,
        p_cols=pc,
        bcast_algorithm=params["bcast"],
        lookahead=params["lookahead"],
        refinement_solver=params["solver"],
        panel_precision=params["precision"],
        allreduce_algorithm=params["allreduce"],
        seed=params["seed"],
    )
    res = run_benchmark(cfg, exact=True)
    assert res.ir_converged, f"failed to converge: {params}"
    m = HplAiMatrix(n, params["seed"])
    x_ref = np.linalg.solve(m.dense(), m.rhs())
    err = np.max(np.abs(res.x - x_ref))
    assert err < 1e-9, f"wrong answer ({err:.2e}): {params}"
