"""IEEE-754 precision descriptors used throughout the benchmark."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Precision:
    """An IEEE-754 binary floating-point format.

    Attributes
    ----------
    name:
        Short identifier ("fp16", "fp32", "fp64").
    dtype:
        The corresponding NumPy dtype.
    bytes:
        Storage size per element.
    eps:
        Machine epsilon (gap between 1.0 and the next representable).
    unit_roundoff:
        Half of eps: the worst-case relative error of round-to-nearest.
    max:
        Largest finite representable magnitude.
    min_normal:
        Smallest positive *normal* magnitude (below this, precision
        degrades through gradual underflow).
    """

    name: str
    dtype: np.dtype
    bytes: int
    eps: float
    unit_roundoff: float
    max: float
    min_normal: float

    def __str__(self) -> str:
        return self.name


def _from_dtype(name: str, dtype: type) -> Precision:
    info = np.finfo(dtype)
    return Precision(
        name=name,
        dtype=np.dtype(dtype),
        bytes=np.dtype(dtype).itemsize,
        eps=float(info.eps),
        unit_roundoff=float(info.eps) / 2.0,
        max=float(info.max),
        min_normal=float(info.tiny),
    )


#: IEEE binary16 — panel storage for the trailing-matrix GEMM.
FP16 = _from_dtype("fp16", np.float16)
#: IEEE binary32 — trailing matrix, GETRF and TRSM working precision.
FP32 = _from_dtype("fp32", np.float32)
#: IEEE binary64 — matrix generation, residuals and refinement.
FP64 = _from_dtype("fp64", np.float64)

_BY_NAME = {p.name: p for p in (FP16, FP32, FP64)}
_BY_DTYPE = {p.dtype: p for p in (FP16, FP32, FP64)}


def precision_of(obj) -> Precision:
    """Look up the :class:`Precision` for a name, dtype, or ndarray.

    >>> precision_of("fp16").bytes
    2
    >>> precision_of(np.zeros(3, dtype=np.float32)).name
    'fp32'
    """
    if isinstance(obj, Precision):
        return obj
    if isinstance(obj, str):
        try:
            return _BY_NAME[obj.lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown precision {obj!r}; expected one of {sorted(_BY_NAME)}"
            ) from None
    if isinstance(obj, np.ndarray):
        obj = obj.dtype
    try:
        return _BY_DTYPE[np.dtype(obj)]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unsupported dtype {obj!r}; expected float16/float32/float64"
        ) from None
