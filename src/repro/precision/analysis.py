"""Error-analysis helpers: roundoff bounds and the HPL-AI stopping test.

The convergence criterion on Algorithm 1 line 44 is

    ||r||_inf < 8 * N * eps * (2 * ||diag(A)||_inf * ||x||_inf + ||b||_inf)

with eps the FP64 machine epsilon — i.e. the solution is accepted once
the residual is at the level of FP64 backward error for the problem.
"""

from __future__ import annotations

import numpy as np

from repro.precision.types import FP64, precision_of


def unit_roundoff(precision) -> float:
    """Unit roundoff u of a precision (half the machine epsilon)."""
    return precision_of(precision).unit_roundoff


def hpl_ai_tolerance(
    n: int,
    diag_norm_inf: float,
    x_norm_inf: float,
    b_norm_inf: float,
    eps: float | None = None,
) -> float:
    """Right-hand side of the HPL-AI convergence test (Algorithm 1 l.44)."""
    if eps is None:
        eps = FP64.eps
    return 8.0 * n * eps * (2.0 * diag_norm_inf * x_norm_inf + b_norm_inf)


def backward_error_bound(n: int, precision) -> float:
    """Classical LU backward-error growth bound ``~ n * u`` for a precision.

    For an unpivoted LU of a diagonally dominant matrix the element growth
    factor is at most 2, so ``||A - LU|| <= c n u ||A||`` with a modest
    constant; we expose the simple ``n * u`` envelope that tests use to
    check the computed factors.
    """
    return n * unit_roundoff(precision)


def residual_norm(a_times_x: np.ndarray, b: np.ndarray) -> float:
    """Infinity norm of ``b - A x`` given a precomputed ``A x``."""
    return float(np.max(np.abs(b - a_times_x)))


def scaled_residual(
    r_norm_inf: float,
    n: int,
    a_norm_inf: float,
    x_norm_inf: float,
    eps: float | None = None,
) -> float:
    """The HPL-style scaled residual ``||r|| / (eps * ||A|| * ||x|| * N)``.

    Values of O(1) or below indicate a solution accurate to working
    (FP64) precision; HPL's acceptance threshold is 16.
    """
    if eps is None:
        eps = FP64.eps
    denom = eps * a_norm_inf * x_norm_inf * n
    if denom == 0.0:
        return float("inf") if r_norm_inf > 0 else 0.0
    return r_norm_inf / denom
