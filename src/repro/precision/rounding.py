"""Cast kernels: the ``CAST`` and ``TRANS_CAST`` phases of Algorithm 1.

After the panel TRSMs, the L panel is converted to FP16 (``CAST``) and
the U panel is *"conveniently transposed and cast simultaneously"*
(``TRANS_CAST``) so that the trailing GEMM sees both operands in the
layout the tensor cores want.  These are memory-bandwidth-bound
operations; their timing model lives in :mod:`repro.machine.kernels`,
while the numerics live here.
"""

from __future__ import annotations

import numpy as np

from repro.precision.types import Precision, precision_of


def round_to(x: np.ndarray, precision) -> np.ndarray:
    """Round ``x`` through ``precision`` and return it in its original dtype.

    Emulates computing/storing in a lower precision while keeping the
    container dtype, which is useful for error analysis: e.g.
    ``round_to(a64, FP16)`` is the FP64 value of the FP16 rounding of
    ``a64``.
    """
    prec = precision_of(precision)
    return np.asarray(x).astype(prec.dtype).astype(np.asarray(x).dtype)


def cast(x: np.ndarray, precision) -> np.ndarray:
    """The ``CAST`` kernel: convert an array to ``precision``.

    Always returns a new contiguous array (the real code writes into a
    separate FP16 panel buffer rather than converting in place).
    """
    prec = precision_of(precision)
    return np.ascontiguousarray(np.asarray(x), dtype=prec.dtype)


def trans_cast(x: np.ndarray, precision) -> np.ndarray:
    """The ``TRANS_CAST`` kernel: transpose and convert in one pass.

    Returns a C-contiguous array of shape ``x.T.shape`` in ``precision``.
    """
    prec = precision_of(precision)
    return np.ascontiguousarray(np.asarray(x).T, dtype=prec.dtype)


def cast_bytes_moved(shape: tuple, src: Precision, dst: Precision) -> int:
    """Bytes read + written by a cast of an array with ``shape``.

    Used by the performance model to charge the cast phases against the
    GPU memory bandwidth.
    """
    n_elems = 1
    for dim in shape:
        n_elems *= int(dim)
    return n_elems * (precision_of(src).bytes + precision_of(dst).bytes)
