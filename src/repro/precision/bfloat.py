"""Software-emulated bfloat16 (bf16) support.

HPL-MxP permits any precision mix that still reaches an FP64-accurate
solution; tensor hardware commonly offers **bfloat16** alongside FP16.
The trade is instructive and runs in this package as a panel-precision
option (:attr:`repro.core.config.BenchmarkConfig.panel_precision`):

- FP16: 10 mantissa bits (u = 2^-11) but a narrow exponent — the
  benchmark matrix's 1/(2N) off-diagonal scaling underflows past
  N ~ 4096;
- BF16: FP32's exponent range (no underflow concern at any benchmark N)
  but only 7 mantissa bits (u = 2^-8), so the factors are rougher and
  iterative refinement needs more sweeps.

NumPy has no native bfloat16, so we emulate it exactly: a bf16 value is
an FP32 whose low 16 mantissa bits are zero.  :func:`round_to_bf16`
performs IEEE round-to-nearest-even truncation on FP32 arrays; values
stay in FP32 containers (numerics identical to hardware bf16, storage
doubled — irrelevant for the timing model, which charges logical sizes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, PrecisionError
from repro.precision.types import Precision

#: largest finite FP16 magnitude; wider finite values round to ``inf``
_FP16_MAX = float(np.finfo(np.float16).max)

#: Descriptor for emulated bfloat16 (stored in float32 containers; the
#: ``bytes`` field is the *logical* wire size used by cost models).
BF16 = Precision(
    name="bf16",
    dtype=np.dtype(np.float32),  # container dtype
    bytes=2,
    eps=2.0 ** -7,
    unit_roundoff=2.0 ** -8,
    max=3.3895313892515355e38,
    min_normal=1.1754943508222875e-38,
)


def round_to_bf16(x: np.ndarray) -> np.ndarray:
    """Round an array to bfloat16 precision (round-to-nearest-even).

    Returns a new FP32 array whose values are exactly representable in
    bf16 (low 16 mantissa bits cleared after RNE rounding).
    """
    a = np.ascontiguousarray(x, dtype=np.float32)
    bits = a.view(np.uint32)
    # RNE: add 0x7FFF plus the guard bit (bit 16) before truncating.
    guard = (bits >> np.uint32(16)) & np.uint32(1)
    with np.errstate(over="ignore"):
        rounded = (bits + np.uint32(0x7FFF) + guard) & np.uint32(0xFFFF0000)
    out = rounded.view(np.float32).copy()
    # NaN/inf pass through untouched (the addition above could perturb
    # NaN payloads; normalize them back).
    bad = ~np.isfinite(a)
    if bad.any():
        out[bad] = a[bad]
    return out.reshape(a.shape)


def cast_panel(x: np.ndarray, precision: str) -> np.ndarray:
    """Round a panel to the requested storage precision.

    ``"fp16"`` returns a float16 array; ``"bf16"`` returns a float32
    array holding bf16-representable values.  Finite values beyond the
    FP16 range raise :class:`PrecisionError` instead of silently
    rounding to ``inf`` (the same contract as ``gemm_mixed``; bf16
    shares FP32's exponent range, so only the fp16 path can overflow).
    """
    if precision == "fp16":
        a = np.asarray(x)
        finite_overflow = np.isfinite(a) & (np.abs(a) > _FP16_MAX)
        if finite_overflow.any():
            worst = float(np.max(np.abs(np.where(finite_overflow, a, 0.0))))
            raise PrecisionError(
                f"cast_panel: {int(finite_overflow.sum())} value(s) above "
                f"the FP16 max ({_FP16_MAX:.0f}); largest is {worst:.6g} — "
                "the FP16 cast would silently produce inf"
            )
        return np.ascontiguousarray(a, dtype=np.float16)
    if precision == "bf16":
        return round_to_bf16(x)
    raise ConfigurationError(
        f"panel precision must be 'fp16' or 'bf16', got {precision!r}"
    )


def bf16_error_bound() -> float:
    """Worst-case relative rounding error of one bf16 store (2^-8)."""
    return BF16.unit_roundoff
