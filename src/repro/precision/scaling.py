"""FP16 dynamic-range analysis for the HPL-AI matrix construction.

Half precision has a narrow window of *normal* numbers
(~6.1e-5 .. 65504).  The benchmark matrix used here scales off-diagonal
entries by ``1/(2N)`` to guarantee diagonal dominance, which pushes the
FP16 panel entries toward the underflow boundary as N grows — the
reason exact-arithmetic runs are capped (see
:data:`repro.lcg.matrix.FP16_SAFE_N`) while extreme-scale runs are
timing-only.  This module quantifies those margins and the equilibration
that would extend the range, mirroring the scaling analysis HPL-AI
implementations must do (the Fugaku paper devotes a section to it).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor, log2

from repro.errors import ConfigurationError
from repro.precision.types import FP16


@dataclass(frozen=True)
class Fp16SafetyReport:
    """Dynamic-range margins of the benchmark matrix at size ``n``."""

    n: int
    #: magnitude scale of off-diagonal entries (~ 1/(4N) on average)
    offdiag_scale: float
    #: magnitude of the smallest representable *normal* FP16 value
    min_normal: float
    #: off-diagonal scale / min normal: >1 means entries stay normal
    normal_margin: float
    #: largest diagonal magnitude (~1.5) / FP16 max: overflow headroom
    overflow_headroom: float
    #: entries denormalize (precision loss) at this size
    safe: bool
    #: power-of-two factor that would re-center the off-diagonals in the
    #: middle of FP16's exponent range (exact in binary FP: no rounding)
    suggested_scale: float

    def describe(self) -> str:
        """One-line SAFE/UNSAFE summary with the suggested scaling."""
        status = "SAFE" if self.safe else "UNSAFE (entries denormalize)"
        return (
            f"N={self.n}: off-diagonal ~{self.offdiag_scale:.2e}, "
            f"normal margin {self.normal_margin:.1f}x, "
            f"overflow headroom {self.overflow_headroom:.1e}x -> {status}; "
            f"scaling by {self.suggested_scale:g} would re-center the range"
        )


#: smallest acceptable ratio of mean entry magnitude to the FP16 normal
#: boundary: 0.5 allows entries to dip one bit into gradual underflow,
#: which iterative refinement absorbs without extra iterations.
_MARGIN = 0.5


def fp16_safety(n: int) -> Fp16SafetyReport:
    """Analyze FP16 margins for the benchmark matrix of size ``n``."""
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    offdiag = 0.125 / n  # E|u| / (2N) with u ~ U(-0.5, 0.5), E|u| = 0.25
    margin = offdiag / FP16.min_normal
    headroom = FP16.max / 1.5
    # Exact power-of-two equilibration: center offdiag near sqrt of the
    # normal range's geometric middle (~2^-7 for binary16).
    target = 2.0 ** -7
    exponent = floor(log2(target / offdiag)) if offdiag > 0 else 0
    return Fp16SafetyReport(
        n=n,
        offdiag_scale=offdiag,
        min_normal=FP16.min_normal,
        normal_margin=margin,
        overflow_headroom=headroom,
        safe=margin >= _MARGIN,
        suggested_scale=float(2.0 ** exponent),
    )


def max_exact_n(margin: float = _MARGIN) -> int:
    """Largest N whose off-diagonal entries keep ``margin``x above the
    FP16 subnormal boundary under the 1/(2N) construction."""
    if margin <= 0:
        raise ConfigurationError(f"margin must be positive, got {margin}")
    return int(0.125 / (margin * FP16.min_normal))


def scaling_headroom(margin: float = _MARGIN) -> float:
    """Range factor gained by power-of-two equilibration.

    Centering the panel-entry magnitudes at 2^-7 (the middle of FP16's
    normal exponent range) instead of letting them sit at ``margin``
    subnormal-boundaries buys this multiplicative factor of extra
    dynamic range — the knob an implementation can turn before having to
    change the matrix construction itself.  Note a *global* scale cannot
    help the L panel (its entries are ratios, invariant under uniform
    scaling); only two-sided row/column equilibration moves them, which
    is why the report suggests exact powers of two (no rounding error).
    """
    if margin <= 0:
        raise ConfigurationError(f"margin must be positive, got {margin}")
    return (2.0 ** -7) / (margin * FP16.min_normal)
