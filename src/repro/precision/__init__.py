"""Precision descriptors and software emulation of mixed-precision casts.

HPL-AI stores the trailing matrix in FP32, factors panels into FP16, and
refines in FP64.  This package centralizes the three precisions and the
cast operations (``CAST`` / ``TRANS_CAST`` in the paper's Algorithm 1) so
every other module speaks the same vocabulary.
"""

from repro.precision.types import (
    FP16,
    FP32,
    FP64,
    Precision,
    precision_of,
)
from repro.precision.rounding import (
    cast,
    round_to,
    trans_cast,
)
from repro.precision.analysis import (
    backward_error_bound,
    hpl_ai_tolerance,
    unit_roundoff,
)
from repro.precision.bfloat import BF16, cast_panel, round_to_bf16

__all__ = [
    "FP16",
    "FP32",
    "FP64",
    "Precision",
    "precision_of",
    "cast",
    "round_to",
    "trans_cast",
    "backward_error_bound",
    "hpl_ai_tolerance",
    "unit_roundoff",
    "BF16",
    "cast_panel",
    "round_to_bf16",
]
