"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single base class.  Sub-hierarchies mirror the package
layout: configuration problems, numerical failures, communication-layer
violations, and simulation-engine faults each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination (grid, block size, machine spec...)."""


class DistributionError(ConfigurationError):
    """A matrix cannot be distributed over the requested process grid."""


class NumericsError(ReproError, ArithmeticError):
    """Base class for numerical failures during factorization/refinement."""


class SingularMatrixError(NumericsError):
    """A (near-)zero pivot was encountered during unpivoted factorization."""


class ConvergenceError(NumericsError):
    """Iterative refinement failed to reach the HPL-AI tolerance."""


class PrecisionError(NumericsError):
    """A value cannot be represented in the requested reduced precision.

    Raised instead of silently mapping out-of-range FP64 values to
    ``inf`` when rounding operands to FP16 (the tensor-core input
    format caps at 65504).
    """


class SanitizerError(NumericsError):
    """A runtime precision contract was violated under ``REPRO_SANITIZE``.

    Raised by :mod:`repro.analyze.sanitize` when a BLAS-shim operand or
    result breaks the mixed-precision dtype/finiteness contracts the
    static ``precision-flow`` checker enforces structurally.
    """


class CommunicationError(ReproError, RuntimeError):
    """Base class for virtual-MPI protocol violations."""


class RankError(CommunicationError):
    """A rank index was outside the communicator."""


class MessageTypeError(CommunicationError):
    """A receive buffer did not match the incoming message payload."""


class DeadlockError(CommunicationError):
    """The SPMD scheduler detected that no rank can make progress."""


class StallError(DeadlockError):
    """A run stalled: blocked ranks were diagnosed instead of hanging.

    Raised by the engine when ranks remain blocked at the end of a run,
    and by the health watchdog (:mod:`repro.obs.health`) when the
    virtual clock blows past the modelled deadline.  Unlike the bare
    :class:`DeadlockError` message, the exception carries *structured*
    diagnosis: one dict per blocked rank naming the operation it is
    stuck in (decoded wire tag and phase for receives, member rank set
    and collective key for collectives).
    """

    def __init__(
        self,
        message: str,
        blocked: "list[dict] | None" = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message)
        #: per-rank block diagnosis dicts (``rank``, ``state``, and the
        #: op-specific fields: ``src``/``dst``/``tag``/``phase``/``step``
        #: for receives, ``members``/``key``/``op`` for collectives)
        self.blocked = list(blocked or [])
        #: virtual clock at diagnosis time, if known
        self.elapsed = elapsed


class SimulationError(ReproError, RuntimeError):
    """Base class for discrete-event simulator faults."""


class ResourceError(SimulationError):
    """A simulated resource (GPU stream, NIC) was misused."""


class EarlyTerminationError(SimulationError):
    """A monitored run was aborted by the progress watchdog.

    Mirrors the paper's best practice of terminating abnormal runs (e.g.
    fabric hangs) early to save node hours (Section VI-B).
    """

    def __init__(self, message: str, iteration: int | None = None) -> None:
        super().__init__(message)
        #: factorization step at which the run was aborted, if known
        self.iteration = iteration
