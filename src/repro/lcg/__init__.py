"""64-bit linear congruential generator and on-the-fly HPL-AI matrices.

The paper (Section III-C), following the Fugaku HPL-AI code, fills the
global matrix ``A`` with a 64-bit LCG because the generator can *jump
ahead* ``n`` steps in ``O(log n)`` time.  Any entry ``A[i, j]`` is then a
pure function of ``(i, j, seed)``, so every process can regenerate any
part of ``A`` on demand — which is how the FP64 residual is computed
during iterative refinement without ever storing the FP64 matrix.
"""

from repro.lcg.cache import (
    TileCache,
    clear_tile_cache,
    configure_tile_cache,
    tile_cache,
)
from repro.lcg.generator import (
    LCG_A,
    LCG_C,
    Lcg64,
    affine_compose,
    affine_power,
    states_at,
)
from repro.lcg.matrix import HplAiMatrix, uniform_from_state

__all__ = [
    "LCG_A",
    "LCG_C",
    "Lcg64",
    "TileCache",
    "affine_compose",
    "affine_power",
    "clear_tile_cache",
    "configure_tile_cache",
    "states_at",
    "tile_cache",
    "HplAiMatrix",
    "uniform_from_state",
]
