"""On-the-fly generated HPL-AI input matrices.

HPL-AI allows the input matrix to be chosen with *"an appropriate
condition number to omit the pivoting step"* (paper, Section II).  We
follow the common construction: independent uniform entries with a
dominant diagonal so that unpivoted Gaussian elimination is stable.

Entry definition (pure function of ``(i, j, N, seed)``):

    u(i, j)  = uniform(-0.5, 0.5) drawn from LCG state at step i*N + j + 1
    A[i, j]  = u(i, j) / (2 N)          for i != j
    A[i, i]  = 1 + u(i, i)              (in [0.5, 1.5))

The off-diagonal row sum is then strictly below 0.25 while the diagonal
is at least 0.5, so A is strictly diagonally dominant with margin >= 0.25
and has an O(1) condition number.  The right-hand side is drawn from the
LCG positions following the matrix block (steps N*N + i + 1).

Note on FP16 range: with this scaling, off-diagonal entries have
magnitude ~ 1/(4N).  IEEE half precision loses normal representation
below ~6.1e-5, so *numerically exact* runs should keep N below about
4000; :meth:`HplAiMatrix.check_fp16_safe` enforces this.  Simulated
(phantom) runs carry no data and have no such limit — which mirrors the
paper, where the extreme-scale runs rely on the same generator but the
numerics were validated at smaller scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.lcg.cache import tile_cache
from repro.lcg.generator import LCG_A, LCG_C, states_at
from repro.util.validation import check_positive_int

#: Largest N for which the mean off-diagonal magnitude (0.125/N) stays
#: within one bit of the IEEE-754 half-precision normal boundary
#: (~6.1e-5); beyond this, gradual underflow starts eroding panel
#: precision.  See :mod:`repro.precision.scaling` for the analysis.
FP16_SAFE_N = 4096


def uniform_from_state(states: np.ndarray) -> np.ndarray:
    """Map raw uint64 LCG states to doubles uniform on ``[-0.5, 0.5)``.

    Uses the top 53 bits so the result is exactly representable and the
    scalar (:meth:`repro.lcg.Lcg64.uniform`) and bulk paths agree bit for
    bit.
    """
    return (states >> np.uint64(11)).astype(np.float64) * 2.0**-53 - 0.5


class HplAiMatrix:
    """A virtual N×N HPL-AI matrix regenerable from any index range.

    The matrix is never stored: :meth:`block` materializes any rectangular
    sub-block on demand, which is how both the initial distributed fill
    and the iterative-refinement residual (which needs FP64 entries) work.

    Parameters
    ----------
    n:
        Global matrix dimension N.
    seed:
        LCG seed; two matrices with the same ``(n, seed)`` are identical.
    a, c:
        Optional LCG constants (default MMIX).
    use_cache:
        Consult the process-wide :func:`repro.lcg.cache.tile_cache` in
        :meth:`block`.  Entries are pure functions of
        ``(n, seed, a, c)`` and the range, so two matrices with the same
        parameters share cached tiles; disable to force regeneration.
    """

    def __init__(
        self, n: int, seed: int = 42, a: int = LCG_A, c: int = LCG_C,
        use_cache: bool = True,
    ) -> None:
        check_positive_int(n, "n")
        self.n = n
        self.seed = seed
        self.a = a
        self.c = c
        self.use_cache = use_cache
        self._offdiag_scale = 1.0 / (2.0 * n)

    # -- scalar access ---------------------------------------------------

    def entry(self, i: int, j: int) -> float:
        """Return the FP64 value of ``A[i, j]``."""
        self._check_index(i, "i")
        self._check_index(j, "j")
        u = float(
            uniform_from_state(
                states_at(self.seed, np.array([i * self.n + j + 1]), self.a, self.c)
            )[0]
        )
        if i == j:
            return 1.0 + u
        return u * self._offdiag_scale

    # -- bulk access -----------------------------------------------------

    def block(
        self,
        row_start: int,
        row_stop: int,
        col_start: int,
        col_stop: int,
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """Materialize ``A[row_start:row_stop, col_start:col_stop]``.

        Fully vectorized: cost is O(block area), independent of position.
        Results are memoized in the shared bounded
        :func:`~repro.lcg.cache.tile_cache` (unless ``use_cache=False``)
        and a *fresh* array is always returned — callers may mutate it.
        """
        self._check_range(row_start, row_stop, "row")
        self._check_range(col_start, col_stop, "col")
        cache = tile_cache() if self.use_cache else None
        key = (self.n, self.seed, self.a, self.c,
               row_start, row_stop, col_start, col_stop)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                if np.dtype(dtype) == np.float64:
                    return cached.copy()
                return cached.astype(dtype)
        out = self._generate_block(row_start, row_stop, col_start, col_stop)
        if cache is not None:
            cache.put(key, out)
            # put() froze the stored array; hand callers a private copy.
            if np.dtype(dtype) == np.float64:
                return out.copy()
        return out.astype(dtype, copy=False)

    def _generate_block(
        self, row_start: int, row_stop: int, col_start: int, col_stop: int
    ) -> np.ndarray:
        """Uncached FP64 materialization of one rectangular range."""
        rows = np.arange(row_start, row_stop, dtype=np.uint64)
        cols = np.arange(col_start, col_stop, dtype=np.uint64)
        positions = rows[:, None] * np.uint64(self.n) + cols[None, :] + np.uint64(1)
        u = uniform_from_state(states_at(self.seed, positions, self.a, self.c))
        out = u * self._offdiag_scale
        # Overwrite the entries on the global diagonal, if any fall inside.
        diag_lo = max(row_start, col_start)
        diag_hi = min(row_stop, col_stop)
        if diag_lo < diag_hi:
            d = np.arange(diag_lo, diag_hi)
            out[d - row_start, d - col_start] = 1.0 + u[d - row_start, d - col_start]
        return out

    def rows(self, row_start: int, row_stop: int) -> np.ndarray:
        """Materialize full rows ``A[row_start:row_stop, :]`` in FP64."""
        return self.block(row_start, row_stop, 0, self.n)

    def cols(self, col_start: int, col_stop: int) -> np.ndarray:
        """Materialize full columns ``A[:, col_start:col_stop]`` in FP64."""
        return self.block(0, self.n, col_start, col_stop)

    def dense(self, dtype: np.dtype = np.float64) -> np.ndarray:
        """Materialize the whole matrix (small N only; tests and examples)."""
        return self.block(0, self.n, 0, self.n, dtype=dtype)

    def diagonal(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Return ``diag(A)[start:stop]`` without materializing rows."""
        if stop is None:
            stop = self.n
        self._check_range(start, stop, "diag")
        idx = np.arange(start, stop, dtype=np.uint64)
        positions = idx * np.uint64(self.n) + idx + np.uint64(1)
        u = uniform_from_state(states_at(self.seed, positions, self.a, self.c))
        return 1.0 + u

    def rhs(self) -> np.ndarray:
        """The right-hand side vector b, drawn from the LCG tail."""
        positions = (
            np.uint64(self.n) * np.uint64(self.n)
            + np.arange(self.n, dtype=np.uint64)
            + np.uint64(1)
        )
        return uniform_from_state(states_at(self.seed, positions, self.a, self.c))

    # -- diagnostics -----------------------------------------------------

    def dominance_margin(self) -> float:
        """Guaranteed lower bound on ``|A_ii| - sum_{j!=i} |A_ij|``.

        Strictly positive by construction; used by tests as the invariant
        that justifies unpivoted LU.
        """
        # |A_ii| >= 0.5; off-diagonal row sum < (n-1) * 0.5 / (2n) < 0.25.
        return 0.5 - (self.n - 1) * 0.5 * self._offdiag_scale

    def check_fp16_safe(self) -> None:
        """Raise if exact FP16 arithmetic on this matrix would denormalize."""
        if self.n > FP16_SAFE_N:
            raise ConfigurationError(
                f"N={self.n} exceeds the FP16-safe exact-arithmetic limit "
                f"({FP16_SAFE_N}); use a phantom/simulated run for larger sizes"
            )

    # -- internal --------------------------------------------------------

    def _check_index(self, idx: int, name: str) -> None:
        if not 0 <= idx < self.n:
            raise ConfigurationError(
                f"{name}={idx} out of range for N={self.n}"
            )

    def _check_range(self, start: int, stop: int, name: str) -> None:
        if not (0 <= start <= stop <= self.n):
            raise ConfigurationError(
                f"{name} range [{start}, {stop}) invalid for N={self.n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HplAiMatrix(n={self.n}, seed={self.seed})"
