"""Bounded, shared cache of regenerated LCG matrix tiles.

On-the-fly generation (the paper's Section III-C trick) trades memory
for recomputation: every :meth:`~repro.lcg.matrix.HplAiMatrix.block`
call reruns the O(64 · area) jump-ahead passes.  In an exact run the
same tiles are requested many times — the distributed fill asks for each
row band once *per process column*, every iterative-refinement residual
regenerates the whole fill's worth of entries, and the final
verification walks the matrix again.  Entries are pure functions of
``(n, seed, a, c)`` and the requested range, so identical requests are
trivially memoizable.

This module provides a process-wide :class:`TileCache`: an LRU keyed by
``(n, seed, a, c, row_start, row_stop, col_start, col_stop)`` holding
read-only FP64 arrays under a byte budget.  :class:`HplAiMatrix`
consults it from :meth:`block` (and returns *copies*, so cached arrays
can never be mutated by callers).  Because the key is value-based, the
cache is shared across matrix instances — which is exactly what makes it
effective: in a simulated SPMD run every rank owns its own
``HplAiMatrix`` object, but they all describe the same matrix.

The cache is bounded (default 256 MiB) and single entries larger than
the budget are simply not stored, so phantom-scale misuse degrades to
the old recompute-always behaviour instead of exhausting memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import context as obs_context

#: default byte budget — holds the full FP64 matrix up to N=4096 (the
#: FP16-safe exact-run ceiling) in b-row bands with room to spare
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

Key = Tuple[int, int, int, int, int, int, int, int]


def _count(event: str) -> None:
    """Mirror a cache event into the observability metrics registry.

    The cache keeps its own integer counters regardless (they are free
    and the bench report reads them); this adds the same events as
    ``lcg.tile_cache{event=...}`` counters when a handle is enabled so
    cache behaviour lands next to the comm/executor metrics in
    ``repro metrics`` exports.
    """
    obs = obs_context.current()
    if obs.enabled:
        obs.metrics.counter("lcg.tile_cache", event=event).inc()


class TileCache:
    """Byte-bounded LRU of read-only FP64 tile arrays."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 0:
            raise ConfigurationError(
                f"cache budget must be >= 0 bytes, got {max_bytes}"
            )
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Key, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core ------------------------------------------------------------

    def get(self, key: Key) -> Optional[np.ndarray]:
        """The cached (read-only) array for ``key``, or None."""
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self.misses += 1
                _count("miss")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _count("hit")
            return arr

    def put(self, key: Key, value: np.ndarray) -> None:
        """Store ``value`` (kept read-only); oversized values are skipped."""
        nbytes = value.nbytes
        if nbytes > self.max_bytes:
            return
        value = np.ascontiguousarray(value)
        value.setflags(write=False)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = value
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                _count("eviction")

    # -- management ------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = self.misses = self.evictions = 0

    def resize(self, max_bytes: int) -> None:
        """Change the budget, evicting oldest entries if it shrank."""
        if max_bytes < 0:
            raise ConfigurationError(
                f"cache budget must be >= 0 bytes, got {max_bytes}"
            )
        with self._lock:
            self.max_bytes = max_bytes
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counters + occupancy as a plain dict (for bench/obs reports)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


_GLOBAL = TileCache()


def tile_cache() -> TileCache:
    """The process-wide shared tile cache."""
    return _GLOBAL


def clear_tile_cache() -> None:
    """Drop all cached tiles (tests / long campaigns with many seeds)."""
    _GLOBAL.clear()


def configure_tile_cache(max_bytes: int) -> None:
    """Set the shared cache's byte budget (0 disables retention)."""
    _GLOBAL.resize(max_bytes)
