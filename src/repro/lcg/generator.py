"""64-bit linear congruential generator with O(log n) jump-ahead.

The generator follows the classic recurrence

    x_{t+1} = (a * x_t + c)  mod 2**64

with Knuth's MMIX constants.  An LCG step is an affine map ``f(x) = ax + c``
over the ring Z/2^64; composing affine maps stays affine, so the t-step
map ``f^t`` can be computed by binary exponentiation in ``O(log t)``
multiplies.  This is the property the paper relies on: *"LCG can jump
start the sequence at low computational cost ... making it easily
parallelizable and also allowing each process to access any part of A by
regenerating it on the fly"*.

Two interfaces are provided:

- :class:`Lcg64` — a scalar, stateful generator (mirrors the C code);
- :func:`states_at` — a fully vectorized bulk evaluator that computes the
  LCG state at many absolute positions at once with NumPy (64 wrapped
  multiply/adds over the whole array, independent of the magnitudes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Knuth's MMIX multiplier.
LCG_A = 6364136223846793005
#: Knuth's MMIX increment.
LCG_C = 1442695040888963407

_MASK = (1 << 64) - 1


def affine_compose(
    f: Tuple[int, int], g: Tuple[int, int]
) -> Tuple[int, int]:
    """Compose two affine maps over Z/2^64: ``(f ∘ g)(x) = f(g(x))``.

    Maps are represented as ``(a, c)`` meaning ``x -> a*x + c (mod 2^64)``.
    """
    fa, fc = f
    ga, gc = g
    return (fa * ga) & _MASK, (fa * gc + fc) & _MASK


def affine_power(a: int, c: int, n: int) -> Tuple[int, int]:
    """Return the affine map of ``n`` LCG steps, ``(a, c)^n``, in O(log n).

    ``affine_power(a, c, 0)`` is the identity map ``(1, 0)``.
    """
    if n < 0:
        raise ConfigurationError(f"jump distance must be non-negative, got {n}")
    result = (1, 0)
    base = (a & _MASK, c & _MASK)
    while n:
        if n & 1:
            result = affine_compose(base, result)
        base = affine_compose(base, base)
        n >>= 1
    return result


class Lcg64:
    """Scalar 64-bit LCG with jump-ahead.

    Parameters
    ----------
    seed:
        Initial state ``x_0``.  Any 64-bit value is accepted.
    a, c:
        Multiplier and increment; default to the MMIX constants.
    """

    __slots__ = ("a", "c", "state", "_position")

    def __init__(self, seed: int, a: int = LCG_A, c: int = LCG_C) -> None:
        self.a = a & _MASK
        self.c = c & _MASK
        self.state = seed & _MASK
        self._position = 0

    @property
    def position(self) -> int:
        """Number of steps taken from the seed state."""
        return self._position

    def next_uint64(self) -> int:
        """Advance one step and return the new state."""
        self.state = (self.a * self.state + self.c) & _MASK
        self._position += 1
        return self.state

    def advance(self, n: int) -> int:
        """Jump ``n`` steps ahead in O(log n); returns the new state."""
        ja, jc = affine_power(self.a, self.c, n)
        self.state = (ja * self.state + jc) & _MASK
        self._position += n
        return self.state

    def jumped(self, n: int) -> "Lcg64":
        """Return a *new* generator ``n`` steps ahead, leaving ``self`` intact."""
        clone = Lcg64(self.state, self.a, self.c)
        clone._position = self._position
        clone.advance(n)
        return clone

    def uniform(self) -> float:
        """Advance one step; return a double uniform on ``[-0.5, 0.5)``.

        The top 53 bits of the state feed the mantissa, matching the bulk
        path in :func:`repro.lcg.matrix.uniform_from_state`.
        """
        s = self.next_uint64()
        return (s >> 11) * 2.0**-53 - 0.5

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lcg64(state={self.state:#018x}, position={self._position})"
        )


def _bit_tables(a: int, c: int) -> Tuple[np.ndarray, np.ndarray]:
    """Precompute ``(a, c)^(2^k)`` for k = 0..63 as uint64 arrays."""
    a_tab = np.empty(64, dtype=np.uint64)
    c_tab = np.empty(64, dtype=np.uint64)
    cur = (a & _MASK, c & _MASK)
    for k in range(64):
        a_tab[k], c_tab[k] = cur
        cur = affine_compose(cur, cur)
    return a_tab, c_tab


_DEFAULT_TABLES = _bit_tables(LCG_A, LCG_C)


def states_at(
    seed: int,
    positions: np.ndarray,
    a: int = LCG_A,
    c: int = LCG_C,
) -> np.ndarray:
    """LCG states at absolute step indices, vectorized over ``positions``.

    ``positions`` holds 1-based step counts: ``states_at(seed, [t])`` equals
    the state after ``t`` calls to :meth:`Lcg64.next_uint64`; ``t = 0``
    returns the seed itself.  Runs 64 wrapped multiply/adds over the whole
    array regardless of how large the positions are.

    Parameters
    ----------
    seed:
        Initial LCG state.
    positions:
        Integer array (any shape) of step counts; must be non-negative.
    """
    pos = np.asarray(positions)
    if pos.size:
        # float/bool positions would silently truncate in the uint64 cast
        # below (and bool positions are almost certainly a caller bug).
        if not np.issubdtype(pos.dtype, np.integer):
            raise ConfigurationError(
                f"LCG positions must have an integer dtype, got {pos.dtype}"
            )
        if pos.min() < 0:
            raise ConfigurationError("LCG positions must be non-negative")
    pos = pos.astype(np.uint64, copy=False)

    if (a, c) == (LCG_A, LCG_C):
        a_tab, c_tab = _DEFAULT_TABLES
    else:
        a_tab, c_tab = _bit_tables(a, c)

    acc_a = np.ones(pos.shape, dtype=np.uint64)
    acc_c = np.zeros(pos.shape, dtype=np.uint64)
    one = np.uint64(1)
    with np.errstate(over="ignore"):
        for k in range(64):
            bit = (pos >> np.uint64(k)) & one
            if not bit.any():
                # Cheap skip for sparse high bits; correctness unaffected.
                continue
            mask = bit.astype(bool)
            acc_a[mask] = acc_a[mask] * a_tab[k]
            acc_c[mask] = acc_c[mask] * a_tab[k] + c_tab[k]
        return acc_a * np.uint64(seed & _MASK) + acc_c
