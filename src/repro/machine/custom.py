"""Custom machine builder for what-if projections.

The paper closes by noting its portability work "is expected to be the
case also for Intel GPUs" and that the techniques generalize to future
systems.  :func:`build_machine` assembles a complete
:class:`~repro.machine.spec.MachineSpec` from headline numbers (peak
rates, memory, NIC bandwidth), deriving sensible kernel-model constants
from the same ratios the Summit/Frontier calibrations use — so a
hypothetical machine can be pushed through every study in this package
(`estimate_run`, the tuner, the campaign tool).
"""

from __future__ import annotations


from repro.errors import ConfigurationError
from repro.machine.kernels import CpuKernelModel, GpuKernelModel
from repro.machine.spec import (
    GpuSpec,
    MachineSpec,
    MpiModel,
    NetworkSpec,
    NodeSpec,
)


def build_machine(
    name: str,
    num_nodes: int,
    gcds_per_node: int,
    fp16_tflops_per_gcd: float,
    fp64_tflops_per_gcd: float,
    gpu_memory_gib: float,
    nic_bw_gbs_per_node: float,
    platform: str = "cuda",
    gemm_efficiency: float = 0.75,
    gemm_b_half: float = 400.0,
    mature_mpi: bool = True,
    hbm_bw_gbs: float = 1500.0,
    intra_node_bw_gbs: float = 50.0,
    cpu_memory_gib: float = 512.0,
    hpl_rmax_pflops: float = 0.0,
    topology: str = "dragonfly",
) -> MachineSpec:
    """Assemble a machine preset from headline hardware numbers.

    Parameters
    ----------
    fp16_tflops_per_gcd / fp64_tflops_per_gcd:
        Per-GCD peaks (the Table-I numbers of the hypothetical system).
    gemm_efficiency:
        Fraction of the FP16 peak the mixed GEMM kernel ceiling reaches
        at ideal sizes (Summit ~0.76, Frontier ~1.19 of the *table*
        figure because the table understates MI250X — use the ratio for
        the hardware you are imagining).
    gemm_b_half:
        Block-size saturation half-point (how large B must be before the
        library delivers; ~160 for mature cuBLAS, ~1100 for early
        rocBLAS).
    mature_mpi:
        Mature library (SMP-aware, pipelined broadcast — rings will not
        help) vs a young stack (rings win).
    """
    if num_nodes < 1 or gcds_per_node < 1:
        raise ConfigurationError("node and GCD counts must be positive")
    if not 0.1 <= gemm_efficiency <= 1.5:
        raise ConfigurationError(
            f"gemm_efficiency {gemm_efficiency} outside the plausible band"
        )
    if fp16_tflops_per_gcd <= 0 or fp64_tflops_per_gcd <= 0:
        raise ConfigurationError("peak rates must be positive")

    gpu = GpuSpec(
        model=f"{name} GCD",
        memory_gib=gpu_memory_gib,
        fp16_tflops=fp16_tflops_per_gcd,
        fp32_tflops=fp16_tflops_per_gcd / 6.0,
        fp64_tflops=fp64_tflops_per_gcd,
        hbm_bw_gbs=hbm_bw_gbs,
    )
    nics = max(1, gcds_per_node // 2)
    network = NetworkSpec(
        nics_per_node=nics,
        nic_bw_gbs=nic_bw_gbs_per_node / nics,
        inter_node_latency_s=2.0e-6,
        intra_node_bw_gbs=intra_node_bw_gbs,
        intra_node_latency_s=3.0e-7,
        nic_attached_to_gpu=True,
        topology=topology,
        topology_group_size=128,
    )
    node = NodeSpec(
        cpu_model=f"{name} host CPU",
        cpu_memory_gib=cpu_memory_gib,
        cpu_memory_bw_gbs=300.0,
        gcds_per_node=gcds_per_node,
        gpu=gpu,
        network=network,
        cpu_os_reserved_gib=40.0,
    )
    gemm_peak = fp16_tflops_per_gcd * gemm_efficiency
    gpu_kernels = GpuKernelModel(
        gemm_peak_tflops=gemm_peak,
        gemm_b_half=gemm_b_half,
        gemm_mn_half=800.0,
        gemm_roughness=0.05 if mature_mpi else 0.18,
        lda_penalty_stride=0,
        lda_penalty_factor=1.0,
        getrf_peak_tflops=max(gemm_peak / 80.0, 0.5),
        getrf_n_half=1200.0,
        trsm_peak_tflops=max(gemm_peak / 6.0, 2.0),
        trsm_b_half=max(gemm_b_half / 2.5, 128.0),
        trsm_n_half=8192.0,
        fp64_gemm_peak_tflops=fp64_tflops_per_gcd * 0.75,
        fp64_gemm_b_half=256.0,
        cast_bw_gbs=hbm_bw_gbs * 0.8,
        h2d_bw_gbs=40.0,
    )
    cpu_kernels = CpuKernelModel(
        gemv_gflops=10.0,
        trsv_gflops=8.0,
        regen_entries_per_s=2.0e9,
    )
    mpi = MpiModel(
        bcast_bw_boost=1.25 if mature_mpi else 1.0,
        ibcast_derate=0.8 if mature_mpi else 0.85,
        bcast_hierarchical=mature_mpi,
        bcast_segments=64 if mature_mpi else 2,
    )
    return MachineSpec(
        name=name.lower(),
        platform=platform,
        num_nodes=num_nodes,
        node=node,
        gpu_kernels=gpu_kernels,
        cpu_kernels=cpu_kernels,
        mpi=mpi,
        hpl_rmax_pflops=hpl_rmax_pflops,
        notes=f"custom what-if machine built by repro.machine.custom ({name})",
    )
