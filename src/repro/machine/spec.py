"""Architectural specification dataclasses (paper Table I).

A :class:`MachineSpec` aggregates node counts, the GPU/GCD inventory,
per-precision peak rates and the network interface description for one
system.  The Summit and Frontier presets live in
:mod:`repro.machine.summit` and :mod:`repro.machine.frontier`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.kernels import CpuKernelModel, GpuKernelModel


@dataclass(frozen=True)
class GpuSpec:
    """One GCD (graphics compute die).

    Note the paper's accounting: a Summit V100 counts as one GCD while a
    Frontier MI250X counts as two, and each MPI rank drives one GCD.
    """

    model: str
    memory_gib: float
    fp16_tflops: float
    fp32_tflops: float
    fp64_tflops: float
    hbm_bw_gbs: float  # high-bandwidth-memory bandwidth, GB/s

    def fp16_flops(self) -> float:
        """Half-precision peak in FLOP/s."""
        return self.fp16_tflops * 1e12

    def fp64_flops(self) -> float:
        """Double-precision peak in FLOP/s."""
        return self.fp64_tflops * 1e12


@dataclass(frozen=True)
class NetworkSpec:
    """Node network interface description.

    ``topology`` selects the hop-distance model: Summit's EDR fabric is a
    three-level **fat-tree** (nodes under the same leaf switch are 2 hops
    apart, otherwise up to 6); Frontier's Slingshot is a **dragonfly**
    (2 hops within a group, at most 5 across groups).  Hop distance
    scales per-message latency — the "communication distance (hops
    across network)" that node-local-grid tuning balances (Finding 8).
    """

    nics_per_node: int
    nic_bw_gbs: float  # per-NIC unidirectional bandwidth, GB/s
    inter_node_latency_s: float
    intra_node_bw_gbs: float  # GPU interconnect (NVLINK / Infinity Fabric)
    intra_node_latency_s: float
    nic_attached_to_gpu: bool  # Frontier: NIC hangs off the GPU
    topology: str = "flat"
    #: nodes per leaf switch (fat-tree) or per dragonfly group
    topology_group_size: int = 18
    #: added latency per hop beyond the first
    per_hop_latency_s: float = 2.0e-7

    @property
    def node_injection_bw_gbs(self) -> float:
        """Aggregate unidirectional off-node bandwidth with all NICs used."""
        return self.nics_per_node * self.nic_bw_gbs

    def hops(self, node_a: int, node_b: int) -> int:
        """Switch hops between two nodes under the topology model."""
        if node_a == node_b:
            return 0
        same_group = (
            node_a // self.topology_group_size
            == node_b // self.topology_group_size
        )
        if self.topology == "fat-tree":
            return 2 if same_group else 6
        if self.topology == "dragonfly":
            return 2 if same_group else 5
        return 2  # flat: every pair one switch away

    def latency_between(self, node_a: int, node_b: int) -> float:
        """Hop-scaled inter-node latency."""
        h = self.hops(node_a, node_b)
        if h == 0:
            return self.intra_node_latency_s
        return self.inter_node_latency_s + (h - 2) * self.per_hop_latency_s


@dataclass(frozen=True)
class MpiModel:
    """Vendor-MPI-library behaviour knobs (Section V-E).

    These capture library properties the hardware numbers cannot: Summit's
    Spectrum MPI broadcast is heavily optimized for the fat tree (so
    hand-rolled rings *lose* there, Finding 6) while its nonblocking
    broadcast is extremely slow ("the asynchronous broadcast having
    extremely low performance with the current MPI library").

    Attributes
    ----------
    bcast_bw_boost:
        Effective-bandwidth multiplier for the library's blocking
        broadcast relative to a naive binomial tree.
    ibcast_derate:
        Efficiency of the library's nonblocking broadcast (1.0 = as fast
        as the blocking one).
    bcast_hierarchical:
        Whether the library broadcast is SMP-aware (leader tree across
        nodes + intra-node fan).  Mature libraries (Spectrum MPI on
        Summit) are; the young Slingshot stack the paper measured on
        Frontier behaves like a flat rank-order tree, which is why
        hand-built rings beat it there.
    bcast_segments:
        Internal pipelining depth of the library broadcast for large
        messages.
    """

    bcast_bw_boost: float = 1.0
    ibcast_derate: float = 1.0
    bcast_hierarchical: bool = True
    bcast_segments: int = 4


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    cpu_model: str
    cpu_memory_gib: float
    cpu_memory_bw_gbs: float
    gcds_per_node: int
    gpu: GpuSpec
    network: NetworkSpec
    cpu_os_reserved_gib: float = 0.0

    @property
    def gpu_memory_gib(self) -> float:
        """Total GPU memory on the node."""
        return self.gcds_per_node * self.gpu.memory_gib

    @property
    def cpu_memory_available_gib(self) -> float:
        """CPU memory left after OS, page cache and libraries (Finding 1)."""
        return self.cpu_memory_gib - self.cpu_os_reserved_gib

    @property
    def fp16_tflops(self) -> float:
        """Node peak FP16, as listed in Table I."""
        return self.gcds_per_node * self.gpu.fp16_tflops


@dataclass(frozen=True)
class MachineSpec:
    """A whole system: Summit or Frontier."""

    name: str
    platform: str  # "cuda" or "rocm"
    num_nodes: int
    node: NodeSpec
    gpu_kernels: "GpuKernelModel"
    cpu_kernels: "CpuKernelModel"
    mpi: MpiModel = field(default_factory=MpiModel)
    #: Measured full-system HPL (FP64) performance, for the HPL-AI/HPL
    #: ratio analysis; Summit's 148.6 PF is the June-2022 TOP500 entry.
    hpl_rmax_pflops: float = 0.0
    notes: str = ""

    def __post_init__(self) -> None:
        if self.platform not in ("cuda", "rocm"):
            raise ConfigurationError(
                f"platform must be 'cuda' or 'rocm', got {self.platform!r}"
            )

    @property
    def total_gcds(self) -> int:
        return self.num_nodes * self.node.gcds_per_node

    def max_local_n_fp32(self, reserve_fraction: float = 0.12) -> int:
        """Largest square FP32 local matrix dimension a GCD can host.

        Reserves ``reserve_fraction`` of GPU memory for the diagonal
        block, FP16 panels and look-ahead buffers (Section V-A).
        """
        usable = self.node.gpu.memory_gib * (1 - reserve_fraction) * 2**30
        import math

        return int(math.isqrt(int(usable // 4)))

    def describe(self) -> dict:
        """Table I row for this machine (used by the Table I bench)."""
        node = self.node
        return {
            "Number of Nodes": self.num_nodes,
            "Processor": node.cpu_model,
            "CPU memory (Node)": f"{node.cpu_memory_gib:.0f} GB",
            "GPU / # of GCDs (Node)": f"{node.gpu.model} / {node.gcds_per_node}",
            "per GCD / per Node GPU memory": (
                f"{node.gpu.memory_gib:.0f} / {node.gpu_memory_gib:.0f} GB"
            ),
            "GPU Interconnect B/W": (
                f"{node.network.intra_node_bw_gbs:.0f}+"
                f"{node.network.intra_node_bw_gbs:.0f} GB/s"
            ),
            "FP16/FP64 TFLOPS (GCD)": (
                f"{node.gpu.fp16_tflops:.0f} / {node.gpu.fp64_tflops:.1f}"
            ),
            "FP16 TFLOPS (Node)": f"{node.fp16_tflops:.0f}",
            "# of NICs": node.network.nics_per_node,
            "NIC B/W (node)": (
                f"{node.network.node_injection_bw_gbs:.1f}+"
                f"{node.network.node_injection_bw_gbs:.1f} GB/s"
            ),
        }
