"""Manufacturing variability and warm-up models (Section VI-B, Fig 12).

Two effects the paper documents and works around:

1. **GCD-to-GCD variability** — "approximately 5% maximum variation
   between GCDs on Frontier" from manufacturing variance and
   power/thermal management.  A single slow GCD stalls the whole
   pipeline, hence the slow-node scan + exclusion workflow
   (:mod:`repro.tools.slownode`).  :class:`GcdFleet` assigns every GCD a
   deterministic (seeded) speed multiplier with a small number of slow
   outliers.

2. **Warm-up** — Summit's first full run in a batch job is ~20% slower
   (cold file-system caches for binaries/libraries), then run-to-run
   variation caps at 0.12%; Frontier's first two runs are *faster*,
   after which power/frequency/thermal control settles runs ~0.3% lower.
   :class:`WarmupModel` reproduces both shapes for Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive_int


@dataclass
class GcdFleet:
    """A fleet of GCDs with deterministic per-device speed multipliers.

    Parameters
    ----------
    num_gcds:
        Fleet size.
    seed:
        RNG seed; the same (num_gcds, seed) always produces the same fleet.
    sigma:
        Standard deviation of the baseline (one-sided) speed loss.
    slow_fraction:
        Fraction of GCDs that are distinctly slow outliers.
    slow_penalty:
        Maximum fractional slowdown of outliers (paper: ~5% on Frontier).
    """

    num_gcds: int
    seed: int = 2022
    sigma: float = 0.006
    slow_fraction: float = 0.02
    slow_penalty: float = 0.05

    _multipliers: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_gcds, "num_gcds")
        if not 0.0 <= self.slow_fraction < 1.0:
            raise ConfigurationError(
                f"slow_fraction must be in [0, 1), got {self.slow_fraction}"
            )
        rng = np.random.default_rng(self.seed)
        # Baseline: every GCD loses a small one-sided amount.
        mult = 1.0 - np.abs(rng.normal(0.0, self.sigma, self.num_gcds))
        # Outliers: a few GCDs lose up to slow_penalty.
        n_slow = int(round(self.slow_fraction * self.num_gcds))
        if n_slow > 0:
            slow_idx = rng.choice(self.num_gcds, size=n_slow, replace=False)
            mult[slow_idx] = 1.0 - rng.uniform(
                self.slow_penalty * 0.6, self.slow_penalty, n_slow
            )
        self._multipliers = np.minimum(mult, 1.0)

    @property
    def multipliers(self) -> np.ndarray:
        """Per-GCD speed multipliers in (0, 1]; read-only view."""
        view = self._multipliers.view()
        view.flags.writeable = False
        return view

    def multiplier(self, gcd: int) -> float:
        """Speed multiplier of one GCD."""
        if not 0 <= gcd < self.num_gcds:
            raise ConfigurationError(
                f"gcd {gcd} out of range for fleet of {self.num_gcds}"
            )
        return float(self._multipliers[gcd])

    def slowest(self, count: int = 10) -> List[int]:
        """Indices of the ``count`` slowest GCDs, slowest first."""
        order = np.argsort(self._multipliers)
        return [int(i) for i in order[:count]]

    def exclude(self, gcds) -> "GcdFleet":
        """Return a fleet view with the given GCDs removed.

        Models the paper's practice of excluding slow nodes from the
        achievement runs.  The returned fleet has its multipliers copied
        (it is a plain re-indexed fleet, not re-randomized).
        """
        keep = np.setdiff1d(np.arange(self.num_gcds), np.asarray(list(gcds)))
        clone = GcdFleet.__new__(GcdFleet)
        clone.num_gcds = int(keep.size)
        clone.seed = self.seed
        clone.sigma = self.sigma
        clone.slow_fraction = self.slow_fraction
        clone.slow_penalty = self.slow_penalty
        clone._multipliers = self._multipliers[keep].copy()
        return clone

    def pipeline_multiplier(self) -> float:
        """Effective fleet speed: the *slowest* GCD gates the pipeline.

        "a single slow GPU can severely worsen total performance by
        stalling the pipeline" — in a bulk-synchronous factorization the
        iteration rate is set by the slowest participant.
        """
        return float(self._multipliers.min()) if self.num_gcds else 1.0


@dataclass(frozen=True)
class WarmupModel:
    """Run-index-dependent performance multipliers (Fig 12).

    ``style="summit"``: cold first run (×0.80 unless warmed up), then
    stable with ±0.12% jitter.  ``style="frontier"``: first two runs
    slightly fast (boost), later runs settle ~0.34% below the early peak
    as power/thermal control engages.
    """

    style: str
    cold_penalty: float = 0.20
    early_boost: float = 0.012
    steady_jitter: float = 0.0012
    thermal_settle: float = 0.0034
    seed: int = 7

    def __post_init__(self) -> None:
        if self.style not in ("summit", "frontier", "generic"):
            raise ConfigurationError(
                f"style must be 'summit', 'frontier' or 'generic', got "
                f"{self.style!r}"
            )

    def run_multiplier(self, run_index: int, warmed_up: bool = False) -> float:
        """Speed multiplier for the ``run_index``-th consecutive run (0-based)."""
        if run_index < 0:
            raise ConfigurationError(f"run_index must be >= 0, got {run_index}")
        rng = np.random.default_rng(self.seed + run_index)
        jitter = rng.uniform(-self.steady_jitter, self.steady_jitter)
        if self.style == "generic":
            # Unknown machine: steady runs with jitter only.
            return 1.0 + jitter
        if self.style == "summit":
            if run_index == 0 and not warmed_up:
                # Whole first run slow: binaries/libraries not yet cached.
                return (1.0 - self.cold_penalty) * (1.0 + jitter)
            return 1.0 + jitter
        # Frontier: first two runs faster, then thermal settling.
        if run_index < 2 and not warmed_up:
            return 1.0 + self.early_boost + jitter
        return 1.0 - self.thermal_settle + jitter

    def series(self, num_runs: int, warmed_up: bool = False) -> Dict[int, float]:
        """Multipliers for ``num_runs`` consecutive runs in one batch job."""
        check_positive_int(num_runs, "num_runs")
        return {
            i: self.run_multiplier(i, warmed_up=warmed_up) for i in range(num_runs)
        }
