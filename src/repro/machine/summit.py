"""The Summit machine preset (Table I, NVIDIA column).

Summit: 4608 nodes, 2 × POWER9 + 6 × V100 (16 GB), dual-rail EDR
InfiniBand (2 NICs × 12.5 GB/s each direction), NVLINK intra-node.
Kernel-model calibration targets:

- cuBLAS mixed GEMM is smooth and already efficient at B = 768-1024
  (Fig 5; the paper picks B = 768);
- cuSOLVER GETRF is respectable but still the critical-path constraint;
- end-to-end: 1.411 EFLOPS on P = 162×162 GCDs with N_L = 61440
  (≈ 53.8 TF/GCD effective), and HPL-AI ≈ 9.5 × HPL
  (Summit HPL R_max = 148.6 PF).
"""

from __future__ import annotations

from repro.machine.kernels import CpuKernelModel, GpuKernelModel
from repro.machine.spec import GpuSpec, MachineSpec, MpiModel, NetworkSpec, NodeSpec

V100 = GpuSpec(
    model="NVIDIA V100",
    memory_gib=16.0,
    fp16_tflops=125.0,
    fp32_tflops=15.7,
    fp64_tflops=7.8,
    hbm_bw_gbs=900.0,
)

SUMMIT_NETWORK = NetworkSpec(
    nics_per_node=2,
    nic_bw_gbs=12.5,
    inter_node_latency_s=1.5e-6,
    intra_node_bw_gbs=50.0,
    intra_node_latency_s=3.0e-7,
    nic_attached_to_gpu=False,
    topology="fat-tree",
    topology_group_size=18,  # nodes per EDR leaf switch
)

SUMMIT_NODE = NodeSpec(
    cpu_model="Power9",
    cpu_memory_gib=512.0,
    cpu_memory_bw_gbs=270.0,
    gcds_per_node=6,
    gpu=V100,
    network=SUMMIT_NETWORK,
    cpu_os_reserved_gib=30.0,
)

SUMMIT_GPU_KERNELS = GpuKernelModel(
    gemm_peak_tflops=95.0,
    gemm_b_half=160.0,
    gemm_mn_half=400.0,
    gemm_roughness=0.05,  # cuBLAS: mild non-uniformity
    lda_penalty_stride=0,  # no observed LDA pathology on V100
    lda_penalty_factor=1.0,
    getrf_peak_tflops=1.2,
    getrf_n_half=1024.0,
    trsm_peak_tflops=12.0,
    trsm_b_half=256.0,
    trsm_n_half=4096.0,
    fp64_gemm_peak_tflops=6.9,
    fp64_gemm_b_half=96.0,
    cast_bw_gbs=820.0,
    h2d_bw_gbs=45.0,  # NVLINK CPU<->GPU on Summit
)

SUMMIT_CPU_KERNELS = CpuKernelModel(
    gemv_gflops=11.0,  # per-rank share of POWER9 stream bandwidth
    trsv_gflops=6.0,
    regen_entries_per_s=2.0e9,
)

SUMMIT = MachineSpec(
    name="summit",
    platform="cuda",
    num_nodes=4608,
    node=SUMMIT_NODE,
    gpu_kernels=SUMMIT_GPU_KERNELS,
    cpu_kernels=SUMMIT_CPU_KERNELS,
    # Spectrum MPI: Bcast tuned for the fat tree; IBcast pathologically slow.
    mpi=MpiModel(
        bcast_bw_boost=1.35,
        ibcast_derate=0.22,
        bcast_hierarchical=True,
        bcast_segments=64,
    ),
    hpl_rmax_pflops=148.6,
    notes=(
        "OLCF pre-exascale system. MPI broadcast (Spectrum MPI) is highly "
        "optimized for the fat tree; ring broadcasts do NOT help here "
        "(Finding 6). Port binding to both EDR rails is essential "
        "(Finding 5)."
    ),
)


def summit() -> MachineSpec:
    """Return the Summit preset (convenience accessor)."""
    return SUMMIT
