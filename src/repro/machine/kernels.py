"""Calibrated per-GCD kernel performance models.

These functions answer "how fast does this BLAS call run on this GCD?"
— the quantity the paper measures in Figures 3, 5, 6 and 7 and feeds
into its performance model (Section IV).  They are *models*, not
measurements: smooth saturating curves with deterministic structure
chosen to reproduce the paper's observed shapes:

- every kernel's flop rate grows with block size B and saturates
  (Figs 5/6);
- rocBLAS GEMM shows strong non-uniformity across matrix sizes
  (Fig 3, Finding 3) — modelled with tile-misalignment penalties plus a
  deterministic hash texture;
- rocBLAS GEMM degrades badly for leading dimensions that are large
  power-of-two multiples (Fig 7: LDA=122880 = 15·8192 slow,
  119808 = 14.625·8192 fine) — modelled as a cache-set aliasing penalty;
- GETRF runs far below GEMM rates and sits on the critical path
  (Finding 3), rocSOLVER more so than cuSOLVER.

Rates are returned in FLOP/s and times in seconds.  The calibration
constants live in the Summit/Frontier presets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import flops as fl


def _sat(x: float, half: float) -> float:
    """Saturating efficiency curve: 0 at x=0, 0.5 at x=half, → 1."""
    if x <= 0:
        return 0.0
    return x / (x + half)


@dataclass(frozen=True)
class GpuKernelModel:
    """Per-GCD kernel rate model for one GPU architecture.

    All ``*_peak_tflops`` values are *effective kernel ceilings* (what the
    library achieves on ideal sizes), not theoretical peaks.
    """

    # mixed-precision GEMM (fp16 in, fp32 accumulate)
    gemm_peak_tflops: float
    gemm_b_half: float  # saturation half-point on the inner (B) dimension
    gemm_mn_half: float  # saturation half-point on min(m, n)
    gemm_roughness: float  # 0 = smooth (cuBLAS-like), >0 = rocBLAS-like
    # LDA pathology (Fig 7); stride 0 disables
    lda_penalty_stride: int
    lda_penalty_factor: float
    # fp32 GETRF of the diagonal block
    getrf_peak_tflops: float
    getrf_n_half: float
    # fp32 TRSM panel solves
    trsm_peak_tflops: float
    trsm_b_half: float
    trsm_n_half: float
    # fp64 GEMM (for the HPL baseline)
    fp64_gemm_peak_tflops: float
    fp64_gemm_b_half: float
    # memory system
    cast_bw_gbs: float  # HBM streaming bandwidth for CAST/TRANS_CAST
    h2d_bw_gbs: float  # host<->device transfer bandwidth per GCD
    kernel_launch_s: float = 4.0e-6
    # inner-dimension (k = B) macro-tile granularity: k values that are
    # not multiples lose a discrete step (rocBLAS MFMA tiling; part of
    # Fig 3's "highest performance only for a few matrix sizes").
    # 0 disables.
    gemm_k_align: int = 0
    gemm_k_misalign_factor: float = 1.0

    # -- GEMM ---------------------------------------------------------------

    def _gemm_texture(self, m: int, n: int, k: int) -> float:
        """Deterministic non-uniformity multiplier in (1-roughness, 1]."""
        if self.gemm_roughness <= 0.0:
            return 1.0
        # Tile misalignment: dimensions that are not multiples of the
        # library's macro-tile sizes lose efficiency.
        mis = 0.0
        for dim, q in ((m, 128), (n, 128), (k, 64)):
            mis += (dim % q) / q
        # Pseudo-random texture, stable in (m, n, k): the heat-map
        # "speckle" of Fig 3.
        h = ((m * 2654435761) ^ (n * 40503) ^ (k * 69069)) & 0xFFFFFFFF
        mis += ((h >> 7) & 1023) / 1023.0
        return 1.0 - self.gemm_roughness * (mis / 4.0)

    def _lda_penalty(self, lda: int) -> float:
        if (
            self.lda_penalty_stride > 0
            and lda >= self.lda_penalty_stride
            and lda % self.lda_penalty_stride == 0
        ):
            return self.lda_penalty_factor
        return 1.0

    def gemm_rate(self, m: int, n: int, k: int, lda: int | None = None) -> float:
        """Mixed-precision GEMM rate (FLOP/s) for C(m×n) -= A(m×k) B(k×n)."""
        if min(m, n, k) <= 0:
            return 0.0
        eff = (
            _sat(k, self.gemm_b_half)
            * _sat(min(m, n), self.gemm_mn_half)
            * self._gemm_texture(m, n, k)
            * self._lda_penalty(lda if lda is not None else 0)
        )
        if self.gemm_k_align > 0 and k % self.gemm_k_align != 0:
            eff *= self.gemm_k_misalign_factor
        return self.gemm_peak_tflops * 1e12 * eff

    def gemm_time(self, m: int, n: int, k: int, lda: int | None = None) -> float:
        """Seconds for one mixed-precision GEMM call (incl. launch)."""
        if min(m, n, k) <= 0:
            return 0.0
        return (
            fl.gemm_flops(m, n, k) / self.gemm_rate(m, n, k, lda)
            + self.kernel_launch_s
        )

    # -- GETRF ---------------------------------------------------------------

    def getrf_rate(self, n: int) -> float:
        """Unpivoted fp32 GETRF rate (FLOP/s) for an n×n diagonal block."""
        if n <= 0:
            return 0.0
        return self.getrf_peak_tflops * 1e12 * _sat(n, self.getrf_n_half)

    def getrf_time(self, n: int) -> float:
        """Seconds for one diagonal-block GETRF (incl. launch)."""
        if n <= 0:
            return 0.0
        return fl.getrf_flops(n) / self.getrf_rate(n) + self.kernel_launch_s

    # -- TRSM ---------------------------------------------------------------

    def trsm_rate(self, b: int, nrhs: int) -> float:
        """fp32 TRSM rate (FLOP/s), b×b triangle against nrhs vectors."""
        if b <= 0 or nrhs <= 0:
            return 0.0
        eff = _sat(b, self.trsm_b_half) * _sat(nrhs, self.trsm_n_half)
        return self.trsm_peak_tflops * 1e12 * eff

    def trsm_time(self, b: int, nrhs: int) -> float:
        """Seconds for one panel TRSM (incl. launch)."""
        if b <= 0 or nrhs <= 0:
            return 0.0
        return fl.trsm_flops(b, nrhs) / self.trsm_rate(b, nrhs) + self.kernel_launch_s

    # -- fp64 GEMM (HPL baseline) --------------------------------------------

    def fp64_gemm_rate(self, m: int, n: int, k: int) -> float:
        """FP64 GEMM rate (FLOP/s) for the HPL baseline."""
        if min(m, n, k) <= 0:
            return 0.0
        eff = _sat(k, self.fp64_gemm_b_half) * _sat(min(m, n), self.gemm_mn_half)
        return self.fp64_gemm_peak_tflops * 1e12 * eff

    def fp64_gemm_time(self, m: int, n: int, k: int) -> float:
        """Seconds for one FP64 GEMM (HPL baseline)."""
        if min(m, n, k) <= 0:
            return 0.0
        return fl.gemm_flops(m, n, k) / self.fp64_gemm_rate(m, n, k)

    # -- memory movement -------------------------------------------------------

    def cast_time(self, n_elems: int, src_bytes: int = 4, dst_bytes: int = 2) -> float:
        """CAST/TRANS_CAST time: stream n_elems through HBM."""
        if n_elems <= 0:
            return 0.0
        moved = n_elems * (src_bytes + dst_bytes)
        return moved / (self.cast_bw_gbs * 1e9) + self.kernel_launch_s

    def h2d_time(self, nbytes: int) -> float:
        """Host-to-device (or device-to-host) transfer time per GCD."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.h2d_bw_gbs * 1e9)


@dataclass(frozen=True)
class CpuKernelModel:
    """Per-rank CPU kernel rates for the iterative-refinement phase.

    GEMV and TRSV are memory-bandwidth bound; the model exposes effective
    GFLOP/s per MPI rank (i.e. the per-rank share of the socket's stream
    bandwidth converted at the kernel's arithmetic intensity).
    """

    gemv_gflops: float
    trsv_gflops: float
    #: on-the-fly LCG regeneration throughput (FP64 entries per second);
    #: the residual GEMV regenerates its block-column each iteration.
    regen_entries_per_s: float

    def gemv_time(self, m: int, n: int) -> float:
        """Seconds for a CPU GEMV of an m x n operand."""
        if m <= 0 or n <= 0:
            return 0.0
        return fl.gemv_flops(m, n) / (self.gemv_gflops * 1e9)

    def trsv_time(self, n: int) -> float:
        """Seconds for a CPU TRSV of size n."""
        if n <= 0:
            return 0.0
        return fl.trsv_flops(n) / (self.trsv_gflops * 1e9)

    def regen_time(self, n_entries: int) -> float:
        """Seconds to regenerate n_entries FP64 matrix entries (LCG)."""
        if n_entries <= 0:
            return 0.0
        return n_entries / self.regen_entries_per_s
