"""Communication cost parameters derived from machine + run options.

This module turns a :class:`~repro.machine.spec.NetworkSpec` plus the
run-time communication options the paper tunes — port binding
(Finding 5), GPU-aware MPI (Finding 7) — into the concrete numbers the
simulators charge: effective per-node NIC bandwidth, per-message
latency, staging overheads, and intra-node link speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec, NetworkSpec


@dataclass(frozen=True)
class CommCosts:
    """Resolved communication cost parameters for one run configuration.

    Parameters
    ----------
    machine:
        The machine preset.
    port_binding:
        Summit-style explicit binding of ranks to both NIC rails.  When
        off, traffic effectively uses a single rail (the MPI default the
        paper measured 35.6-59.7% below the bound configuration).
    gpu_aware:
        Send directly from GPU memory.  When off, every off-node message
        pays a device-to-host staging copy on the sender and a
        host-to-device copy on the receiver.
    """

    machine: MachineSpec
    port_binding: bool = True
    gpu_aware: bool = True

    def __post_init__(self) -> None:
        net = self.network
        if net.nics_per_node < 1:
            raise ConfigurationError("machine must have at least one NIC")

    @property
    def network(self) -> NetworkSpec:
        return self.machine.node.network

    # -- inter-node -----------------------------------------------------------

    @property
    def node_nic_bw(self) -> float:
        """Effective unidirectional off-node bandwidth per node (bytes/s).

        Without explicit port binding only one rail is driven, and ranks
        on the far socket reach it across the SMP bus, roughly halving
        even that rail's delivered bandwidth — the regime behind the
        paper's 35.6-59.7% port-binding improvements (Finding 5).
        """
        net = self.network
        if self.port_binding:
            bw = net.nics_per_node * net.nic_bw_gbs * 1e9
        else:
            bw = 0.5 * net.nic_bw_gbs * 1e9
        if not self.gpu_aware:
            # Host-staged transfers bounce through CPU memory and cannot
            # keep the NIC streaming at line rate (part of Finding 7's
            # 40-57% GPU-aware advantage, on top of the copy time).
            bw *= 0.5
        return bw

    @property
    def inter_latency(self) -> float:
        """Base per-message inter-node latency (seconds), including
        staging latency; topology hops are added per node pair by
        :meth:`latency_between`."""
        lat = self.network.inter_node_latency_s
        if not self.gpu_aware:
            lat += 8.0e-6  # host staging adds launch + copy setup latency
        return lat

    def latency_between(self, src_node: int, dst_node: int) -> float:
        """Hop-aware per-message latency between two nodes."""
        lat = self.network.latency_between(src_node, dst_node)
        if not self.gpu_aware:
            lat += 8.0e-6
        return lat

    def staging_time(self, nbytes: int) -> float:
        """Extra host-staging time per off-node message when not GPU-aware.

        One D2H copy on the sender plus one H2D on the receiver, each at
        the host-link bandwidth.
        """
        if self.gpu_aware or nbytes <= 0:
            return 0.0
        h2d = self.machine.gpu_kernels.h2d_bw_gbs * 1e9
        return 2.0 * nbytes / h2d

    def inter_node_time(self, nbytes: int, sharing: int = 1) -> float:
        """Time to move ``nbytes`` off-node with ``sharing`` ranks contending.

        ``sharing`` is the Q_r (or Q_c) factor of eq. (5): how many ranks
        on the node are pushing through the NICs concurrently.
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        bw = self.node_nic_bw / max(sharing, 1)
        return self.inter_latency + nbytes / bw + self.staging_time(nbytes)

    # -- intra-node -------------------------------------------------------------

    @property
    def intra_bw(self) -> float:
        """Intra-node GPU interconnect bandwidth (bytes/s)."""
        return self.network.intra_node_bw_gbs * 1e9

    @property
    def intra_latency(self) -> float:
        return self.network.intra_node_latency_s

    def intra_node_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` between two GCDs on the same node."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        # Intra-node transfers never need host staging: the GPUs share a
        # coherent fabric on both systems.
        return self.intra_latency + nbytes / self.intra_bw

    # -- convenience ---------------------------------------------------------

    def describe(self) -> dict:
        """Resolved parameters as a plain dict (for reports/tests)."""
        return {
            "machine": self.machine.name,
            "port_binding": self.port_binding,
            "gpu_aware": self.gpu_aware,
            "node_nic_bw_gbs": self.node_nic_bw / 1e9,
            "inter_latency_us": self.inter_latency * 1e6,
            "intra_bw_gbs": self.intra_bw / 1e9,
        }
