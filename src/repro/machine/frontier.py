"""The Frontier machine preset (Table I, AMD column).

Frontier: 9408 nodes, 3rd-gen EPYC + 4 × MI250X (8 GCDs of 64 GB HBM2e
counted per the paper as 128 GB per GPU / 512 GB per node), 4 ×
Slingshot-11 NICs attached directly to the GPUs, Infinity Fabric
intra-node.  Per-GCD FP16 peak is taken from Table I's node figure:
1192 / 8 = 149 TFLOPS.

Kernel-model calibration targets:

- rocBLAS mixed GEMM needs large B (the paper picks B = 3072) and is
  visibly non-uniform across sizes (Fig 3, Finding 3);
- leading dimensions divisible by 8192 (e.g. LDA = 122880 = 15·8192)
  lose ~45% GEMM throughput while 119808 does not (Fig 7, Section V-D);
- rocSOLVER GETRF underperforms (Finding 3);
- end-to-end: 2.387 EFLOPS on P = 172×172 GCDs with N_L = 119808
  (≈ 80.7 TF/GCD effective) using Ring2M broadcast + GPU-aware MPI.
"""

from __future__ import annotations

from repro.machine.kernels import CpuKernelModel, GpuKernelModel
from repro.machine.spec import GpuSpec, MachineSpec, MpiModel, NetworkSpec, NodeSpec

MI250X_GCD = GpuSpec(
    model="AMD MI250X (per GCD)",
    memory_gib=64.0,
    fp16_tflops=149.0,  # 1192 TF node / 8 GCDs, per Table I
    fp32_tflops=23.9,
    fp64_tflops=27.25,
    hbm_bw_gbs=1600.0,
)

FRONTIER_NETWORK = NetworkSpec(
    # Four Slingshot-11 NICs; Table I reports 25+25 GB/s delivered per
    # node — the early software stack could not drive all four rails at
    # their 25 GB/s line rate (the paper notes MPI could not yet let a
    # rank use all 4 NIC ports), so the model uses the paper's effective
    # per-node figure: 4 x 6.25 GB/s.
    nics_per_node=4,
    nic_bw_gbs=6.25,
    inter_node_latency_s=2.0e-6,
    intra_node_bw_gbs=50.0,
    intra_node_latency_s=3.0e-7,
    nic_attached_to_gpu=True,  # enables efficient GPU-aware MPI (Finding 7)
    topology="dragonfly",
    topology_group_size=128,  # nodes per Slingshot dragonfly group
)

FRONTIER_NODE = NodeSpec(
    cpu_model="3rd Gen EPYC",
    cpu_memory_gib=512.0,
    cpu_memory_bw_gbs=300.0,
    gcds_per_node=8,
    gpu=MI250X_GCD,
    network=FRONTIER_NETWORK,
    # Finding 1: available CPU memory is >30 GB smaller than GPU memory
    # once the OS, cached files and libraries are accounted for.
    cpu_os_reserved_gib=40.0,
)

FRONTIER_GPU_KERNELS = GpuKernelModel(
    gemm_peak_tflops=178.0,
    gemm_b_half=1100.0,  # rocBLAS wants large B: 3072 ~ 74%, 1536 ~ 58%
    gemm_mn_half=800.0,
    gemm_roughness=0.18,  # Finding 3: non-uniform until vendor tuning lands
    lda_penalty_stride=8192,
    lda_penalty_factor=0.55,
    getrf_peak_tflops=1.5,  # rocsolver_sgetrf "lower performance than expected"
    getrf_n_half=1500.0,
    trsm_peak_tflops=28.0,
    trsm_b_half=400.0,
    trsm_n_half=8192.0,
    fp64_gemm_peak_tflops=20.0,
    fp64_gemm_b_half=256.0,
    gemm_k_align=1024,  # MFMA macro-tile: B must be a multiple of 1024
    gemm_k_misalign_factor=0.92,
    cast_bw_gbs=1300.0,
    h2d_bw_gbs=36.0,  # Infinity Fabric CPU<->GCD
)

FRONTIER_CPU_KERNELS = CpuKernelModel(
    gemv_gflops=9.0,  # per-rank share of EPYC stream bandwidth (8 ranks)
    trsv_gflops=10.0,
    regen_entries_per_s=2.0e9,
)

FRONTIER = MachineSpec(
    name="frontier",
    platform="rocm",
    num_nodes=9408,
    node=FRONTIER_NODE,
    gpu_kernels=FRONTIER_GPU_KERNELS,
    cpu_kernels=FRONTIER_CPU_KERNELS,
    # Cray MPICH on the young Slingshot fabric: the library broadcast has
    # no topology magic yet (rings win, Finding 6); IBcast is usable.
    mpi=MpiModel(
        bcast_bw_boost=1.0,
        ibcast_derate=0.85,
        bcast_hierarchical=False,  # young stack: flat tree, no SMP awareness
        bcast_segments=2,
    ),
    hpl_rmax_pflops=1102.0,
    notes=(
        "First exascale system. Ring broadcasts beat library MPI Bcast by "
        "20-34% (Finding 6); GPU-aware MPI gives 40-57% (Finding 7); NICs "
        "are attached to GPUs so GPU-resident communication is preferred."
    ),
)


def frontier() -> MachineSpec:
    """Return the Frontier preset (convenience accessor)."""
    return FRONTIER
