"""Machine models of the OLCF Summit and Frontier systems.

Everything the performance engines need to know about the hardware lives
here: the architectural specifications of Table I, calibrated per-GCD
kernel flop-rate models that reproduce the *shapes* of the paper's
Figures 3, 5, 6 and 7 (saturating growth with block size B, rocBLAS
non-uniformity, the LDA pathology, slow GETRF on the critical path),
network/topology parameters, and the manufacturing-variability and
warm-up models behind Figure 12 and the slow-node scans.
"""

from repro.machine.spec import GpuSpec, MachineSpec, NetworkSpec, NodeSpec
from repro.machine.kernels import CpuKernelModel, GpuKernelModel
from repro.machine.summit import SUMMIT, summit
from repro.machine.frontier import FRONTIER, frontier
from repro.machine.variability import GcdFleet, WarmupModel
from repro.machine.topology import CommCosts

__all__ = [
    "GpuSpec",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "CpuKernelModel",
    "GpuKernelModel",
    "SUMMIT",
    "summit",
    "FRONTIER",
    "frontier",
    "GcdFleet",
    "WarmupModel",
    "CommCosts",
]


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by name ("summit" or "frontier")."""
    from repro.errors import ConfigurationError

    presets = {"summit": SUMMIT, "frontier": FRONTIER}
    try:
        return presets[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; expected one of {sorted(presets)}"
        ) from None
