"""Custom static analysis for the mixed-precision benchmark codebase.

The paper's failure classes at scale — mis-matched communication
schedules and silent low-precision data loss — are exactly the bug
classes a reviewer cannot reliably catch by eye (PR 2 fixed one of
each).  This package turns those contracts into machine-checked rules:

- a small checker framework over Python ASTs with per-file findings
  (``file:line``, severity, checker id), inline suppressions, and a
  checked-in baseline for known-accepted findings;
- four first-class source checkers (:mod:`repro.analyze.checkers`):
  ``precision-flow``, ``tag-space``, ``collective-matching`` and
  ``hygiene``;
- an artifact checker wrapping the Chrome-trace schema validation so
  ``repro lint`` is the single analysis entry point;
- an opt-in *runtime* sanitizer (:mod:`repro.analyze.sanitize`,
  ``REPRO_SANITIZE=1``) enforcing the dynamic side of the same
  precision contracts inside the BLAS shim.

Entry points: the ``repro lint`` CLI subcommand, or programmatically
:func:`run_analysis`.
"""

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import (
    AnalysisReport,
    Baseline,
    SourceModule,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Severity",
    "SourceModule",
    "run_analysis",
]
