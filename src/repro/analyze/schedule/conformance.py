"""Trace conformance: replay a recorded run against the static model.

A trace artifact (``repro run`` / ``repro trace`` / a campaign store's
span export) carries one ``xfer`` span per point-to-point transfer the
engine charged, attributed with ``dst``, ``bytes`` and the wire ``tag``.
The extracted static schedule for the same configuration predicts
exactly which ``(src, dst, wire_tag)`` channels may carry traffic, how
many messages each carries, and which factorization step each message
belongs to.  Conformance checking joins the two:

* **out-of-model tag** (error) — an observed transfer whose wire tag
  the model never emits anywhere;
* **unmatched transfer** (error) — a known tag on a (src, dst) pair the
  model never connects;
* **count mismatch** (error) — a channel observed more or fewer times
  than the model schedules it;
* **unobserved channel** (warning) — the model schedules a channel the
  trace never exercised (e.g. a filtered/truncated export);
* **phase-order violation** (error) — a rank's factorization-window
  traffic runs more than one step ahead of its slowest outstanding
  step (the look-ahead pipeline is one panel deep by construction).

Wire tags in the refinement window encode the iteration index, so they
are canonicalized (iteration stripped) before the join; the
factorization window is compared tag-exact.  The replayed run must be
phantom-flow (``repro run`` and ``repro trace`` both are): exact-mode
runs with data-dependent refinement depth would legitimately diverge
in the refinement window.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analyze.schedule.extract import extract_config
from repro.analyze.schedule.model import P2P_SEND_KINDS, Schedule
from repro.comm.bcast import TAG_STRIDE
from repro.obs.phases import GMRES_TAG_BASE, IR_TAG_BASE, decode_wire_tag

#: the FP64-HPL tag window lives above every HPL-AI window
_HPL_TAG_BASE = 1 << 24


@dataclass
class ConformanceIssue:
    rule: str        # trace-conformance
    severity: str    # error | warning
    message: str

    def format(self) -> str:
        """severity [rule] message, printer-ready."""
        return f"{self.severity} [trace-conformance] {self.message}"

    def to_dict(self) -> dict:
        """JSON form of this issue."""
        return {
            "rule": self.rule, "severity": self.severity,
            "message": self.message,
        }


@dataclass
class ConformanceReport:
    source: str
    label: str
    issues: List[ConformanceIssue] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)

    def to_dict(self) -> dict:
        """JSON form of the report (issues + stats)."""
        return {
            "source": self.source, "label": self.label, "ok": self.ok,
            "stats": dict(self.stats),
            "issues": [i.to_dict() for i in self.issues],
        }


def _canonical_tag(wire: int, nb: int) -> Tuple:
    """Collapse a wire tag to its iteration-independent identity.

    Factorization-window tags are already unique per (step, phase,
    offset) and compare exact.  Refinement sweep tags encode the IR
    iteration (``(it*2+upper)*nb + j``), which data-dependent runs vary,
    so they collapse to ``(upper, j)``; the GMRES window collapses to
    one bucket for the same reason.
    """
    logical = wire // TAG_STRIDE
    if logical >= _HPL_TAG_BASE:
        return ("hpl", logical)
    if logical >= IR_TAG_BASE:
        offset = logical - IR_TAG_BASE
        if nb > 0:
            chunk, j = divmod(offset, nb)
            _iteration, upper = divmod(chunk, 2)
            return ("ir", upper, j)
        return ("ir", offset)
    if logical >= GMRES_TAG_BASE:
        return ("gmres",)
    return ("fact", wire)


def _is_refinement(wire: int) -> bool:
    return _HPL_TAG_BASE > (wire // TAG_STRIDE) >= GMRES_TAG_BASE


Channel = Tuple[int, int, Tuple]


def _model_channels(schedule: Schedule, nb: int) -> Dict[Channel, int]:
    """Per-channel message counts the static schedule predicts.

    The engine charges one transfer per route *edge* per pipeline
    segment for a routed broadcast, so a ``bcast_start`` op contributes
    ``segments`` messages on every edge of its route — not just the
    root's own hops.
    """
    counts: Dict[Channel, int] = defaultdict(int)
    for op in schedule.all_ops():
        if op.kind in P2P_SEND_KINDS:
            key = (op.rank, op.peer, _canonical_tag(op.wire_tag, nb))
            counts[key] += 1
        elif op.kind == "bcast_start" and op.edges:
            tag = _canonical_tag(op.wire_tag, nb)
            for src, dst in op.edges:
                counts[(src, dst, tag)] += op.segments
    return counts


def _observed_channels(spans, nb: int) -> Tuple[
    Dict[Channel, int], List
]:
    """Per-channel counts in a recorded trace, plus the comm spans
    (rank-sorted, time-ordered) for the phase-order check."""
    counts: Dict[Channel, int] = defaultdict(int)
    comm_spans = []
    for span in spans:
        if span.cat != "comm" or span.name != "xfer":
            continue
        attrs = span.attrs or {}
        tag = attrs.get("tag")
        dst = attrs.get("dst")
        if tag is None or dst is None:
            continue
        counts[(span.rank, int(dst), _canonical_tag(int(tag), nb))] += 1
        comm_spans.append(span)
    return counts, comm_spans


def check_conformance(profile_input, schedule: Schedule,
                      nb: int) -> ConformanceReport:
    """Join a recorded trace against a static schedule."""
    report = ConformanceReport(
        source=profile_input.source, label=schedule.label(),
    )
    issues = report.issues

    model = _model_channels(schedule, nb)
    observed, comm_spans = _observed_channels(profile_input.spans, nb)

    model_tags = {tag for _s, _d, tag in model}
    for key in sorted(observed, key=str):
        src, dst, tag = key
        if key in model:
            continue
        if tag not in model_tags:
            issues.append(ConformanceIssue(
                rule="trace-conformance", severity="error",
                message=(
                    f"out-of-model tag: rank {src} -> rank {dst} "
                    f"carried tag {tag!r}, which the static schedule "
                    "never emits"
                ),
            ))
        else:
            issues.append(ConformanceIssue(
                rule="trace-conformance", severity="error",
                message=(
                    f"unmatched transfer: rank {src} -> rank {dst} with "
                    f"tag {tag!r} — the model routes this tag, but never "
                    "between this rank pair"
                ),
            ))

    refinement_exempt = 0
    for key in sorted(model, key=str):
        got = observed.get(key, 0)
        want = model[key]
        if got == want:
            continue
        src, dst, tag = key
        if got == 0:
            issues.append(ConformanceIssue(
                rule="trace-conformance", severity="warning",
                message=(
                    f"unobserved channel: the model schedules {want} "
                    f"message(s) rank {src} -> rank {dst} tag {tag!r} "
                    "but the trace shows none"
                ),
            ))
        elif tag[0] in ("ir", "gmres"):
            # iteration counts are data-dependent in exact-mode runs;
            # any positive multiple of the per-iteration structure is
            # conformant once the iteration index is stripped
            refinement_exempt += 1
        else:
            issues.append(ConformanceIssue(
                rule="trace-conformance", severity="error",
                message=(
                    f"count mismatch: rank {src} -> rank {dst} tag "
                    f"{tag!r} observed {got} time(s), model schedules "
                    f"{want}"
                ),
            ))

    _check_phase_order(comm_spans, issues)

    report.stats = {
        "observed_channels": len(observed),
        "model_channels": len(model),
        "observed_transfers": sum(observed.values()),
        "model_transfers": sum(model.values()),
        "refinement_channels_collapsed": refinement_exempt,
    }
    return report


def _check_phase_order(comm_spans, issues: List[ConformanceIssue],
                       lookahead_depth: int = 1) -> None:
    """Factorization traffic must advance step-monotonically per rank,
    modulo the look-ahead pipeline depth: with depth 1, step ``k+1``
    panel traffic may overlap step ``k``'s trailing update, but step
    ``k+2`` traffic before ``k`` finishes is a schedule violation."""
    by_rank: Dict[int, List] = defaultdict(list)
    for span in comm_spans:
        tag = int(span.attrs["tag"])
        if _is_refinement(tag):
            continue
        step = decode_wire_tag(tag)[1]
        if step is None:
            continue
        by_rank[span.rank].append((span.start, step, tag))
    for rank in sorted(by_rank):
        events = sorted(by_rank[rank])
        max_step = -1
        for start, step, tag in events:
            if max_step - step > lookahead_depth:
                phase = decode_wire_tag(tag)[0]
                issues.append(ConformanceIssue(
                    rule="trace-conformance", severity="error",
                    message=(
                        f"phase-order violation on rank {rank}: {phase} "
                        f"traffic for step {step} at t={start:.6f} after "
                        f"step {max_step} traffic already ran "
                        f"(look-ahead depth {lookahead_depth})"
                    ),
                ))
                break
            max_step = max(max_step, step)


def conformance_from_trace(path, program: str = "hplai",
                           progression: Optional[str] = None
                           ) -> ConformanceReport:
    """Load a trace artifact, rebuild its config from provenance,
    extract the matching static schedule, and check conformance."""
    from repro.errors import ConfigurationError
    from repro.obs.analysis import config_from_provenance, \
        load_profile_input

    pi = load_profile_input(path)
    if not pi.provenance:
        raise ConfigurationError(
            f"{path}: trace carries no provenance block; cannot rebuild "
            "the run configuration for conformance checking"
        )
    cfg = config_from_provenance(pi.provenance)
    if progression is not None:
        from dataclasses import replace

        cfg = replace(cfg, progression=progression)
    result = extract_config(cfg, program=program)
    if not result.completed:
        raise ConfigurationError(
            f"static schedule extraction failed for {path}: "
            f"{result.error or 'deadlock'}"
        )
    return check_conformance(pi, result.schedule, cfg.num_blocks)
