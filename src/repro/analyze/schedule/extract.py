"""Schedule extraction: bounded symbolic execution of the rank programs.

The comm generators (:mod:`repro.core.hplai`, :mod:`repro.core.hpl_dist`,
the broadcast/collective generators under :mod:`repro.comm`) are driven
by an *un-timed* cooperative interpreter that mirrors the engine's
matching semantics exactly — FIFO mailboxes keyed ``(src, dst, tag)``,
routed broadcasts deposited as-if-from-root, collectives matched on
``(members, key, occurrence, op type)`` — but charges no time at all.
What remains is the pure communication structure: who sends what to
whom, on which wire tag, in which program order.  That structure is the
:class:`~repro.analyze.schedule.model.Schedule` the happens-before
checks prove properties about.

Soundness boundary: execution is *concrete*, not symbolic over data —
each (grid, algorithm, matrix) case proves that one case.  HPL-AI's
control flow is data-independent (the phantom executors take the exact
branch structure of a real run), so a proof per (grid, algorithm)
covers every run at that shape; the pivoted FP64 HPL path is
data-dependent, so it is checked on concrete pivot-exercising matrices.
Interprocedural attribution comes for free: at every yield the live
``gi_yieldfrom`` chain gives the exact call path (driver → comm facade
→ broadcast generator) that posted the op.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analyze.schedule.model import Collective, CommOp, Schedule
from repro.errors import ReproError
from repro.simulate.engine import Engine
from repro.simulate.events import (
    Allreduce,
    Barrier,
    BlockUntil,
    Compute,
    Irecv,
    Isend,
    Now,
    Recv,
    Reduce,
    RouteSend,
    Send,
    Wait,
)
from repro.simulate.phantom import nbytes_of

#: generous per-extraction op budget (boundedness guarantee)
DEFAULT_MAX_OPS = 2_000_000

#: innermost-frame locals worth snapshotting into op context
_CONTEXT_KEYS = (
    "k", "j", "it", "iteration", "col", "span_idx", "s", "round_no",
    "step", "seg", "nxt", "dst", "src", "root", "owner",
)

_READY, _BLOCKED_RECV, _BLOCKED_COLL, _DONE, _FAILED = range(5)


class ExtractionError(ReproError):
    """A rank program failed (or exploded) during schedule extraction."""


@dataclass
class DeadlockReport:
    """A globally-stuck extraction: the counterexample material."""

    blocked: List[dict]
    #: wait-for edges rank -> ranks it needs progress from
    wait_for: Dict[int, List[int]]
    cycle: List[int]
    #: trailing ops of every blocked rank (the counterexample schedule)
    trail: Dict[int, List[CommOp]]
    #: pending collectives posted with clashing member lists, if any
    member_mismatches: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Printable counterexample: wait-for cycle + trailing ops."""
        lines = ["counterexample schedule (deadlock):"]
        if self.cycle:
            arrow = " -> ".join(f"rank {r}" for r in self.cycle)
            lines.append(f"  wait-for cycle: {arrow} -> rank {self.cycle[0]}")
        for info in self.blocked:
            rank = info["rank"]
            lines.append(f"  rank {rank} blocked on {info['what']}")
            for op in self.trail.get(rank, []):
                lines.append(f"    {op.describe()}")
        for msg in self.member_mismatches:
            lines.append(f"  {msg}")
        return "\n".join(lines)


@dataclass
class ExtractionResult:
    """A schedule plus how its extraction ended."""

    schedule: Schedule
    deadlock: Optional[DeadlockReport] = None
    #: (src, dst, wire) messages posted but never received
    undelivered: List[Tuple[int, int, int]] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.deadlock is None and self.error is None


def _shorten(path: str) -> str:
    parts = path.replace("\\", "/").split("/")
    for anchor in ("src", "tests"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return parts[-1]


def _capture_sites(gen) -> Tuple[Tuple[str, int, str], ...]:
    """Interprocedural yield path: walk the live ``yield from`` chain."""
    out = []
    g = gen
    while g is not None:
        frame = getattr(g, "gi_frame", None)
        if frame is None:
            break
        out.append(
            (_shorten(frame.f_code.co_filename), frame.f_lineno,
             frame.f_code.co_name)
        )
        g = getattr(g, "gi_yieldfrom", None)
    return tuple(out)


def _capture_context(gen) -> Dict[str, Any]:
    """Small snapshot of the innermost frame's loop counters."""
    g, frame = gen, getattr(gen, "gi_frame", None)
    while True:
        sub = getattr(g, "gi_yieldfrom", None)
        subframe = getattr(sub, "gi_frame", None) if sub is not None else None
        if subframe is None:
            break
        g, frame = sub, subframe
    if frame is None:
        return {}
    ctx: Dict[str, Any] = {}
    local = frame.f_locals
    for key in _CONTEXT_KEYS:
        if key in local and isinstance(local[key], (int, np.integer)):
            ctx[key] = int(local[key])
        if len(ctx) >= 6:
            break
    return ctx


def _payload_bytes(payload) -> Optional[int]:
    try:
        return int(nbytes_of(payload))
    except Exception:  # lint: ignore[hygiene] - size is best-effort metadata
        return None


class _Rank:
    __slots__ = ("gen", "status", "value", "block", "seq", "pseudo_clock")

    def __init__(self, gen) -> None:
        self.gen = gen
        self.status = _READY
        self.value: Any = None
        self.block: Any = None
        self.seq = 0
        self.pseudo_clock = 0.0


class ScheduleExtractor:
    """Drives one generator per rank to completion, recording comm ops.

    Matching semantics mirror :class:`repro.simulate.engine.Engine`
    (the docstrings there are normative); anything the engine would
    reject — invalid peer ranks, collectives posted by non-members,
    mis-rooted routes — raises :class:`ExtractionError` here too.
    """

    def __init__(self, num_ranks: int, meta: Optional[dict] = None,
                 max_ops: int = DEFAULT_MAX_OPS,
                 capture_context: bool = True) -> None:
        self.num_ranks = num_ranks
        self.max_ops = max_ops
        self.capture_context = capture_context
        self.schedule = Schedule(
            num_ranks=num_ranks, meta=dict(meta or {}),
            ops=[[] for _ in range(num_ranks)], matches=[],
        )
        # engine-mirroring plumbing
        self._mailbox: Dict[Tuple[int, int, int], deque] = {}
        self._recv_waiters: Dict[Tuple[int, int, int], deque] = {}
        self._handles: Dict[int, dict] = {}
        self._next_handle = 1
        self._coll_seq: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
        self._pending: Dict[Tuple, dict] = {}
        self._total_ops = 0

    # -- op recording -----------------------------------------------------

    def _record(self, rank: int, kind: str, gen, **fields) -> CommOp:
        st = self._ranks[rank]
        op = CommOp(
            rank=rank, seq=len(self.schedule.ops[rank]), kind=kind,
            sites=_capture_sites(gen),
            context=_capture_context(gen) if self.capture_context else {},
            **fields,
        )
        self.schedule.ops[rank].append(op)
        self._total_ops += 1
        if self._total_ops > self.max_ops:
            raise ExtractionError(
                f"extraction exceeded max_ops={self.max_ops}; "
                "suspected runaway rank program"
            )
        return op

    # -- run loop ---------------------------------------------------------

    def run(self, factory: Callable[[int], Any]) -> ExtractionResult:
        """Drive every rank program to completion or global block."""
        self._ranks = [_Rank(factory(r)) for r in range(self.num_ranks)]
        ready = deque(range(self.num_ranks))
        error: Optional[str] = None
        try:
            while ready:
                rank = ready.popleft()
                st = self._ranks[rank]
                # Run-to-block: a rank keeps stepping until it blocks or
                # finishes.  Matching is interleaving-independent (one
                # sender per channel; per-channel FIFO), so this order
                # is as good as the engine's time-ordered one.
                while st.status == _READY:
                    self._step(rank, st, ready)
        except ExtractionError as exc:
            error = str(exc)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"

        deadlock = None
        if error is None:
            stuck = [
                r for r, st in enumerate(self._ranks) if st.status
                in (_BLOCKED_RECV, _BLOCKED_COLL)
            ]
            if stuck:
                deadlock = self._diagnose_deadlock(stuck)
        undelivered = sorted(
            key for key, box in self._mailbox.items() if box
        )
        return ExtractionResult(
            schedule=self.schedule, deadlock=deadlock,
            undelivered=undelivered, error=error,
        )

    def _step(self, rank: int, st: _Rank, ready: deque) -> None:
        try:
            op = st.gen.send(st.value)
        except StopIteration:
            st.status = _DONE
            return
        except ReproError:
            raise
        except Exception as exc:  # lint: ignore[hygiene] - wrap rank crashes
            raise ExtractionError(
                f"rank {rank} raised {type(exc).__name__}: {exc}"
            ) from exc
        st.value = None
        st.pseudo_clock += 1.0
        if isinstance(op, Compute):
            return
        if isinstance(op, Now):
            st.value = st.pseudo_clock
            return
        if isinstance(op, BlockUntil):
            return
        if isinstance(op, Isend):
            self._do_send(rank, st, op, blocking=False)
        elif isinstance(op, Send):
            self._do_send(rank, st, op, blocking=True)
        elif isinstance(op, Recv):
            rec = self._record(
                rank, "recv", st.gen, peer=op.src, wire_tag=op.tag,
            )
            self._do_recv(rank, st, op.src, op.tag, rec, ready)
        elif isinstance(op, Irecv):
            rec = self._record(
                rank, "irecv", st.gen, peer=op.src, wire_tag=op.tag,
            )
            h = self._next_handle
            self._next_handle += 1
            self._handles[h] = {"type": "irecv", "src": op.src,
                                "tag": op.tag, "post": rec.op_id}
            st.value = h
        elif isinstance(op, Wait):
            self._do_wait(rank, st, op.handle, ready)
        elif isinstance(op, RouteSend):
            self._do_route(rank, st, op, ready)
        elif isinstance(op, (Barrier, Allreduce, Reduce)):
            self._do_collective(rank, st, op, ready)
        else:
            raise ExtractionError(
                f"rank {rank} yielded unsupported op {type(op).__name__}"
            )

    # -- point to point ---------------------------------------------------

    def _check_peer(self, rank: int, peer: int, verb: str) -> None:
        if not 0 <= peer < self.num_ranks:
            raise ExtractionError(
                f"rank {rank} {verb} invalid rank {peer}"
            )

    def _do_send(self, rank: int, st: _Rank, op, blocking: bool) -> None:
        self._check_peer(rank, op.dst, "sent to")
        payload = op.payload
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        rec = self._record(
            rank, "send" if blocking else "isend", st.gen,
            peer=op.dst, wire_tag=op.tag, nbytes=_payload_bytes(payload),
        )
        self._deliver((rank, op.dst, op.tag), payload, rec.op_id)
        if not blocking:
            h = self._next_handle
            self._next_handle += 1
            self._handles[h] = {"type": "isend"}
            st.value = h

    def _deliver(self, key, payload, send_id) -> None:
        waiters = self._recv_waiters.get(key)
        if waiters:
            waiting_rank, recv_id, ready = waiters.popleft()
            self.schedule.matches.append((send_id, recv_id))
            wst = self._ranks[waiting_rank]
            wst.status = _READY
            wst.value = payload
            wst.block = None
            ready.append(waiting_rank)
        else:
            self._mailbox.setdefault(key, deque()).append((payload, send_id))

    def _do_recv(self, rank, st, src, tag, rec: CommOp, ready) -> None:
        self._check_peer(rank, src, "receives from")
        key = (src, rank, tag)
        box = self._mailbox.get(key)
        if box:
            payload, send_id = box.popleft()
            self.schedule.matches.append((send_id, rec.op_id))
            st.value = payload
        else:
            st.status = _BLOCKED_RECV
            st.block = key
            self._recv_waiters.setdefault(key, deque()).append(
                (rank, rec.op_id, ready)
            )

    def _do_wait(self, rank, st, handle, ready) -> None:
        info = self._handles.pop(handle, None)
        if info is None:
            raise ExtractionError(
                f"rank {rank} waited on unknown handle {handle}"
            )
        if info["type"] == "isend":
            return
        # Completing an irecv is where the data actually lands, so the
        # completion gets its own op — happens-before consumes here,
        # not at the post.
        rec = self._record(
            rank, "recv", st.gen, peer=info["src"], wire_tag=info["tag"],
        )
        self._do_recv(rank, st, info["src"], info["tag"], rec, ready)

    def _do_route(self, rank, st, op: RouteSend, ready) -> None:
        spec = op.spec
        if rank != spec.root:
            raise ExtractionError(
                f"rank {rank} initiated a route rooted at {spec.root}"
            )
        payload = op.payload
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        rec = self._record(
            rank, "bcast_start", st.gen, root=spec.root, wire_tag=op.tag,
            nbytes=_payload_bytes(payload),
            edges=tuple(tuple(e) for e in spec.edges),
            segments=spec.segments,
        )
        for src, dst in spec.edges:
            if not (0 <= src < self.num_ranks and 0 <= dst < self.num_ranks):
                raise ExtractionError(
                    f"route edge ({src}, {dst}) outside world of "
                    f"{self.num_ranks} ranks"
                )
        for dst in {d for _s, d in spec.edges}:
            self._deliver((spec.root, dst, op.tag), payload, rec.op_id)
        st.value = st.pseudo_clock

    # -- collectives ------------------------------------------------------

    def _do_collective(self, rank, st, op, ready) -> None:
        members = tuple(op.members)
        if rank not in members:
            raise ExtractionError(
                f"rank {rank} posted a collective it is not a member of"
            )
        kind = type(op).__name__.lower()
        rec = self._record(
            rank, kind, st.gen, members=members, key=op.key,
            root=getattr(op, "root", None),
            nbytes=_payload_bytes(getattr(op, "payload", None)),
        )
        seq_key = (members, op.key)
        seqs = self._coll_seq.setdefault(seq_key, [0] * self.num_ranks)
        seq = seqs[rank]
        seqs[rank] += 1
        pend_key = (members, op.key, seq, type(op).__name__)
        pend = self._pending.setdefault(
            pend_key, {"members": members, "arrived": {}}
        )
        payload = getattr(op, "payload", None)
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        pend["arrived"][rank] = (payload, op, rec.op_id)
        st.status = _BLOCKED_COLL
        st.block = pend_key
        if len(pend["arrived"]) == len(members):
            self._finish_collective(pend_key, pend, ready)

    def _finish_collective(self, pend_key, pend, ready) -> None:
        del self._pending[pend_key]
        members, key, occurrence, op_name = pend_key
        arrived = pend["arrived"]
        example_op = next(iter(arrived.values()))[1]
        if op_name == "Barrier":
            results = {r: None for r in members}
        else:
            payloads = [arrived[r][0] for r in members]
            reduced = Engine._reduce_payloads(payloads)
            if op_name == "Allreduce":
                results = {r: reduced for r in members}
            else:
                root = example_op.root
                if root not in members:
                    raise ExtractionError(
                        f"reduce root {root} not in members {members}"
                    )
                results = {
                    r: (reduced if r == root else None) for r in members
                }
        self.schedule.collectives.append(Collective(
            kind=op_name.lower(), members=members, key=key,
            occurrence=occurrence,
            op_ids=tuple(arrived[r][2] for r in members),
            roots=tuple(
                getattr(arrived[r][1], "root", None) for r in members
            ),
        ))
        for r in members:
            st = self._ranks[r]
            st.status = _READY
            st.value = results[r]
            st.block = None
            ready.append(r)

    # -- deadlock diagnosis ----------------------------------------------

    def _diagnose_deadlock(self, stuck: List[int]) -> DeadlockReport:
        blocked: List[dict] = []
        wait_for: Dict[int, List[int]] = {}
        trail: Dict[int, List[CommOp]] = {}
        for rank in stuck:
            st = self._ranks[rank]
            if st.status == _BLOCKED_RECV:
                src, _dst, wire = st.block
                what = f"recv from rank {src} tag {wire}"
                wait_for[rank] = [src]
            else:
                members, key, occurrence, op_name = st.block
                pend = self._pending.get(st.block, {"arrived": {}})
                missing = [m for m in members if m not in pend["arrived"]]
                what = (
                    f"{op_name.lower()} key={key!r} #{occurrence} "
                    f"members {list(members)}; not arrived: {missing}"
                )
                wait_for[rank] = missing
            blocked.append({"rank": rank, "what": what})
            trail[rank] = self.schedule.ops[rank][-3:]
        cycle = _find_cycle(wait_for)
        mismatches = self._collective_mismatches()
        return DeadlockReport(
            blocked=blocked, wait_for=wait_for, cycle=cycle, trail=trail,
            member_mismatches=mismatches,
        )

    def _collective_mismatches(self) -> List[str]:
        """Pending collectives whose member lists clash: two incomplete
        occurrences of the same kind/key whose member sets intersect
        means the participants disagree on who belongs."""
        out = []
        pend_keys = list(self._pending)
        for i, a in enumerate(pend_keys):
            for b in pend_keys[i + 1:]:
                if a[3] != b[3] or a[1] != b[1]:
                    continue
                if a[0] != b[0] and set(a[0]) & set(b[0]):
                    out.append(
                        f"collective membership mismatch: {a[3].lower()} "
                        f"key={a[1]!r} posted with members {list(a[0])} "
                        f"by ranks {sorted(self._pending[a]['arrived'])} "
                        f"but with members {list(b[0])} by ranks "
                        f"{sorted(self._pending[b]['arrived'])}"
                    )
        return out


def _find_cycle(wait_for: Dict[int, List[int]]) -> List[int]:
    """One cycle in the wait-for graph, if any (DFS with colouring)."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {r: WHITE for r in wait_for}
    stack: List[int] = []

    def visit(r: int) -> Optional[List[int]]:
        colour[r] = GREY
        stack.append(r)
        for nxt in wait_for.get(r, ()):
            if colour.get(nxt, BLACK) == GREY:
                return stack[stack.index(nxt):]
            if colour.get(nxt) == WHITE:
                found = visit(nxt)
                if found:
                    return found
        colour[r] = BLACK
        stack.pop()
        return None

    for r in list(wait_for):
        if colour[r] == WHITE:
            found = visit(r)
            if found:
                return found
    return []


# -- program builders -----------------------------------------------------


@dataclass(frozen=True)
class ScheduleCase:
    """One concrete configuration to extract and verify."""

    program: str = "hplai"          # hplai | hpl
    p_rows: int = 2
    p_cols: int = 2
    bcast: str = "bcast"
    progression: str = "routed"     # routed | inband
    lookahead: bool = True
    n: int = 128
    block: int = 32
    refinement: str = "ir"          # ir | gmres
    allreduce: Optional[str] = None  # None | ring | doubling
    machine: str = "summit"
    seed: int = 42

    @property
    def num_ranks(self) -> int:
        return self.p_rows * self.p_cols

    def label(self) -> str:
        """Slash-separated case name for reports (grid/bcast/...)."""
        bits = [
            self.program, f"{self.p_rows}x{self.p_cols}", self.bcast,
            self.progression,
        ]
        if self.lookahead:
            bits.append("lookahead")
        if self.refinement != "ir":
            bits.append(self.refinement)
        if self.allreduce:
            bits.append(f"allreduce={self.allreduce}")
        return "/".join(bits)

    def to_meta(self) -> dict:
        """Schedule meta dict recording this case's parameters."""
        return {
            "program": self.program, "p_rows": self.p_rows,
            "p_cols": self.p_cols, "bcast": self.bcast,
            "progression": self.progression, "lookahead": self.lookahead,
            "n": self.n, "block": self.block,
            "refinement": self.refinement, "allreduce": self.allreduce,
        }

    def build_config(self):
        """The BenchmarkConfig this case describes."""
        from repro.core.config import BenchmarkConfig
        from repro.machine import get_machine

        return BenchmarkConfig(
            n=self.n, block=self.block, machine=get_machine(self.machine),
            p_rows=self.p_rows, p_cols=self.p_cols,
            bcast_algorithm=self.bcast, progression=self.progression,
            lookahead=self.lookahead, refinement_solver=self.refinement,
            allreduce_algorithm=self.allreduce, seed=self.seed,
        )


class _PivotingMatrix:
    """Deterministic dense matrix with no diagonal dominance, so the
    FP64 HPL path genuinely exchanges pivot rows during extraction."""

    def __init__(self, n: int, seed: int):
        rng = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        scales = rng.uniform(1.0, 3.0, size=n) * rng.choice(
            [-1.0, 1.0], size=n
        )
        self._a = scales[:, None] * q
        self._b = rng.normal(size=n)
        self.n = n

    def block(self, r0, r1, c0, c1):
        return self._a[r0:r1, c0:c1].copy()

    def rhs(self):
        return self._b.copy()


def extract_config(cfg, program: str = "hplai",
                   meta: Optional[dict] = None,
                   max_ops: int = DEFAULT_MAX_OPS) -> ExtractionResult:
    """Extract the schedule an existing config's rank programs produce.

    ``hplai`` runs the phantom executors (data-independent control
    flow: the one extracted schedule covers every run of this shape);
    ``hpl`` runs the real pivoted-LU executors on a deterministic
    pivot-exercising matrix (its comm schedule is data-dependent).
    """
    if program == "hplai":
        from repro.core.executors import PhantomExecutor
        from repro.core.hplai import hplai_rank_program

        def factory(rank: int):
            p_ir, p_ic = cfg.grid.coords_of(rank)
            ex = PhantomExecutor(cfg, p_ir, p_ic, rank)
            return hplai_rank_program(cfg, ex, rank)

    elif program == "hpl":
        from repro.core.hpl_dist import HplExecutor, hpl_rank_program

        matrix = _PivotingMatrix(cfg.n, cfg.seed)

        def factory(rank: int):
            p_ir, p_ic = cfg.grid.coords_of(rank)
            ex = HplExecutor(cfg, p_ir, p_ic, rank, matrix=matrix)
            return hpl_rank_program(cfg, ex, rank)

    else:
        raise ExtractionError(f"unknown program {program!r}")

    base_meta = {
        "program": program, "p_rows": cfg.p_rows, "p_cols": cfg.p_cols,
        "bcast": cfg.bcast_algorithm, "n": cfg.n, "block": cfg.block,
        "lookahead": cfg.lookahead,
    }
    base_meta.update(meta or {})
    extractor = ScheduleExtractor(
        cfg.num_ranks, meta=base_meta, max_ops=max_ops,
    )
    return extractor.run(factory)


def extract_case(case: ScheduleCase,
                 max_ops: int = DEFAULT_MAX_OPS) -> ExtractionResult:
    """Extract the schedule for one configuration."""
    return extract_config(
        case.build_config(), program=case.program, meta=case.to_meta(),
        max_ops=max_ops,
    )


def extract_factory(num_ranks: int, factory: Callable[[int], Any],
                    meta: Optional[dict] = None,
                    max_ops: int = DEFAULT_MAX_OPS) -> ExtractionResult:
    """Extract the schedule of arbitrary rank-program generators."""
    return ScheduleExtractor(num_ranks, meta=meta, max_ops=max_ops).run(
        factory
    )
