"""Implementation of the ``repro verify-comm`` subcommand.

Proves communication-schedule properties for a matrix of concrete
configurations (grids × broadcast algorithms × progression modes, plus
the explicit allreduce algorithms, the GMRES refiner, and the pivoted
FP64 HPL path), replays recorded traces against the static model
(``--trace``), and re-proves the known-bad fixture schedules
(``--fixture``).  Exit codes follow ``repro lint``:

- 0 — every proof obligation held (warnings allowed);
- 1 — a proof failed (counterexample printed);
- 2 — usage error.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List

from repro.analyze.schedule.extract import ScheduleCase, extract_case
from repro.analyze.schedule.hb import analyze_schedule

#: every process grid up to 16 ranks exercising distinct topology
#: shapes: degenerate rows/columns, square, rectangular, odd
DEFAULT_GRIDS = "1x2,2x1,2x2,2x4,4x2,3x3,4x4"
DEFAULT_BCASTS = "bcast,ibcast,ring1,ring1m,ring2m"
DEFAULT_MODES = "routed,inband"
DEFAULT_PROGRAMS = "hplai,hpl"

#: the FP64 HPL proof shape: small enough to factor exactly, pivoting
_HPL_N, _HPL_BLOCK = 64, 8


def add_verify_comm_parser(sub) -> None:
    """Register the ``verify-comm`` subparser."""
    p = sub.add_parser(
        "verify-comm",
        help="prove the communication schedule deadlock- and race-free",
    )
    p.add_argument("--grids", default=DEFAULT_GRIDS,
                   help=f"comma-separated RxC grids (default {DEFAULT_GRIDS})")
    p.add_argument("--bcasts", default=DEFAULT_BCASTS,
                   help="broadcast algorithms to prove "
                   f"(default {DEFAULT_BCASTS})")
    p.add_argument("--modes", default=DEFAULT_MODES,
                   help="progression modes: routed (look-ahead) and/or "
                   "inband (default both)")
    p.add_argument("--programs", default=DEFAULT_PROGRAMS,
                   help="rank programs: hplai (phantom control flow) "
                   "and/or hpl (exact pivoted LU; default both)")
    p.add_argument("-b", "--block", type=int, default=32,
                   help="panel width for the hplai proofs (default 32)")
    p.add_argument("--trace", action="append", default=None, metavar="FILE",
                   help="check a recorded trace against the static model "
                   "(repeatable; skips the proof matrix unless --matrix)")
    p.add_argument("--fixture", action="append", default=None, metavar="NAME",
                   help="re-prove a known-bad fixture schedule (expects "
                   "failure; 'all' runs every fixture; skips the proof "
                   "matrix unless --matrix)")
    p.add_argument("--matrix", action="store_true",
                   help="run the proof matrix even when --trace/--fixture "
                   "are given")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default text)")
    p.add_argument("--out", default=None,
                   help="also write the JSON report to a file")
    p.set_defaults(func=cmd_verify_comm)


def _parse_grids(spec: str) -> List[tuple]:
    grids = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        rows, _, cols = token.partition("x")
        grids.append((int(rows), int(cols)))
    return grids


def _matrix_cases(args) -> List[ScheduleCase]:
    grids = _parse_grids(args.grids)
    bcasts = [b.strip() for b in args.bcasts.split(",") if b.strip()]
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    programs = [p.strip() for p in args.programs.split(",") if p.strip()]
    block = args.block
    cases: List[ScheduleCase] = []
    if "hplai" in programs:
        for p_rows, p_cols in grids:
            # enough panels that the look-ahead pipeline and both bcast
            # dimensions are exercised on every grid shape
            n = block * max(4, 2 * max(p_rows, p_cols))
            for bcast in bcasts:
                for mode in modes:
                    cases.append(ScheduleCase(
                        program="hplai", p_rows=p_rows, p_cols=p_cols,
                        bcast=bcast, progression=mode,
                        lookahead=(mode == "routed"), n=n, block=block,
                    ))
        # solver variants: explicit allreduce algorithms and GMRES-IR
        # (orthogonal to the bcast choice; proved once per grid family)
        for p_rows, p_cols in grids:
            if (p_rows, p_cols) not in ((2, 2), (3, 3)):
                continue
            n = block * max(4, 2 * max(p_rows, p_cols))
            for algo in ("ring", "doubling"):
                cases.append(ScheduleCase(
                    program="hplai", p_rows=p_rows, p_cols=p_cols,
                    allreduce=algo, n=n, block=block,
                ))
            cases.append(ScheduleCase(
                program="hplai", p_rows=p_rows, p_cols=p_cols,
                refinement="gmres", n=n, block=block,
            ))
    if "hpl" in programs:
        for p_rows, p_cols in grids:
            if p_rows * p_cols > 8 and (p_rows, p_cols) != (4, 4):
                continue
            if _HPL_N // _HPL_BLOCK < max(p_rows, p_cols):
                continue
            cases.append(ScheduleCase(
                program="hpl", p_rows=p_rows, p_cols=p_cols,
                n=_HPL_N, block=_HPL_BLOCK,
            ))
    return cases


def _run_matrix(cases, doc, verbose_print) -> bool:
    ok = True
    for case in cases:
        t0 = time.perf_counter()
        result = extract_case(case)
        entry = {"case": case.label(), "meta": case.to_meta()}
        if not result.completed:
            ok = False
            entry["ok"] = False
            entry["error"] = result.error or "deadlock"
            verbose_print(f"FAILED  {case.label()}: {entry['error']}")
            if result.deadlock is not None:
                entry["counterexample"] = result.deadlock.describe()
                verbose_print(result.deadlock.describe())
        else:
            report = analyze_schedule(result.schedule)
            errors = [f for f in report.findings if f.severity == "error"]
            warnings = [f for f in report.findings if f.severity == "warning"]
            entry.update(report.to_dict())
            entry["seconds"] = round(time.perf_counter() - t0, 3)
            entry["phase_summary"] = result.schedule.phase_summary()
            if errors:
                ok = False
                verbose_print(f"FAILED  {case.label()}")
                for f in errors:
                    verbose_print(f.format())
            else:
                s = report.stats
                line = (
                    f"proved  {case.label()}: {s['ops']} ops, "
                    f"{s['matches']} matches, {s['collectives']} "
                    f"collectives, acyclic"
                )
                if warnings:
                    line += f" ({len(warnings)} warning(s))"
                verbose_print(line)
        doc["cases"].append(entry)
    return ok


def _run_fixtures(names, doc, verbose_print) -> bool:
    from repro.analyze.schedule.fixtures import FIXTURES

    if "all" in names:
        names = sorted(FIXTURES)
    ok = True
    for name in names:
        schedule = FIXTURES[name]()
        report = analyze_schedule(schedule)
        errors = [f for f in report.findings if f.severity == "error"]
        entry = {"fixture": name, "expected_failure": True,
                 "detected": bool(errors),
                 "findings": [f.to_dict() for f in report.findings]}
        doc["fixtures"].append(entry)
        if errors:
            verbose_print(
                f"fixture {name}: defect detected as expected "
                f"({len(errors)} error finding(s))"
            )
            for f in errors:
                verbose_print(f.format())
        else:
            # a fixture is a known-bad schedule: NOT detecting it is
            # the regression
            ok = False
            verbose_print(
                f"FAILED  fixture {name}: known-bad schedule was "
                "proved clean — the verifier regressed"
            )
    return ok


def _run_traces(paths, doc, verbose_print) -> bool:
    from repro.analyze.schedule.conformance import conformance_from_trace

    ok = True
    for path in paths:
        report = conformance_from_trace(path)
        doc["traces"].append(report.to_dict())
        errors = [i for i in report.issues if i.severity == "error"]
        if errors:
            ok = False
            verbose_print(f"FAILED  trace {path} vs {report.label}")
            for issue in errors:
                verbose_print(issue.format())
        else:
            s = report.stats
            verbose_print(
                f"conforms  {path}: {s['observed_transfers']} transfers "
                f"over {s['observed_channels']} channels match the "
                f"static schedule ({report.label})"
            )
    return ok


def cmd_verify_comm(args) -> int:
    """Run the requested proofs; see module docstring for exit codes."""
    from repro.errors import ReproError

    texts: List[str] = []

    def verbose_print(line: str) -> None:
        if args.format == "text":
            print(line)
        texts.append(line)

    doc = {"cases": [], "fixtures": [], "traces": []}
    t0 = time.perf_counter()
    ok = True
    try:
        run_matrix = args.matrix or not (args.trace or args.fixture)
        if run_matrix:
            cases = _matrix_cases(args)
            if not cases:
                print("verify-comm: empty proof matrix", file=sys.stderr)
                return 2
            ok = _run_matrix(cases, doc, verbose_print) and ok
        if args.fixture:
            ok = _run_fixtures(args.fixture, doc, verbose_print) and ok
        if args.trace:
            ok = _run_traces(args.trace, doc, verbose_print) and ok
    except KeyError as exc:
        print(f"verify-comm: unknown fixture {exc}", file=sys.stderr)
        return 2
    except (ReproError, ValueError, OSError) as exc:
        print(f"verify-comm: {exc}", file=sys.stderr)
        return 2

    doc["ok"] = ok
    doc["seconds"] = round(time.perf_counter() - t0, 3)
    summary = (
        f"verify-comm: {len(doc['cases'])} configuration(s), "
        f"{len(doc['fixtures'])} fixture(s), {len(doc['traces'])} "
        f"trace(s) in {doc['seconds']:.1f}s: "
        + ("all proofs held" if ok else "FAILED")
    )
    verbose_print(summary)
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    return 0 if ok else 1
