"""Whole-program communication-schedule verification.

Pipeline: :mod:`~repro.analyze.schedule.extract` runs the rank
programs through an un-timed interpreter mirroring the engine's
matching semantics and records the pure communication structure as a
:class:`~repro.analyze.schedule.model.Schedule`;
:mod:`~repro.analyze.schedule.hb` builds the happens-before graph over
it and proves matching, race freedom, collective symmetry and deadlock
freedom; :mod:`~repro.analyze.schedule.conformance` replays recorded
traces against the extracted model.  Surfaced via ``repro verify-comm``
and the ``comm-schedule`` / ``comm-race`` / ``trace-conformance`` lint
checkers.
"""

from repro.analyze.schedule.conformance import (
    ConformanceReport,
    check_conformance,
    conformance_from_trace,
)
from repro.analyze.schedule.extract import (
    ExtractionResult,
    ScheduleCase,
    extract_case,
    extract_config,
    extract_factory,
)
from repro.analyze.schedule.hb import HbFinding, HbReport, analyze_schedule
from repro.analyze.schedule.model import Collective, CommOp, Schedule

__all__ = [
    "Collective",
    "CommOp",
    "ConformanceReport",
    "ExtractionResult",
    "HbFinding",
    "HbReport",
    "Schedule",
    "ScheduleCase",
    "analyze_schedule",
    "check_conformance",
    "conformance_from_trace",
    "extract_case",
    "extract_config",
    "extract_factory",
]
