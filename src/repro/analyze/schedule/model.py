"""The communication-schedule data model.

A :class:`Schedule` is the whole-program artifact the verifier reasons
about: one :class:`CommOp` per communication event a rank program
posted, in per-rank program order, plus the send→recv matching and the
collective occurrences observed while extracting it.  Hand-written
schedules (the known-deadlock / known-race fixtures) construct the same
model directly, so the happens-before checks in
:mod:`repro.analyze.schedule.hb` apply identically to extracted and
synthetic schedules.

Wire tags are decoded through :mod:`repro.obs.phases` — the same
vocabulary the engine's trace spans and the health watchdog use — so a
counterexample prints ``panel_bcast step 3`` instead of a bare integer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.phases import decode_wire_tag

#: op kinds a schedule may contain
P2P_SEND_KINDS = ("send", "isend")
P2P_RECV_KINDS = ("recv", "irecv")
COLLECTIVE_KINDS = ("barrier", "allreduce", "reduce")
KINDS = P2P_SEND_KINDS + P2P_RECV_KINDS + ("bcast_start",) + COLLECTIVE_KINDS


@dataclass
class CommOp:
    """One communication event posted by one rank.

    ``seq`` is the op's index in its rank's program order.  For
    point-to-point ops ``peer`` is the remote rank and ``wire_tag`` the
    engine-level tag; for ``bcast_start`` (a routed multicast) ``peer``
    is None and ``edges`` carries the route's (src, dst) hops; for
    collectives ``members`` carries the communicator.
    """

    rank: int
    seq: int
    kind: str
    peer: Optional[int] = None
    wire_tag: Optional[int] = None
    members: Optional[Tuple[int, ...]] = None
    root: Optional[int] = None
    key: Optional[str] = None
    nbytes: Optional[int] = None
    #: routed broadcast hops [(src, dst), ...] and pipeline depth
    edges: Optional[Tuple[Tuple[int, int], ...]] = None
    segments: int = 1
    #: interprocedural yield-site chain, outermost → innermost:
    #: [(file, line, function), ...]
    sites: Tuple[Tuple[str, int, str], ...] = ()
    #: small snapshot of the innermost frame's locals (j, span, it, ...)
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def op_id(self) -> Tuple[int, int]:
        return (self.rank, self.seq)

    @property
    def phase(self) -> str:
        """Benchmark phase decoded from the wire tag (``?`` if none)."""
        if self.wire_tag is None:
            return "?"
        return decode_wire_tag(self.wire_tag)[0]

    @property
    def step(self) -> Optional[int]:
        """Factorization step decoded from the wire tag (None outside)."""
        if self.wire_tag is None:
            return None
        return decode_wire_tag(self.wire_tag)[1]

    @property
    def site(self) -> str:
        """Innermost yield site as ``file:line (function)``."""
        if not self.sites:
            return "?"
        f, line, fn = self.sites[-1]
        return f"{f}:{line} ({fn})"

    def describe(self) -> str:
        """One-line rendering used in counterexample schedules."""
        bits = [f"rank {self.rank} #{self.seq} {self.kind}"]
        if self.kind in P2P_SEND_KINDS:
            bits.append(f"-> rank {self.peer}")
        elif self.kind in P2P_RECV_KINDS:
            bits.append(f"<- rank {self.peer}")
        elif self.kind == "bcast_start":
            bits.append(f"root {self.root} x{len(self.edges or ())} hops")
        else:
            m = list(self.members or ())
            shown = m if len(m) <= 8 else m[:8] + ["..."]
            bits.append(f"members {shown}")
            if self.kind == "reduce":
                bits.append(f"root {self.root}")
        if self.wire_tag is not None:
            phase, step = decode_wire_tag(self.wire_tag)
            tagdesc = phase if step is None else f"{phase} k={step}"
            bits.append(f"tag {self.wire_tag} [{tagdesc}]")
        if self.nbytes is not None:
            bits.append(f"{self.nbytes}B")
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in self.context.items())
            bits.append(f"{{{ctx}}}")
        if self.sites:
            bits.append(f"at {self.site}")
        return " ".join(bits)

    def to_dict(self) -> dict:
        """Round-trippable JSON form of this op."""
        out: Dict[str, Any] = {
            "rank": self.rank, "seq": self.seq, "kind": self.kind,
        }
        for name in ("peer", "wire_tag", "root", "key", "nbytes"):
            val = getattr(self, name)
            if val is not None:
                out[name] = val
        if self.members is not None:
            out["members"] = list(self.members)
        if self.edges is not None:
            out["edges"] = [list(e) for e in self.edges]
            out["segments"] = self.segments
        if self.sites:
            out["sites"] = [list(s) for s in self.sites]
        if self.context:
            out["context"] = dict(self.context)
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "CommOp":
        return cls(
            rank=doc["rank"], seq=doc["seq"], kind=doc["kind"],
            peer=doc.get("peer"), wire_tag=doc.get("wire_tag"),
            members=tuple(doc["members"]) if "members" in doc else None,
            root=doc.get("root"), key=doc.get("key"),
            nbytes=doc.get("nbytes"),
            edges=tuple(tuple(e) for e in doc["edges"])
            if "edges" in doc else None,
            segments=doc.get("segments", 1),
            sites=tuple(tuple(s) for s in doc.get("sites", ())),
            context=dict(doc.get("context", {})),
        )


@dataclass
class Collective:
    """One completed collective occurrence: the i-th (members, key)
    collective, with the posting op of every participant."""

    kind: str
    members: Tuple[int, ...]
    key: str
    occurrence: int
    op_ids: Tuple[Tuple[int, int], ...]
    roots: Tuple[Optional[int], ...] = ()

    def to_dict(self) -> dict:
        """Round-trippable JSON form of this collective."""
        return {
            "kind": self.kind, "members": list(self.members),
            "key": self.key, "occurrence": self.occurrence,
            "op_ids": [list(o) for o in self.op_ids],
            "roots": [r for r in self.roots],
        }


@dataclass
class Schedule:
    """A whole-program communication schedule for one configuration."""

    num_ranks: int
    #: meta description: program, grid, bcast algorithm, n, block, ...
    meta: Dict[str, Any] = field(default_factory=dict)
    #: per-rank op lists in program order
    ops: List[List[CommOp]] = field(default_factory=list)
    #: send→recv matching observed during extraction:
    #: [(send_op_id, recv_op_id), ...]; None for hand-written schedules
    matches: Optional[List[Tuple[Tuple[int, int], Tuple[int, int]]]] = None
    #: completed collective occurrences
    collectives: List[Collective] = field(default_factory=list)

    def op(self, op_id: Tuple[int, int]) -> CommOp:
        """The op addressed by ``(rank, seq)``."""
        rank, seq = op_id
        return self.ops[rank][seq]

    def all_ops(self) -> List[CommOp]:
        """Every op of every rank, rank-major."""
        return [op for rank_ops in self.ops for op in rank_ops]

    @property
    def num_ops(self) -> int:
        return sum(len(r) for r in self.ops)

    def label(self) -> str:
        """Human-readable configuration label from the meta."""
        m = self.meta
        parts = [str(m.get("program", "program"))]
        if "p_rows" in m:
            parts.append(f"{m['p_rows']}x{m['p_cols']}")
        for k in ("bcast", "progression", "allreduce", "refinement"):
            if m.get(k):
                parts.append(str(m[k]))
        if m.get("lookahead"):
            parts.append("lookahead")
        return " ".join(parts)

    def phase_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-(phase, kind) op counts — the per-(rank, step, phase)
        schedule rollup surfaced in the JSON report."""
        out: Dict[str, Dict[str, int]] = {}
        for op in self.all_ops():
            phase = op.phase
            step = op.step
            key = phase if step is None else f"{phase}[k={step}]"
            bucket = out.setdefault(key, {})
            bucket[op.kind] = bucket.get(op.kind, 0) + 1
        return out

    def to_dict(self) -> dict:
        """Round-trippable JSON form of the whole schedule."""
        return {
            "num_ranks": self.num_ranks,
            "meta": dict(self.meta),
            "ops": [[op.to_dict() for op in r] for r in self.ops],
            "matches": (
                [[list(s), list(r)] for s, r in self.matches]
                if self.matches is not None else None
            ),
            "collectives": [c.to_dict() for c in self.collectives],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Schedule":
        sched = cls(num_ranks=doc["num_ranks"], meta=dict(doc.get("meta", {})))
        sched.ops = [
            [CommOp.from_dict(o) for o in rank_ops]
            for rank_ops in doc.get("ops", [])
        ]
        if doc.get("matches") is not None:
            sched.matches = [
                (tuple(s), tuple(r)) for s, r in doc["matches"]
            ]
        sched.collectives = [
            Collective(
                kind=c["kind"], members=tuple(c["members"]), key=c["key"],
                occurrence=c["occurrence"],
                op_ids=tuple(tuple(o) for o in c["op_ids"]),
                roots=tuple(c.get("roots", ())),
            )
            for c in doc.get("collectives", [])
        ]
        return sched


def channel_of(op: CommOp) -> Optional[Tuple[int, int, int]]:
    """The FIFO channel a point-to-point op uses: ``(src, dst, wire)``.

    Recv-side ops name the channel they drain; ``bcast_start`` fans out
    over one channel per route *destination* (the engine deposits routed
    payloads as-if-from-root), so it maps to several channels — use
    :func:`route_channels` for those.  Returns None for collectives.
    """
    if op.kind in P2P_SEND_KINDS:
        return (op.rank, op.peer, op.wire_tag)  # type: ignore[arg-type]
    if op.kind in P2P_RECV_KINDS:
        return (op.peer, op.rank, op.wire_tag)  # type: ignore[arg-type]
    return None


def route_channels(op: CommOp) -> List[Tuple[int, int, int]]:
    """Channels a routed broadcast delivers into: one per destination."""
    if op.kind != "bcast_start" or not op.edges:
        return []
    dsts = {dst for _src, dst in op.edges}
    return [(op.root, dst, op.wire_tag) for dst in sorted(dsts)]
    # type: ignore[list-item]
