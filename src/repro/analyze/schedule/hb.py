"""Happens-before model checking over extracted or hand-written schedules.

Given a :class:`~repro.analyze.schedule.model.Schedule`, build the
happens-before graph (program order + send→recv matching + collective
supernodes) and prove, for that concrete configuration:

* **matching** — every send has exactly one matching recv: no orphan
  sends (posted but never drained), no orphan recvs (blocked forever);
* **race freedom** — a ``(src, dst, wire_tag)`` channel carrying
  payloads of different sizes or fed from different source lines is
  flagged as *tag aliasing* (error): two logically distinct messages
  share a wire tag and can match the wrong recv — the pre-PR-2 LASWP
  bug class.  Channel reuse that is not happens-before serialized
  (the recv of message *i* does not happen-before the send of message
  *i+1*) is a warning: pairing stays deterministic only because the
  transport guarantees per-channel FIFO non-overtaking;
* **collective symmetry** — every collective occurrence completed with
  identical member lists and, for ``reduce``, an identical root on all
  participants (the engine silently adopts an arbitrary member's root);
* **deadlock freedom** — the happens-before graph is acyclic.

Every failed proof carries a printed counterexample schedule: the ops
forming the cycle / race / mismatch, with their interprocedural yield
sites, so the defect is attributable to a source line.

Legitimate sequential channel reuse — the explicit ring/doubling
allreduce algorithms re-use ``tag=0`` wires across iterations — passes
both race criteria: each reuse is serialized by the algorithm's own
recv chain, and every reuse ships the same payload shape from the same
call site.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.schedule.model import (
    COLLECTIVE_KINDS,
    CommOp,
    P2P_SEND_KINDS,
    Schedule,
)

OpId = Tuple[int, int]
Channel = Tuple[int, int, int]


@dataclass
class HbFinding:
    """One failed proof obligation, with its counterexample."""

    rule: str            # comm-deadlock | comm-orphan | comm-race | ...
    severity: str        # error | warning
    message: str
    counterexample: str = ""

    def format(self) -> str:
        """Message plus indented counterexample, printer-ready."""
        out = f"{self.severity} [{self.rule}] {self.message}"
        if self.counterexample:
            out += "\n" + _indent(self.counterexample)
        return out

    def to_dict(self) -> dict:
        """JSON form of this finding."""
        return {
            "rule": self.rule, "severity": self.severity,
            "message": self.message, "counterexample": self.counterexample,
        }


@dataclass
class HbReport:
    """The verdict for one schedule: proof stats and any failures."""

    label: str
    findings: List[HbFinding] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def to_dict(self) -> dict:
        """JSON form of the report (findings + stats)."""
        return {
            "label": self.label, "ok": self.ok,
            "stats": dict(self.stats),
            "findings": [f.to_dict() for f in self.findings],
        }


def _indent(text: str, pad: str = "    ") -> str:
    return "\n".join(pad + line for line in text.splitlines())


def _logical_site(op: CommOp) -> Optional[Tuple[str, str]]:
    """The innermost yield frame *outside* the comm facade, as
    ``(file, function)``.  Lines are deliberately ignored: one function
    feeding a wire from several call sites (the refinement loop's
    back-to-back allreduces) is normal reuse, whereas two different
    functions feeding one wire is the aliasing bug class."""
    for file, _line, fn in reversed(op.sites):
        if "/comm/" not in f"/{file}":
            return (file, fn)
    if op.sites:
        file, _line, fn = op.sites[-1]
        return (file, fn)
    return None


def _send_channel(op: CommOp) -> Optional[Channel]:
    if op.kind in P2P_SEND_KINDS:
        return (op.rank, op.peer, op.wire_tag)
    return None


def _recv_channel(op: CommOp) -> Optional[Channel]:
    if op.kind == "recv":
        return (op.peer, op.rank, op.wire_tag)
    return None


def _static_matches(schedule: Schedule) -> Tuple[
    List[Tuple[OpId, OpId]], List[OpId], List[OpId]
]:
    """FIFO matching for hand-written schedules: k-th send on a channel
    pairs with the k-th recv on it.  This is exactly the engine's
    matching discipline (per-channel FIFO mailboxes), so a hand-written
    fixture is checked under the same semantics as an extracted one.
    Returns (matches, orphan_sends, orphan_recvs).  ``irecv`` post ops
    are informational (the completion ``recv`` carries the match)."""
    sends: Dict[Channel, deque] = defaultdict(deque)
    recvs: Dict[Channel, deque] = defaultdict(deque)
    for op in schedule.all_ops():
        ch = _send_channel(op)
        if ch is not None:
            sends[ch].append(op.op_id)
        elif op.kind == "bcast_start" and op.edges:
            for dst in sorted({d for _s, d in op.edges}):
                sends[(op.root, dst, op.wire_tag)].append(op.op_id)
        ch = _recv_channel(op)
        if ch is not None:
            recvs[ch].append(op.op_id)
    matches: List[Tuple[OpId, OpId]] = []
    orphan_sends: List[OpId] = []
    orphan_recvs: List[OpId] = []
    for ch in set(sends) | set(recvs):
        s, r = sends.get(ch, deque()), recvs.get(ch, deque())
        while s and r:
            matches.append((s.popleft(), r.popleft()))
        orphan_sends.extend(s)
        orphan_recvs.extend(r)
    return matches, sorted(orphan_sends), sorted(orphan_recvs)


class _HbGraph:
    """Program order + matching + collective supernodes, as adjacency."""

    def __init__(self, schedule: Schedule,
                 matches: Sequence[Tuple[OpId, OpId]]):
        self.schedule = schedule
        # collective ops of one completed occurrence merge into one
        # supernode: every participant's predecessor happens-before
        # every participant's successor.
        self._super: Dict[OpId, Tuple[str, int]] = {}
        for idx, coll in enumerate(schedule.collectives):
            for op_id in coll.op_ids:
                self._super[op_id] = ("coll", idx)
        self.adj: Dict[object, Set[object]] = defaultdict(set)
        self.nodes: Set[object] = set()
        for rank_ops in schedule.ops:
            for op in rank_ops:
                self.nodes.add(self.node(op.op_id))
        for rank_ops in schedule.ops:
            for a, b in zip(rank_ops, rank_ops[1:]):
                self._edge(a.op_id, b.op_id)
        for send_id, recv_id in matches:
            self._edge(send_id, recv_id)

    def node(self, op_id: OpId) -> object:
        return self._super.get(op_id, op_id)

    def _edge(self, a: OpId, b: OpId) -> None:
        na, nb = self.node(a), self.node(b)
        if na != nb:
            self.adj[na].add(nb)

    def topo_cycle(self) -> List[object]:
        """Kahn's algorithm; on failure, one cycle among the leftovers."""
        indeg: Dict[object, int] = {n: 0 for n in self.nodes}
        for n, outs in self.adj.items():
            for m in outs:
                indeg[m] = indeg.get(m, 0) + 1
        queue = deque(n for n, d in indeg.items() if d == 0)
        seen = 0
        while queue:
            n = queue.popleft()
            seen += 1
            for m in self.adj.get(n, ()):
                indeg[m] -= 1
                if indeg[m] == 0:
                    queue.append(m)
        if seen == len(indeg):
            return []
        remaining = {n for n, d in indeg.items() if d > 0}
        # walk successors inside the remaining set until a node repeats
        start = next(iter(remaining))
        path, where = [], {}
        n = start
        while n not in where:
            where[n] = len(path)
            path.append(n)
            n = next(m for m in self.adj.get(n, ()) if m in remaining)
        return path[where[n]:]

    def reaches(self, src: object, dst: object) -> bool:
        if src == dst:
            return True
        seen = {src}
        queue = deque((src,))
        while queue:
            n = queue.popleft()
            for m in self.adj.get(n, ()):
                if m == dst:
                    return True
                if m not in seen:
                    seen.add(m)
                    queue.append(m)
        return False

    def render_node(self, node: object) -> List[str]:
        if isinstance(node, tuple) and len(node) == 2 \
                and node[0] == "coll" and isinstance(node[1], int):
            coll = self.schedule.collectives[node[1]]
            return [self.schedule.op(oid).describe() for oid in coll.op_ids]
        return [self.schedule.op(node).describe()]


def _describe_cycle(graph: _HbGraph, cycle: List[object]) -> str:
    lines = ["counterexample schedule (happens-before cycle):"]
    for node in cycle:
        for text in graph.render_node(node):
            lines.append(f"  {text}")
        lines.append("    v  (happens-before)")
    lines.append("  ... back to the first op")
    return "\n".join(lines)


def analyze_schedule(schedule: Schedule,
                     check_races: bool = True) -> HbReport:
    """Run every proof obligation against one schedule."""
    report = HbReport(label=schedule.label())
    findings = report.findings

    if schedule.matches is not None:
        matches = list(schedule.matches)
        matched_sends = {s for s, _ in matches}
        matched_recvs = {r for _, r in matches}
        orphan_sends = [
            op.op_id for op in schedule.all_ops()
            if (op.kind in P2P_SEND_KINDS or op.kind == "bcast_start")
            and op.op_id not in matched_sends
            # a zero-edge broadcast (single-member group: the root IS
            # the group, e.g. IR column bcasts on a 1-row grid) moves
            # no data and is trivially delivered
            and not (op.kind == "bcast_start" and not op.edges)
        ]
        # routed bcast_start ops match once per destination; only a
        # fully-unmatched one is an orphan, which the set logic above
        # already expresses.
        orphan_recvs = [
            op.op_id for op in schedule.all_ops()
            if op.kind == "recv" and op.op_id not in matched_recvs
        ]
    else:
        matches, orphan_sends, orphan_recvs = _static_matches(schedule)

    for op_id in orphan_sends:
        op = schedule.op(op_id)
        findings.append(HbFinding(
            rule="comm-orphan", severity="error",
            message=(
                f"send never received: {op.describe()}"
            ),
        ))
    for op_id in orphan_recvs:
        op = schedule.op(op_id)
        findings.append(HbFinding(
            rule="comm-orphan", severity="error",
            message=f"recv never satisfied (blocks forever): {op.describe()}",
        ))

    _check_collectives(schedule, findings)

    graph = _HbGraph(schedule, matches)
    cycle = graph.topo_cycle()
    if cycle:
        findings.append(HbFinding(
            rule="comm-deadlock", severity="error",
            message=(
                f"happens-before graph has a cycle through "
                f"{len(cycle)} op(s): deadlock"
            ),
            counterexample=_describe_cycle(graph, cycle),
        ))

    if check_races and not cycle:
        _check_races(schedule, matches, graph, findings)

    report.stats = {
        "ranks": schedule.num_ranks,
        "ops": schedule.num_ops,
        "matches": len(matches),
        "channels": len({
            _send_channel(schedule.op(s)) or
            (_recv_channel(schedule.op(r)))
            for s, r in matches
        }),
        "collectives": len(schedule.collectives),
        "hb_nodes": len(graph.nodes),
        "hb_edges": sum(len(v) for v in graph.adj.values()),
    }
    return report


def _check_collectives(schedule: Schedule,
                       findings: List[HbFinding]) -> None:
    """Member-list symmetry and reduce-root consistency.

    For extracted schedules the engine's matching already forces equal
    ``(members, key)`` — an asymmetric membership surfaces as a
    deadlock during extraction — but root consistency is *not* checked
    by the engine (it silently adopts an arbitrary member's root), so
    it is a genuine proof obligation here.  Hand-written schedules get
    the membership check too: collective posts of the same kind/key
    whose member sets intersect but differ are a mismatch."""
    for coll in schedule.collectives:
        if coll.kind == "reduce" and coll.roots:
            distinct = {r for r in coll.roots if r is not None}
            if len(distinct) > 1:
                ops = "\n".join(
                    schedule.op(oid).describe() for oid in coll.op_ids
                )
                findings.append(HbFinding(
                    rule="comm-collective", severity="error",
                    message=(
                        f"reduce #{coll.occurrence} on members "
                        f"{list(coll.members)} posted with conflicting "
                        f"roots {sorted(distinct)}"
                    ),
                    counterexample=(
                        "counterexample (conflicting reduce roots):\n"
                        + _indent(ops, "  ")
                    ),
                ))

    if schedule.matches is not None:
        return  # extraction already enforced membership symmetry

    # hand-written: group posts by (kind, key) and look for clashes
    posts: Dict[Tuple[str, Optional[str]], List[CommOp]] = defaultdict(list)
    for op in schedule.all_ops():
        if op.kind in COLLECTIVE_KINDS:
            posts[(op.kind, op.key)].append(op)
    for (kind, _key), ops in posts.items():
        groups: Dict[Tuple[int, ...], List[CommOp]] = defaultdict(list)
        for op in ops:
            groups[tuple(op.members or ())].append(op)
        members_list = list(groups)
        for i, a in enumerate(members_list):
            for b in members_list[i + 1:]:
                if a != b and set(a) & set(b):
                    ex = (
                        groups[a][0].describe() + "\n"
                        + groups[b][0].describe()
                    )
                    findings.append(HbFinding(
                        rule="comm-collective", severity="error",
                        message=(
                            f"{kind} posted with mismatched member lists "
                            f"{list(a)} vs {list(b)} (sets intersect: "
                            "participants disagree on the communicator)"
                        ),
                        counterexample=(
                            "counterexample (asymmetric membership):\n"
                            + _indent(ex, "  ")
                        ),
                    ))


def _check_races(schedule: Schedule, matches: Sequence[Tuple[OpId, OpId]],
                 graph: _HbGraph, findings: List[HbFinding]) -> None:
    """Two race criteria per wire channel (see module docstring)."""
    recv_of: Dict[Tuple[OpId, Channel], OpId] = {}
    by_channel: Dict[Channel, List[OpId]] = defaultdict(list)
    seen: Dict[Channel, Set[OpId]] = defaultdict(set)
    for send_id, recv_id in matches:
        recv = schedule.op(recv_id)
        ch = _recv_channel(recv)
        if ch is None:
            continue
        recv_of[(send_id, ch)] = recv_id
        if send_id not in seen[ch]:
            seen[ch].add(send_id)
            by_channel[ch].append(send_id)

    for ch, send_ids in by_channel.items():
        if len(send_ids) < 2:
            continue
        send_ids = sorted(send_ids)  # one sender per channel: program order
        sends = [schedule.op(s) for s in send_ids]

        # criterion (b): aliasing — distinct logical messages on one
        # wire, evidenced by differing payload sizes or by two
        # different *functions* feeding the same channel.
        sizes = {op.nbytes for op in sends if op.nbytes is not None}
        sites = {
            site for site in (_logical_site(op) for op in sends)
            if site is not None
        }
        if len(sizes) > 1 or len(sites) > 1:
            what = []
            if len(sizes) > 1:
                what.append(f"payload sizes {sorted(sizes)}")
            if len(sites) > 1:
                what.append(f"{len(sites)} distinct send sites")
            ex_lines = ["counterexample schedule (aliased wire channel):"]
            shown = sends if len(sends) <= 6 else sends[:6]
            for op in shown:
                ex_lines.append(f"  {op.describe()}")
                rid = recv_of.get((op.op_id, ch))
                if rid is not None:
                    ex_lines.append(
                        f"    matched by {schedule.op(rid).describe()}"
                    )
            if len(sends) > 6:
                ex_lines.append(f"  ... {len(sends) - 6} more on this wire")
            findings.append(HbFinding(
                rule="comm-race", severity="error",
                message=(
                    f"tag aliasing on channel src={ch[0]} dst={ch[1]} "
                    f"wire_tag={ch[2]}: {len(sends)} messages with "
                    + " and ".join(what)
                    + " share one wire — distinct logical messages can "
                    "match the wrong recv"
                ),
                counterexample="\n".join(ex_lines),
            ))
            continue  # aliasing subsumes the inflight check for this wire

        # criterion (a): channel reuse that is not happens-before
        # serialized means several messages can be in flight on one
        # wire at once.  With a transport guaranteeing per-channel FIFO
        # non-overtaking (the engine does; MPI does) the pairing is
        # still deterministic, so with uniform payload identity this is
        # a warning, not an error: the schedule's correctness *relies*
        # on that transport guarantee instead of its own ordering.
        for prev, nxt in zip(send_ids, send_ids[1:]):
            rid = recv_of.get((prev, ch))
            if rid is None:
                continue  # orphan already reported
            if not graph.reaches(graph.node(rid), graph.node(nxt)):
                p, n = schedule.op(prev), schedule.op(nxt)
                r = schedule.op(rid)
                findings.append(HbFinding(
                    rule="comm-race", severity="warning",
                    message=(
                        f"unserialized reuse of channel src={ch[0]} "
                        f"dst={ch[1]} wire_tag={ch[2]}: the second send "
                        "is not ordered after the first recv, so both "
                        "messages can be in flight — pairing relies on "
                        "transport FIFO non-overtaking"
                    ),
                    counterexample=(
                        "witness schedule (concurrent in-flight "
                        "messages on one wire):\n"
                        f"  {p.describe()}\n"
                        f"  {n.describe()}\n"
                        f"  no happens-before path from the matching recv\n"
                        f"  {r.describe()}\n"
                        f"  to the second send"
                    ),
                ))
                break  # one witness per channel is enough
