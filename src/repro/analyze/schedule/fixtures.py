"""Known-bad schedules the verifier must keep rejecting.

Three kinds of regression material live here:

* ``laswp-aliasing`` — a *runnable* reimplementation of the pre-PR-2
  per-column LASWP exchange (see
  ``tests/fixtures/analyze/laswp_tag_aliasing.py`` for the shipped
  protocol this mirrors).  The wire tag is derived as
  ``_tag(k, 7, j) + span_idx``, which aliases the neighbouring
  column's window: ``_tag(k, 7, j) + span == _tag(k, 7, j + span)``.
  Driven with row spans of unequal width, column ``j``'s span-1
  message and column ``j+1``'s span-0 message share one wire between
  the same rank pair while carrying different payloads — the verifier
  must report it as a ``comm-race`` tag-aliasing error.
* ``deadlock`` / ``race`` — hand-written schedules exercising the
  happens-before builder directly (no extraction involved): a classic
  recv-before-send cycle, and two distinct logical messages on one
  wire.
* ``collective-mismatch`` — participants posting one barrier with
  disagreeing member lists.

Every fixture returns a :class:`~repro.analyze.schedule.model.Schedule`
so the CLI and the tests feed them through the same
:func:`~repro.analyze.schedule.hb.analyze_schedule` entry point.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.analyze.schedule.extract import extract_factory
from repro.analyze.schedule.model import CommOp, Schedule
from repro.comm.vmpi import RankComm
from repro.simulate.events import Barrier

# the FP64-HPL wire-tag window (mirrors core/hpl_dist.py)
_TAG_BASE = 1 << 24
_TAG_SWAP_COL = 7

#: row spans of *unequal* width: the aliased wire then carries
#: different payload sizes, which is what makes the bug observable to
#: the verifier (and what made it corrupt trailing panels in practice)
_SPANS = ((0, 2), (4, 8))


def _tag(k: int, phase: int, j: int = 0) -> int:
    return _TAG_BASE + (k * 8 + phase) * 4096 + j


def _laswp_rank_program(rank: int, k: int = 0, b: int = 4):
    """The old per-column interchange protocol on a 2-row grid.

    Every column crosses process rows (owner_a = rank 0's row,
    owner_b = rank 1's), as a fully off-diagonal pivot sequence would.
    """
    comm = RankComm(rank)
    for j in range(b):
        for span_idx, (lo, hi) in enumerate(_SPANS):
            seg = np.zeros(hi - lo, dtype=np.float64)
            # the bug under test: the span offset escapes the formula
            tag = _tag(k, _TAG_SWAP_COL, j) + span_idx  # lint: ignore[tag-space]
            if rank == 0:
                yield from comm.send(1, seg, tag)
                yield from comm.recv(1, tag)
            else:
                yield from comm.recv(0, tag)
                yield from comm.send(0, seg, tag)
    yield Barrier((0, 1))


def laswp_aliasing_schedule() -> Schedule:
    """Extract the pre-PR-2 LASWP protocol (it runs to completion —
    the bug is silent cross-delivery, not a deadlock)."""
    result = extract_factory(
        2, _laswp_rank_program,
        meta={"program": "fixture:laswp-aliasing", "p_rows": 2, "p_cols": 1},
    )
    if not result.completed:
        raise AssertionError(
            f"laswp fixture failed to extract: {result.error}"
        )
    return result.schedule


def deadlock_schedule() -> Schedule:
    """Two ranks that each recv before they send: a wait-for cycle."""
    sched = Schedule(
        num_ranks=2, meta={"program": "fixture:deadlock"}, ops=[[], []],
    )
    wire = 7 * 1024
    sched.ops[0] = [
        CommOp(rank=0, seq=0, kind="recv", peer=1, wire_tag=wire),
        CommOp(rank=0, seq=1, kind="send", peer=1, wire_tag=wire, nbytes=8),
    ]
    sched.ops[1] = [
        CommOp(rank=1, seq=0, kind="recv", peer=0, wire_tag=wire),
        CommOp(rank=1, seq=1, kind="send", peer=0, wire_tag=wire, nbytes=8),
    ]
    return sched


def race_schedule() -> Schedule:
    """One wire carrying two distinct logical messages back to back:
    a 64-byte pivot row and a 8-byte flag share the tag."""
    sched = Schedule(
        num_ranks=2, meta={"program": "fixture:race"}, ops=[[], []],
    )
    wire = 3 * 1024
    sched.ops[0] = [
        CommOp(rank=0, seq=0, kind="send", peer=1, wire_tag=wire, nbytes=64,
               sites=(("fixture.py", 10, "send_pivot_row"),)),
        CommOp(rank=0, seq=1, kind="send", peer=1, wire_tag=wire, nbytes=8,
               sites=(("fixture.py", 20, "send_done_flag"),)),
    ]
    sched.ops[1] = [
        CommOp(rank=1, seq=0, kind="recv", peer=0, wire_tag=wire),
        CommOp(rank=1, seq=1, kind="recv", peer=0, wire_tag=wire),
    ]
    return sched


def collective_mismatch_schedule() -> Schedule:
    """Three ranks disagreeing on a barrier's member list."""
    sched = Schedule(
        num_ranks=3, meta={"program": "fixture:collective-mismatch"},
        ops=[[], [], []],
    )
    sched.ops[0] = [
        CommOp(rank=0, seq=0, kind="barrier", members=(0, 1, 2)),
    ]
    sched.ops[1] = [
        CommOp(rank=1, seq=0, kind="barrier", members=(0, 1)),
    ]
    sched.ops[2] = [
        CommOp(rank=2, seq=0, kind="barrier", members=(0, 1, 2)),
    ]
    return sched


FIXTURES: Dict[str, Callable[[], Schedule]] = {
    "laswp-aliasing": laswp_aliasing_schedule,
    "deadlock": deadlock_schedule,
    "race": race_schedule,
    "collective-mismatch": collective_mismatch_schedule,
}
