"""Opt-in runtime precision sanitizer (``REPRO_SANITIZE=1``).

The static checkers prove the *structure* of the precision flow; this
module enforces the same contracts dynamically.  When the environment
variable ``REPRO_SANITIZE`` is truthy, :func:`repro.blas.shim.get_shim`
returns a :class:`SanitizedBlasShim` whose every operation asserts the
dtype and finiteness contracts of the mixed-precision algorithm:

- ``gemm_update``: C resident in FP32; A/B finite and within the FP16
  range (or already FP16); the updated C finite afterwards;
- ``getrf``: square finite input, finite factors out (a blown-up
  unpivoted factorization surfaces here, not three phases later);
- ``trsm``/``trsv``: finite triangular factors and right-hand sides,
  finite solutions;
- ``gemv``/``gemv_update``: finite tiles and vectors in the FP64
  residual regeneration, finite products out.

Violations raise :class:`repro.errors.SanitizerError` with the
operation name and the offending operand, so a CI shard run with
``REPRO_SANITIZE=1`` turns silent numerical corruption into a pointed
test failure.  Overhead is one ``isfinite`` reduction per operand —
fine for tests, which is why it is opt-in.
"""

from __future__ import annotations

import os

import numpy as np

from repro.blas.shim import BlasShim
from repro.errors import SanitizerError
from repro.precision.types import FP16, FP32

SANITIZE_ENV = "REPRO_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}

#: largest finite FP16 magnitude (values above round to inf in the cast)
_FP16_MAX = float(np.finfo(np.float16).max)


def sanitize_enabled(env=None) -> bool:
    """Whether the runtime sanitizer is switched on via the environment."""
    value = (env if env is not None else os.environ).get(SANITIZE_ENV, "")
    return value.strip().lower() in _TRUTHY


class SanitizedBlasShim(BlasShim):
    """A :class:`BlasShim` that asserts precision contracts per call.

    Drop-in: same constructor and dispatch surface; adds
    :attr:`checks_run` so tests can assert the sanitizer was active.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        #: number of operand/result assertions executed
        self.checks_run = 0

    # -- assertions -------------------------------------------------------

    def _require_finite(self, op: str, name: str, arr) -> None:
        if not isinstance(arr, np.ndarray):
            return  # phantom payloads carry no data to check
        self.checks_run += 1
        if not np.isfinite(arr).all():
            bad = int((~np.isfinite(arr)).sum())
            raise SanitizerError(
                f"sanitizer[{op}]: operand {name} contains {bad} "
                f"non-finite value(s) (shape {arr.shape}, "
                f"dtype {arr.dtype})"
            )

    def _require_fp16_safe(self, op: str, name: str, arr) -> None:
        if not isinstance(arr, np.ndarray) or arr.dtype == FP16.dtype:
            return
        self.checks_run += 1
        overflow = np.abs(arr) > _FP16_MAX
        if overflow.any():
            worst = float(np.max(np.abs(np.where(overflow, arr, 0.0))))
            raise SanitizerError(
                f"sanitizer[{op}]: operand {name} has "
                f"{int(overflow.sum())} value(s) above the FP16 max "
                f"({_FP16_MAX:.0f}); largest is {worst:.6g} — the down-"
                "cast would silently produce inf"
            )

    def _require_dtype(self, op: str, name: str, arr, dtype) -> None:
        if not isinstance(arr, np.ndarray):
            return
        self.checks_run += 1
        if arr.dtype != dtype:
            raise SanitizerError(
                f"sanitizer[{op}]: operand {name} must be {dtype}, "
                f"got {arr.dtype}"
            )

    # -- sanitized dispatch ----------------------------------------------

    def gemm_update(self, c, a, b):
        self._require_dtype("gemm", "C", c, FP32.dtype)
        for name, arr in (("A", a), ("B", b)):
            self._require_finite("gemm", name, arr)
            self._require_fp16_safe("gemm", name, arr)
        out = super().gemm_update(c, a, b)
        self._require_finite("gemm", "C (updated)", out)
        return out

    def getrf(self, a):
        if isinstance(a, np.ndarray) and a.ndim == 2 \
                and a.shape[0] != a.shape[1]:
            raise SanitizerError(
                f"sanitizer[getrf]: diagonal block must be square, "
                f"got {a.shape}"
            )
        self._require_finite("getrf", "A", a)
        out = super().getrf(a)
        self._require_finite("getrf", "LU (factored)", out)
        return out

    def trsm(self, side, uplo, t, b):
        self._require_finite("trsm", "T", t)
        self._require_finite("trsm", "B", b)
        out = super().trsm(side, uplo, t, b)
        self._require_finite("trsm", "X (solution)", out)
        return out

    def trsv_lower_unit(self, t, x):
        self._require_finite("trsv", "T", t)
        self._require_finite("trsv", "x", x)
        out = super().trsv_lower_unit(t, x)
        self._require_finite("trsv", "y (solution)", out)
        return out

    def trsv_upper(self, t, x):
        self._require_finite("trsv", "T", t)
        self._require_finite("trsv", "x", x)
        out = super().trsv_upper(t, x)
        self._require_finite("trsv", "y (solution)", out)
        return out

    def gemv(self, a, x):
        self._require_finite("gemv", "A", a)
        self._require_finite("gemv", "x", x)
        out = super().gemv(a, x)
        self._require_finite("gemv", "y (product)", out)
        return out

    def gemv_update(self, y, a, x):
        self._require_finite("gemv", "A", a)
        self._require_finite("gemv", "x", x)
        out = super().gemv_update(y, a, x)
        self._require_finite("gemv", "y (updated)", out)
        return out
