"""The finding model shared by every checker.

A :class:`Finding` is one diagnosed problem at a source location.  Its
*fingerprint* deliberately excludes the line number so that unrelated
edits above a known-accepted finding do not invalidate the baseline;
the (checker, file, message) triple is stable as long as the flagged
code itself is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePath


class Severity:
    """Severity levels, ordered: ``error`` > ``warning`` > ``info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {ERROR: 2, WARNING: 1, INFO: 0}

    @classmethod
    def rank(cls, severity: str) -> int:
        """Numeric rank for sorting (unknown severities sort lowest)."""
        return cls._ORDER.get(severity, -1)


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem at a source location."""

    checker: str
    path: str
    line: int
    message: str
    severity: str = Severity.ERROR
    col: int = 0
    #: free-form extra context (function name, tag expression, ...)
    context: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        # Normalize to forward slashes so baselines are OS-independent.
        object.__setattr__(
            self, "path", PurePath(self.path).as_posix()
        )

    @property
    def fingerprint(self) -> tuple:
        """Line-independent identity used for baseline matching."""
        return (self.checker, self.path, self.message)

    def format(self) -> str:
        """Human-readable one-liner, ``file:line:col: sev [id] msg``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.checker}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation (stable key order)."""
        out = {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }
        if self.context:
            out["context"] = dict(self.context)
        return out


def sort_findings(findings) -> list:
    """Deterministic report order: path, line, severity rank, checker."""
    return sorted(
        findings,
        key=lambda f: (
            f.path, f.line, -Severity.rank(f.severity), f.checker, f.message
        ),
    )
