"""Implementation of the ``repro lint`` subcommand.

Kept out of :mod:`repro.cli` so the top-level CLI module stays a thin
argparse surface; exit codes follow the usual linter convention:

- 0 — clean (possibly via baseline);
- 1 — findings (or unparsable sources);
- 2 — usage error (unknown checker id, unreadable baseline).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analyze.checkers import all_checkers
from repro.analyze.framework import Baseline, run_analysis

#: baseline used when ``--baseline`` is not given and the file exists
DEFAULT_BASELINE = ".lint-baseline.json"


def add_lint_parser(sub) -> None:
    """Register the ``lint`` subparser on an argparse ``sub``-parsers."""
    p = sub.add_parser(
        "lint",
        help="static analysis: precision-flow, tag-space, collectives...",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src); .json files "
        "are validated as Chrome-trace artifacts",
    )
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default text)")
    p.add_argument("--out", default=None,
                   help="also write the JSON report to a file")
    p.add_argument("--baseline", default=None,
                   help=f"baseline file (default: {DEFAULT_BASELINE} "
                   "when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="write all current findings to the baseline file "
                   "and exit 0")
    p.add_argument("--select", default=None,
                   help="comma-separated checker ids to run")
    p.add_argument("--changed", action="store_true",
                   help="restrict the given paths to files touched in "
                   "the working tree (git diff vs HEAD plus untracked)")
    p.add_argument("--list", action="store_true", dest="list_checkers",
                   help="list available checkers and exit")
    p.add_argument("--require-layers", action="store_true",
                   help="trace-schema: require engine/executor/comm spans")
    p.set_defaults(func=cmd_lint)


def _changed_files(paths):
    """Files under ``paths`` touched in the working tree, or ``None``
    when git is unavailable (callers fall back to analyzing everything).

    "Touched" = modified/added vs ``HEAD`` plus untracked-but-not-ignored;
    deleted files are skipped (nothing left to analyze)."""
    import os
    import subprocess

    def _git(*argv):
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        ).stdout

    try:
        top = Path(_git("rev-parse", "--show-toplevel").strip())
        listed = (
            _git("diff", "--name-only", "HEAD")
            + _git("ls-files", "--others", "--exclude-standard")
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    scopes = [Path(p).resolve() for p in paths]
    keep = []
    for line in sorted(set(listed.splitlines())):
        if not line.strip():
            continue
        full = (top / line).resolve()
        if not full.exists():
            continue
        if any(full == s or s in full.parents for s in scopes):
            keep.append(os.path.relpath(full))
    return keep


def _resolve_baseline(args):
    if args.no_baseline:
        return None, None
    path = args.baseline
    if path is None:
        path = DEFAULT_BASELINE if Path(DEFAULT_BASELINE).exists() else None
        if path is None:
            return None, DEFAULT_BASELINE
    elif not Path(path).exists():
        # An explicit baseline path may not exist yet when updating.
        return None, path
    return Baseline.load(path), path


def cmd_lint(args) -> int:
    """Run the analysis suite; see module docstring for exit codes."""
    checkers = all_checkers(require_layers=args.require_layers)
    if args.list_checkers:
        for c in checkers:
            print(f"  {c.id:>20}  {c.description}")
        return 0
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select else None
    )
    try:
        baseline, baseline_path = _resolve_baseline(args)
    except (ValueError, OSError) as exc:
        print(f"lint: cannot load baseline: {exc}", file=sys.stderr)
        return 2

    paths = args.paths
    if args.changed:
        changed = _changed_files(paths)
        if changed is None:
            print("lint: --changed needs a git checkout; analyzing all "
                  "given paths", file=sys.stderr)
        elif not changed:
            print("lint: --changed: no modified files under the given paths")
            return 0
        else:
            paths = changed

    try:
        report = run_analysis(
            paths, checkers=checkers, baseline=baseline, select=select
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        from repro.analyze.framework import Baseline as _B

        merged = _B.from_findings(report.findings + report.baselined)
        merged.save(target)
        print(f"lint: wrote {len(merged)} accepted finding(s) to {target}")
        return 0

    doc = report.to_dict()
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        for path, err in report.parse_errors:
            print(f"{path}:0:0: error [parse] {err}")
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"lint: {report.files_checked} file(s), "
            f"{len(report.findings)} finding(s)"
        )
        if report.baselined:
            summary += f", {len(report.baselined)} baselined"
        if baseline is not None:
            summary += f" (baseline: {baseline_path})"
        print(summary)
    return 0 if report.ok else 1
