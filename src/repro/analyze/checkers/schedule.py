"""Lint surface of the communication-schedule verifier.

Three checkers expose :mod:`repro.analyze.schedule` through
``repro lint``:

- ``comm-schedule`` (:class:`CommScheduleChecker`) — extracts the
  schedule for a small default configuration matrix and reports
  deadlocks, orphan messages, and collective asymmetry;
- ``comm-race`` (:class:`CommRaceChecker`) — same extraction, reports
  the race findings (tag aliasing, unserialized channel reuse);
- ``trace-conformance`` (:class:`TraceConformanceChecker`) — an
  artifact checker claiming exported Chrome traces with provenance and
  replaying them against the extracted static schedule.

Extraction actually runs the rank programs, so the two program
checkers only fire when explicitly ``--select``-ed or when comm/core/
simulate sources are part of the analyzed set (editing those layers is
what can break the schedule).  The default matrix is deliberately
tiny — the full grid sweep lives in ``repro verify-comm`` and CI.
One extraction pass is shared between both checkers via a module-level
memo keyed by the case matrix.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker, ProgramChecker

#: editing any of these layers can change the communication schedule
_TRIGGER_PARTS = (
    ("repro", "comm"),
    ("repro", "core"),
    ("repro", "simulate"),
)

#: the default lint-time proof matrix: smallest interesting grids, the
#: tree broadcast plus one ring variant, routed and inband progression
_DEFAULT_CASES: Tuple[dict, ...] = (
    {"program": "hplai", "p_rows": 2, "p_cols": 2, "bcast": "bcast",
     "progression": "routed", "lookahead": True, "n": 128, "block": 32},
    {"program": "hplai", "p_rows": 2, "p_cols": 3, "bcast": "ring2m",
     "progression": "inband", "lookahead": False, "n": 192, "block": 32},
    {"program": "hpl", "p_rows": 2, "p_cols": 2, "n": 64, "block": 8},
)

#: one extraction+analysis pass per process, shared by both checkers
_memo: Dict[Tuple, List] = {}


def _default_reports():
    """Extract and analyze the default case matrix (memoized)."""
    key = tuple(sorted(str(sorted(c.items())) for c in _DEFAULT_CASES))
    if key not in _memo:
        from repro.analyze.schedule.extract import ScheduleCase, extract_case
        from repro.analyze.schedule.hb import analyze_schedule

        reports = []
        for desc in _DEFAULT_CASES:
            case = ScheduleCase(**desc)
            result = extract_case(case)
            if not result.completed:
                reports.append((case, result, None))
            else:
                reports.append((case, result, analyze_schedule(result.schedule)))
        _memo[key] = reports
    return _memo[key]


def _triggered(py_files: Sequence[str]) -> bool:
    for path in py_files:
        parts = Path(path).parts
        for layer in _TRIGGER_PARTS:
            for i in range(len(parts) - len(layer) + 1):
                if tuple(parts[i:i + len(layer)]) == layer:
                    return True
    return False


def _site_of(finding_text: str, default: str) -> Tuple[str, int]:
    """Best-effort source attribution: the first ``file:line`` yield
    site mentioned in a counterexample, else the default path."""
    for token in finding_text.split():
        if token.count(":") == 1 and token.endswith(tuple("0123456789")):
            file, _, line = token.partition(":")
            if file.endswith(".py"):
                try:
                    return file, int(line)
                except ValueError:
                    continue
    return default, 0


class _ScheduleCheckerBase(ProgramChecker):
    #: which HbFinding rules this lint checker surfaces
    rules: Tuple[str, ...] = ()

    def triggered_by(self, py_files: Sequence[str]) -> bool:
        return _triggered(py_files)

    def check_program(self, py_files: Sequence[str]) -> Iterable[Finding]:
        for case, result, report in _default_reports():
            label = case.label()
            if report is None:
                if "comm-schedule" in self.rules or not self.rules:
                    path, line = "src/repro/core", 0
                    yield Finding(
                        checker=self.id, path=path, line=line,
                        message=(
                            f"schedule extraction failed for {label}: "
                            f"{result.error or 'deadlock'}"
                        ),
                        severity=Severity.ERROR,
                    )
                continue
            for hb in report.findings:
                if hb.rule not in self.rules:
                    continue
                path, line = _site_of(
                    hb.counterexample or hb.message, "src/repro/core",
                )
                message = f"[{label}] {hb.message}"
                if hb.counterexample:
                    message += "\n" + hb.counterexample
                yield Finding(
                    checker=self.id, path=path, line=line, message=message,
                    severity=(
                        Severity.ERROR if hb.severity == "error"
                        else Severity.WARNING
                    ),
                )


class CommScheduleChecker(_ScheduleCheckerBase):
    """Deadlock-freedom, matching, and collective symmetry proofs."""

    id = "comm-schedule"
    description = (
        "extract the communication schedule for small grids and prove "
        "deadlock freedom, send/recv matching, collective symmetry"
    )
    rules = ("comm-deadlock", "comm-orphan", "comm-collective")


class CommRaceChecker(_ScheduleCheckerBase):
    """Message-race detection over the same extracted schedules."""

    id = "comm-race"
    description = (
        "detect wire-tag aliasing and unserialized channel reuse in the "
        "extracted communication schedule"
    )
    rules = ("comm-race",)


class TraceConformanceChecker(ArtifactChecker):
    """Replay an exported trace against the static schedule."""

    id = "trace-conformance"
    description = (
        "check a recorded trace (Chrome JSON with provenance) against "
        "the extracted static communication schedule"
    )

    def matches(self, path: str) -> bool:
        # a Chrome trace opens with "traceEvents"; the provenance block
        # rides at the end inside "otherData"
        if not path.endswith(".json"):
            return False
        try:
            with Path(path).open("rb") as fh:
                head = fh.read(4096)
                fh.seek(0, 2)
                size = fh.tell()
                fh.seek(max(0, size - 4096))
                tail = fh.read()
        except OSError:
            return False
        return b'"traceEvents"' in head and b'"provenance"' in (head + tail)

    def check_file(self, path: str) -> Iterable[Finding]:
        from repro.analyze.schedule.conformance import conformance_from_trace
        from repro.errors import ReproError

        try:
            report = conformance_from_trace(path)
        except (ReproError, ValueError, OSError, json.JSONDecodeError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                message=f"conformance replay failed: {exc}",
                severity=Severity.ERROR,
            )
            return
        for issue in report.issues:
            yield Finding(
                checker=self.id, path=path, line=0,
                message=f"[{report.label}] {issue.message}",
                severity=(
                    Severity.ERROR if issue.severity == "error"
                    else Severity.WARNING
                ),
            )
