"""``campaign-store``: validate campaign store rows and exports.

Same pattern as the scenario/health schema checkers: the validation
lives with the owning layer (:func:`repro.campaign.store.check_result_row`
— which round-trips the embedded job through the campaign DSL), and
this adapter makes ``repro lint store.jsonl --select campaign-store``
the CI entry point.  It claims:

- ``.jsonl`` files whose rows carry ``repro.campaign.result/v1``;
- ``.json`` files that are either a single result row or a
  ``repro.campaign.store/v1`` export (``{"schema": ..., "rows": [...]}``).
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker
from repro.campaign.jobs import RESULT_SCHEMA
from repro.campaign.store import STORE_SCHEMA, check_result_row


def _looks_campaign(doc) -> bool:
    return isinstance(doc, dict) and str(doc.get("schema", "")).startswith(
        "repro.campaign."
    )


def check_store_document(doc) -> List[str]:
    """Problem strings for a store export or single row (empty = valid)."""
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") == RESULT_SCHEMA:
        return check_result_row(doc)
    if doc.get("schema") == STORE_SCHEMA:
        rows = doc.get("rows")
        if not isinstance(rows, list):
            return ["'rows' list is missing"]
        problems = []
        for i, row in enumerate(rows):
            problems.extend(f"rows[{i}]: {p}" for p in check_result_row(row))
        return problems
    return [
        f"schema must be {RESULT_SCHEMA!r} or {STORE_SCHEMA!r}, "
        f"got {doc.get('schema')!r}"
    ]


class CampaignStoreChecker(ArtifactChecker):
    id = "campaign-store"
    description = (
        "campaign store rows/exports validate against repro.campaign.result/v1"
    )

    def matches(self, path: str) -> bool:
        return path.endswith((".json", ".jsonl"))

    def check_file(self, path: str) -> Iterable[Finding]:
        if path.endswith(".jsonl"):
            yield from self._check_jsonl(path)
            return
        from repro.analyze.checkers.trace_schema import load_strict_json

        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        if not _looks_campaign(doc):
            return
        for problem in check_store_document(doc):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )

    def _check_jsonl(self, path: str) -> Iterable[Finding]:
        try:
            lines = open(path).read().splitlines()
        except OSError as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=f"unreadable: {exc}",
            )
            return
        for i, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                yield Finding(
                    checker=self.id, path=path, line=i,
                    severity=Severity.ERROR,
                    message=f"row is not valid JSON: {exc}",
                )
                continue
            if not _looks_campaign(row):
                continue
            for problem in check_result_row(row):
                yield Finding(
                    checker=self.id, path=path, line=i,
                    severity=Severity.ERROR, message=problem,
                )
