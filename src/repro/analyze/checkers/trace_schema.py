"""``trace-schema``: validate exported Chrome-trace JSON artifacts.

The library-level home of what ``scripts/check_trace_schema.py`` used
to implement standalone (the script is now a thin shim over this
module).  :func:`check_trace` validates a parsed trace document;
:class:`TraceSchemaChecker` adapts it to the :mod:`repro.analyze`
framework so ``repro lint trace.json`` is the single entry point.

Checks (see docs/OBSERVABILITY.md):

- the file is *strict* JSON (no bare NaN/Infinity tokens);
- top level is an object with a ``traceEvents`` list and an
  ``otherData`` object carrying the schema version;
- every event has ``name``/``ph``/``pid``/``tid``, phases are ``X``
  (complete span), ``M`` (metadata) or ``C`` (counter), and ``X``
  events carry a category plus non-negative ``ts``/``dur``
  microsecond numbers;
- with ``require_layers``, spans from the ``engine``, ``executor`` and
  ``comm`` layers must all be present (what any instrumented benchmark
  run produces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker

#: layers an instrumented benchmark run must emit spans from
REQUIRED_LAYERS = ("engine", "executor", "comm")

VALID_PHASES = {"X", "M", "C"}


def _fail_on_constant(token):
    raise ValueError(f"non-strict JSON token {token!r}")


def check_trace(doc: dict, require_layers: bool = False) -> List[str]:
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' list is missing"]
    other = doc.get("otherData")
    if not isinstance(other, dict):
        problems.append("top-level 'otherData' object is missing")
    elif not isinstance(other.get("schema"), int):
        problems.append("otherData.schema version (int) is missing")

    cats = set()
    span_count = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key, types in (("name", str), ("ph", str),
                           ("pid", int), ("tid", int)):
            if not isinstance(ev.get(key), types):
                problems.append(f"{where}: missing/invalid {key!r}")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            problems.append(
                f"{where}: phase {ph!r} not in {sorted(VALID_PHASES)}"
            )
        if ph == "X":
            span_count += 1
            if not isinstance(ev.get("cat"), str):
                problems.append(f"{where}: span missing 'cat'")
            else:
                cats.add(ev["cat"])
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(
                        f"{where}: {key!r} must be a non-negative number, "
                        f"got {val!r}"
                    )
            if "args" in ev and not isinstance(ev["args"], dict):
                problems.append(f"{where}: 'args' must be an object")

    if span_count == 0:
        problems.append("trace contains no 'X' (complete span) events")
    if require_layers:
        missing = [c for c in REQUIRED_LAYERS if c not in cats]
        if missing:
            problems.append(
                f"missing spans from required layer(s): {', '.join(missing)} "
                f"(found categories: {sorted(cats) or 'none'})"
            )
    return problems


def load_strict_json(path: str):
    """Parse ``path`` as strict JSON (bare NaN/Infinity are rejected)."""
    return json.loads(
        Path(path).read_text(), parse_constant=_fail_on_constant
    )


class TraceSchemaChecker(ArtifactChecker):
    id = "trace-schema"
    description = "exported Chrome-trace JSON matches the documented schema"

    def __init__(self, require_layers: bool = False):
        self.require_layers = require_layers

    def matches(self, path: str) -> bool:
        return path.endswith(".json")

    def check_file(self, path: str) -> Iterable[Finding]:
        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        for problem in check_trace(doc, require_layers=self.require_layers):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )
