"""``trace-schema`` / ``profile-schema``: validate exported JSON artifacts.

The library-level home of what ``scripts/check_trace_schema.py`` used
to implement standalone (the script is now a thin shim over this
module).  :func:`check_trace` validates a parsed trace document;
:class:`TraceSchemaChecker` adapts it to the :mod:`repro.analyze`
framework so ``repro lint trace.json`` is the single entry point.
:func:`check_profile_report` / :class:`ProfileReportChecker` do the
same for ``repro profile --format json`` reports
(:data:`~repro.obs.analysis.report.PROFILE_SCHEMA`); each checker
recognizes and skips the other's documents, so both can run in the
default suite over a mixed artifact set.

Checks (see docs/OBSERVABILITY.md):

- the file is *strict* JSON (no bare NaN/Infinity tokens);
- top level is an object with a ``traceEvents`` list and an
  ``otherData`` object carrying the schema version;
- every event has ``name``/``ph``/``pid``/``tid``, phases are ``X``
  (complete span), ``M`` (metadata) or ``C`` (counter), and ``X``
  events carry a category plus non-negative ``ts``/``dur``
  microsecond numbers;
- with ``require_layers``, spans from the ``engine``, ``executor`` and
  ``comm`` layers must all be present (what any instrumented benchmark
  run produces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker
from repro.obs.analysis.report import PROFILE_SCHEMA

#: layers an instrumented benchmark run must emit spans from
REQUIRED_LAYERS = ("engine", "executor", "comm")

VALID_PHASES = {"X", "M", "C"}


def _is_profile_doc(doc) -> bool:
    return isinstance(doc, dict) and doc.get("schema") == PROFILE_SCHEMA


def _fail_on_constant(token):
    raise ValueError(f"non-strict JSON token {token!r}")


def check_trace(doc: dict, require_layers: bool = False) -> List[str]:
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' list is missing"]
    other = doc.get("otherData")
    if not isinstance(other, dict):
        problems.append("top-level 'otherData' object is missing")
    elif not isinstance(other.get("schema"), int):
        problems.append("otherData.schema version (int) is missing")

    cats = set()
    span_count = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key, types in (("name", str), ("ph", str),
                           ("pid", int), ("tid", int)):
            if not isinstance(ev.get(key), types):
                problems.append(f"{where}: missing/invalid {key!r}")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            problems.append(
                f"{where}: phase {ph!r} not in {sorted(VALID_PHASES)}"
            )
        if ph == "X":
            span_count += 1
            if not isinstance(ev.get("cat"), str):
                problems.append(f"{where}: span missing 'cat'")
            else:
                cats.add(ev["cat"])
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(
                        f"{where}: {key!r} must be a non-negative number, "
                        f"got {val!r}"
                    )
            if "args" in ev and not isinstance(ev["args"], dict):
                problems.append(f"{where}: 'args' must be an object")

    if span_count == 0:
        problems.append("trace contains no 'X' (complete span) events")
    if require_layers:
        missing = [c for c in REQUIRED_LAYERS if c not in cats]
        if missing:
            problems.append(
                f"missing spans from required layer(s): {', '.join(missing)} "
                f"(found categories: {sorted(cats) or 'none'})"
            )
    return problems


def load_strict_json(path: str):
    """Parse ``path`` as strict JSON (bare NaN/Infinity are rejected)."""
    return json.loads(
        Path(path).read_text(), parse_constant=_fail_on_constant
    )


class TraceSchemaChecker(ArtifactChecker):
    id = "trace-schema"
    description = "exported Chrome-trace JSON matches the documented schema"

    def __init__(self, require_layers: bool = False):
        self.require_layers = require_layers

    def matches(self, path: str) -> bool:
        return path.endswith(".json")

    def check_file(self, path: str) -> Iterable[Finding]:
        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        if _is_profile_doc(doc):
            # ProfileReportChecker's document, not a trace.
            return
        from repro.analyze.checkers.health_schema import _is_health_doc

        if _is_health_doc(doc):
            # HealthReportChecker's document, not a trace.
            return
        from repro.analyze.checkers.scenario_schema import _is_scenario_doc

        if _is_scenario_doc(doc):
            # ScenarioChecker's document, not a trace.
            return
        from repro.analyze.checkers.fleet_schema import _is_fleet_doc

        if _is_fleet_doc(doc):
            # FleetSchemaChecker's document, not a trace.
            return
        for problem in check_trace(doc, require_layers=self.require_layers):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )


def check_profile_report(doc) -> List[str]:
    """Validate a ``repro profile --format json`` document.

    Returns a list of problem strings (empty = valid).
    """
    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema must be {PROFILE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    elapsed = doc.get("elapsed_s")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        problems.append("'elapsed_s' must be a non-negative number")
    num_ranks = doc.get("num_ranks")
    if not isinstance(num_ranks, int) or num_ranks < 1:
        problems.append("'num_ranks' must be a positive int")
    if not isinstance(doc.get("num_spans"), int):
        problems.append("'num_spans' must be an int")

    path_sec = doc.get("critical_path")
    if not isinstance(path_sec, dict):
        problems.append("'critical_path' object is missing")
    else:
        cov = path_sec.get("coverage")
        if not isinstance(cov, (int, float)) or not 0 <= cov <= 1:
            problems.append("critical_path.coverage must be in [0, 1]")
        if not isinstance(path_sec.get("phase_seconds"), dict):
            problems.append("critical_path.phase_seconds object is missing")

    imb = doc.get("imbalance")
    if not isinstance(imb, dict):
        problems.append("'imbalance' object is missing")
    else:
        ranks = imb.get("ranks")
        if not isinstance(ranks, list):
            problems.append("imbalance.ranks list is missing")
        elif isinstance(num_ranks, int) and len(ranks) != num_ranks:
            problems.append(
                f"imbalance.ranks has {len(ranks)} entries for "
                f"{num_ranks} ranks"
            )
        if not isinstance(imb.get("phases"), list):
            problems.append("imbalance.phases list is missing")
        if not isinstance(imb.get("stragglers"), list):
            problems.append("imbalance.stragglers list is missing")

    comm = doc.get("comm")
    if not isinstance(comm, dict):
        problems.append("'comm' object is missing")
    else:
        for key in ("total_bytes", "total_messages"):
            val = comm.get(key)
            if not isinstance(val, int) or val < 0:
                problems.append(f"comm.{key} must be a non-negative int")
        if not isinstance(comm.get("bytes_by_phase"), dict):
            problems.append("comm.bytes_by_phase object is missing")
        if not isinstance(comm.get("top_pairs"), list):
            problems.append("comm.top_pairs list is missing")

    phase_seconds = doc.get("phase_seconds")
    if not isinstance(phase_seconds, dict):
        problems.append("'phase_seconds' object is missing")
    elif not all(
        isinstance(v, (int, float)) for v in phase_seconds.values()
    ):
        problems.append("phase_seconds values must be numbers")

    dev = doc.get("deviation")
    if dev is not None:
        if not isinstance(dev, dict) or not isinstance(
            dev.get("phases"), list
        ):
            problems.append("deviation.phases list is missing")
        else:
            for i, p in enumerate(dev["phases"]):
                if not isinstance(p, dict) or not isinstance(
                    p.get("phase"), str
                ):
                    problems.append(f"deviation.phases[{i}] is malformed")
                    break
    return problems


class ProfileReportChecker(ArtifactChecker):
    id = "profile-schema"
    description = (
        "repro profile JSON reports match the documented schema"
    )

    def matches(self, path: str) -> bool:
        return path.endswith(".json")

    def check_file(self, path: str) -> Iterable[Finding]:
        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        # A document is "ours" when it claims the profile schema, or
        # plainly wants to be one (profile sections present) but got the
        # schema tag wrong.  Anything else (Chrome traces, bench
        # records, run reports) belongs to other checkers.
        looks_like_profile = isinstance(doc, dict) and (
            _is_profile_doc(doc)
            or ("phase_seconds" in doc and "critical_path" in doc)
        )
        if not looks_like_profile:
            return
        for problem in check_profile_report(doc):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )
