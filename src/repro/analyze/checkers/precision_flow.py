"""``precision-flow``: disciplined down-cast points.

The paper's mixed-precision correctness story (Section III-C) hinges on
every FP16/BF16 down-cast being a *deliberate* rounding site: the cast
either goes through the :mod:`repro.precision` helpers or sits next to
an explicit overflow guard (``gemm_mixed``'s ``PrecisionError`` path),
because a finite FP32/FP64 value above 65504 silently becomes ``inf``
in FP16 and poisons the whole accumulation — destroying the iterative
refinement convergence the benchmark is scored on.

Two rules:

- **unguarded down-cast** (error): ``x.astype(np.float16)``-style casts
  (including ``dtype=np.float16`` array constructions and bare
  ``np.float16(...)`` calls) whose enclosing function shows no overflow
  guard.  A guard is any reference to ``PrecisionError``, an
  ``isfinite`` check, or an ``FP16_MAX``-style range constant in the
  same function.
- **implicit mixed-dtype arithmetic** (warning): a binary arithmetic
  expression where exactly one operand is a 16-bit down-cast — NumPy's
  silent type promotion makes the result dtype an accident of the other
  operand.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analyze.checkers._util import dotted_name
from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import SourceChecker, SourceModule

#: attribute/name spellings that denote a 16-bit target dtype
_HALF_NAMES = {
    "np.float16", "numpy.float16", "np.half", "numpy.half",
    "FP16.dtype", "BF16.dtype",
}
_HALF_STRINGS = {"float16", "half", "e", "<f2", ">f2", "f2", "bfloat16"}

#: identifiers whose presence in a function marks it as overflow-guarded
_GUARD_NAMES = {"PrecisionError", "isfinite", "FP16_MAX"}

#: array constructors whose ``dtype=`` keyword creates a cast
_ARRAY_CTORS = {
    "array", "asarray", "ascontiguousarray", "asfortranarray",
    "empty", "zeros", "ones", "full", "frombuffer", "fromiter",
}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.MatMult, ast.Div)


def _is_half_dtype(node: ast.AST) -> bool:
    """Whether an expression denotes a 16-bit float dtype."""
    name = dotted_name(node)
    if name in _HALF_NAMES:
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _HALF_STRINGS
    # np.dtype("float16")
    if (
        isinstance(node, ast.Call)
        and dotted_name(node.func) in ("np.dtype", "numpy.dtype")
        and node.args
    ):
        return _is_half_dtype(node.args[0])
    return False


def _downcast_site(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it is a down-cast expression, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    # x.astype(np.float16)
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        targets = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg == "dtype"
        ]
        if any(_is_half_dtype(t) for t in targets):
            return "astype down-cast to a 16-bit float"
        return None
    name = dotted_name(func)
    # np.float16(x)
    if name in _HALF_NAMES and node.args:
        return f"direct {name}(...) down-cast"
    # np.ascontiguousarray(x, dtype=np.float16) and friends
    if name and name.split(".")[0] in ("np", "numpy") \
            and name.split(".")[-1] in _ARRAY_CTORS:
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_half_dtype(kw.value):
                return f"{name}(dtype=<16-bit float>) construction"
    return None


def _has_guard(scope: ast.AST) -> bool:
    """Whether ``scope`` references any overflow-guard identifier."""
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Name) and sub.id in _GUARD_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _GUARD_NAMES:
            return True
    return False


class PrecisionFlowChecker(SourceChecker):
    id = "precision-flow"
    description = (
        "FP16/BF16 down-casts must carry an overflow guard or go through "
        "the repro.precision helpers"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        guarded_scopes: dict = {}
        for node in ast.walk(module.tree):
            what = _downcast_site(node)
            if what is not None:
                scope = module.enclosing_function(node) or module.tree
                if scope not in guarded_scopes:
                    guarded_scopes[scope] = _has_guard(scope)
                if not guarded_scopes[scope]:
                    where = (
                        f"function {scope.name!r}"
                        if isinstance(scope, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))
                        else "module scope"
                    )
                    yield Finding(
                        checker=self.id,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        severity=Severity.ERROR,
                        message=(
                            f"unguarded {what} in {where}: finite values "
                            "above the FP16 range silently become inf; "
                            "guard with an isfinite/PrecisionError check or "
                            "use the repro.precision helpers"
                        ),
                    )
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                left = _downcast_site(node.left) is not None
                right = _downcast_site(node.right) is not None
                if left != right:
                    yield Finding(
                        checker=self.id,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        severity=Severity.WARNING,
                        message=(
                            "implicit mixed-dtype arithmetic: one operand "
                            "is a 16-bit down-cast, so the result dtype "
                            "depends on silent promotion; cast both "
                            "operands explicitly"
                        ),
                    )
