"""Shared AST helpers for the checkers."""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path
from typing import Dict, Optional


def const_fold_int(node: ast.AST, env: Dict[str, int]) -> Optional[int]:
    """Fold an integer expression of constants and known names.

    Supports the arithmetic the tag formulas use (+ - * // % << >> and
    unary +/-).  Returns None when the expression is not a compile-time
    integer under ``env``.
    """
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, int) else None
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp):
        val = const_fold_int(node.operand, env)
        if val is None:
            return None
        if isinstance(node.op, ast.USub):
            return -val
        if isinstance(node.op, ast.UAdd):
            return val
        return None
    if isinstance(node, ast.BinOp):
        lhs = const_fold_int(node.left, env)
        rhs = const_fold_int(node.right, env)
        if lhs is None or rhs is None:
            return None
        op = node.op
        if isinstance(op, ast.Add):
            return lhs + rhs
        if isinstance(op, ast.Sub):
            return lhs - rhs
        if isinstance(op, ast.Mult):
            return lhs * rhs
        if isinstance(op, ast.FloorDiv):
            return lhs // rhs if rhs else None
        if isinstance(op, ast.Mod):
            return lhs % rhs if rhs else None
        if isinstance(op, ast.LShift):
            return lhs << rhs
        if isinstance(op, ast.RShift):
            return lhs >> rhs
        if isinstance(op, ast.Pow):
            return lhs ** rhs if rhs >= 0 else None
    return None


def _imported_int_constants(node: ast.ImportFrom) -> Dict[str, int]:
    """``from X import NAME`` bindings that resolve to int constants.

    Resolved *statically*: the imported module's source is located via
    ``find_spec`` and const-folded the same way — the linted code is
    never executed.  One level only (the source module's own imports
    are not followed), which covers the constants-module idiom.
    """
    if node.level or not node.module:
        return {}
    try:
        spec = importlib.util.find_spec(node.module)
    except (ImportError, ValueError):
        return {}
    if spec is None or not spec.origin or not spec.origin.endswith(".py"):
        return {}
    try:
        tree = ast.parse(Path(spec.origin).read_text())
    except (OSError, SyntaxError):
        return {}
    env = _own_int_constants(tree)
    return {
        alias.asname or alias.name: env[alias.name]
        for alias in node.names
        if alias.name in env
    }


def _own_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int expr>`` bindings, resolved in order."""
    env: Dict[str, int] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            val = const_fold_int(stmt.value, env)
            if val is not None:
                env[stmt.targets[0].id] = val
    return env


def module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Integer constants visible at module level: local ``NAME = <int
    expr>`` assignments plus ``from X import NAME`` of constants the
    source module defines (resolved statically)."""
    env: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom):
            env.update(_imported_int_constants(stmt))
        elif (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            val = const_fold_int(stmt.value, env)
            if val is not None:
                env[stmt.targets[0].id] = val
    return env


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def normalize_expr(node: ast.AST) -> str:
    """Structural key for comparing expressions across call sites."""
    return ast.dump(node, annotate_fields=False)
