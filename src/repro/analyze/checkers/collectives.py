"""``collective-matching``: symmetric wire protocols on the virtual MPI.

The simulated-MPI deadlock class: a rank program that starts a routed
broadcast no other rank finishes (or sends on a tag nobody receives)
hangs the whole SPMD schedule.  Statically, the rank program modules
are written so that both sides of every exchange spell the tag with the
*same expression* — which makes the symmetry machine-checkable:

- **bcast pairing** (error): every tag expression used in a
  ``comm.bcast_start(...)`` must appear in a ``comm.bcast_finish(...)``
  in the same module, and vice versa — a one-sided routed broadcast is
  a guaranteed deadlock for some grid shape.
- **send/recv pairing** (warning): every tag expression used in
  ``comm.send/isend`` must appear in a ``comm.recv/irecv`` in the same
  module, and vice versa.  (Warning, not error: cross-module protocols
  are possible, but none exist in this codebase.)
- **conditional collective** (warning): ``comm.allreduce`` /
  ``comm.reduce`` / ``comm.barrier`` / a raw ``Barrier(...)`` event
  inside an ``if`` whose condition depends on rank-local state
  (anything other than the shared ``cfg``) — collectives must be
  executed unconditionally by every member or the engine deadlocks.
  Exemption: a *membership guard* comparing a grid coordinate
  (``.p_ir`` / ``.p_ic``) against a shared selector, protecting a
  collective over an explicit subgroup (``grid.row_members(jr)``) —
  the guard then selects exactly the subgroup, which is the idiomatic
  sub-communicator collective.
- **member symmetry** (error): a rank-local value (``rank`` /
  ``.p_ir`` / ``.p_ic``) in a *shape-changing* position of a members
  expression — a subscript index, an arithmetic subterm, a
  comprehension filter, or a literal element.  Different ranks would
  then post the collective with different member lists, which the
  engine rejects ("not a member") or deadlocks on.  A rank-local
  value as a plain *selector* argument (``grid.row_members(ex.p_ir)``)
  is fine: all members of the selected group share the coordinate.

Bare tag *names* (e.g. a ``tag`` local) are skipped: both sides share
the variable, so the pairing is trivially symmetric at the site where
the name is bound.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyze.checkers._util import normalize_expr
from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import SourceChecker, SourceModule

_SEND_METHODS = {"send": 2, "isend": 2}     # method -> tag positional index
_RECV_METHODS = {"recv": 1, "irecv": 1}
_START_METHODS = {"bcast_start": 3}
_FINISH_METHODS = {"bcast_finish": 1}
#: collectives every member of the communicator must call
_SYMMETRIC_METHODS = {"allreduce", "reduce", "barrier"}
#: members-list positional index per collective method
_MEMBERS_ARG = {"allreduce": 1, "reduce": 2, "barrier": 0}
#: Name roots in an if-condition that are uniform across all ranks
_UNIFORM_ROOTS = {"cfg", "config"}
#: attribute/name leaves that differ between the ranks of one group
_RANK_LOCAL_LEAVES = {"rank", "p_ir", "p_ic"}
#: grid coordinates a membership guard may legitimately compare
_COORD_ATTRS = {"p_ir", "p_ic"}


def _comm_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    """(method, call) when ``node`` is a ``comm.<method>(...)`` call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id.endswith("comm")
    ):
        return node.func.attr, node
    return None


def _tag_arg(call: ast.Call, index: int) -> Optional[ast.AST]:
    """The tag argument at positional ``index`` (or ``tag=`` keyword)."""
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    if len(call.args) > index:
        return call.args[index]
    return None


def _members_arg(call: ast.Call, method: str) -> Optional[ast.AST]:
    """The members-list argument of a collective call."""
    for kw in call.keywords:
        if kw.arg == "members":
            return kw.value
    index = _MEMBERS_ARG[method]
    if len(call.args) > index:
        return call.args[index]
    return None


def _is_rank_local_leaf(node: ast.AST) -> Optional[str]:
    """The leaf's name when ``node`` reads rank-local state."""
    if isinstance(node, ast.Name) and node.id in _RANK_LOCAL_LEAVES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _RANK_LOCAL_LEAVES:
        return node.attr
    return None


def _rank_local_leaves(expr: ast.AST) -> List[str]:
    found = []
    for sub in ast.walk(expr):
        leaf = _is_rank_local_leaf(sub)
        if leaf is not None:
            found.append(leaf)
    return found


def _shape_changing_leaves(members: ast.AST) -> List[str]:
    """Rank-local leaves in positions that change the member *list*.

    A leaf as a plain selector argument (``row_members(ex.p_ir)``) is
    group-uniform; a leaf inside a subscript, arithmetic, comprehension
    filter, or literal element makes different ranks compute different
    lists."""
    bad: List[str] = []
    for node in ast.walk(members):
        if isinstance(node, ast.Subscript):
            bad.extend(_rank_local_leaves(node.slice))
        elif isinstance(node, ast.BinOp):
            bad.extend(_rank_local_leaves(node.left))
            bad.extend(_rank_local_leaves(node.right))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                for cond in gen.ifs:
                    bad.extend(_rank_local_leaves(cond))
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                leaf = _is_rank_local_leaf(elt)
                if leaf is not None:
                    bad.append(leaf)
    return bad


def _is_membership_guard(test: ast.AST, members: Optional[ast.AST]) -> bool:
    """``if ex.p_ir == jr:`` around a collective over
    ``grid.row_members(jr)``: the guard selects exactly the subgroup the
    collective runs over, so rank-conditional execution is correct."""
    if members is None:
        return False
    subgroup = any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Attribute)
        and n.func.attr.endswith("_members")
        for n in ast.walk(members)
    )
    if not subgroup:
        return False
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            for side in (node.left, *node.comparators):
                if isinstance(side, ast.Attribute) \
                        and side.attr in _COORD_ATTRS:
                    return True
    return False


def _condition_roots(test: ast.AST) -> set:
    """Root identifiers a condition's value depends on."""
    roots = set()
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name):
            roots.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            base = sub.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                roots.add(base.id)
    return roots


class CollectiveMatchingChecker(SourceChecker):
    id = "collective-matching"
    description = (
        "send/recv and bcast_start/bcast_finish tags must pair up; "
        "whole-communicator collectives must run unconditionally"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        sends: Dict[str, List[ast.Call]] = {}
        recvs: Dict[str, List[ast.Call]] = {}
        starts: Dict[str, List[ast.Call]] = {}
        finishes: Dict[str, List[ast.Call]] = {}

        def record(bucket, call, tag_index):
            tag = _tag_arg(call, tag_index)
            if tag is None or isinstance(tag, ast.Name):
                return  # shared-variable tags are trivially symmetric
            bucket.setdefault(normalize_expr(tag), []).append(call)

        for node in ast.walk(module.tree):
            hit = _comm_call(node)
            if hit is None:
                yield from self._check_raw_barrier(module, node)
                continue
            method, call = hit
            if method in _SEND_METHODS:
                record(sends, call, _SEND_METHODS[method])
            elif method in _RECV_METHODS:
                record(recvs, call, _RECV_METHODS[method])
            elif method in _START_METHODS:
                record(starts, call, _START_METHODS[method])
            elif method in _FINISH_METHODS:
                record(finishes, call, _FINISH_METHODS[method])
            if method in _SYMMETRIC_METHODS:
                yield from self._check_conditional(module, call, method)
                yield from self._check_member_symmetry(module, call, method)

        yield from self._pairing(
            module, starts, finishes, "bcast_start", "bcast_finish",
            Severity.ERROR,
        )
        yield from self._pairing(
            module, finishes, starts, "bcast_finish", "bcast_start",
            Severity.ERROR,
        )
        yield from self._pairing(
            module, sends, recvs, "send", "recv", Severity.WARNING
        )
        yield from self._pairing(
            module, recvs, sends, "recv", "send", Severity.WARNING
        )

    # -- rules ------------------------------------------------------------

    def _pairing(self, module, have, want, have_kind, want_kind, severity):
        for key, calls in have.items():
            if key in want:
                continue
            call = calls[0]
            tag_src = ast.unparse(_tag_arg(
                call, {**_SEND_METHODS, **_RECV_METHODS, **_START_METHODS,
                       **_FINISH_METHODS}[call.func.attr]
            ))
            yield Finding(
                checker=self.id, path=module.path, line=call.lineno,
                col=call.col_offset, severity=severity,
                message=(
                    f"comm.{have_kind} tag `{tag_src}` has no matching "
                    f"comm.{want_kind} with the same tag expression in "
                    "this module: the wire protocol is one-sided "
                    "(deadlock for some grid shape)"
                ),
            )

    def _check_conditional(self, module, call, method):
        members = _members_arg(call, method)
        cur = module.parent_of(call)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, ast.If):
                roots = _condition_roots(cur.test)
                if roots - _UNIFORM_ROOTS:
                    if _is_membership_guard(cur.test, members):
                        # the guard selects exactly the subgroup the
                        # collective runs over; keep scanning outer ifs
                        cur = module.parent_of(cur)
                        continue
                    yield Finding(
                        checker=self.id, path=module.path,
                        line=call.lineno, col=call.col_offset,
                        severity=Severity.WARNING,
                        message=(
                            f"comm.{method} under a condition on "
                            f"`{', '.join(sorted(roots - _UNIFORM_ROOTS))}`"
                            ": whole-communicator collectives must be "
                            "executed by every member or the engine "
                            "deadlocks"
                        ),
                    )
                    return
            cur = module.parent_of(cur)

    def _check_member_symmetry(self, module, call, method):
        members = _members_arg(call, method)
        if members is None or isinstance(members, ast.Name):
            return  # a shared variable is symmetric at its binding site
        bad = _shape_changing_leaves(members)
        if bad:
            yield Finding(
                checker=self.id, path=module.path,
                line=call.lineno, col=call.col_offset,
                severity=Severity.ERROR,
                message=(
                    f"comm.{method} members "
                    f"`{ast.unparse(members)}` depends on rank-local "
                    f"`{', '.join(sorted(set(bad)))}` in a shape-changing "
                    "position: ranks would post the collective with "
                    "different member lists (engine error or deadlock)"
                ),
            )

    def _check_raw_barrier(self, module, node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Barrier"
        ):
            yield from self._check_conditional_raw(module, node)
            members = node.args[0] if node.args else None
            if members is not None and not isinstance(members, ast.Name):
                bad = _shape_changing_leaves(members)
                if bad:
                    yield Finding(
                        checker=self.id, path=module.path,
                        line=node.lineno, col=node.col_offset,
                        severity=Severity.ERROR,
                        message=(
                            f"Barrier members `{ast.unparse(members)}` "
                            "depends on rank-local "
                            f"`{', '.join(sorted(set(bad)))}` in a "
                            "shape-changing position: ranks would post "
                            "the barrier with different member lists"
                        ),
                    )

    def _check_conditional_raw(self, module, call):
        cur = module.parent_of(call)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, ast.If):
                roots = _condition_roots(cur.test)
                if roots - _UNIFORM_ROOTS:
                    yield Finding(
                        checker=self.id, path=module.path,
                        line=call.lineno, col=call.col_offset,
                        severity=Severity.WARNING,
                        message=(
                            "Barrier event under a condition on "
                            f"`{', '.join(sorted(roots - _UNIFORM_ROOTS))}`"
                            ": barriers must be executed by every member "
                            "or the engine deadlocks"
                        ),
                    )
                    return
            cur = module.parent_of(cur)
