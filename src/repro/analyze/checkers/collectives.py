"""``collective-matching``: symmetric wire protocols on the virtual MPI.

The simulated-MPI deadlock class: a rank program that starts a routed
broadcast no other rank finishes (or sends on a tag nobody receives)
hangs the whole SPMD schedule.  Statically, the rank program modules
are written so that both sides of every exchange spell the tag with the
*same expression* — which makes the symmetry machine-checkable:

- **bcast pairing** (error): every tag expression used in a
  ``comm.bcast_start(...)`` must appear in a ``comm.bcast_finish(...)``
  in the same module, and vice versa — a one-sided routed broadcast is
  a guaranteed deadlock for some grid shape.
- **send/recv pairing** (warning): every tag expression used in
  ``comm.send/isend`` must appear in a ``comm.recv/irecv`` in the same
  module, and vice versa.  (Warning, not error: cross-module protocols
  are possible, but none exist in this codebase.)
- **conditional collective** (warning): ``comm.allreduce`` /
  ``comm.barrier`` / a raw ``Barrier(...)`` event inside an ``if``
  whose condition depends on rank-local state (anything other than the
  shared ``cfg``) — whole-communicator collectives must be executed
  unconditionally by every member or the engine deadlocks.

Bare tag *names* (e.g. a ``tag`` local) are skipped: both sides share
the variable, so the pairing is trivially symmetric at the site where
the name is bound.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyze.checkers._util import normalize_expr
from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import SourceChecker, SourceModule

_SEND_METHODS = {"send": 2, "isend": 2}     # method -> tag positional index
_RECV_METHODS = {"recv": 1, "irecv": 1}
_START_METHODS = {"bcast_start": 3}
_FINISH_METHODS = {"bcast_finish": 1}
#: collectives every member of the communicator must call
_SYMMETRIC_METHODS = {"allreduce", "barrier"}
#: Name roots in an if-condition that are uniform across all ranks
_UNIFORM_ROOTS = {"cfg", "config"}


def _comm_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    """(method, call) when ``node`` is a ``comm.<method>(...)`` call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id.endswith("comm")
    ):
        return node.func.attr, node
    return None


def _tag_arg(call: ast.Call, index: int) -> Optional[ast.AST]:
    """The tag argument at positional ``index`` (or ``tag=`` keyword)."""
    for kw in call.keywords:
        if kw.arg == "tag":
            return kw.value
    if len(call.args) > index:
        return call.args[index]
    return None


def _condition_roots(test: ast.AST) -> set:
    """Root identifiers a condition's value depends on."""
    roots = set()
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name):
            roots.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            base = sub.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                roots.add(base.id)
    return roots


class CollectiveMatchingChecker(SourceChecker):
    id = "collective-matching"
    description = (
        "send/recv and bcast_start/bcast_finish tags must pair up; "
        "whole-communicator collectives must run unconditionally"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        sends: Dict[str, List[ast.Call]] = {}
        recvs: Dict[str, List[ast.Call]] = {}
        starts: Dict[str, List[ast.Call]] = {}
        finishes: Dict[str, List[ast.Call]] = {}

        def record(bucket, call, tag_index):
            tag = _tag_arg(call, tag_index)
            if tag is None or isinstance(tag, ast.Name):
                return  # shared-variable tags are trivially symmetric
            bucket.setdefault(normalize_expr(tag), []).append(call)

        for node in ast.walk(module.tree):
            hit = _comm_call(node)
            if hit is None:
                yield from self._check_raw_barrier(module, node)
                continue
            method, call = hit
            if method in _SEND_METHODS:
                record(sends, call, _SEND_METHODS[method])
            elif method in _RECV_METHODS:
                record(recvs, call, _RECV_METHODS[method])
            elif method in _START_METHODS:
                record(starts, call, _START_METHODS[method])
            elif method in _FINISH_METHODS:
                record(finishes, call, _FINISH_METHODS[method])
            if method in _SYMMETRIC_METHODS:
                yield from self._check_conditional(module, call, method)

        yield from self._pairing(
            module, starts, finishes, "bcast_start", "bcast_finish",
            Severity.ERROR,
        )
        yield from self._pairing(
            module, finishes, starts, "bcast_finish", "bcast_start",
            Severity.ERROR,
        )
        yield from self._pairing(
            module, sends, recvs, "send", "recv", Severity.WARNING
        )
        yield from self._pairing(
            module, recvs, sends, "recv", "send", Severity.WARNING
        )

    # -- rules ------------------------------------------------------------

    def _pairing(self, module, have, want, have_kind, want_kind, severity):
        for key, calls in have.items():
            if key in want:
                continue
            call = calls[0]
            tag_src = ast.unparse(_tag_arg(
                call, {**_SEND_METHODS, **_RECV_METHODS, **_START_METHODS,
                       **_FINISH_METHODS}[call.func.attr]
            ))
            yield Finding(
                checker=self.id, path=module.path, line=call.lineno,
                col=call.col_offset, severity=severity,
                message=(
                    f"comm.{have_kind} tag `{tag_src}` has no matching "
                    f"comm.{want_kind} with the same tag expression in "
                    "this module: the wire protocol is one-sided "
                    "(deadlock for some grid shape)"
                ),
            )

    def _check_conditional(self, module, call, method):
        cur = module.parent_of(call)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, ast.If):
                roots = _condition_roots(cur.test)
                if roots - _UNIFORM_ROOTS:
                    yield Finding(
                        checker=self.id, path=module.path,
                        line=call.lineno, col=call.col_offset,
                        severity=Severity.WARNING,
                        message=(
                            f"comm.{method} under a condition on "
                            f"`{', '.join(sorted(roots - _UNIFORM_ROOTS))}`"
                            ": whole-communicator collectives must be "
                            "executed by every member or the engine "
                            "deadlocks"
                        ),
                    )
                    return
            cur = module.parent_of(cur)

    def _check_raw_barrier(self, module, node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Barrier"
        ):
            yield from self._check_conditional_raw(module, node)

    def _check_conditional_raw(self, module, call):
        cur = module.parent_of(call)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, ast.If):
                roots = _condition_roots(cur.test)
                if roots - _UNIFORM_ROOTS:
                    yield Finding(
                        checker=self.id, path=module.path,
                        line=call.lineno, col=call.col_offset,
                        severity=Severity.WARNING,
                        message=(
                            "Barrier event under a condition on "
                            f"`{', '.join(sorted(roots - _UNIFORM_ROOTS))}`"
                            ": barriers must be executed by every member "
                            "or the engine deadlocks"
                        ),
                    )
                    return
            cur = module.parent_of(cur)
