"""``fleet-schema``: validate ``repro fleet --format json`` documents.

Same pattern as the health/profile schema checkers: the pure
validation lives in :func:`repro.obs.fleet.check_fleet_document`,
adapted to the :mod:`repro.analyze` framework by
:class:`FleetSchemaChecker` so ``repro lint fleet.json --select
fleet-schema`` is the CI entry point for campaign analytics artifacts
(:data:`~repro.obs.fleet.report.FLEET_SCHEMA`).
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker
from repro.obs.fleet.report import FLEET_SCHEMA, check_fleet_document


def _is_fleet_doc(doc) -> bool:
    return isinstance(doc, dict) and doc.get("schema") == FLEET_SCHEMA


class FleetSchemaChecker(ArtifactChecker):
    id = "fleet-schema"
    description = "repro fleet JSON documents match the documented schema"

    def matches(self, path: str) -> bool:
        return path.endswith(".json")

    def check_file(self, path: str) -> Iterable[Finding]:
        from repro.analyze.checkers.trace_schema import load_strict_json

        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        # Ours when it claims the fleet schema, or plainly wants to be
        # a fleet document (characteristic section pair present) with a
        # wrong tag.  Traces/profiles/health docs belong elsewhere.
        looks_like_fleet = isinstance(doc, dict) and (
            _is_fleet_doc(doc)
            or ("heatmap" in doc and "trend" in doc)
        )
        if not looks_like_fleet:
            return
        for problem in check_fleet_document(doc):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )
