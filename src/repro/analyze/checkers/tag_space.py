"""``tag-space``: prove per-(step, phase) wire-tag windows disjoint.

The distributed LU modules derive every wire tag from a module-local
``_tag(k, phase[, j])`` formula.  Message matching is correct iff the
windows those formulas span never alias: two different logical channels
must never produce the same tag between the same rank pair.  PR 2 fixed
exactly such a bug — the per-column LASWP exchange computed
``_tag(k, 7, j) + span_idx``, and ``_tag(k, 7, j) + span == _tag(k, 7,
j+1)`` aliased column ``j+1``'s first span between the same peers.

The checker recovers the formula by *executing* the module's ``_tag``
function (with module-level integer constants resolved statically),
verifies it is linear in each argument, derives the window strides
``(dk, dphase, dj)``, and then proves every call site stays inside its
window:

- the phase argument must be a compile-time constant, in
  ``[0, dk/dphase)`` — otherwise step ``k``'s top window aliases step
  ``k+1``'s bottom one;
- a constant column index must be in ``[0, dphase/dj)``; a bare loop
  variable is accepted (the loop bound is the block size, which the
  formula's window width must be sized for);
- the column argument must not contain arithmetic, and **no arithmetic
  may be applied to the ``_tag(...)`` result** — any external offset
  can walk out of the window (the pre-PR-2 aliasing class).
"""

from __future__ import annotations

import ast
import copy
from typing import Iterable, Optional

from repro.analyze.checkers._util import const_fold_int, module_int_constants
from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import SourceChecker, SourceModule

#: tag-formula function names the checker recognises
_TAG_FUNC_NAMES = {"_tag"}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod,
              ast.LShift, ast.RShift)


def _compile_tag_func(fndef: ast.FunctionDef, consts: dict):
    """Execute the tag formula's def in a minimal namespace."""
    # Strip annotations/decorators: they would be evaluated at def time
    # against the sandbox namespace (no builtins, so even ``int`` is
    # unresolvable when the source relied on lazy PEP-563 annotations).
    fndef = copy.deepcopy(fndef)
    fndef.decorator_list = []
    fndef.returns = None
    args = fndef.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + [a for a in (args.vararg, args.kwarg) if a is not None]):
        arg.annotation = None
    mod = ast.Module(body=[fndef], type_ignores=[])
    ast.fix_missing_locations(mod)
    ns = dict(consts)
    ns["__builtins__"] = {}
    code = compile(mod, filename="<tag-formula>", mode="exec")
    exec(code, ns)  # noqa: S102 - our own parsed source, no builtins
    return ns[fndef.name]


def _positional_arity(fndef: ast.FunctionDef) -> tuple:
    """(required positional count, total positional count)."""
    args = fndef.args
    total = len(args.args)
    required = total - len(args.defaults)
    return required, total


class _Formula:
    """Numerically-derived linear structure of one ``_tag`` function."""

    def __init__(self, fn, has_j: bool):
        self.fn = fn
        self.has_j = has_j
        zero = (0, 0, 0) if has_j else (0, 0)
        self.base = fn(*zero)
        self.dk = fn(*self._unit(0)) - self.base
        self.dphase = fn(*self._unit(1)) - self.base
        self.dj = (fn(*self._unit(2)) - self.base) if has_j else 0

    def _unit(self, axis: int) -> tuple:
        vec = [0, 0, 0] if self.has_j else [0, 0]
        vec[axis] = 1
        return tuple(vec)

    def is_linear(self) -> bool:
        """Spot-check linearity on a sample grid."""
        samples = [(2, 3, 5), (7, 1, 0), (13, 0, 11), (1, 6, 1)]
        for k, p, j in samples:
            args = (k, p, j) if self.has_j else (k, p)
            expect = self.base + k * self.dk + p * self.dphase + \
                (j * self.dj if self.has_j else 0)
            try:
                if self.fn(*args) != expect:
                    return False
            # A user formula can raise anything; non-linear verdict either
            # way.
            except Exception:  # lint: ignore[hygiene]
                return False
        return True

    @property
    def phase_capacity(self) -> Optional[int]:
        if self.dphase > 0 and self.dk > self.dphase:
            return self.dk // self.dphase
        return None

    @property
    def column_capacity(self) -> Optional[int]:
        if self.has_j and self.dj > 0 and self.dphase > self.dj:
            return self.dphase // self.dj
        return None


class TagSpaceChecker(SourceChecker):
    id = "tag-space"
    description = (
        "wire-tag windows derived from _tag(k, phase, j) must be provably "
        "disjoint (no external arithmetic, constant in-range phases)"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        fndef = next(
            (
                n for n in module.tree.body
                if isinstance(n, ast.FunctionDef)
                and n.name in _TAG_FUNC_NAMES
            ),
            None,
        )
        if fndef is None:
            return
        consts = module_int_constants(module.tree)
        required, total = _positional_arity(fndef)
        has_j = total >= 3
        try:
            formula = _Formula(_compile_tag_func(fndef, consts), has_j)
            linear = formula.is_linear()
        # Executing an arbitrary tag formula can raise anything; report
        # rather than crash the lint run.
        except Exception as exc:  # lint: ignore[hygiene]
            yield Finding(
                checker=self.id, path=module.path, line=fndef.lineno,
                severity=Severity.WARNING,
                message=(
                    f"could not evaluate the _tag formula ({exc}); tag "
                    "windows cannot be proven disjoint"
                ),
            )
            return
        if not linear or formula.dk <= 0 or formula.dphase <= 0 or (
            has_j and formula.dj <= 0
        ):
            yield Finding(
                checker=self.id, path=module.path, line=fndef.lineno,
                severity=Severity.WARNING,
                message=(
                    "_tag formula is not linear with positive strides in "
                    "(k, phase, j); tag windows cannot be proven disjoint"
                ),
            )
            return

        phase_cap = formula.phase_capacity
        col_cap = formula.column_capacity
        for finding in self._check_sites(module, consts, has_j,
                                         phase_cap, col_cap):
            yield finding

    # -- per-call-site rules ---------------------------------------------

    def _check_sites(self, module, consts, has_j, phase_cap, col_cap):
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _TAG_FUNC_NAMES
            ):
                continue
            line, col = node.lineno, node.col_offset

            # Rule 1: no arithmetic on the _tag(...) result.
            parent = module.parent_of(node)
            if isinstance(parent, ast.BinOp) and isinstance(
                parent.op, _ARITH_OPS
            ):
                yield Finding(
                    checker=self.id, path=module.path, line=line, col=col,
                    severity=Severity.ERROR,
                    message=(
                        "arithmetic applied to a _tag(...) result: external "
                        "offsets can walk into the adjacent tag window and "
                        "alias another channel (the pre-batched-LASWP bug "
                        "class); encode the offset inside the formula's "
                        "column argument instead"
                    ),
                )

            # Rule 2: phase must be a compile-time constant in range.
            if len(node.args) >= 2:
                phase_val = const_fold_int(node.args[1], consts)
                if phase_val is None:
                    yield Finding(
                        checker=self.id, path=module.path, line=line,
                        col=col, severity=Severity.ERROR,
                        message=(
                            "_tag phase argument is not a compile-time "
                            "constant; the tag window cannot be proven "
                            "disjoint from other phases"
                        ),
                    )
                elif phase_cap is not None and not (
                    0 <= phase_val < phase_cap
                ):
                    yield Finding(
                        checker=self.id, path=module.path, line=line,
                        col=col, severity=Severity.ERROR,
                        message=(
                            f"_tag phase {phase_val} is outside the "
                            f"per-step window (capacity {phase_cap}): "
                            "step k's tags alias step "
                            f"k{'+' if phase_val >= 0 else '-'}1's"
                        ),
                    )

            # Rule 3: the column argument must be simple and in range.
            j_args = list(node.args[2:3]) + [
                kw.value for kw in node.keywords if kw.arg == "j"
            ]
            for j_node in j_args:
                j_val = const_fold_int(j_node, consts)
                if j_val is not None:
                    if col_cap is not None and not 0 <= j_val < col_cap:
                        yield Finding(
                            checker=self.id, path=module.path, line=line,
                            col=col, severity=Severity.ERROR,
                            message=(
                                f"_tag column index {j_val} is outside the "
                                f"per-phase window (capacity {col_cap}): "
                                "it aliases the next phase's window"
                            ),
                        )
                elif not isinstance(j_node, ast.Name):
                    yield Finding(
                        checker=self.id, path=module.path, line=line,
                        col=col, severity=Severity.ERROR,
                        message=(
                            "_tag column argument contains arithmetic; "
                            "per-column windows are not provably disjoint "
                            "(pass a plain loop index instead)"
                        ),
                    )
