"""``health-report``: validate ``repro health --json`` documents.

Same pattern as the trace/profile schema checkers: a pure
:func:`check_health_report` over a parsed document, adapted to the
:mod:`repro.analyze` framework by :class:`HealthReportChecker` so
``repro lint health.json --select health-report`` is the CI entry
point for health artifacts
(:data:`~repro.obs.health.report.HEALTH_SCHEMA`).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker
from repro.obs.health.report import HEALTH_SCHEMA

#: fields every finding entry must carry (mirrors HealthEvent.to_dict)
_FINDING_KEYS = ("kind", "t_s", "severity", "ranks", "message")

_SEVERITIES = {"info", "warning", "critical"}


def _is_health_doc(doc) -> bool:
    return isinstance(doc, dict) and doc.get("schema") == HEALTH_SCHEMA


def check_health_report(doc) -> List[str]:
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != HEALTH_SCHEMA:
        problems.append(
            f"schema must be {HEALTH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    num_ranks = doc.get("num_ranks")
    if not isinstance(num_ranks, int) or num_ranks < 0:
        problems.append("'num_ranks' must be a non-negative int")
    if not isinstance(doc.get("num_samples"), int):
        problems.append("'num_samples' must be an int")
    cadence = doc.get("cadence_s")
    if not isinstance(cadence, (int, float)) or cadence <= 0:
        problems.append("'cadence_s' must be a positive number")

    findings = doc.get("findings")
    if not isinstance(findings, list):
        problems.append("'findings' list is missing")
        findings = []
    implicated = set()
    for i, f in enumerate(findings):
        where = f"findings[{i}]"
        if not isinstance(f, dict):
            problems.append(f"{where}: finding must be an object")
            continue
        for key in _FINDING_KEYS:
            if key not in f:
                problems.append(f"{where}: missing {key!r}")
        sev = f.get("severity")
        if sev is not None and sev not in _SEVERITIES:
            problems.append(
                f"{where}: severity {sev!r} not in {sorted(_SEVERITIES)}"
            )
        t = f.get("t_s")
        if t is not None and (
            not isinstance(t, (int, float)) or t < 0
        ):
            problems.append(f"{where}: 't_s' must be a non-negative number")
        ranks = f.get("ranks")
        if ranks is not None:
            if not isinstance(ranks, list) or not all(
                isinstance(r, int) for r in ranks
            ):
                problems.append(f"{where}: 'ranks' must be a list of ints")
            else:
                implicated.update(ranks)
                if isinstance(num_ranks, int) and any(
                    not 0 <= r < max(num_ranks, 1) for r in ranks
                ):
                    problems.append(
                        f"{where}: ranks {ranks} outside the "
                        f"{num_ranks}-rank run"
                    )

    degraded = doc.get("degraded_ranks")
    if not isinstance(degraded, list) or not all(
        isinstance(r, int) for r in degraded or []
    ):
        problems.append("'degraded_ranks' must be a list of ints")
    elif set(degraded) != implicated:
        problems.append(
            f"'degraded_ranks' {sorted(degraded)} does not match the "
            f"ranks implicated by findings {sorted(implicated)}"
        )

    wd = doc.get("watchdog")
    if not isinstance(wd, dict):
        problems.append("'watchdog' object is missing")
    else:
        if not isinstance(wd.get("tripped"), bool):
            problems.append("watchdog.tripped must be a bool")
        if not isinstance(wd.get("deadlines_s"), dict):
            problems.append("watchdog.deadlines_s object is missing")

    series = doc.get("series")
    if not isinstance(series, dict):
        problems.append("'series' object is missing")
    else:
        for name, s in series.items():
            if not isinstance(s, dict) or not isinstance(
                s.get("t"), list
            ) or not isinstance(s.get("v"), list):
                problems.append(f"series[{name!r}] must have 't'/'v' lists")
            elif len(s["t"]) != len(s["v"]):
                problems.append(
                    f"series[{name!r}]: {len(s['t'])} timestamps for "
                    f"{len(s['v'])} values"
                )
    return problems


class HealthReportChecker(ArtifactChecker):
    id = "health-report"
    description = "repro health JSON reports match the documented schema"

    def matches(self, path: str) -> bool:
        return path.endswith(".json")

    def check_file(self, path: str) -> Iterable[Finding]:
        from repro.analyze.checkers.trace_schema import load_strict_json

        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        # Ours when it claims the health schema, or plainly wants to be
        # a health report (characteristic section pair present) with a
        # wrong tag.  Traces/profiles/bench records belong elsewhere.
        looks_like_health = isinstance(doc, dict) and (
            _is_health_doc(doc)
            or ("findings" in doc and "degraded_ranks" in doc)
        )
        if not looks_like_health:
            return
        for problem in check_health_report(doc):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )
