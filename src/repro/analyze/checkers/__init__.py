"""Checker registry: the suite ``repro lint`` runs by default."""

from repro.analyze.checkers.campaign_schema import CampaignStoreChecker
from repro.analyze.checkers.collectives import CollectiveMatchingChecker
from repro.analyze.checkers.fleet_schema import FleetSchemaChecker
from repro.analyze.checkers.health_schema import HealthReportChecker
from repro.analyze.checkers.hygiene import HygieneChecker
from repro.analyze.checkers.precision_flow import PrecisionFlowChecker
from repro.analyze.checkers.scenario_schema import ScenarioChecker
from repro.analyze.checkers.schedule import (
    CommRaceChecker,
    CommScheduleChecker,
    TraceConformanceChecker,
)
from repro.analyze.checkers.tag_space import TagSpaceChecker
from repro.analyze.checkers.trace_schema import (
    ProfileReportChecker,
    TraceSchemaChecker,
)

__all__ = [
    "CampaignStoreChecker",
    "CollectiveMatchingChecker",
    "CommRaceChecker",
    "CommScheduleChecker",
    "FleetSchemaChecker",
    "HealthReportChecker",
    "HygieneChecker",
    "PrecisionFlowChecker",
    "ProfileReportChecker",
    "ScenarioChecker",
    "TagSpaceChecker",
    "TraceConformanceChecker",
    "TraceSchemaChecker",
    "all_checkers",
]


def all_checkers(require_layers: bool = False):
    """Fresh instances of the full default checker suite."""
    return [
        PrecisionFlowChecker(),
        TagSpaceChecker(),
        CollectiveMatchingChecker(),
        HygieneChecker(),
        TraceSchemaChecker(require_layers=require_layers),
        ProfileReportChecker(),
        HealthReportChecker(),
        FleetSchemaChecker(),
        ScenarioChecker(),
        CampaignStoreChecker(),
        CommScheduleChecker(),
        CommRaceChecker(),
        TraceConformanceChecker(),
    ]
