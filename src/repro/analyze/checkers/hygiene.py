"""``hygiene``: small patterns with outsized blast radius here.

- **bare except** (error) and **blanket except** (warning): swallowing
  ``Exception`` hides :class:`repro.errors.ReproError` subclasses the
  engine relies on for deadlock/convergence reporting.
- **mutable default argument** (error): the classic shared-state trap.
- **comm generator called without ``yield from``** (error): every
  :class:`repro.comm.vmpi.RankComm` method is a generator — calling one
  without ``yield from`` builds a generator object and silently does
  *nothing*: no message is sent, and the matching peer blocks forever
  inside the engine.  This is the quietest possible way to deadlock a
  rank program.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import SourceChecker, SourceModule

#: RankComm generator methods that must be driven with ``yield from``
_COMM_GENERATOR_METHODS = {
    "send", "isend", "recv", "irecv", "wait", "wait_all",
    "bcast", "bcast_start", "bcast_finish",
    "allreduce", "reduce", "barrier", "now",
}

_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


def _is_comm_generator_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _COMM_GENERATOR_METHODS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id.endswith("comm")
    )


class HygieneChecker(SourceChecker):
    id = "hygiene"
    description = (
        "bare/blanket except, mutable default arguments, and comm "
        "generator calls missing yield from"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif _is_comm_generator_call(node):
                parent = module.parent_of(node)
                if not isinstance(parent, ast.YieldFrom):
                    yield Finding(
                        checker=self.id, path=module.path,
                        line=node.lineno, col=node.col_offset,
                        severity=Severity.ERROR,
                        message=(
                            f"comm.{node.func.attr}(...) is a generator "
                            "and was called without `yield from`: the "
                            "operation never executes and the peer rank "
                            "deadlocks"
                        ),
                    )

    def _check_handler(self, module, node):
        if node.type is None:
            yield Finding(
                checker=self.id, path=module.path, line=node.lineno,
                col=node.col_offset, severity=Severity.ERROR,
                message=(
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and hides engine faults; catch a ReproError subclass"
                ),
            )
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        ):
            yield Finding(
                checker=self.id, path=module.path, line=node.lineno,
                col=node.col_offset, severity=Severity.WARNING,
                message=(
                    f"blanket `except {node.type.id}` hides ReproError "
                    "subclasses the engine relies on; narrow the handler"
                ),
            )

    def _check_defaults(self, module, node):
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                yield Finding(
                    checker=self.id, path=module.path,
                    line=default.lineno, col=default.col_offset,
                    severity=Severity.ERROR,
                    message=(
                        f"mutable default argument in {node.name!r}: the "
                        "default is shared across calls; use None and "
                        "construct inside the function"
                    ),
                )
