"""``scenario-schema``: validate ``repro.scenario/v1`` documents.

Same pattern as the health/profile schema checkers: a pure
:func:`check_scenario` over a parsed document, adapted to the
:mod:`repro.analyze` framework by :class:`ScenarioChecker` so
``repro lint examples/scenarios --select scenario-schema`` is the CI
entry point for scenario files
(:data:`~repro.scenario.spec.SCENARIO_SCHEMA`).

The validation itself is delegated to the scenario layer's own
constructors — :func:`repro.scenario.injection_from_dict` rejects
unknown kinds, unknown fields, and malformed parameters — so the
checker can never drift from what the engines actually accept.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import ArtifactChecker
from repro.scenario.spec import SCENARIO_SCHEMA


def _is_scenario_doc(doc) -> bool:
    return isinstance(doc, dict) and doc.get("schema") == SCENARIO_SCHEMA


def check_scenario(doc) -> List[str]:
    """Return a list of problem strings (empty = valid)."""
    from repro.errors import ConfigurationError
    from repro.scenario.spec import Scenario, injection_from_dict

    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCENARIO_SCHEMA:
        problems.append(
            f"schema must be {SCENARIO_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    name = doc.get("name")
    if name is not None and not isinstance(name, str):
        problems.append("'name' must be a string")
    desc = doc.get("description")
    if desc is not None and not isinstance(desc, str):
        problems.append("'description' must be a string")

    injections = doc.get("injections")
    if not isinstance(injections, list):
        problems.append("'injections' list is missing")
        return problems
    if not injections:
        problems.append("'injections' is empty — the scenario does nothing")
    for i, inj in enumerate(injections):
        try:
            injection_from_dict(inj)
        except ConfigurationError as exc:
            problems.append(f"injections[{i}]: {exc}")

    if not problems:
        # The parts validated; confirm the whole document round-trips
        # through the DSL (catches cross-field problems the per-
        # injection pass cannot see).
        try:
            Scenario.from_dict(doc)
        except ConfigurationError as exc:
            problems.append(str(exc))
    return problems


class ScenarioChecker(ArtifactChecker):
    id = "scenario-schema"
    description = "scenario JSON documents parse under the repro.scenario DSL"

    def matches(self, path: str) -> bool:
        return path.endswith(".json")

    def check_file(self, path: str) -> Iterable[Finding]:
        from repro.analyze.checkers.trace_schema import load_strict_json

        try:
            doc = load_strict_json(path)
        except (ValueError, OSError) as exc:
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR,
                message=f"not strict JSON: {exc}",
            )
            return
        # Ours when it claims the scenario schema, or plainly wants to
        # be one (an injections list with kind-tagged entries) with a
        # wrong tag.  Traces/profiles/health reports belong elsewhere.
        looks_like_scenario = isinstance(doc, dict) and (
            _is_scenario_doc(doc)
            or (
                isinstance(doc.get("injections"), list)
                and "traceEvents" not in doc
            )
        )
        if not looks_like_scenario:
            return
        for problem in check_scenario(doc):
            yield Finding(
                checker=self.id, path=path, line=0,
                severity=Severity.ERROR, message=problem,
            )
