"""Checker framework: module model, baseline, and the analysis driver.

Checkers come in three kinds:

- :class:`SourceChecker` — receives a parsed :class:`SourceModule`
  (AST + source text) per ``.py`` file and yields findings;
- :class:`ArtifactChecker` — receives non-Python artifact paths it
  claims via :meth:`ArtifactChecker.matches` (e.g. exported trace
  JSON files);
- :class:`ProgramChecker` — sees the whole analyzed file set once and
  runs a global analysis (e.g. the communication-schedule verifier),
  gated on explicit selection or on relevant files being analyzed.

The driver (:func:`run_analysis`) walks the requested paths, dispatches
files to checkers, honours inline suppressions
(``# lint: ignore`` / ``# lint: ignore[checker-id]`` on the flagged
line) and subtracts the checked-in baseline.  Known-accepted findings
belong in the baseline file, never in weakened checkers.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.analyze.findings import Finding, sort_findings

#: suppression marker scanned for on the flagged physical line
_SUPPRESS_MARK = "lint: ignore"

#: directories never descended into when expanding path arguments
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class SourceModule:
    """One parsed Python source file handed to source checkers."""

    def __init__(self, path: str, text: str, tree: ast.AST):
        self.path = path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def parse(cls, path: str, text: Optional[str] = None) -> "SourceModule":
        """Parse a file (or the given text) into a module model."""
        if text is None:
            text = Path(path).read_text()
        return cls(path, text, ast.parse(text, filename=path))

    # -- tree helpers -----------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self.parents.get(node)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Innermost FunctionDef/AsyncFunctionDef containing ``node``."""
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    # -- suppression ------------------------------------------------------

    def suppressed(self, line: int, checker_id: str) -> bool:
        """Whether the physical ``line`` carries a suppression for
        ``checker_id`` (bare ``lint: ignore`` suppresses everything)."""
        if not 1 <= line <= len(self.lines):
            return False
        src = self.lines[line - 1]
        pos = src.find("#")
        if pos < 0:
            return False
        comment = src[pos:]
        mark = comment.find(_SUPPRESS_MARK)
        if mark < 0:
            return False
        rest = comment[mark + len(_SUPPRESS_MARK):].strip()
        if not rest.startswith("["):
            return True  # blanket suppression
        ids = rest[1:rest.find("]")] if "]" in rest else rest[1:]
        return checker_id in {s.strip() for s in ids.split(",")}


class SourceChecker:
    """Base class: one rule family over parsed Python modules."""

    #: stable identifier used in reports, suppressions and baselines
    id: str = ""
    #: one-line description for ``repro lint --list``
    description: str = ""

    def check(self, module: SourceModule) -> Iterable[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


class ArtifactChecker:
    """Base class: validates non-Python artifacts (JSON traces, ...)."""

    id: str = ""
    description: str = ""

    def matches(self, path: str) -> bool:
        """Whether this checker claims the artifact at ``path``."""
        raise NotImplementedError

    def check_file(self, path: str) -> Iterable[Finding]:
        """Yield findings for one artifact file."""
        raise NotImplementedError


class ProgramChecker:
    """Base class: whole-program checks that are not per-file.

    A program checker sees the full list of analyzed Python files once
    and runs a global analysis (e.g. extracting and model-checking the
    communication schedule, which spans comm/core/simulate).  Because
    such checks execute the rank programs, they only run when
    explicitly ``--select``-ed or when the analyzed set includes files
    they declare relevant via :meth:`triggered_by`."""

    id: str = ""
    description: str = ""

    def triggered_by(self, py_files: Sequence[str]) -> bool:
        """Whether the analyzed file set warrants running this checker."""
        raise NotImplementedError

    def check_program(self, py_files: Sequence[str]) -> Iterable[Finding]:
        """Yield findings for the whole program."""
        raise NotImplementedError


class Baseline:
    """Checked-in set of accepted finding fingerprints.

    The on-disk format is JSON::

        {"version": 1,
         "findings": [{"checker": ..., "path": ..., "message": ...}, ...]}

    Matching ignores line numbers (see
    :attr:`repro.analyze.findings.Finding.fingerprint`).
    """

    VERSION = 1

    def __init__(self, fingerprints: Optional[Iterable[tuple]] = None,
                 path: Optional[str] = None):
        self.fingerprints = set(fingerprints or ())
        self.path = path

    @classmethod
    def load(cls, path: str) -> "Baseline":
        doc = json.loads(Path(path).read_text())
        if not isinstance(doc, dict) or "findings" not in doc:
            raise ValueError(f"{path}: not a lint baseline file")
        prints = {
            (f["checker"], f["path"], f["message"])
            for f in doc["findings"]
        }
        return cls(prints, path=path)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(f.fingerprint for f in findings)

    def save(self, path: str) -> str:
        """Write the baseline JSON (sorted, stable diffs) to ``path``."""
        entries = [
            {"checker": c, "path": p, "message": m}
            for c, p, m in sorted(self.fingerprints)
        ]
        doc = {"version": self.VERSION, "findings": entries}
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")
        return path

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    #: findings matched (and hidden) by the baseline
    baselined: List[Finding] = field(default_factory=list)
    #: files that could not be parsed: [(path, error string)]
    parse_errors: List[tuple] = field(default_factory=list)
    files_checked: int = 0
    checkers_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean run: no new findings and every file parsed."""
        return not self.findings and not self.parse_errors

    def to_dict(self) -> dict:
        """JSON-serializable report (the ``--format json`` document)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "checkers": list(self.checkers_run),
            "findings": [f.to_dict() for f in self.findings],
            "baselined": len(self.baselined),
            "parse_errors": [
                {"path": p, "error": e} for p, e in self.parse_errors
            ],
        }


def _iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield str(sub)
        elif p.suffix == ".py":
            yield str(p)


def _iter_artifact_files(paths: Sequence[str]) -> Iterator[str]:
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix != ".py":
            yield str(p)


def run_analysis(
    paths: Sequence[str],
    checkers: Optional[Sequence] = None,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the checker suite over files/directories in ``paths``.

    Directories are walked recursively for ``.py`` files; non-Python
    file arguments are offered to artifact checkers.  ``select`` limits
    the run to the named checker ids.
    """
    if checkers is None:
        from repro.analyze.checkers import all_checkers

        checkers = all_checkers()
    if select:
        unknown = set(select) - {c.id for c in checkers}
        if unknown:
            raise ValueError(
                f"unknown checker id(s): {', '.join(sorted(unknown))}"
            )
        checkers = [c for c in checkers if c.id in select]
    source_checkers = [c for c in checkers if isinstance(c, SourceChecker)]
    artifact_checkers = [c for c in checkers if isinstance(c, ArtifactChecker)]
    program_checkers = [c for c in checkers if isinstance(c, ProgramChecker)]

    report = AnalysisReport(checkers_run=[c.id for c in checkers])
    raw: List[Finding] = []

    py_files: List[str] = []
    for path in _iter_python_files(paths):
        try:
            module = SourceModule.parse(path)
        except (SyntaxError, ValueError, OSError) as exc:
            report.parse_errors.append((path, str(exc)))
            continue
        py_files.append(path)
        report.files_checked += 1
        for checker in source_checkers:
            for finding in checker.check(module):
                if not module.suppressed(finding.line, finding.checker):
                    raw.append(finding)

    explicit = set(select or ())
    for checker in program_checkers:
        if checker.id in explicit or checker.triggered_by(py_files):
            raw.extend(checker.check_program(py_files))

    for path in _iter_artifact_files(paths):
        claimed = [c for c in artifact_checkers if c.matches(path)]
        if not claimed:
            continue
        report.files_checked += 1
        for checker in claimed:
            raw.extend(checker.check_file(path))

    for finding in sort_findings(raw):
        if baseline is not None and finding in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report
