"""Closed-form broadcast time estimates (the NBB/NBN term of eqs. 3/5).

For a panel chunk of ``nbytes`` broadcast among ``members`` ranks whose
node tiling gives ``crossings`` inter-node hops and ``sharing`` co-located
streams per node (the Q_r / Q_c factors of eq. 5), each algorithm has a
characteristic completion-time shape:

- immature library tree: ``depth x (L + S/bw)`` — the full message is
  re-sent at every level;
- mature library broadcast (scatter-allgather-like): ``~ S/bw`` plus a
  logarithmic latency term, at the boosted bandwidth;
- rings: pipelined chains, ``(depth + segments) x stage`` with the stage
  set by the slower of the NIC and the intra-node fabric;
- ibcast: the immature tree at the derated bandwidth.

These deliberately mirror what the event engine produces so the analytic
model can stand in for it at scales the engine cannot reach.
"""

from __future__ import annotations

from math import ceil, log2

from repro.errors import ConfigurationError
from repro.machine.spec import MpiModel
from repro.machine.topology import CommCosts


def _ring_segments(members: int) -> int:
    return min(128, max(8, members))


def bcast_time(
    algorithm: str,
    nbytes: float,
    members: int,
    costs: CommCosts,
    mpi: MpiModel,
    sharing: int = 1,
    nodes_spanned: int | None = None,
) -> float:
    """Completion time (last receiver) of one broadcast.

    Parameters
    ----------
    nbytes:
        Message size per receiver.
    members:
        Ranks in the broadcast (one process row or column).
    sharing:
        Concurrent sibling broadcasts per node contending for the NICs
        (Q_c for column broadcasts, Q_r for row broadcasts; eq. 5).
    nodes_spanned:
        Distinct nodes among the members (defaults to
        ``ceil(members / sharing-free group)``).
    """
    if members < 1:
        raise ConfigurationError(f"members must be >= 1, got {members}")
    if members == 1 or nbytes <= 0:
        return 0.0
    lat = costs.inter_latency
    nic_bw = costs.node_nic_bw / max(sharing, 1)
    intra_bw = costs.intra_bw
    staging = costs.staging_time(int(nbytes))
    nodes = nodes_spanned if nodes_spanned is not None else members
    nodes = max(1, min(nodes, members))

    if algorithm == "bcast" and mpi.bcast_hierarchical:
        # Mature library: bandwidth-optimal inter-node pipeline over node
        # leaders plus an intra-node fan.
        bw = nic_bw * mpi.bcast_bw_boost
        inter = ceil(log2(max(nodes, 2))) * lat + nbytes / bw + staging
        fan = ceil(log2(max(members // max(nodes, 1), 1) + 1)) * (
            nbytes / intra_bw
        )
        return inter + fan
    if algorithm in ("bcast", "ibcast"):
        speed = mpi.bcast_bw_boost if algorithm == "bcast" else mpi.ibcast_derate
        depth = ceil(log2(members))
        # Only the blocking broadcast benefits from the library's
        # internal segmentation; nonblocking broadcasts progress poorly.
        nseg = max(1, mpi.bcast_segments) if algorithm == "bcast" else 1
        seg = nbytes / nseg
        return (depth + nseg - 1) * (
            lat + seg / (nic_bw * speed)
        ) + staging
    if algorithm in ("ring1", "ring1m", "ring2m"):
        nseg = _ring_segments(members)
        seg = nbytes / nseg
        stage = max(seg / nic_bw, seg / intra_bw) + staging / nseg
        depth = members - 1
        if algorithm == "ring2m":
            depth = max(1, (members - 2 + 1) // 2)
        return depth * lat + (depth + nseg - 1) * stage
    raise ConfigurationError(f"unknown broadcast algorithm {algorithm!r}")


def panel_comm_time(
    algorithm: str,
    u_bytes: float,
    l_bytes: float,
    cfg,
    costs: CommCosts,
) -> float:
    """Combined per-iteration panel broadcast time (eq. 5 structure).

    The U chunk travels down each process column (P_r members, Q_c
    sibling columns per node); the L chunk travels along each process row
    (P_c members, Q_r siblings).  Both directions share the node NICs,
    so their times add.
    """
    mpi = cfg.machine.mpi
    t_u = bcast_time(
        algorithm,
        u_bytes,
        cfg.p_rows,
        costs,
        mpi,
        sharing=cfg.q_cols,
        nodes_spanned=cfg.node_grid.k_rows,
    )
    t_l = bcast_time(
        algorithm,
        l_bytes,
        cfg.p_cols,
        costs,
        mpi,
        sharing=cfg.q_rows,
        nodes_spanned=cfg.node_grid.k_cols,
    )
    return t_u + t_l
