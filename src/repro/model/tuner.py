"""Parameter sweeps: the tuning studies of Section V as reusable code.

Each sweep evaluates the analytic model over one knob — block size B
(Fig 4), local problem size N_L (Section V-D), node-local grid
(Fig 8 / Finding 8) — and returns ordered records the benchmarks print.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.model.perf_model import estimate_run


def _make_cfg(machine: MachineSpec, n: int, block: int, p: int, **kw) -> BenchmarkConfig:
    return BenchmarkConfig(
        n=n, block=block, machine=machine, p_rows=p, p_cols=p, **kw
    )


def sweep_block_sizes(
    machine: MachineSpec,
    n_local: int,
    p: int,
    blocks: Iterable[int],
    **kw,
) -> List[Dict[str, object]]:
    """Fig 4: per-GCD throughput as a function of B at fixed N_L.

    Block sizes that do not divide ``n_local`` are skipped (the paper
    only considers padding-free configurations).
    """
    out: List[Dict[str, object]] = []
    for b in blocks:
        if n_local % b != 0:
            continue
        cfg = _make_cfg(machine, n_local * p, b, p, **kw)
        res = estimate_run(cfg)
        out.append(
            {
                "B": b,
                "gflops_per_gcd": res.gflops_per_gcd,
                "elapsed_s": res.elapsed,
                "exposed_comm_s": res.breakdown["exposed_comm"],
                "getrf_s": res.breakdown["getrf"],
            }
        )
    if not out:
        raise ConfigurationError(
            f"no block size in {list(blocks)} divides n_local={n_local}"
        )
    return out


def best_block_size(machine, n_local, p, blocks, **kw) -> int:
    """The B the tuner would pick (highest modelled per-GCD rate)."""
    rows = sweep_block_sizes(machine, n_local, p, blocks, **kw)
    return max(rows, key=lambda r: r["gflops_per_gcd"])["B"]


def sweep_local_sizes(
    machine: MachineSpec,
    block: int,
    p: int,
    locals_: Iterable[int],
    **kw,
) -> List[Dict[str, object]]:
    """Section V-D: N_L tuning (the 119808-beats-122880 study)."""
    out = []
    for nl in locals_:
        if nl % block != 0:
            continue
        cfg = _make_cfg(machine, nl * p, block, p, **kw)
        res = estimate_run(cfg)
        out.append(
            {
                "N_L": nl,
                "N": cfg.n,
                "gflops_per_gcd": res.gflops_per_gcd,
                "elapsed_s": res.elapsed,
            }
        )
    if not out:
        raise ConfigurationError(
            f"no local size in {list(locals_)} is a multiple of B={block}"
        )
    return out


def sweep_node_grids(
    machine: MachineSpec,
    n_local: int,
    block: int,
    p: int,
    bcast_algorithm: str,
    grids: Optional[Iterable[tuple]] = None,
    **kw,
) -> List[Dict[str, object]]:
    """Fig 8 / Finding 8: node-local grid (Q_r × Q_c) tuning.

    Defaults to every factorization of the machine's GCDs-per-node that
    tiles the process grid.
    """
    q = machine.node.gcds_per_node
    if grids is None:
        grids = [(qr, q // qr) for qr in range(1, q + 1) if q % qr == 0]
    out = []
    for qr, qc in grids:
        if p % qr != 0 or p % qc != 0:
            continue
        cfg = _make_cfg(
            machine, n_local * p, block, p,
            q_rows=qr, q_cols=qc, bcast_algorithm=bcast_algorithm, **kw
        )
        res = estimate_run(cfg)
        out.append(
            {
                "grid": f"{qr}x{qc}",
                "q_rows": qr,
                "q_cols": qc,
                "gflops_per_gcd": res.gflops_per_gcd,
                "elapsed_s": res.elapsed,
            }
        )
    if not out:
        raise ConfigurationError(
            f"no node-local grid of {q} GCDs tiles a {p}x{p} process grid"
        )
    return out
