"""Analytic performance model and parameter tuner (paper Section IV).

The event engine is exact about message interleaving but costs O(events);
the analytic model implements the paper's critical-path recurrence —
eqs. (1)-(3) plus the NIC-sharing communication time of eq. (5) — in
O(N/B) per run, which is what makes the paper-scale configurations
(29584 GCDs, N = 20.6M) tractable.  It is cross-validated against the
event engine at overlapping scales in the test suite.
"""

from repro.model.comm_model import bcast_time, panel_comm_time
from repro.model.perf_model import (
    AnalyticResult,
    IterationCosts,
    estimate_iteration,
    estimate_run,
)
from repro.model.roofline import (
    machine_balance,
    memory_roofline,
    min_local_size_for_compute_bound,
    network_balance,
    network_roofline,
)
from repro.model.tuner import sweep_block_sizes, sweep_local_sizes, sweep_node_grids

__all__ = [
    "bcast_time",
    "panel_comm_time",
    "AnalyticResult",
    "IterationCosts",
    "estimate_iteration",
    "estimate_run",
    "sweep_block_sizes",
    "sweep_local_sizes",
    "sweep_node_grids",
    "machine_balance",
    "memory_roofline",
    "min_local_size_for_compute_bound",
    "network_balance",
    "network_roofline",
]
