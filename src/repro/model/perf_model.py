"""Per-iteration critical-path model of the full benchmark (eqs. 1-3, 5).

``estimate_run`` walks the N/B factorization steps, pricing each phase
with the same machine kernel models the event engine uses:

    T_iter = T_GETRF + T_DIAG_BCAST + T_TRSM + T_CAST
             + overlap(T_PANEL_BCAST, T_GEMM)           (look-ahead)

where ``overlap(a, b) = max(a, b)`` replaces ``a + b`` when look-ahead
hides the panel broadcast under the trailing update (Section IV-B), and
iterative refinement is priced with the executor formulas.  The whole
estimate costs O(N/B), making the paper's achievement-run configurations
(P = 172², N = 20.6M) instantaneous to evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, List

from repro.core.config import BenchmarkConfig
from repro.machine.topology import CommCosts
from repro.model.comm_model import bcast_time, panel_comm_time
from repro.util import flops as fl


#: Fraction of the panel-broadcast time that cannot be hidden under the
#: trailing GEMM even with look-ahead: progression overheads, receive-side
#: protocol work, and pipeline fill.  Perfect overlap (0.0) makes every
#: broadcast strategy look identical once GEMM dominates, which is not
#: what the paper measured; 0.3 reproduces the observed sensitivity of
#: total performance to the broadcast choice (Figs 4/8).
OVERLAP_FLOOR = 0.12


@dataclass(frozen=True)
class IterationCosts:
    """Phase costs of one factorization step (seconds)."""

    k: int
    getrf: float
    diag_bcast: float
    trsm: float
    cast: float
    gemm: float
    panel_bcast: float
    exposed_comm: float
    total: float


@dataclass
class AnalyticResult:
    """Modelled run outcome; mirrors the fields of RunResult it can."""

    config: BenchmarkConfig
    elapsed: float
    elapsed_factorization: float
    elapsed_refinement: float
    gflops_per_gcd: float
    total_flops_per_s: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    iterations: List[IterationCosts] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """Headline metrics merged with the configuration facts."""
        d = self.config.describe()
        d.update(
            elapsed_s=round(self.elapsed, 3),
            gflops_per_gcd=round(self.gflops_per_gcd, 2),
            total_flops=self.total_flops_per_s,
        )
        return d


def estimate_iteration(
    cfg: BenchmarkConfig, costs: CommCosts, k: int, speed: float = 1.0
) -> IterationCosts:
    """Price factorization step ``k`` on the critical path.

    Local trailing extents use the *pivot* row/column's view (the ranks
    on the critical path): their local panel lengths are the ceiling of
    the remaining blocks over the grid dimension.  ``speed`` scales the
    compute kernels only (fleet variability / warm-up).
    """
    b = cfg.block
    nb = cfg.num_blocks
    remaining = nb - (k + 1)  # trailing blocks beyond the diagonal
    rows_loc = ceil(remaining / cfg.p_rows) * b
    cols_loc = ceil(remaining / cfg.p_cols) * b
    km = cfg.machine.gpu_kernels

    t_getrf = km.getrf_time(b) / speed
    # Two small B×B FP32 broadcasts along the pivot row and column.
    diag_bytes = b * b * 4
    t_diag = bcast_time(
        cfg.diag_algorithm, diag_bytes, cfg.p_cols, costs, cfg.machine.mpi,
        sharing=1, nodes_spanned=cfg.node_grid.k_cols,
    ) + bcast_time(
        cfg.diag_algorithm, diag_bytes, cfg.p_rows, costs, cfg.machine.mpi,
        sharing=1, nodes_spanned=cfg.node_grid.k_rows,
    )
    # The diagonal owner sits in both pivot panels: its TRSMs serialize.
    t_trsm = (km.trsm_time(b, cols_loc) + km.trsm_time(b, rows_loc)) / speed
    t_cast = (km.cast_time(cols_loc * b) + km.cast_time(rows_loc * b)) / speed
    t_gemm = km.gemm_time(rows_loc, cols_loc, b, lda=cfg.local_rows) / speed
    t_bcast = panel_comm_time(
        cfg.bcast_algorithm,
        u_bytes=cols_loc * b * 2.0,
        l_bytes=rows_loc * b * 2.0,
        cfg=cfg,
        costs=costs,
    )
    if cfg.lookahead:
        # The paper's look-ahead model: the panel chain stays serial on
        # the pivot ranks, but the panel broadcast rides under the bulk
        # trailing GEMM — the last two terms of eq. (1) become
        # max[T(BCAST_PANEL), T(GEMM)].  (The event engine additionally
        # pipelines the panel chain across rotating pivots, so it runs
        # somewhat faster than this model at panel-dominated sizes —
        # consistent with the paper calling its model an upper-bound
        # guideline.)
        exposed = max(t_bcast - t_gemm, OVERLAP_FLOOR * t_bcast)
        total = t_getrf + t_diag + t_trsm + t_cast + t_gemm + exposed
    else:
        exposed = t_bcast
        total = t_getrf + t_diag + t_trsm + t_cast + t_gemm + t_bcast
    return IterationCosts(
        k=k,
        getrf=t_getrf,
        diag_bcast=t_diag,
        trsm=t_trsm,
        cast=t_cast,
        gemm=t_gemm,
        panel_bcast=t_bcast,
        exposed_comm=exposed,
        total=total,
    )


def _refinement_time(cfg: BenchmarkConfig, costs: CommCosts) -> float:
    """IR cost from the same formulas the phantom executor charges."""
    cm = cfg.machine.cpu_kernels
    n, b, nb = cfg.n, cfg.block, cfg.num_blocks
    iters = cfg.ir_fixed_iters
    # Residual: N^2/P regenerated entries + GEMV per rank per iteration,
    # plus one more residual evaluation for the converged check.
    cols = cfg.col_dim.blocks_per_proc
    entries = cols * cfg.local_rows * b
    t_resid = cm.regen_time(entries) + cm.gemv_time(cfg.local_rows, cols * b)
    allreduce = 2 * ceil(log2(max(cfg.num_ranks, 2))) * (
        costs.inter_latency + n * 8 / costs.node_nic_bw
    )
    # Sweeps: serial chain of nb small steps plus the per-rank deferred
    # block GEMVs (half the column's blocks on average).
    step = (
        cm.trsv_time(b)
        + cm.gemv_time(b, b)
        + 2 * (costs.inter_latency + b * 8 / costs.node_nic_bw)
        * ceil(log2(max(cfg.p_rows, 2)))
    )
    deferred = cm.gemv_time(cfg.local_rows, b) * (nb / cfg.p_cols) / 2.0
    t_sweep = nb * step + deferred
    per_iter = t_resid + allreduce + 2 * t_sweep + allreduce
    return (iters + 1) * (t_resid + allreduce) + iters * (
        per_iter - t_resid - allreduce
    )


def estimate_run(
    cfg: BenchmarkConfig,
    pipeline_multiplier: float = 1.0,
    global_speed: float = 1.0,
    keep_iterations: bool = False,
    scenario=None,
) -> AnalyticResult:
    """Model the full benchmark at any scale in O(N/B).

    ``pipeline_multiplier`` models fleet variability: in a bulk-
    synchronous factorization the slowest GCD gates every iteration
    (see :meth:`repro.machine.GcdFleet.pipeline_multiplier`).
    ``global_speed`` models warm-up effects (Fig 12).

    ``scenario`` accepts the same :class:`~repro.scenario.Scenario`
    the event engine runs: the composed rate schedule collapses to its
    effective pipeline multiplier (the slowest participant gates every
    iteration), multiplied into ``pipeline_multiplier``, so analytic
    and event-engine results of one scenario file stay comparable.
    Link-level injections are below the model's resolution.
    """
    if scenario is not None:
        # Lazy import: repro.scenario.compile prices horizons with this
        # very function.
        from repro.scenario.compile import compile_scenario

        compiled = compile_scenario(scenario, cfg)
        pipeline_multiplier *= compiled.pipeline_multiplier
    costs = CommCosts(
        cfg.machine, port_binding=cfg.port_binding, gpu_aware=cfg.gpu_aware
    )
    speed = pipeline_multiplier * global_speed
    totals: Dict[str, float] = {
        "getrf": 0.0, "diag_bcast": 0.0, "trsm": 0.0, "cast": 0.0,
        "gemm": 0.0, "exposed_comm": 0.0,
    }
    iters: List[IterationCosts] = []
    t_fact = 0.0
    for k in range(cfg.num_blocks):
        it = estimate_iteration(cfg, costs, k, speed=speed)
        t_fact += it.total
        totals["getrf"] += it.getrf
        totals["trsm"] += it.trsm
        totals["cast"] += it.cast
        totals["gemm"] += it.gemm
        totals["diag_bcast"] += it.diag_bcast
        totals["exposed_comm"] += it.exposed_comm
        if keep_iterations:
            iters.append(it)
    t_fact += cfg.machine.gpu_kernels.h2d_time(cfg.local_fp32_bytes)
    t_ir = _refinement_time(cfg, costs) / speed
    elapsed = t_fact + t_ir
    totals["refinement"] = t_ir
    return AnalyticResult(
        config=cfg,
        elapsed=elapsed,
        elapsed_factorization=t_fact,
        elapsed_refinement=t_ir,
        gflops_per_gcd=fl.per_gcd_gflops(cfg.n, cfg.num_ranks, elapsed),
        total_flops_per_s=fl.hpl_ai_flops(cfg.n) / elapsed,
        breakdown=totals,
        iterations=iters,
    )
