"""Roofline analysis: why the balance of these machines made HPL-AI fly.

The paper's conclusion credits "an architecturally well balanced system".
This module quantifies that with two rooflines per machine:

- **memory roofline** — each kernel's arithmetic intensity (flops per
  HBM byte) against the GCD's compute/bandwidth balance point.  The
  trailing GEMM at block size B has AI ~ B/3 flops/byte, far above
  either GPU's balance (~100 flops/byte), which is *why* mixed precision
  can run near peak; CAST and GEMV sit below it and are bandwidth-bound
  by construction.
- **network roofline** — flops computed per byte communicated.  Per
  iteration a rank computes ``2 N_Lr N_Lc B`` flops and moves
  ``~2 (N_Lr + N_Lc) B`` panel bytes, giving AI ~ N_L (flops/byte) —
  the surface-to-volume argument for big local memories (Finding 1:
  "codes should attempt to run as much as possible on GPUs ... and the
  larger high bandwidth memory").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.machine.topology import CommCosts


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/phase on a roofline."""

    name: str
    arithmetic_intensity: float  # flops per byte
    attainable_tflops: float
    bound: str  # "compute" or "memory"/"network"


def machine_balance(machine: MachineSpec) -> float:
    """HBM balance point: FP16-peak flops per HBM byte."""
    return machine.node.gpu.fp16_tflops * 1e12 / (
        machine.node.gpu.hbm_bw_gbs * 1e9
    )


def network_balance(machine: MachineSpec, port_binding: bool = True) -> float:
    """Network balance point: per-GCD FP16-peak flops per off-node byte."""
    costs = CommCosts(machine, port_binding=port_binding)
    per_gcd_bw = costs.node_nic_bw / machine.node.gcds_per_node
    return machine.node.gpu.fp16_tflops * 1e12 / per_gcd_bw


def memory_roofline(
    machine: MachineSpec, block: int, n_local: int
) -> List[RooflinePoint]:
    """Kernel points on the HBM roofline for one configuration."""
    if block < 1 or n_local < block:
        raise ConfigurationError("need n_local >= block >= 1")
    peak = machine.node.gpu.fp16_tflops * 1e12
    bw = machine.node.gpu.hbm_bw_gbs * 1e9
    balance = peak / bw

    points = []

    def add(name: str, flops: float, bytes_moved: float,
            ceiling: float = peak):
        ai = flops / bytes_moved
        attainable = min(ceiling, ai * bw)
        points.append(RooflinePoint(
            name=name,
            arithmetic_intensity=ai,
            attainable_tflops=attainable / 1e12,
            bound="compute" if ai >= ceiling / bw else "memory",
        ))

    m = n_local
    b = block
    # GEMM: read fp16 panels + read/write fp32 trailing.
    add("gemm", 2.0 * m * m * b,
        2.0 * (m * b * 2) + 2.0 * (m * m * 4))
    # TRSM: fp32 triangle against m rhs (fp32 peak ceiling ~ peak/6).
    add("trsm", float(b * b * m), 2.0 * (b * m * 4) + b * b * 4,
        ceiling=peak / 6.0)
    # CAST: pure streaming.
    add("cast", float(m * b), m * b * (4 + 2))
    # GETRF on the B x B diagonal block (fp32 ceiling).
    add("getrf", (2.0 / 3.0) * b ** 3, 3.0 * b * b * 4, ceiling=peak / 6.0)
    return points


def network_roofline(
    machine: MachineSpec, block: int, n_local: int, port_binding: bool = True
) -> RooflinePoint:
    """The per-iteration compute/communication balance of one rank."""
    if block < 1 or n_local < block:
        raise ConfigurationError("need n_local >= block >= 1")
    flops = 2.0 * n_local * n_local * block
    bytes_moved = 2.0 * 2.0 * n_local * block  # both fp16 panels, in+out
    ai = flops / bytes_moved  # = n_local / 2
    balance = network_balance(machine, port_binding)
    costs = CommCosts(machine, port_binding=port_binding)
    per_gcd_bw = costs.node_nic_bw / machine.node.gcds_per_node
    attainable = min(
        machine.node.gpu.fp16_tflops * 1e12, ai * per_gcd_bw
    )
    return RooflinePoint(
        name="iteration (network)",
        arithmetic_intensity=ai,
        attainable_tflops=attainable / 1e12,
        bound="compute" if ai >= balance else "network",
    )


def min_local_size_for_compute_bound(
    machine: MachineSpec, port_binding: bool = True
) -> int:
    """Smallest N_L at which the network stops bounding the iteration.

    From AI = N_L / 2 >= network balance point: the quantitative form of
    "make the local problem as large as memory allows".
    """
    return int(2 * network_balance(machine, port_binding)) + 1
