"""Sweep matrix: jobs, canonical form, and content-addressed keys.

A :class:`Job` is one point of the campaign matrix — ``(machine, N_L,
B, grid, bcast, scenario, runs-per-campaign)`` — normalized so that the
same configuration always serializes to the same canonical JSON.  The
scenario axis is embedded *by content*: a scenario file path given to a
sweep is loaded and its ``repro.scenario/v1`` document stored inline,
so a job's key reflects what the scenario does, not where it lives on
disk.

:func:`Job.key` is the content address used by the run cache, queue and
store: ``sha256(canonical job JSON + code version)``.  Two processes —
or two PRs, if the code version matches — that build the same job get
the same key, which is what makes cache hits, in-flight dedupe and
resume correct by construction.

:class:`SweepSpec` is the declarative sweep document (schema
``repro.campaign.sweep/v1``): scalar bases plus list-valued axes whose
cartesian product :meth:`SweepSpec.expand`\\ s into jobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

SWEEP_SCHEMA = "repro.campaign.sweep/v1"
RESULT_SCHEMA = "repro.campaign.result/v1"

#: per-machine (nl, block, bcast) sweep defaults (mirrors the CLI's)
MACHINE_DEFAULTS = {
    "summit": dict(nl=61440, block=768, bcast="bcast"),
    "frontier": dict(nl=119808, block=3072, bcast="ring2m"),
}


def _resolve_scenario(raw) -> Optional[dict]:
    """Normalize a scenario axis entry to an inline document (or None).

    Accepts None (baseline row), a path to a scenario file, or an
    inline ``repro.scenario/v1`` dict; always validates through the
    scenario DSL so malformed axes fail at sweep-build time, not in a
    worker.
    """
    from repro.scenario import Scenario

    if raw is None or raw in ("", "none", "baseline"):
        return None
    if isinstance(raw, str):
        return Scenario.load(raw).to_dict()
    if isinstance(raw, dict):
        return Scenario.from_dict(raw).to_dict()
    raise ConfigurationError(
        f"scenario axis entries must be null, a file path, or an inline "
        f"document; got {type(raw).__name__}"
    )


@dataclass(frozen=True)
class Job:
    """One campaign of the sweep matrix (canonical, hashable by content)."""

    machine: str
    nl: int
    block: int
    grid: int
    bcast: str
    num_runs: int = 3
    seed: int = 2022
    spare_nodes: int = 4
    scenario: Optional[dict] = None

    def __post_init__(self) -> None:
        for name in ("nl", "block", "grid", "num_runs"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 1:
                raise ConfigurationError(
                    f"job {name} must be a positive integer, got {v!r}"
                )
        if self.spare_nodes < 0:
            raise ConfigurationError(
                f"job spare_nodes must be >= 0, got {self.spare_nodes}"
            )

    @property
    def n(self) -> int:
        return self.nl * self.grid

    @property
    def scenario_name(self) -> str:
        """The scenario axis label (``baseline`` for the null scenario)."""
        if self.scenario is None:
            return "baseline"
        return str(self.scenario.get("name") or "scenario")

    @property
    def label(self) -> str:
        """Human-stable row label used by store queries and gates."""
        return (
            f"{self.machine}/N={self.n}/B={self.block}/"
            f"{self.grid}x{self.grid}/{self.bcast}/{self.scenario_name}"
        )

    def to_dict(self) -> dict:
        """The canonical job document (scenario inlined, if any)."""
        d = {
            "machine": self.machine, "nl": self.nl, "block": self.block,
            "grid": self.grid, "bcast": self.bcast,
            "num_runs": self.num_runs, "seed": self.seed,
            "spare_nodes": self.spare_nodes,
        }
        if self.scenario is not None:
            d["scenario"] = self.scenario
        return d

    @classmethod
    def from_dict(cls, doc: dict) -> "Job":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"job must be an object, got {type(doc).__name__}"
            )
        known = {
            "machine", "nl", "block", "grid", "bcast", "num_runs", "seed",
            "spare_nodes", "scenario",
        }
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(
                f"unknown job field(s): {', '.join(sorted(unknown))}"
            )
        machine = doc.get("machine", "frontier")
        defaults = MACHINE_DEFAULTS.get(machine, {})
        missing = [
            k for k in ("nl", "block", "bcast")
            if k not in doc and k not in defaults
        ]
        if missing:
            raise ConfigurationError(
                f"job for machine {machine!r} needs explicit "
                f"{', '.join(missing)} (no preset defaults)"
            )
        return cls(
            machine=machine,
            nl=int(doc.get("nl", defaults.get("nl", 0))),
            block=int(doc.get("block", defaults.get("block", 0))),
            grid=int(doc.get("grid", 2)),
            bcast=str(doc.get("bcast", defaults.get("bcast", ""))),
            num_runs=int(doc.get("num_runs", 3)),
            seed=int(doc.get("seed", 2022)),
            spare_nodes=int(doc.get("spare_nodes", 4)),
            scenario=_resolve_scenario(doc.get("scenario")),
        )

    def canonical(self, code: str) -> str:
        """Canonical serialized form the content address hashes."""
        return json.dumps(
            {"job": self.to_dict(), "code": code},
            sort_keys=True, separators=(",", ":"),
        )

    def key(self, code: Optional[str] = None) -> str:
        """Content address: sha256(canonical job + code version)[:16]."""
        if code is None:
            from repro.obs.provenance import code_version

            code = code_version()
        return hashlib.sha256(
            self.canonical(code).encode()
        ).hexdigest()[:16]

    def to_config(self):
        """The :class:`~repro.core.config.BenchmarkConfig` this job runs."""
        from repro.core.config import BenchmarkConfig
        from repro.machine import get_machine

        return BenchmarkConfig(
            n=self.n, block=self.block, machine=get_machine(self.machine),
            p_rows=self.grid, p_cols=self.grid,
            bcast_algorithm=self.bcast, seed=self.seed,
        )

    def load_scenario(self):
        """The inline scenario as a :class:`~repro.scenario.Scenario`."""
        if self.scenario is None:
            return None
        from repro.scenario import Scenario

        return Scenario.from_dict(self.scenario)


@dataclass
class SweepSpec:
    """Declarative sweep: scalar bases × list-valued axes.

    ``grids``, ``bcasts`` and ``scenarios`` are the swept axes; the
    scalars apply to every job.  ``scenarios`` entries may be ``None``
    (a baseline row), scenario file paths, or inline documents.
    """

    machine: str = "frontier"
    nl: Optional[int] = None
    block: Optional[int] = None
    num_runs: int = 3
    seed: int = 2022
    spare_nodes: int = 4
    grids: Sequence[int] = (2,)
    bcasts: Sequence[str] = ()
    scenarios: Sequence[Union[None, str, dict]] = (None,)

    def expand(self) -> List[Job]:
        """The cartesian product of the axes, in deterministic order."""
        defaults = MACHINE_DEFAULTS.get(self.machine, {})
        nl = self.nl or defaults.get("nl")
        block = self.block or defaults.get("block")
        if not nl or not block:
            raise ConfigurationError(
                f"sweep on machine {self.machine!r} needs explicit "
                f"nl and block"
            )
        bcasts: Tuple[str, ...] = tuple(self.bcasts) or (
            defaults.get("bcast", "bcast"),
        )
        grids = tuple(self.grids) or (2,)
        scenarios = tuple(self.scenarios) if self.scenarios else (None,)
        jobs = [
            Job(
                machine=self.machine, nl=int(nl), block=int(block),
                grid=int(g), bcast=str(b), num_runs=self.num_runs,
                seed=self.seed, spare_nodes=self.spare_nodes,
                scenario=_resolve_scenario(sc),
            )
            for g, b, sc in product(grids, bcasts, scenarios)
        ]
        seen: Dict[str, Job] = {}
        for job in jobs:
            seen.setdefault(job.label, job)
        return list(seen.values())

    def to_dict(self) -> dict:
        """The ``repro.campaign.sweep/v1`` document."""
        return {
            "schema": SWEEP_SCHEMA,
            "machine": self.machine, "nl": self.nl, "block": self.block,
            "num_runs": self.num_runs, "seed": self.seed,
            "spare_nodes": self.spare_nodes,
            "grids": list(self.grids), "bcasts": list(self.bcasts),
            "scenarios": list(self.scenarios),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SweepSpec":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"sweep spec must be an object, got {type(doc).__name__}"
            )
        schema = doc.get("schema", SWEEP_SCHEMA)
        if schema != SWEEP_SCHEMA:
            raise ConfigurationError(
                f"unsupported sweep schema {schema!r} "
                f"(expected {SWEEP_SCHEMA!r})"
            )
        known = {
            "schema", "machine", "nl", "block", "num_runs", "seed",
            "spare_nodes", "grids", "bcasts", "scenarios",
        }
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(
                f"unknown sweep field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = {k: doc[k] for k in known - {"schema"} if k in doc}
        return cls(**kwargs)

    @classmethod
    def load(cls, path) -> "SweepSpec":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read sweep spec {path}: {exc}")
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"sweep spec {path} is not valid JSON: {exc}"
            )
        return cls.from_dict(doc)
