"""Persistent job queue with atomic checkpoints (``--resume``).

The queue is the sweep's durable control state: every job's key, its
canonical document, and its status (``pending`` / ``done`` /
``failed``).  The engine checkpoints it after *every* completion via
the same atomic-write helper as the bench baseline, so a kill -9 at any
instant leaves a loadable checkpoint: resuming re-runs exactly the jobs
that were not yet marked done, and nothing else.

Schema ``repro.campaign.queue/v1``::

    {"schema": "repro.campaign.queue/v1",
     "jobs": [{"key": ..., "status": ..., "job": {...}, "error": ...}]}
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.util.atomicio import atomic_write_json

QUEUE_SCHEMA = "repro.campaign.queue/v1"

_STATUSES = ("pending", "done", "failed")


class JobQueue:
    """Ordered key → {job, status, error} map with a JSON checkpoint."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._jobs: "OrderedDict[str, dict]" = OrderedDict()
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        import json

        try:
            doc = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot load campaign queue {self.path}: {exc}"
            )
        if not isinstance(doc, dict) or doc.get("schema") != QUEUE_SCHEMA:
            raise ConfigurationError(
                f"{self.path} is not a campaign queue checkpoint "
                f"(expected schema {QUEUE_SCHEMA!r})"
            )
        for entry in doc.get("jobs", []):
            key = entry.get("key")
            status = entry.get("status", "pending")
            if not key or status not in _STATUSES:
                raise ConfigurationError(
                    f"{self.path}: malformed queue entry {entry!r}"
                )
            self._jobs[key] = {
                "key": key, "status": status,
                "job": entry.get("job") or {},
                "error": entry.get("error", ""),
            }

    # -- mutation ---------------------------------------------------------

    def add(self, key: str, job_doc: dict) -> None:
        """Register a job as pending (no-op if the key is known)."""
        self._jobs.setdefault(
            key, {"key": key, "status": "pending", "job": dict(job_doc),
                  "error": ""}
        )

    def mark_done(self, key: str) -> None:
        """Record a completed job (it will be skipped on resume)."""
        self._set_status(key, "done")

    def mark_failed(self, key: str, error: str) -> None:
        """Record a failed job with its error (retried on resume)."""
        self._set_status(key, "failed", error)

    def _set_status(self, key: str, status: str, error: str = "") -> None:
        if key not in self._jobs:
            raise ConfigurationError(f"unknown queue key {key!r}")
        self._jobs[key]["status"] = status
        self._jobs[key]["error"] = error

    def checkpoint(self) -> str:
        """Atomically persist the queue state; returns the path written."""
        return atomic_write_json(self.path, self.to_dict())

    # -- inspection -------------------------------------------------------

    def pending(self) -> List[Tuple[str, dict]]:
        """``(key, job_doc)`` of every job not yet done.

        Failed jobs are included: a resume retries them (the failure may
        have been environmental), which is safe because execution is
        deterministic and results are content-addressed.
        """
        return [
            (key, entry["job"]) for key, entry in self._jobs.items()
            if entry["status"] != "done"
        ]

    def status_of(self, key: str) -> Optional[str]:
        """``pending``/``done``/``failed``, or None for unknown keys."""
        entry = self._jobs.get(key)
        return entry["status"] if entry else None

    def counts(self) -> Dict[str, int]:
        """Job tallies by status (the ``--summary-json`` queue block)."""
        out = {s: 0 for s in _STATUSES}
        for entry in self._jobs.values():
            out[entry["status"]] += 1
        return out

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, key: str) -> bool:
        return key in self._jobs

    def to_dict(self) -> dict:
        """The ``repro.campaign.queue/v1`` checkpoint document."""
        return {
            "schema": QUEUE_SCHEMA,
            "jobs": list(self._jobs.values()),
        }
