"""The sweep engine: queue + cache + store + worker pool.

:meth:`CampaignEngine.run_sweep` is the whole campaign loop:

1. register every job in the persistent :class:`JobQueue` (a resume
   passes the same queue file back in and only the not-yet-done jobs
   remain pending);
2. satisfy pending jobs from the content-addressed :class:`RunCache`
   (a re-run of an identical sweep is 100% hits, zero recomputation);
3. shard the remaining misses over a ``multiprocessing`` pool
   (``workers=1`` runs inline — no fork, easiest to debug);
4. as each result lands: write it to the cache and the store, mark the
   queue entry done, and checkpoint the queue atomically — so a kill at
   any instant loses at most the jobs still in flight.

Progress is narrated one line per completion in the
``LiveProgressReporter`` style (``[done/total] key label elapsed``),
and per-job outcomes are mirrored as ``campaign.jobs{event=...}`` obs
counters next to the run-cache counters.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, TextIO, Tuple

from repro.campaign.cache import RunCache
from repro.campaign.jobs import Job
from repro.campaign.queue import JobQueue
from repro.campaign.runner import pool_execute
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError
from repro.obs import context as obs_context

SUMMARY_SCHEMA = "repro.campaign.summary/v1"


def _count(event: str) -> None:
    obs = obs_context.current()
    if obs.enabled:
        obs.metrics.counter("campaign.jobs", event=event).inc()


def _count_worker(row: dict) -> None:
    """Mirror a computed row's worker meta as ``campaign.worker`` metrics.

    Recorded parent-side when the row lands: forked pool workers have
    their own registries that die with the process, so the utilization
    signal has to come back through the row's ``meta`` block.
    """
    obs = obs_context.current()
    if not obs.enabled:
        return
    meta = row.get("meta", {})
    worker = str(meta.get("worker") or "unknown")
    obs.metrics.counter("campaign.worker", worker=worker, event="jobs").inc()
    wait = meta.get("queue_wait_s")
    if isinstance(wait, (int, float)):
        obs.metrics.histogram(
            "campaign.worker.queue_wait_s", worker=worker
        ).observe(float(wait))
    wall = meta.get("compute_wall_s")
    if isinstance(wall, (int, float)):
        obs.metrics.histogram(
            "campaign.worker.run_s", worker=worker
        ).observe(float(wall))


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` call did (the ``--summary-json`` document)."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    failed: int = 0
    wall_s: float = 0.0
    workers: int = 1
    cache_stats: Dict[str, int] = field(default_factory=dict)
    queue_counts: Dict[str, int] = field(default_factory=dict)
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def cache_hit_ratio(self) -> float:
        done = self.computed + self.cached
        return self.cached / done if done else 0.0

    def to_dict(self) -> dict:
        """The ``repro.campaign.summary/v1`` document."""
        return {
            "schema": SUMMARY_SCHEMA,
            "total": self.total,
            "computed": self.computed,
            "cached": self.cached,
            "failed": self.failed,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "wall_s": round(self.wall_s, 6),
            "workers": self.workers,
            "cache": dict(self.cache_stats),
            "queue": dict(self.queue_counts),
            "errors": [{"key": k, "error": e} for k, e in self.errors],
        }


class CampaignEngine:
    """Executes job sets against a store/cache pair with N workers."""

    def __init__(
        self,
        store: ResultStore,
        cache: RunCache,
        workers: int = 1,
        log: Optional[Callable[[str], None]] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.cache = cache
        self.workers = workers
        if log is not None:
            self._log = log
        else:
            out = stream if stream is not None else sys.stderr
            self._log = lambda msg: print(msg, file=out, flush=True)

    def run_sweep(
        self,
        jobs: Iterable[Job],
        queue: JobQueue,
        code: Optional[str] = None,
        on_complete: Optional[Callable[[str, Optional[dict]], None]] = None,
    ) -> SweepOutcome:
        """Run (or resume) a sweep; returns the outcome summary.

        ``on_complete(key, row_or_None)`` fires after every completion
        *and* its checkpoint — tests use it to kill a sweep at a
        deterministic point and assert resume semantics.
        """
        if code is None:
            from repro.obs.provenance import code_version

            code = code_version()
        t0 = time.perf_counter()
        out = SweepOutcome(workers=self.workers)

        jobs = list(jobs)
        for job in jobs:
            queue.add(job.key(code), job.to_dict())
        queue.checkpoint()
        pending = queue.pending()
        out.total = len(queue)
        done_already = out.total - len(pending)
        if done_already:
            self._log(
                f"campaign: resuming — {done_already}/{out.total} job(s) "
                f"already done in {queue.path}"
            )

        # -- cache pass ---------------------------------------------------
        misses: List[Tuple[str, dict, str, float]] = []
        for key, job_doc in pending:
            row = self.cache.get(key)
            if row is not None:
                self.store.put(row)
                queue.mark_done(key)
                out.cached += 1
                _count("cached")
                self._progress(out, key, row, source="cache")
                if on_complete is not None:
                    on_complete(key, row)
            else:
                misses.append((key, job_doc, code, time.time()))
        queue.checkpoint()

        # -- compute pass -------------------------------------------------
        for key, row, error in self._execute(misses):
            if row is None:
                queue.mark_failed(key, error)
                out.failed += 1
                out.errors.append((key, error))
                _count("failed")
                self._log(f"campaign: job {key} FAILED: {error}")
            else:
                self.cache.put(key, row)
                self.store.put(row)
                queue.mark_done(key)
                out.computed += 1
                _count("computed")
                _count_worker(row)
                self._progress(out, key, row, source="computed")
            queue.checkpoint()
            if on_complete is not None:
                on_complete(key, row)

        out.wall_s = time.perf_counter() - t0
        out.cache_stats = self.cache.stats()
        out.queue_counts = queue.counts()
        return out

    def _execute(self, items: List[Tuple[str, dict, str, float]]):
        """Yield ``(key, row, error)`` for each miss, sharded if asked."""
        if not items:
            return
        if self.workers == 1 or len(items) == 1:
            for item in items:
                yield pool_execute(item)
            return
        import multiprocessing as mp

        procs = min(self.workers, len(items))
        with mp.Pool(processes=procs) as pool:
            yield from pool.imap_unordered(pool_execute, items)

    def _progress(
        self, out: SweepOutcome, key: str, row: dict, source: str
    ) -> None:
        from repro.util.format import format_flops

        done = out.computed + out.cached + out.failed
        best = row.get("best", {})
        self._log(
            f"[{done}/{out.total}] {key} {row.get('label', '')} "
            f"{best.get('elapsed_s', 0.0):.1f}s "
            f"{format_flops(best.get('total_flops_per_s', 0.0))} "
            f"({source})"
        )
