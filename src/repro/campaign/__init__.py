"""Campaign-at-scale: sharded sweeps, run cache, result store, serving.

The paper's record runs (§VI-B, Fig 12) were *campaigns* — fleet scan,
warm-up, several consecutive runs, best-of reporting — and its tuning
figures (Fig 8) are sweeps over the (grid, broadcast, scenario, ...)
matrix.  This package turns :func:`repro.tools.campaign.run_campaign`
from a one-config workflow into a production campaign engine:

- :mod:`repro.campaign.jobs` — the sweep matrix: a :class:`Job` is one
  ``(machine, N, B, grid, bcast, scenario)`` point with a canonical
  JSON form and a content-addressed key (config hash + code version);
- :mod:`repro.campaign.queue` — persistent, atomically checkpointed
  job queue giving ``--resume`` after a mid-sweep kill;
- :mod:`repro.campaign.cache` — content-addressed whole-run cache (the
  PR-2 LRU tile cache's on-disk sibling) with ``campaign.run_cache``
  obs counters;
- :mod:`repro.campaign.store` — indexed JSONL result store, queryable
  through the same :func:`repro.obs.analysis.regression_deltas`
  machinery as ``repro profile --against`` / ``bench --against``;
- :mod:`repro.campaign.engine` — the multiprocessing worker pool tying
  queue + cache + store together (``repro campaign --workers N``);
- :mod:`repro.campaign.serve` — the long-lived HTTP/JSON API
  (``repro serve``) with single-flight dedupe of identical requests.

See ``docs/CAMPAIGN.md`` for the architecture and the cache-key
definition.
"""

from repro.campaign.cache import RunCache
from repro.campaign.engine import CampaignEngine, SweepOutcome
from repro.campaign.jobs import RESULT_SCHEMA, SWEEP_SCHEMA, Job, SweepSpec
from repro.campaign.queue import JobQueue
from repro.campaign.runner import execute_job
from repro.campaign.store import ResultStore, compare_stores

__all__ = [
    "CampaignEngine",
    "Job",
    "JobQueue",
    "RESULT_SCHEMA",
    "ResultStore",
    "RunCache",
    "SWEEP_SCHEMA",
    "SweepOutcome",
    "SweepSpec",
    "compare_stores",
    "execute_job",
]
