"""Content-addressed whole-run cache (the tile cache's on-disk sibling).

PR 2's LRU tile cache memoizes LCG tiles *within* a process because a
tile is a pure function of ``(n, seed, a, c, range)``.  A campaign run
is pure the same way — a function of the job's canonical form and the
code version — so identical configs across sweeps, resumes, and serve
requests should be computed exactly once.  :class:`RunCache` stores one
``repro.campaign.result/v1`` document per key under a cache directory
(``<key>.json``, written atomically), and mirrors hit/miss/store events
into the obs metrics registry as ``campaign.run_cache{event=...}``
counters — the same idiom as ``lcg.tile_cache`` — so closed-loop tests
and ``repro metrics`` can verify a re-run sweep was 100% cache hits
with zero recomputation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs import context as obs_context
from repro.util.atomicio import atomic_write_json


def _count(event: str) -> None:
    """Mirror a cache event as a ``campaign.run_cache`` obs counter."""
    obs = obs_context.current()
    if obs.enabled:
        obs.metrics.counter("campaign.run_cache", event=event).inc()


class RunCache:
    """Directory of content-addressed campaign results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached result row for ``key``, or None.

        An unreadable or key-mismatched entry counts as a miss (and is
        recomputed) rather than poisoning the sweep.
        """
        p = self._path(key)
        try:
            row = json.loads(p.read_text())
        except (OSError, ValueError):
            row = None
        if not isinstance(row, dict) or row.get("key") != key:
            self.misses += 1
            _count("miss")
            return None
        self.hits += 1
        _count("hit")
        return row

    def put(self, key: str, row: dict) -> str:
        """Store a result row under its content address (atomic write)."""
        path = atomic_write_json(self._path(key), row)
        self.stores += 1
        _count("store")
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        """Counters + occupancy (mirrors ``TileCache.stats``)."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
