"""Job execution: one sweep point → one ``repro.campaign.result/v1`` row.

:func:`execute_job` is the function the worker pool runs.  It is a pure
function of the job's canonical form (plus the code version): it builds
the :class:`~repro.core.config.BenchmarkConfig`, draws the seeded GCD
fleet, and runs the full §VI-B record-run workflow — scan, exclusion,
warm-up, ``num_runs`` consecutive runs — against the analytic model via
:func:`repro.tools.campaign.run_campaign`.  Determinism is what makes
the content-addressed cache sound, so nothing time- or host-dependent
goes into the result body; volatile facts (wall time spent computing,
worker pid, UTC stamp) ride in the separate ``"meta"`` block which the
store's :meth:`~repro.campaign.store.ResultStore.snapshot` excludes
from equality comparisons.

The module-level function signature (``dict -> dict``) keeps everything
picklable for ``multiprocessing``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from datetime import datetime, timezone
from typing import Dict, Optional, Tuple

from repro.campaign.jobs import RESULT_SCHEMA, Job


def execute_job(job_doc: dict, code: Optional[str] = None) -> dict:
    """Run one campaign job; returns the result row (deterministic body)."""
    from repro.machine import GcdFleet
    from repro.obs.provenance import code_version
    from repro.tools.campaign import run_campaign

    t0 = time.perf_counter()
    job = Job.from_dict(job_doc)
    code = code or code_version()
    cfg = job.to_config()
    fleet = GcdFleet(
        cfg.num_ranks + job.spare_nodes * cfg.machine.node.gcds_per_node,
        seed=job.seed,
    )
    res = run_campaign(
        cfg, fleet=fleet, num_runs=job.num_runs,
        scenario=job.load_scenario(),
    )
    best = res.best
    row: Dict[str, object] = {
        "schema": RESULT_SCHEMA,
        "key": job.key(code),
        "code": code,
        "label": job.label,
        "job": job.to_dict(),
        "config": cfg.describe(),
        "best": {
            "run": best.index,
            "elapsed_s": best.elapsed_s,
            "gflops_per_gcd": best.gflops_per_gcd,
            "total_flops_per_s": best.total_flops_per_s,
        },
        "runs": [
            {
                "run": r.index,
                "speed_multiplier": r.speed_multiplier,
                "elapsed_s": r.elapsed_s,
                "total_flops_per_s": r.total_flops_per_s,
            }
            for r in res.runs
        ],
        "variability": res.variability,
        "exclusion_applied": res.exclusion_applied,
        "excluded_nodes": (
            len(res.scan.slow_nodes) if res.scan is not None else 0
        ),
        "meta": {
            "completed_utc": datetime.now(timezone.utc).isoformat(),
            "worker_pid": os.getpid(),
            "compute_wall_s": round(time.perf_counter() - t0, 6),
        },
    }
    return row


def pool_execute(item: Tuple) -> Tuple[str, Optional[dict], str]:
    """Pool adapter: ``(key, job_doc, code[, enqueued_unix])`` →
    ``(key, row | None, error)``.

    Exceptions never cross the pool boundary raw — a failed job becomes
    a ``(key, None, message)`` triple so one bad config cannot abort a
    thousand-job sweep.

    The optional fourth element is the engine-side enqueue timestamp
    (``time.time()``, comparable across forked workers); when present,
    the result row's ``meta`` gains the fleet-utilization facts —
    ``worker`` (the pool process name), ``queue_wait_s`` (enqueue →
    start), and ``started_unix`` — which
    :func:`repro.obs.fleet.build_fleet` turns into per-worker
    queue-wait/run-time rollups and the campaign dashboard's Gantt.
    """
    key, job_doc, code = item[0], item[1], item[2]
    enqueued_unix = float(item[3]) if len(item) > 3 else None
    started_unix = time.time()
    try:
        row = execute_job(job_doc, code=code)
    except Exception as exc:  # lint: ignore[hygiene] - worker boundary: error crosses the pool as data
        return key, None, f"{type(exc).__name__}: {exc}"
    meta = row.setdefault("meta", {})
    meta["worker"] = multiprocessing.current_process().name
    meta["started_unix"] = round(started_unix, 6)
    if enqueued_unix is not None:
        meta["queue_wait_s"] = round(max(0.0, started_unix - enqueued_unix), 6)
    return key, row, ""
