"""``repro serve``: a long-lived HTTP/JSON campaign API (stdlib only).

The "heavy traffic" story: a :class:`ThreadingHTTPServer` front-end
over the same store/cache pair the sweep engine uses.  Every ``POST
/run`` is content-addressed exactly like a sweep job, so

- a config already in the run cache answers from disk without
  recomputing;
- identical requests *in flight at the same time* are single-flighted:
  the first request computes, the duplicates park on an event and
  receive the same result (``"source": "joined"``) — the classic
  request-coalescing pattern, keyed by the same hash as the cache;
- ``POST /run?stream=1`` streams newline-delimited JSON progress events
  (accepted → start/joined/cache → result) in the
  ``LiveProgressReporter`` spirit, so a client can watch a long job.

Endpoints::

    GET  /healthz           liveness probe
    GET  /stats             cache/dedupe/store counters
    GET  /metrics           Prometheus text: request counts, latency
    GET  /results           store summary rows
    GET  /results/<key>     one full result row
    POST /run[?stream=1]    run (or fetch) one campaign job document
    POST /tune              block-size sweep rows for a machine
    POST /profile           stored row + optional deltas vs another key

The service carries its own :class:`~repro.obs.metrics.MetricsRegistry`
(independent of the ambient obs context, which stays mirrored): every
request increments ``serve.requests{endpoint=, status=}``, observes
``serve.latency_s{endpoint=}``, and moves the ``serve.inflight`` gauge,
with ``campaign.serve{event=}`` counting dedupe/cache sources.  ``GET
/metrics`` renders all of it through the same
:func:`repro.obs.export.to_prometheus_text` renderer the exporter CLI
uses.  Non-stream ``POST /run`` responses carry an ``X-Repro-Source``
header (``cache``/``joined``/``computed``).

Errors are structured JSON (``{"error", "status", "path"}``) with
conventional status codes.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.campaign.cache import RunCache
from repro.campaign.jobs import Job
from repro.campaign.runner import execute_job
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError
from repro.obs import context as obs_context
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry

SERVE_SCHEMA = "repro.campaign.serve/v1"

#: a joined request waits at most this long for the computing request
JOIN_TIMEOUT_S = 600.0


def _count(event: str) -> None:
    obs = obs_context.current()
    if obs.enabled:
        obs.metrics.counter("campaign.serve", event=event).inc()


class _Flight:
    """In-flight computation other requests for the same key can join."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.row: Optional[dict] = None
        self.error = ""


class CampaignService:
    """The request-handling core, independent of HTTP plumbing."""

    def __init__(
        self,
        store: ResultStore,
        cache: RunCache,
        code: Optional[str] = None,
    ) -> None:
        if code is None:
            from repro.obs.provenance import code_version

            code = code_version()
        self.store = store
        self.cache = cache
        self.code = code
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self._http_inflight = 0
        self.counters = {
            "requests": 0, "computed": 0, "cache_hits": 0, "joined": 0,
            "errors": 0,
        }

    def _event(self, event: str) -> None:
        """Count a service event in the scrape registry + obs mirror."""
        self.metrics.counter("campaign.serve", event=event).inc()
        _count(event)

    # -- request-level telemetry (driven by the HTTP handler) -------------

    def request_started(self) -> None:
        """Raise the ``serve.inflight`` gauge as a request enters."""
        with self._lock:
            self._http_inflight += 1
            self.metrics.gauge("serve.inflight").set(self._http_inflight)

    def request_finished(
        self, endpoint: str, status: int, elapsed_s: float
    ) -> None:
        """Record one finished request: latency, status, in-flight."""
        with self._lock:
            self._http_inflight -= 1
            self.metrics.gauge("serve.inflight").set(self._http_inflight)
        self.metrics.counter(
            "serve.requests", endpoint=endpoint, status=str(status)
        ).inc()
        self.metrics.histogram(
            "serve.latency_s", endpoint=endpoint
        ).observe(elapsed_s)

    def execute(
        self,
        job_doc: dict,
        emit: Optional[Callable[[dict], None]] = None,
    ) -> Tuple[dict, str]:
        """Run (or fetch) one job; returns ``(row, source)``.

        ``source`` is ``"cache"``, ``"joined"``, or ``"computed"`` —
        never two computations of the same key at the same time.
        """
        emit = emit or (lambda _ev: None)
        job = Job.from_dict(job_doc)
        key = job.key(self.code)
        emit({"event": "accepted", "key": key, "label": job.label})
        with self._lock:
            self.counters["requests"] += 1
            row = self.cache.get(key)
            if row is not None:
                self.counters["cache_hits"] += 1
                self._event("cache_hit")
                if key not in self.store:
                    self.store.put(row)
                emit({"event": "cache_hit", "key": key})
                return row, "cache"
            flight = self._inflight.get(key)
            owner = flight is None
            if owner:
                flight = _Flight()
                self._inflight[key] = flight
        if not owner:
            emit({"event": "joined", "key": key})
            if not flight.event.wait(JOIN_TIMEOUT_S):
                raise ConfigurationError(
                    f"timed out joining in-flight job {key}"
                )
            if flight.row is None:
                raise ConfigurationError(
                    f"joined job {key} failed: {flight.error}"
                )
            with self._lock:
                self.counters["joined"] += 1
            self._event("joined")
            return flight.row, "joined"
        try:
            emit({"event": "start", "key": key})
            row = execute_job(job.to_dict(), code=self.code)
            with self._lock:
                self.cache.put(key, row)
                self.store.put(row)
                self.counters["computed"] += 1
            self._event("computed")
            flight.row = row
            return row, "computed"
        except Exception as exc:  # lint: ignore[hygiene] - flight boundary: joiners need the error
            flight.error = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self.counters["errors"] += 1
            self._event("error")
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

    # -- secondary request kinds -----------------------------------------

    def tune(self, body: dict) -> list:
        """Block-size sweep rows (the ``repro tune block`` workflow)."""
        from repro.machine import get_machine
        from repro.model.tuner import sweep_block_sizes

        machine = get_machine(str(body.get("machine", "frontier")))
        nl = int(body.get("nl", 0))
        grid = int(body.get("grid", 2))
        blocks = [int(b) for b in body.get("blocks", [])]
        if nl < 1 or not blocks:
            raise ConfigurationError(
                "tune request needs positive 'nl' and a 'blocks' list"
            )
        return sweep_block_sizes(
            machine, nl, grid, blocks,
            bcast_algorithm=str(body.get("bcast", "bcast")),
        )

    def profile(self, body: dict) -> dict:
        """A stored row (+ optional per-run deltas vs another key)."""
        key = body.get("key")
        row = self.store.get(key) if isinstance(key, str) else None
        if row is None:
            raise KeyError(f"no stored result for key {key!r}")
        out = {"key": key, "label": row.get("label"),
               "best": row.get("best"), "runs": row.get("runs"),
               "variability": row.get("variability")}
        against = body.get("against")
        if against is not None:
            base = self.store.get(against)
            if base is None:
                raise KeyError(f"no stored result for key {against!r}")
            from repro.obs.analysis import regression_deltas

            deltas = regression_deltas(
                _run_seconds(row), _run_seconds(base),
                threshold=float(body.get("max_regress", 0.25)),
            )
            out["against"] = against
            out["deltas"] = [
                {"name": d.name, "current_s": d.current_s,
                 "baseline_s": d.baseline_s, "delta": d.delta,
                 "regressed": d.regressed}
                for d in deltas
            ]
        return out

    def stats(self) -> dict:
        """The ``GET /stats`` document (counters, cache, store size)."""
        with self._lock:
            counters = dict(self.counters)
            inflight = len(self._inflight)
        return {
            "schema": SERVE_SCHEMA,
            "code": self.code,
            "counters": counters,
            "inflight": inflight,
            "cache": self.cache.stats(),
            "store_rows": len(self.store),
        }


def _run_seconds(row: dict) -> Dict[str, float]:
    out = {"best": float(row["best"]["elapsed_s"])}
    for r in row.get("runs", []):
        out[f"run{r['run']}"] = float(r["elapsed_s"])
    return out


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: A003 - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- plumbing ---------------------------------------------------------

    def _send_json(
        self, doc, status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(doc, indent=2).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status_sent = status

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status_sent = status

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(
            {"error": message, "status": status,
             "path": urlparse(self.path).path},
            status=status,
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw.decode() or "{}")
        if not isinstance(doc, dict):
            raise ConfigurationError("request body must be a JSON object")
        return doc

    # -- routes -----------------------------------------------------------

    def _endpoint(self) -> str:
        """Normalized endpoint label (``/results/<key>`` collapses to
        one label so the scrape cardinality stays bounded)."""
        path = urlparse(self.path).path
        if path.startswith("/results/"):
            return "/results/{key}"
        return path

    def _timed(self, dispatch: Callable[[], None]) -> None:
        """Run one request under the latency/in-flight instrumentation."""
        self._status_sent = 200
        self.service.request_started()
        t0 = time.perf_counter()
        try:
            dispatch()
        finally:
            self.service.request_finished(
                self._endpoint(), self._status_sent,
                time.perf_counter() - t0,
            )

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._timed(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._timed(self._route_post)

    def _route_get(self) -> None:
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._send_json({"ok": True, "schema": SERVE_SCHEMA})
        elif url.path == "/stats":
            self._send_json(self.service.stats())
        elif url.path == "/metrics":
            self._send_text(to_prometheus_text(self.service.metrics))
        elif url.path == "/results":
            self._send_json({"rows": self.service.store.rows()})
        elif url.path.startswith("/results/"):
            key = url.path.rsplit("/", 1)[1]
            row = self.service.store.get(key)
            if row is None:
                self._send_error_json(404, f"no result for key {key!r}")
            else:
                self._send_json(row)
        else:
            self._send_error_json(404, f"unknown path {url.path!r}")

    def _route_post(self) -> None:
        url = urlparse(self.path)
        try:
            body = self._read_body()
        except (ValueError, ConfigurationError) as exc:
            self._send_error_json(400, f"bad request body: {exc}")
            return
        try:
            if url.path == "/run":
                stream = parse_qs(url.query).get("stream", ["0"])[0] in (
                    "1", "true", "yes",
                )
                self._handle_run(body, stream)
            elif url.path == "/tune":
                self._send_json({"rows": self.service.tune(body)})
            elif url.path == "/profile":
                self._send_json(self.service.profile(body))
            else:
                self._send_error_json(404, f"unknown path {url.path!r}")
        except (ConfigurationError, KeyError) as exc:
            status = 404 if isinstance(exc, KeyError) else 400
            self._send_error_json(status, str(exc))

    def _handle_run(self, body: dict, stream: bool) -> None:
        if not stream:
            row, source = self.service.execute(body)
            self._send_json(
                {"source": source, "result": row},
                headers={"X-Repro-Source": source},
            )
            return
        # Close-delimited NDJSON progress stream (HTTP/1.0 semantics).
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()

        def emit(event: dict) -> None:
            self.wfile.write(json.dumps(event).encode() + b"\n")
            self.wfile.flush()

        try:
            row, source = self.service.execute(body, emit=emit)
            emit({"event": "result", "source": source, "result": row})
        except (ConfigurationError, KeyError) as exc:
            emit({"event": "error", "error": str(exc)})


def make_server(
    store: Union[str, Path, ResultStore],
    cache: Union[str, Path, RunCache],
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but do not start) the serving HTTP server.

    Pass ``port=0`` to bind an ephemeral port (tests); the bound
    address is ``server.server_address``.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    if not isinstance(cache, RunCache):
        cache = RunCache(cache)
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = CampaignService(store, cache)  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server
