"""Queryable campaign result store (indexed JSONL).

One line per result row, indexed in memory by content-address key, with
the whole file rewritten atomically on every put — the store's on-disk
bytes are always a complete, loadable document, which is what lets the
resume test demand *identical* store contents from an interrupted-then-
resumed sweep and an uninterrupted one.

The store is queryable by the repo's existing delta machinery:
:func:`compare_stores` joins two stores (or exported documents) on the
job label and feeds the per-config best elapsed seconds to
:func:`repro.obs.analysis.regression_deltas` — the same gate engine
behind ``repro profile --against`` and ``bench hotpaths --against`` —
so a campaign sweep gates against a recorded baseline sweep with the
same semantics and rendering as every other gate in the repo.

Row schema is ``repro.campaign.result/v1`` (see
:mod:`repro.campaign.runner`); :func:`check_result_row` is the
validation the ``campaign-store`` lint checker delegates to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.campaign.jobs import RESULT_SCHEMA
from repro.errors import ConfigurationError
from repro.util.atomicio import atomic_write_text

STORE_SCHEMA = "repro.campaign.store/v1"


def check_result_row(row) -> List[str]:
    """Problem strings for one store row (empty = valid)."""
    problems: List[str] = []
    if not isinstance(row, dict):
        return [f"row must be an object, got {type(row).__name__}"]
    if row.get("schema") != RESULT_SCHEMA:
        problems.append(
            f"row schema must be {RESULT_SCHEMA!r}, got {row.get('schema')!r}"
        )
    key = row.get("key")
    if not (isinstance(key, str) and len(key) == 16
            and all(c in "0123456789abcdef" for c in key)):
        problems.append(f"'key' must be a 16-hex content address, got {key!r}")
    if not isinstance(row.get("code"), str) or not row.get("code"):
        problems.append("'code' (code version) must be a non-empty string")
    if not isinstance(row.get("label"), str) or not row.get("label"):
        problems.append("'label' must be a non-empty string")
    job = row.get("job")
    if not isinstance(job, dict):
        problems.append("'job' document is missing")
    else:
        from repro.campaign.jobs import Job

        try:
            Job.from_dict(job)
        except ConfigurationError as exc:
            problems.append(f"job: {exc}")
    best = row.get("best")
    if not isinstance(best, dict):
        problems.append("'best' summary is missing")
    else:
        for k in ("elapsed_s", "total_flops_per_s"):
            if not isinstance(best.get(k), (int, float)):
                problems.append(f"best.{k} must be a number")
    runs = row.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("'runs' must be a non-empty list")
    if not isinstance(row.get("exclusion_applied"), bool):
        problems.append("'exclusion_applied' must be a boolean")
    return problems


class ResultStore:
    """Key-indexed JSONL store of campaign result rows."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._rows: Dict[str, dict] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot load campaign store {self.path}: {exc}"
            )
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{self.path}:{i + 1}: store row is not valid "
                    f"JSON: {exc}"
                )
            problems = check_result_row(row)
            if problems:
                raise ConfigurationError(
                    f"{self.path}:{i + 1}: {problems[0]}"
                )
            self._rows[row["key"]] = row

    # -- mutation ---------------------------------------------------------

    def put(self, row: dict, flush: bool = True) -> None:
        """Insert/replace a row by key (validated), optionally persist."""
        problems = check_result_row(row)
        if problems:
            raise ConfigurationError(f"invalid store row: {problems[0]}")
        self._rows[row["key"]] = row
        if flush:
            self.flush()

    def flush(self) -> str:
        """Atomically rewrite the JSONL file (rows in sorted-key order)."""
        lines = [
            json.dumps(self._rows[k], sort_keys=True)
            for k in sorted(self._rows)
        ]
        return atomic_write_text(self.path, "\n".join(lines) + "\n")

    # -- queries ----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The full result row for ``key``, or None."""
        return self._rows.get(key)

    def keys(self) -> List[str]:
        """All content-address keys, sorted."""
        return sorted(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def snapshot(self) -> Dict[str, dict]:
        """Deterministic content view: rows minus the volatile ``meta``.

        Two sweeps over the same matrix with the same code version must
        produce equal snapshots — this is the store-equality basis the
        resume/determinism tests assert on.
        """
        return {
            key: {k: v for k, v in row.items() if k != "meta"}
            for key, row in self._rows.items()
        }

    def rows(self, machine: Optional[str] = None,
             scenario: Optional[str] = None) -> List[dict]:
        """Flat summary rows (for tables), optionally filtered."""
        out = []
        for key in sorted(self._rows):
            row = self._rows[key]
            job = row.get("job", {})
            if machine and job.get("machine") != machine:
                continue
            if scenario and _scenario_name(row) != scenario:
                continue
            best = row.get("best", {})
            out.append({
                "key": key,
                "label": row.get("label", ""),
                "grid": f"{job.get('grid')}x{job.get('grid')}",
                "bcast": job.get("bcast", ""),
                "scenario": _scenario_name(row),
                "best_elapsed_s": best.get("elapsed_s"),
                "best_flops": best.get("total_flops_per_s"),
                "variability": row.get("variability"),
            })
        return out

    def all_rows(self) -> List[dict]:
        """Every full result row, in sorted-key order."""
        return [self._rows[k] for k in sorted(self._rows)]

    def elapsed_by_label(self) -> Dict[str, float]:
        """label → best elapsed seconds (the gate comparison basis).

        Raises :class:`ConfigurationError` when two rows share a label:
        a label names the *shape* of a job (machine/N/B/grid/bcast/
        scenario) but not its seed, run count, or spare nodes, so a
        store that accumulated rows from variant sweeps can hold
        distinct keys under one label — a silent overwrite here would
        gate against an arbitrary one of them.
        """
        out: Dict[str, float] = {}
        owners: Dict[str, str] = {}
        for key in sorted(self._rows):
            row = self._rows[key]
            _claim_label(owners, row["label"], key)
            out[row["label"]] = float(row["best"]["elapsed_s"])
        return out

    def export_document(self) -> dict:
        """Self-describing single-JSON export of the whole store."""
        return {
            "schema": STORE_SCHEMA,
            "rows": [self._rows[k] for k in sorted(self._rows)],
        }


def _claim_label(owners: Dict[str, str], label: str, key: str) -> None:
    """Record ``label`` as owned by ``key``; raise on a collision."""
    prior = owners.get(label)
    if prior is not None and prior != key:
        raise ConfigurationError(
            f"duplicate job label {label!r} in campaign store: keys "
            f"{prior} and {key} share it (jobs differing only in seed/"
            "num_runs/spare_nodes collide on label); gate by a store "
            "with one row per configuration"
        )
    owners[label] = key


def _scenario_name(row: dict) -> str:
    sc = row.get("job", {}).get("scenario")
    if not sc:
        return "baseline"
    return str(sc.get("name") or "scenario")


def _elapsed_map(source) -> Dict[str, float]:
    """label → elapsed from a ResultStore, export doc, or store path."""
    if isinstance(source, ResultStore):
        return source.elapsed_by_label()
    if isinstance(source, (str, Path)):
        p = Path(source)
        if p.suffix == ".jsonl":
            return ResultStore(p).elapsed_by_label()
        try:
            source = json.loads(p.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigurationError(f"cannot load store export {p}: {exc}")
    if isinstance(source, dict) and source.get("schema") == STORE_SCHEMA:
        out = {}
        owners: Dict[str, str] = {}
        for row in source.get("rows", []):
            problems = check_result_row(row)
            if problems:
                raise ConfigurationError(f"store export: {problems[0]}")
            _claim_label(owners, row["label"], row["key"])
            out[row["label"]] = float(row["best"]["elapsed_s"])
        return out
    raise ConfigurationError(
        "not a campaign store: expected a .jsonl store, a "
        f"{STORE_SCHEMA!r} export, or a ResultStore"
    )


def compare_stores(current, baseline, max_regress: float = 0.25):
    """Per-config regression deltas between two campaign stores.

    Joins on the job label and compares best elapsed seconds through
    :func:`repro.obs.analysis.regression_deltas` — identical gate
    semantics (and rendering, via
    :func:`repro.bench.regression.render_regressions`) to ``repro
    profile --against``.
    """
    from repro.obs.analysis import regression_deltas

    return regression_deltas(
        _elapsed_map(current), _elapsed_map(baseline), threshold=max_regress,
        min_seconds=0.0,
    )
