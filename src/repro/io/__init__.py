"""Input/output: HPL.dat-style configuration files and sweep expansion."""

from repro.io.hpldat import (
    HplDat,
    expand_configs,
    parse_hpldat,
    render_hpldat,
)

__all__ = ["HplDat", "expand_configs", "parse_hpldat", "render_hpldat"]
