"""HPL.dat-style configuration files.

Every HPL-family benchmark is configured by an ``HPL.dat`` file listing
problem sizes, block sizes and process grids, each line a count followed
by values.  This module reads and writes the same dialect (with a small
extension block for the simulator's knobs) and expands a file into the
cross-product of :class:`~repro.core.config.BenchmarkConfig` runs —
exactly how a tuning campaign is driven on the real systems.

Example file::

    HPLinpack benchmark input file (repro dialect)
    device out (ignored line)
    1            # of problems sizes (N)
    245760       Ns
    2            # of NBs
    768 1024     NBs
    1            # of process grids (P x Q)
    4            Ps
    4            Qs
    machine      frontier
    bcast        ring2m
    lookahead    1
    q_grid       2 4

Unknown key/value extension lines are rejected loudly rather than
silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError
from repro.machine import get_machine

#: extension keys accepted after the classic numeric blocks
_EXTENSION_KEYS = {
    "machine", "bcast", "lookahead", "gpu_aware", "port_binding",
    "q_grid", "seed", "panel_precision", "refinement_solver",
}


@dataclass
class HplDat:
    """Parsed contents of an HPL.dat-style file."""

    ns: List[int]
    nbs: List[int]
    ps: List[int]
    qs: List[int]
    machine: str = "frontier"
    bcast: Optional[str] = None
    lookahead: bool = True
    gpu_aware: bool = True
    port_binding: bool = True
    q_grid: Optional[tuple] = None
    seed: int = 42
    panel_precision: str = "fp16"
    refinement_solver: str = "ir"
    comments: List[str] = field(default_factory=list)

    def num_runs(self) -> int:
        """Cross-product size before tileability filtering."""
        return len(self.ns) * len(self.nbs) * len(self.ps)


def _read_count_block(lines: List[str], idx: int, what: str):
    """Read '<count> ...' then '<count> values ...' classic HPL lines."""
    if idx >= len(lines):
        raise ConfigurationError(f"unexpected end of file before {what} count")
    try:
        count = int(lines[idx].split()[0])
    except (ValueError, IndexError):
        raise ConfigurationError(
            f"expected a {what} count on line {idx + 1}: {lines[idx]!r}"
        ) from None
    if idx + 1 >= len(lines):
        raise ConfigurationError(f"missing {what} values after the count")
    tokens = lines[idx + 1].split()
    values = []
    for tok in tokens:
        try:
            values.append(int(tok))
        except ValueError:
            break
    if len(values) < count:
        raise ConfigurationError(
            f"{what}: count says {count} but line {idx + 2} has "
            f"{len(values)} integer value(s)"
        )
    return values[:count], idx + 2


def parse_hpldat(text_or_path) -> HplDat:
    """Parse an HPL.dat-style document (string or path)."""
    path = Path(str(text_or_path))
    if "\n" not in str(text_or_path) and path.exists():
        text = path.read_text()
    else:
        text = str(text_or_path)
    raw_lines = [ln.rstrip() for ln in text.splitlines()]
    lines = [ln for ln in raw_lines if ln.strip()]
    if len(lines) < 8:
        raise ConfigurationError(
            "HPL.dat too short: need the 2 header lines plus the N/NB/PQ "
            "blocks"
        )
    comments = lines[:2]  # classic HPL: two free-form header lines
    idx = 2
    ns, idx = _read_count_block(lines, idx, "problem-size (N)")
    nbs, idx = _read_count_block(lines, idx, "block-size (NB)")
    # Grid block: '<count> ...' then Ps line then Qs line.
    if idx >= len(lines):
        raise ConfigurationError("missing process-grid block")
    try:
        gcount = int(lines[idx].split()[0])
    except (ValueError, IndexError):
        raise ConfigurationError(
            f"expected a grid count on line: {lines[idx]!r}"
        ) from None
    ps_tokens = lines[idx + 1].split() if idx + 1 < len(lines) else []
    qs_tokens = lines[idx + 2].split() if idx + 2 < len(lines) else []
    try:
        ps = [int(t) for t in ps_tokens[:gcount]]
        qs = [int(t) for t in qs_tokens[:gcount]]
    except ValueError:
        raise ConfigurationError("process grid lines must hold integers") from None
    if len(ps) < gcount or len(qs) < gcount:
        raise ConfigurationError(
            f"grid count says {gcount} but Ps/Qs lines are shorter"
        )
    idx += 3

    dat = HplDat(ns=ns, nbs=nbs, ps=ps, qs=qs, comments=comments)
    # Extension lines: 'key value...'.
    for ln in lines[idx:]:
        parts = ln.split()
        key = parts[0].lower()
        if key not in _EXTENSION_KEYS:
            raise ConfigurationError(
                f"unknown HPL.dat extension key {key!r}; expected one of "
                f"{sorted(_EXTENSION_KEYS)}"
            )
        vals = parts[1:]
        if not vals:
            raise ConfigurationError(f"extension key {key!r} has no value")
        if key == "machine":
            dat.machine = vals[0].lower()
        elif key == "bcast":
            dat.bcast = vals[0].lower()
        elif key in ("lookahead", "gpu_aware", "port_binding"):
            setattr(dat, key, vals[0] not in ("0", "false", "no"))
        elif key == "q_grid":
            if len(vals) != 2:
                raise ConfigurationError("q_grid needs two integers")
            dat.q_grid = (int(vals[0]), int(vals[1]))
        elif key == "seed":
            dat.seed = int(vals[0])
        elif key == "panel_precision":
            dat.panel_precision = vals[0].lower()
        elif key == "refinement_solver":
            dat.refinement_solver = vals[0].lower()
    return dat


def expand_configs(dat: HplDat) -> Iterator[BenchmarkConfig]:
    """Yield a BenchmarkConfig per (N, NB, grid) combination.

    Combinations whose N does not tile the grid/block are *skipped* (the
    real HPL errors at runtime; a sweep tool is more useful skipping),
    unless nothing at all survives — then we raise.
    """
    machine = get_machine(dat.machine)
    default_bcast = "bcast" if machine.name == "summit" else "ring2m"
    produced = 0
    for n in dat.ns:
        for nb in dat.nbs:
            for p, q in zip(dat.ps, dat.qs):
                if n % (nb * p) or n % (nb * q):
                    continue
                kwargs = dict(
                    n=n, block=nb, machine=machine, p_rows=p, p_cols=q,
                    bcast_algorithm=dat.bcast or default_bcast,
                    lookahead=dat.lookahead,
                    gpu_aware=dat.gpu_aware,
                    port_binding=dat.port_binding,
                    seed=dat.seed,
                    panel_precision=dat.panel_precision,
                    refinement_solver=dat.refinement_solver,
                )
                if dat.q_grid is not None:
                    kwargs["q_rows"], kwargs["q_cols"] = dat.q_grid
                produced += 1
                yield BenchmarkConfig(**kwargs)
    if produced == 0:
        raise ConfigurationError(
            "no (N, NB, P, Q) combination in the file tiles cleanly"
        )


def render_hpldat(dat: HplDat) -> str:
    """Serialize back to the file dialect (round-trips with parse)."""
    lines = list(dat.comments) or [
        "HPLinpack benchmark input file (repro dialect)",
        "generated by repro.io.hpldat",
    ]
    lines.append(f"{len(dat.ns)}            # of problems sizes (N)")
    lines.append(" ".join(str(v) for v in dat.ns) + "  Ns")
    lines.append(f"{len(dat.nbs)}            # of NBs")
    lines.append(" ".join(str(v) for v in dat.nbs) + "  NBs")
    lines.append(f"{len(dat.ps)}            # of process grids (P x Q)")
    lines.append(" ".join(str(v) for v in dat.ps) + "  Ps")
    lines.append(" ".join(str(v) for v in dat.qs) + "  Qs")
    lines.append(f"machine      {dat.machine}")
    if dat.bcast:
        lines.append(f"bcast        {dat.bcast}")
    lines.append(f"lookahead    {1 if dat.lookahead else 0}")
    lines.append(f"gpu_aware    {1 if dat.gpu_aware else 0}")
    lines.append(f"port_binding {1 if dat.port_binding else 0}")
    if dat.q_grid:
        lines.append(f"q_grid       {dat.q_grid[0]} {dat.q_grid[1]}")
    lines.append(f"seed         {dat.seed}")
    lines.append(f"panel_precision {dat.panel_precision}")
    lines.append(f"refinement_solver {dat.refinement_solver}")
    return "\n".join(lines) + "\n"
