"""Phantom arrays: shape/dtype metadata without storage.

The extreme-scale configurations in the paper (N up to 20.6M over 29584
GCDs) cannot be materialized; a :class:`PhantomArray` stands in for a
real buffer so the *same* rank programs run as pure timing simulations.
Phantoms support the small amount of shape algebra the drivers need
(slicing block ranges, transposition, dtype casts) and raise loudly if
code tries to read values from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PhantomArray:
    """Metadata-only stand-in for an ndarray.

    Attributes
    ----------
    shape:
        Logical shape.
    dtype:
        NumPy dtype (drives nbytes and cast accounting).
    """

    shape: Tuple[int, ...]
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if any(s < 0 for s in self.shape):
            raise ConfigurationError(f"negative dimension in shape {self.shape}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def T(self) -> "PhantomArray":
        return PhantomArray(self.shape[::-1], self.dtype)

    def astype(self, dtype) -> "PhantomArray":
        """Phantom of the same shape with a different dtype."""
        return PhantomArray(self.shape, np.dtype(dtype))

    def reshape(self, *shape) -> "PhantomArray":
        """Phantom with a new shape (size must be preserved)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        new = PhantomArray(tuple(shape), self.dtype)
        if new.size != self.size:
            raise ConfigurationError(
                f"cannot reshape phantom of size {self.size} to {shape}"
            )
        return new

    def __array__(self, *args, **kwargs):  # pragma: no cover - guard
        raise ConfigurationError(
            "PhantomArray has no data; a timing-only code path tried to "
            "read values (this is a bug in the caller)"
        )


def nbytes_of(payload) -> int:
    """Message size in bytes of any supported payload type.

    Supports ndarrays, phantoms, None (control messages), and small
    Python objects (flat 64-byte estimate, like an MPI header).
    """
    if payload is None:
        return 0
    if isinstance(payload, (np.ndarray, PhantomArray)):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, (tuple, list)):
        return 16 + sum(nbytes_of(p) for p in payload)
    return 64
