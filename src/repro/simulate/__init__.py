"""Discrete-event SPMD simulator.

Rank programs are Python generators that yield communication/compute
:mod:`ops <repro.simulate.events>`; the :class:`~repro.simulate.engine.Engine`
advances per-rank virtual clocks, matches messages, charges shared NIC
resources (modelling eq. 5's NIC-sharing effect from first principles),
and — when payloads are real NumPy arrays — moves the actual data so the
very same run is numerically exact.  Swapping payloads for
:class:`~repro.simulate.phantom.PhantomArray` turns the identical rank
program into a pure timing simulation that scales to thousands of ranks.
"""

from repro.simulate.phantom import PhantomArray, nbytes_of
from repro.simulate.events import (
    Allreduce,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Now,
    Recv,
    Reduce,
    RouteSend,
    RouteSpec,
    Send,
    Wait,
)
from repro.simulate.engine import Engine, EngineResult, RankStats

__all__ = [
    "PhantomArray",
    "nbytes_of",
    "Allreduce",
    "Barrier",
    "Compute",
    "Irecv",
    "Isend",
    "Now",
    "Recv",
    "Reduce",
    "RouteSend",
    "RouteSpec",
    "Send",
    "Wait",
    "Engine",
    "EngineResult",
    "RankStats",
]
