"""Timeline (Gantt) rendering for engine runs.

With ``Engine(record_timeline=True)`` every compute span and blocking
receive wait becomes a ``(rank, start, end, kind)`` tuple; these helpers
turn that into a terminal Gantt chart or CSV — the visual counterpart of
the paper's per-iteration breakdown (Fig 10), but per rank.

The same renderers work on the unified telemetry stream: pass
``obs.tracer.as_timeline()`` (see :class:`repro.obs.SpanTracer`) and the
spans collected by the observability subsystem render identically.
Unknown span kinds draw as ``'?'`` and raise a one-time warning naming
them, so newly instrumented categories are never silently lumped
together.
"""

from __future__ import annotations

import csv
import warnings
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError

Span = Tuple[int, float, float, str]

#: kind -> glyph used in the Gantt; unknown kinds fall back to '?'
GLYPHS: Dict[str, str] = {
    "gemm": "#",
    "getrf": "G",
    "trsm": "T",
    "cast": "c",
    "fill": "f",
    "d2h": "d",
    "gemv": "v",
    "trsv": "t",
    "ir_gemv": "i",
    "ir_setup": "s",
    "ir_update": "u",
    "wait_recv": ".",
    "wait_send": ",",
    "wait_allreduce": ":",
    "wait_reduce": ";",
    "wait_barrier": "|",
    "comm_post": "'",
    "xfer": "x",
}

#: kinds already reported by :func:`_warn_unknown_kinds` (warn once each)
_warned_kinds: Set[str] = set()


def _warn_unknown_kinds(kinds) -> None:
    """One-time warning for kinds with no glyph (they all render '?')."""
    unknown = sorted(k for k in kinds if k not in GLYPHS)
    fresh = [k for k in unknown if k not in _warned_kinds]
    if fresh:
        _warned_kinds.update(fresh)
        warnings.warn(
            "timeline contains span kind(s) with no Gantt glyph: "
            f"{', '.join(fresh)} — all render as '?'; add them to "
            "repro.simulate.timeline.GLYPHS to tell them apart",
            stacklevel=3,
        )


def render_gantt(
    timeline: Sequence[Span],
    width: int = 100,
    ranks: Sequence[int] | None = None,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Render spans as one text row per rank.

    Each column is a time bucket; the glyph shown is the kind occupying
    the largest share of that bucket (idle = space).
    """
    if not timeline:
        raise ConfigurationError("timeline is empty; run the engine with "
                                 "record_timeline=True")
    lo = t0 if t0 is not None else min(s[1] for s in timeline)
    hi = t1 if t1 is not None else max(s[2] for s in timeline)
    if hi <= lo:
        raise ConfigurationError("empty time window")
    all_ranks = sorted({s[0] for s in timeline})
    ranks = list(ranks) if ranks is not None else all_ranks
    dt = (hi - lo) / width

    lines = [f"gantt: {lo:.4f}s .. {hi:.4f}s  ({dt * 1e3:.2f} ms/col)"]
    for rank in ranks:
        buckets: List[Dict[str, float]] = [dict() for _ in range(width)]
        for r, s, e, kind in timeline:
            if r != rank or e <= lo or s >= hi:
                continue
            first = max(int((s - lo) / dt), 0)
            last = min(int((e - lo) / dt), width - 1)
            for b in range(first, last + 1):
                b_lo = lo + b * dt
                b_hi = b_lo + dt
                overlap = min(e, b_hi) - max(s, b_lo)
                if overlap > 0:
                    d = buckets[b]
                    d[kind] = d.get(kind, 0.0) + overlap
        row = []
        for d in buckets:
            if not d:
                row.append(" ")
            else:
                kind = max(d, key=d.get)
                row.append(GLYPHS.get(kind, "?"))
        lines.append(f"r{rank:<3d}|" + "".join(row) + "|")
    used = {k for _r, _s, _e, k in timeline}
    _warn_unknown_kinds(used)
    legend = "  ".join(
        f"{GLYPHS.get(k, '?')}={k}" for k in sorted(used)
    )
    lines.append("legend: " + legend + "  (space=idle)")
    return "\n".join(lines)


def timeline_to_csv(timeline: Sequence[Span], path) -> Path:
    """Write the spans as CSV (rank, start_s, end_s, kind).

    The first line is a ``#``-prefixed comment carrying the kind legend
    (``kind=glyph`` pairs for every kind present), so a CSV consumed
    outside Python still documents its own vocabulary.
    """
    if not timeline:
        raise ConfigurationError("timeline is empty")
    used = sorted({k for _r, _s, _e, k in timeline})
    _warn_unknown_kinds(used)
    path = Path(path)
    with path.open("w", newline="") as fh:
        fh.write(
            "# legend: "
            + "  ".join(f"{k}={GLYPHS.get(k, '?')}" for k in used)
            + "\n"
        )
        writer = csv.writer(fh)
        writer.writerow(["rank", "start_s", "end_s", "kind"])
        writer.writerows(timeline)
    return path


def busy_fraction(timeline: Sequence[Span], elapsed: float) -> Dict[int, float]:
    """Per-rank fraction of the run spent in non-wait spans."""
    if elapsed <= 0:
        raise ConfigurationError("elapsed must be positive")
    busy: Dict[int, float] = {}
    for rank, s, e, kind in timeline:
        if not kind.startswith("wait"):
            busy[rank] = busy.get(rank, 0.0) + (e - s)
    return {r: min(v / elapsed, 1.0) for r, v in busy.items()}
