"""The conservative discrete-event engine driving SPMD rank programs.

Each rank is a generator yielding ops (:mod:`repro.simulate.events`).
The engine keeps a per-rank virtual clock and always advances the ready
rank with the *smallest* clock, so shared-resource charging (the
per-node NIC free times) is causally consistent.  Message arrival times
are fixed when the send is posted:

    start   = max(sender clock, sender-node NIC free, receiver-node NIC free)
    xfer    = size / (effective node NIC bandwidth × algorithm speed)
    arrival = start + latency + xfer + host-staging (if not GPU-aware)

Intra-node messages ride the GPU interconnect without contending for
NICs.  This is exactly the mechanism behind the paper's eq. (5): ranks
on one node that broadcast in the same direction serialize on the node's
NICs, so a ``Q_r × Q_c`` node-local grid trades row-traffic sharing
against column-traffic sharing.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from dataclasses import dataclass, field
from math import ceil, log2
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import SimulationError, StallError
from repro.machine.spec import MpiModel
from repro.machine.topology import CommCosts
from repro.obs import context as obs_context
from repro.simulate.events import (
    Allreduce,
    Barrier,
    BlockUntil,
    Compute,
    Irecv,
    Isend,
    Message,
    Now,
    PendingCollective,
    Recv,
    Reduce,
    RouteSend,
    Send,
    Wait,
)
from repro.simulate.phantom import PhantomArray, nbytes_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.compile import LinkPlan, RatePlan

_READY = 0
_BLOCKED_RECV = 1
_BLOCKED_WAIT = 2
_BLOCKED_COLL = 3
_DONE = 4

#: clock charged for posting a nonblocking operation
_POST_OVERHEAD_S = 5.0e-7


@dataclass
class RankStats:
    """Per-rank accounting: seconds per category plus traffic counters."""

    times: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    bytes_sent: int = 0
    messages_sent: int = 0

    def add(self, kind: str, seconds: float) -> None:
        """Accumulate seconds under a category (no-op for <= 0)."""
        if seconds > 0:
            self.times[kind] += seconds

    @property
    def total_compute(self) -> float:
        return sum(
            v for k, v in self.times.items() if not k.startswith("wait_")
        )

    @property
    def total_wait(self) -> float:
        return sum(v for k, v in self.times.items() if k.startswith("wait_"))


@dataclass
class EngineResult:
    """Outcome of an engine run."""

    #: virtual wall-clock: the time the last rank finished
    elapsed: float
    #: per-rank generator return values
    returns: List[Any]
    #: per-rank time/traffic accounting
    stats: List[RankStats]
    #: total events processed (diagnostic)
    events: int
    #: messages posted but never received — a healthy SPMD program
    #: drains every mailbox; nonzero indicates a protocol bug
    undelivered: int = 0


class _RankState:
    __slots__ = (
        "gen", "clock", "status", "value", "block_key", "block_handle",
        "done_value",
    )

    def __init__(self, gen) -> None:
        self.gen = gen
        self.clock = 0.0
        self.status = _READY
        self.value: Any = None  # value to send into the generator next
        self.block_key: Optional[Tuple[int, int, int]] = None
        self.block_handle: Optional[int] = None
        self.done_value: Any = None


class Engine:
    """Runs a set of rank programs to completion over a modelled network.

    Parameters
    ----------
    num_ranks:
        World size.
    comm_costs:
        Network/bandwidth/latency model (machine + port binding +
        GPU-awareness).
    node_of_rank:
        Maps a rank to its node id (from :class:`repro.grid.NodeGrid`);
        ``None`` places every rank on its own node.
    mpi:
        Library-behaviour knobs; defaults to the machine's.
    rate_multipliers:
        Optional per-rank GCD speed multipliers (from
        :class:`repro.machine.GcdFleet`); Compute durations divide by
        these.
    rate_plan:
        Optional piecewise-in-time per-rank rate schedules
        (:class:`repro.scenario.RatePlan`).  When given it supersedes
        ``rate_multipliers`` for Compute ops: the op finishes at the
        earliest ``T`` with ``∫ m_r(t) dt`` equal to the nominal
        seconds, and time spent in blackout segments (rate 0, e.g. a
        crashed rank) is accounted as ``wait_outage`` instead of
        compute.
    link_plan:
        Optional inter-node transfer perturbations
        (:class:`repro.scenario.LinkPlan`): per-message latency jitter
        and bandwidth brown-out windows.  Intra-node transfers are
        untouched.
    max_events:
        Safety valve against runaway programs.
    record_timeline:
        When True, every Compute op and blocking wait is appended to
        :attr:`timeline` as ``(rank, start, end, kind)`` — Gantt-chart
        raw material (costly at scale; off by default).
    obs:
        Observability handle to emit spans/metrics into; ``None``
        (default) uses the process-wide handle from
        :func:`repro.obs.current`, which is a disabled no-op unless the
        caller installed one.  Compute ops become ``executor`` spans,
        blocking waits ``engine`` spans, and point-to-point transfers
        ``comm`` spans.
    """

    def __init__(
        self,
        num_ranks: int,
        comm_costs: CommCosts,
        node_of_rank: Optional[Callable[[int], int]] = None,
        mpi: Optional[MpiModel] = None,
        rate_multipliers: Optional[Sequence[float]] = None,
        rate_plan: Optional["RatePlan"] = None,
        link_plan: Optional["LinkPlan"] = None,
        max_events: int = 200_000_000,
        record_timeline: bool = False,
        obs: Optional["obs_context.Observability"] = None,
    ) -> None:
        if num_ranks <= 0:
            raise SimulationError(f"num_ranks must be positive, got {num_ranks}")
        self.num_ranks = num_ranks
        self.costs = comm_costs
        self.node_of = node_of_rank or (lambda r: r)
        self.mpi = mpi if mpi is not None else comm_costs.machine.mpi
        # Hot-path precomputation: _transfer runs once per message segment
        # (routed broadcasts fan a panel into dozens of segments), so the
        # rank→node map and the cost-model scalars are resolved once here
        # instead of through property/call chains per transfer.  The
        # numbers are identical — CommCosts is frozen and node maps are
        # pure functions of the grid.
        self._rank_node = [self.node_of(r) for r in range(num_ranks)]
        self._intra_bw = comm_costs.intra_bw
        self._intra_lat = comm_costs.intra_latency
        self._nic_bw = comm_costs.node_nic_bw
        self._inter_lat = comm_costs.inter_latency
        self._staged = not comm_costs.gpu_aware
        self._lat_memo: Dict[Tuple[int, int], float] = {}
        if rate_multipliers is None:
            self._mult = np.ones(num_ranks)
        else:
            self._mult = np.asarray(rate_multipliers, dtype=float)
            if self._mult.shape != (num_ranks,):
                raise SimulationError(
                    f"rate_multipliers must have shape ({num_ranks},), got "
                    f"{self._mult.shape}"
                )
            if self._mult.min() <= 0:
                raise SimulationError("rate multipliers must be positive")
        self._rate_plan = rate_plan
        self._link_plan = link_plan
        self.max_events = max_events

        # resources: per-node NIC next-free times (egress / ingress) and
        # per-rank GPU-interconnect egress (intra-node transfers serialize
        # on the sender's own fabric link)
        self._nic_out: Dict[int, float] = defaultdict(float)
        self._nic_in: Dict[int, float] = defaultdict(float)
        self._link_out: Dict[int, float] = defaultdict(float)

        # message plumbing
        self._mailbox: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        self._recv_waiters: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        self._handles: Dict[int, dict] = {}
        self._next_handle = 1

        # collectives
        self._coll_seq: Dict[Tuple[Tuple[int, ...], str], List[int]] = {}
        self._pending_coll: Dict[Tuple, PendingCollective] = {}

        self.stats = [RankStats() for _ in range(num_ranks)]
        self._events = 0
        self.record_timeline = record_timeline
        #: (rank, start, end, kind) spans when record_timeline is on
        self.timeline: List[Tuple[int, float, float, str]] = []

        # observability: one enabled check per emission point; the
        # hot-path instruments are resolved once here so the enabled
        # path never does a registry lookup per message.
        self.obs = obs if obs is not None else obs_context.current()
        self._emit = self.obs.enabled
        if self._emit:
            self._span_add = self.obs.tracer.add
            m = self.obs.metrics
            self._ctr_bytes = {
                True: m.counter("comm.bytes_sent", scope="intra"),
                False: m.counter("comm.bytes_sent", scope="inter"),
            }
            self._ctr_msgs = {
                True: m.counter("comm.messages", scope="intra"),
                False: m.counter("comm.messages", scope="inter"),
            }

        # health telemetry: when a HealthMonitor rides on the handle the
        # run loop samples the engine at the monitor's cadence and the
        # mailbox tracks bytes posted but not yet received
        self._inflight_bytes = 0
        self._health = getattr(self.obs, "health", None) if self._emit else None
        if self._health is not None:
            self._health.attach(self.obs)

    # -- public API -----------------------------------------------------------

    def run(self, program_factory: Callable[[int], Any]) -> EngineResult:
        """Instantiate one generator per rank and run all to completion."""
        self._ranks = [_RankState(program_factory(r)) for r in range(self.num_ranks)]
        self._heap: List[Tuple[float, int]] = [
            (0.0, r) for r in range(self.num_ranks)
        ]
        heapq.heapify(self._heap)

        health = self._health
        while self._heap:
            clock, rank = heapq.heappop(self._heap)
            st = self._ranks[rank]
            if st.status != _READY or clock < st.clock:
                continue  # stale heap entry
            self._step(rank, st)
            self._events += 1
            if self._events > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; suspected "
                    "runaway rank program"
                )
            if health is not None and clock >= health.next_due:
                health.sample_engine(self, clock)  # may raise StallError

        not_done = [r for r, st in enumerate(self._ranks) if st.status != _DONE]
        if not_done:
            details = ", ".join(
                f"rank {r}: {self._describe_block(self._ranks[r])}"
                for r in not_done[:8]
            )
            raise StallError(
                f"{len(not_done)} rank(s) blocked with no progress possible "
                f"({details})",
                blocked=self.blocked_ranks(),
                elapsed=max(st.clock for st in self._ranks),
            )
        elapsed = max(st.clock for st in self._ranks)
        return EngineResult(
            elapsed=elapsed,
            returns=[st.done_value for st in self._ranks],
            stats=self.stats,
            events=self._events,
            undelivered=sum(len(q) for q in self._mailbox.values()),
        )

    # -- stepping --------------------------------------------------------------

    def _step(self, rank: int, st: _RankState) -> None:
        try:
            op = st.gen.send(st.value)
        except StopIteration as stop:
            st.status = _DONE
            st.done_value = stop.value
            return
        st.value = None
        self._dispatch(rank, st, op)

    def _resume(self, rank: int, value: Any = None) -> None:
        st = self._ranks[rank]
        st.status = _READY
        st.value = value
        heapq.heappush(self._heap, (st.clock, rank))

    def _dispatch(self, rank: int, st: _RankState, op) -> None:
        if isinstance(op, Compute):
            self._op_compute(rank, st, op)
        elif isinstance(op, Isend):
            self._op_isend(rank, st, op, blocking=False)
        elif isinstance(op, Send):
            self._op_isend(rank, st, op, blocking=True)
        elif isinstance(op, Recv):
            self._op_recv(rank, st, op.src, op.tag, handle=None)
        elif isinstance(op, Irecv):
            h = self._new_handle({"type": "irecv", "key": (op.src, rank, op.tag)})
            self._resume(rank, h)
        elif isinstance(op, Wait):
            self._op_wait(rank, st, op.handle)
        elif isinstance(op, RouteSend):
            self._op_route(rank, st, op)
        elif isinstance(op, (Barrier, Allreduce, Reduce)):
            self._op_collective(rank, st, op)
        elif isinstance(op, Now):
            self._resume(rank, st.clock)
        elif isinstance(op, BlockUntil):
            waited = max(op.time - st.clock, 0.0)
            if self._emit and waited > 0:
                self._span_add(op.kind, "engine", st.clock, op.time, rank)
            self.stats[rank].add(op.kind, waited)
            st.clock = max(st.clock, op.time)
            self._resume(rank)
        else:
            raise SimulationError(
                f"rank {rank} yielded unsupported op {type(op).__name__}"
            )

    # -- op implementations --------------------------------------------------

    def _op_compute(self, rank: int, st: _RankState, op: Compute) -> None:
        if op.seconds < 0:
            raise SimulationError(
                f"negative compute time {op.seconds} from rank {rank}"
            )
        outage = 0.0
        if self._rate_plan is not None:
            end, outage = self._rate_plan.advance(rank, st.clock, op.seconds)
            scaled = end - st.clock
        else:
            scaled = op.seconds / float(self._mult[rank])
        if self.record_timeline and scaled > 0:
            self.timeline.append((rank, st.clock, st.clock + scaled, op.kind))
        if self._emit and scaled > 0:
            self._span_add(op.kind, "executor", st.clock, st.clock + scaled, rank)
        st.clock += scaled
        # Blackout spans (a crashed rank's outage window) are downtime,
        # not work: the wait_ prefix keeps them out of total_compute so
        # busy-rate detectors see the rank as stopped, not slow.
        self.stats[rank].add(op.kind, scaled - outage)
        if outage > 0:
            self.stats[rank].add("wait_outage", outage)
        self._resume(rank)

    def _transfer(
        self, src: int, dst: int, size: float, ready: float, speed: float,
        tag: Optional[int] = None,
    ) -> Tuple[float, float]:
        """Charge one point-to-point transfer; returns (departure, arrival).

        ``ready`` is when the data is available at ``src``.  Intra-node
        transfers serialize on the sender's GPU-fabric link; inter-node
        transfers serialize on both nodes' NICs (the eq.-5 sharing
        mechanism) and pay host staging when not GPU-aware.
        """
        src_node, dst_node = self._rank_node[src], self._rank_node[dst]
        intra = src_node == dst_node
        if intra:
            start = max(ready, self._link_out[src])
            xfer = size / self._intra_bw
            arrival = start + self._intra_lat + xfer
            done = start + xfer
            self._link_out[src] = done
        else:
            bw = self._nic_bw * speed
            start = max(ready, self._nic_out[src_node], self._nic_in[dst_node])
            xfer = size / bw
            jitter = 0.0
            if self._link_plan is not None:
                xfer_scale, jitter = self._link_plan.perturb(
                    src_node, dst_node, start, size
                )
                # A brown-out stretches the transfer itself (and thus
                # holds the NICs longer); jitter delays arrival only.
                xfer *= xfer_scale
            lat = self._lat_memo.get((src_node, dst_node))
            if lat is None:
                lat = self.costs.latency_between(src_node, dst_node)
                self._lat_memo[(src_node, dst_node)] = lat
            staging = self.costs.staging_time(size) if self._staged else 0.0
            arrival = start + lat + jitter + xfer + staging
            done = start + xfer
            self._nic_out[src_node] = done
            self._nic_in[dst_node] = done
        self.stats[src].bytes_sent += int(size)
        self.stats[src].messages_sent += 1
        if self._emit:
            attrs = {"dst": dst, "bytes": int(size), "intra": intra}
            if tag is not None:
                attrs["tag"] = tag
            self._span_add("xfer", "comm", start, done, src, attrs=attrs)
            self._ctr_bytes[intra].inc(size)
            self._ctr_msgs[intra].inc()
        return done, arrival

    def _schedule_transfer(
        self, rank: int, st: _RankState, dst: int, payload, speed: float,
        tag: Optional[int] = None,
    ) -> Tuple[float, float]:
        """Returns (sender_completion, arrival)."""
        if not 0 <= dst < self.num_ranks:
            raise SimulationError(f"rank {rank} sent to invalid rank {dst}")
        return self._transfer(
            rank, dst, nbytes_of(payload), st.clock, speed, tag=tag
        )

    def _op_isend(self, rank: int, st: _RankState, op, blocking: bool) -> None:
        if op.speed <= 0:
            raise SimulationError(f"send speed must be positive, got {op.speed}")
        payload = op.payload
        if isinstance(payload, np.ndarray):
            payload = payload.copy()  # MPI semantics: buffer reusable after post
        done, arrival = self._schedule_transfer(
            rank, st, op.dst, payload, op.speed, tag=op.tag
        )
        key = (rank, op.dst, op.tag)
        msg = Message(rank, op.dst, op.tag, payload, arrival)
        self._deliver(key, msg)
        if blocking:
            waited = max(done - st.clock, 0.0)
            if self._emit and waited > 0:
                self._span_add("wait_send", "engine", st.clock, done, rank)
            self.stats[rank].add("wait_send", waited)
            st.clock = max(st.clock, done)
            self._resume(rank)
        else:
            st.clock += _POST_OVERHEAD_S
            self.stats[rank].add("comm_post", _POST_OVERHEAD_S)
            h = self._new_handle({"type": "isend", "done": done})
            self._resume(rank, h)

    def _op_route(self, rank: int, st: _RankState, op: RouteSend) -> None:
        """Schedule every hop of a routed multicast at initiation time."""
        spec = op.spec
        if rank != spec.root:
            raise SimulationError(
                f"rank {rank} initiated a route rooted at {spec.root}"
            )
        if op.speed <= 0:
            raise SimulationError(f"route speed must be positive, got {op.speed}")
        payload = op.payload
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        size = nbytes_of(payload)
        nseg = spec.segments
        seg_size = size / nseg if nseg > 1 else float(size)
        # Per-rank availability time of each segment.
        seg_at: Dict[int, List[float]] = {spec.root: [st.clock] * nseg}
        root_done = st.clock
        for src, dst in spec.edges:
            if not (0 <= src < self.num_ranks and 0 <= dst < self.num_ranks):
                raise SimulationError(
                    f"route edge ({src}, {dst}) outside world of "
                    f"{self.num_ranks} ranks"
                )
            avail = seg_at[src]
            arrivals: List[float] = []
            for s in range(nseg):
                done, arr = self._transfer(
                    src, dst, seg_size, avail[s], op.speed, tag=op.tag
                )
                arrivals.append(arr)
                if src == spec.root:
                    root_done = max(root_done, done)
            seg_at[dst] = arrivals
            self._deliver(
                (spec.root, dst, op.tag),
                Message(spec.root, dst, op.tag, payload, arrivals[-1]),
            )
        st.clock += _POST_OVERHEAD_S
        self.stats[rank].add("comm_post", _POST_OVERHEAD_S)
        self._resume(rank, root_done)

    def _deliver(self, key, msg: Message) -> None:
        waiters = self._recv_waiters.get(key)
        if waiters:
            waiting_rank, handle = waiters.popleft()
            self._complete_recv(waiting_rank, msg)
        else:
            self._mailbox[key].append(msg)
            if self._health is not None:
                self._inflight_bytes += int(nbytes_of(msg.payload))

    def _complete_recv(self, rank: int, msg: Message) -> None:
        st = self._ranks[rank]
        waited = max(msg.arrival - st.clock, 0.0)
        if self.record_timeline and waited > 0:
            self.timeline.append(
                (rank, st.clock, st.clock + waited, "wait_recv")
            )
        if self._emit and waited > 0:
            self._span_add(
                "wait_recv", "engine", st.clock, msg.arrival, rank,
                attrs={"src": msg.src, "tag": msg.tag},
            )
        self.stats[rank].add("wait_recv", waited)
        st.clock = max(st.clock, msg.arrival)
        self._resume(rank, msg.payload)

    def _op_recv(self, rank: int, st: _RankState, src: int, tag: int, handle) -> None:
        if not 0 <= src < self.num_ranks:
            raise SimulationError(f"rank {rank} receives from invalid rank {src}")
        key = (src, rank, tag)
        box = self._mailbox.get(key)
        if box:
            msg = box.popleft()
            if self._health is not None:
                self._inflight_bytes -= int(nbytes_of(msg.payload))
            self._complete_recv(rank, msg)
        else:
            st.status = _BLOCKED_RECV
            st.block_key = key
            self._recv_waiters[key].append((rank, handle))

    def _op_wait(self, rank: int, st: _RankState, handle: int) -> None:
        info = self._handles.pop(handle, None)
        if info is None:
            raise SimulationError(f"rank {rank} waited on unknown handle {handle}")
        if info["type"] == "isend":
            done = info["done"]
            waited = max(done - st.clock, 0.0)
            if self._emit and waited > 0:
                self._span_add("wait_send", "engine", st.clock, done, rank)
            self.stats[rank].add("wait_send", waited)
            st.clock = max(st.clock, done)
            self._resume(rank)
        elif info["type"] == "irecv":
            src, _me, tag = info["key"]
            self._op_recv(rank, st, src, tag, handle)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"corrupt handle {info}")

    def _new_handle(self, info: dict) -> int:
        h = self._next_handle
        self._next_handle += 1
        self._handles[h] = info
        return h

    # -- collectives --------------------------------------------------------------

    def _op_collective(self, rank: int, st: _RankState, op) -> None:
        members = tuple(op.members)
        if rank not in members:
            raise SimulationError(
                f"rank {rank} posted a collective it is not a member of"
            )
        seq_key = (members, op.key)
        seqs = self._coll_seq.setdefault(seq_key, [0] * self.num_ranks)
        seq = seqs[rank]
        seqs[rank] += 1
        pend_key = (members, op.key, seq, type(op).__name__)
        pend = self._pending_coll.setdefault(pend_key, PendingCollective(members))
        payload = getattr(op, "payload", None)
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        pend.arrived[rank] = (st.clock, payload, op)
        st.status = _BLOCKED_COLL
        st.block_key = pend_key  # type: ignore[assignment]
        if pend.complete():
            self._finish_collective(pend_key, pend)

    def _collective_cost(self, members: Tuple[int, ...], size: int) -> float:
        p = len(members)
        if p <= 1:
            return 0.0
        nodes = {self._rank_node[r] for r in members}
        rounds = max(1, ceil(log2(p)))
        if len(nodes) == 1:
            per_round = self._intra_lat + size / self._intra_bw
        else:
            per_round = self._inter_lat + size / self._nic_bw
        return rounds * per_round

    def _finish_collective(self, pend_key, pend: PendingCollective) -> None:
        del self._pending_coll[pend_key]
        op_name = pend_key[3]
        start = max(t for t, _p, _o in pend.arrived.values())
        example_op = next(iter(pend.arrived.values()))[2]
        if op_name == "Barrier":
            cost = self._collective_cost(pend.members, 8)
            results = {r: None for r in pend.members}
            wait_kind = "wait_barrier"
        else:
            payloads = [pend.arrived[r][1] for r in pend.members]
            size = max(nbytes_of(p) for p in payloads)
            cost = 2.0 * self._collective_cost(pend.members, size)
            reduced = self._reduce_payloads(payloads)
            if op_name == "Allreduce":
                results = {r: reduced for r in pend.members}
                wait_kind = "wait_allreduce"
            else:  # Reduce
                root = example_op.root
                if root not in pend.members:
                    raise SimulationError(
                        f"reduce root {root} not in members {pend.members}"
                    )
                results = {
                    r: (reduced if r == root else None) for r in pend.members
                }
                wait_kind = "wait_reduce"
        finish = start + cost
        for r in pend.members:
            st = self._ranks[r]
            waited = max(finish - st.clock, 0.0)
            if self._emit and waited > 0:
                self._span_add(wait_kind, "engine", st.clock, finish, r)
            self.stats[r].add(wait_kind, waited)
            st.clock = finish
            self._resume(r, results[r])

    @staticmethod
    def _reduce_payloads(payloads: List[Any]) -> Any:
        first = payloads[0]
        if first is None:
            return None
        if isinstance(first, PhantomArray):
            return first
        if isinstance(first, np.ndarray):
            for p in payloads[1:]:
                if not isinstance(p, np.ndarray) or p.shape != first.shape:
                    raise SimulationError(
                        "collective payload mismatch: members contributed "
                        f"{first.shape} and "
                        f"{getattr(p, 'shape', type(p).__name__)} — "
                        "broadcasting would silently corrupt the reduction"
                    )
            out = first.astype(first.dtype, copy=True)
            for p in payloads[1:]:
                out = out + p
            return out
        # scalars
        total = payloads[0]
        for p in payloads[1:]:
            total = total + p
        return total

    # -- diagnostics ----------------------------------------------------------

    def _describe_block(self, st: _RankState) -> str:
        names = {
            _BLOCKED_RECV: f"recv on (src, dst, tag)={st.block_key}",
            _BLOCKED_WAIT: f"wait on handle {st.block_handle}",
            _BLOCKED_COLL: f"collective {st.block_key}",
            _READY: "ready (scheduler bug)",
        }
        return names.get(st.status, "unknown")

    def _block_info(self, rank: int, st: _RankState) -> dict:
        """Structured diagnosis of one blocked rank (for StallError)."""
        info: dict = {"rank": rank, "clock": st.clock}
        if st.status == _BLOCKED_RECV and st.block_key is not None:
            src, dst, wire = st.block_key
            info["state"] = "recv"
            info["src"] = src
            info["dst"] = dst
            info["tag"] = wire
            try:
                from repro.obs.phases import decode_wire_tag

                phase, step = decode_wire_tag(wire)
                info["phase"] = phase
                info["step"] = step
            except Exception:  # lint: ignore[hygiene] - diagnosis best-effort
                info["phase"] = "unknown"
                info["step"] = None
        elif st.status == _BLOCKED_COLL and st.block_key is not None:
            members, key, seq, op_name = st.block_key  # type: ignore[misc]
            pend = self._pending_coll.get(st.block_key)
            info["state"] = "collective"
            info["op"] = op_name
            info["key"] = key
            info["seq"] = seq
            info["members"] = list(members)
            info["arrived"] = (
                sorted(pend.arrived) if pend is not None else []
            )
        elif st.status == _BLOCKED_WAIT:
            info["state"] = "wait"
            info["handle"] = st.block_handle
        else:
            info["state"] = "unknown"
        return info

    def blocked_ranks(self) -> List[dict]:
        """One diagnosis dict per currently-blocked rank.

        The health watchdog calls this mid-run to name the operations a
        stalled run is stuck in; the engine itself calls it at the end
        of :meth:`run` when ranks never finished.
        """
        blocked_states = (_BLOCKED_RECV, _BLOCKED_WAIT, _BLOCKED_COLL)
        return [
            self._block_info(r, st)
            for r, st in enumerate(getattr(self, "_ranks", []))
            if st.status in blocked_states
        ]
