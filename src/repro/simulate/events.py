"""Yieldable operations for rank programs.

A rank program is a generator; every ``yield`` hands one of these ops to
the :class:`~repro.simulate.engine.Engine` and receives the op's result
back.  Point-to-point messages are matched FIFO by ``(src, dst, tag)``.
Collectives (:class:`Barrier`, :class:`Allreduce`, :class:`Reduce`) are
engine built-ins with modelled cost; broadcasts, by contrast, are built
in :mod:`repro.comm` from point-to-point ops because their algorithm
choice is one of the paper's tuning dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


@dataclass
class Compute:
    """Advance this rank's clock by ``seconds`` of local work.

    ``kind`` labels the time for the per-component breakdown (Fig 10):
    "getrf", "trsm", "gemm", "cast", "regen", "h2d", "gemv", "trsv", ...
    The engine divides ``seconds`` by the rank's GCD speed multiplier, so
    callers pass nominal (specification-speed) durations.
    """

    kind: str
    seconds: float


@dataclass
class Send:
    """Blocking send: returns once the message has left this rank's NIC."""

    dst: int
    payload: Any
    tag: int
    speed: float = 1.0  # library-behaviour bandwidth multiplier


@dataclass
class Isend:
    """Nonblocking send; returns a handle immediately."""

    dst: int
    payload: Any
    tag: int
    speed: float = 1.0


@dataclass
class Recv:
    """Blocking receive; returns the payload."""

    src: int
    tag: int


@dataclass
class Irecv:
    """Nonblocking receive; returns a handle to :class:`Wait` on."""

    src: int
    tag: int


@dataclass
class Wait:
    """Wait for an Isend (returns None) or Irecv (returns the payload)."""

    handle: int


@dataclass
class Barrier:
    """Synchronize a set of ranks (all clocks jump to the max)."""

    members: Tuple[int, ...]
    key: str = "barrier"


@dataclass
class Allreduce:
    """Sum-reduce a payload across ``members``; everyone gets the result.

    Modelled as a recursive-doubling exchange; real ndarray payloads are
    actually summed, phantoms stay phantoms.
    """

    members: Tuple[int, ...]
    payload: Any
    key: str = "allreduce"


@dataclass
class Reduce:
    """Sum-reduce a payload to ``root``; non-roots receive None."""

    members: Tuple[int, ...]
    root: int
    payload: Any
    key: str = "reduce"


@dataclass
class Now:
    """Query the rank's current virtual time (no cost)."""


@dataclass
class BlockUntil:
    """Advance this rank's clock to (at least) an absolute virtual time.

    Used to realize blocking semantics for operations whose completion
    time was computed elsewhere (e.g. the root of a blocking routed
    broadcast).  The elapsed wait is attributed to ``kind``.
    """

    time: float
    kind: str = "wait_send"


@dataclass(frozen=True)
class RouteSpec:
    """A source-rooted distribution tree/pipeline for :class:`RouteSend`.

    Attributes
    ----------
    root:
        Originating rank.
    edges:
        ``(src, dst)`` pairs in topological (dependency) order: a rank
        appears as ``src`` only after it appeared as ``dst`` (or is the
        root); each rank is delivered to exactly once.
    segments:
        Pipeline granularity; 1 disables segmentation (library tree).
    """

    root: int
    edges: Tuple[Tuple[int, int], ...]
    segments: int = 1

    def __post_init__(self) -> None:
        from repro.errors import CommunicationError

        if self.segments < 1:
            raise CommunicationError(
                f"segments must be >= 1, got {self.segments}"
            )
        have_data = {self.root}
        dests = set()
        for src, dst in self.edges:
            if src not in have_data:
                raise CommunicationError(
                    f"route edge ({src}, {dst}) departs a rank with no data "
                    "(edges must be in dependency order)"
                )
            if dst in dests or dst == self.root:
                raise CommunicationError(f"route delivers twice to rank {dst}")
            dests.add(dst)
            have_data.add(dst)

    @property
    def destinations(self) -> Tuple[int, ...]:
        return tuple(dst for _src, dst in self.edges)


@dataclass
class RouteSend:
    """Initiate a routed multicast (hardware-progressed broadcast).

    The engine schedules every hop immediately — charging shared
    NIC/link resources hop by hop, segment by segment — and deposits the
    payload into each destination's mailbox as if sent by ``spec.root``
    with ``tag``; destinations simply :class:`Recv` from the root.  This
    models an MPI library whose relays progress asynchronously while
    ranks compute (the behaviour look-ahead relies on); the in-band
    generators in :mod:`repro.comm.bcast`/:mod:`repro.comm.ring` model
    the no-progression alternative.

    The op returns the time the root's own outgoing traffic has left its
    NIC (what a blocking broadcast would block for at the root).
    """

    spec: RouteSpec
    payload: Any
    tag: int
    speed: float = 1.0


# -- internal engine records -------------------------------------------------


@dataclass
class Message:
    """An in-flight or delivered point-to-point message."""

    src: int
    dst: int
    tag: int
    payload: Any
    arrival: float


@dataclass
class PendingCollective:
    """A collective waiting for all members to arrive."""

    members: Tuple[int, ...]
    arrived: dict = field(default_factory=dict)  # rank -> (post_time, payload)

    def complete(self) -> bool:
        """Whether every member has posted its part."""
        return len(self.arrived) == len(self.members)
