"""Ring broadcasts: Ring1, Ring1M and Ring2M (paper Section IV-B).

Ring broadcasts decompose the synchronized library broadcast into
point-to-point sends that pipeline through the members, raising the
effective bandwidth at the cost of per-hop latency.  Following HPL's
variants:

- **Ring1** — the message is cut into segments that flow around a single
  chain rooted at the broadcast root.
- **Ring1M** ("modified") — the rank immediately after the root receives
  the *whole* message directly first.  That rank is the next diagonal
  owner on the factorization's critical path, so shortening its latency
  shortens the critical path.
- **Ring2M** — the modified direct send plus *two* concurrent rings over
  the remaining members, halving the pipeline depth.

All functions are generators driven with ``yield from`` inside a rank
program; ``members`` must be the identical ordered list on every rank.
Wire tags live in the window ``[tag*TAG_STRIDE, (tag+1)*TAG_STRIDE)``:
segment ``s`` of ring 0 uses offset ``s``, ring 1 uses ``512 + s``, and
the modified direct send uses ``MAX_SEGMENTS``.  The first segment of a
chain carries the actual segment count in-band, so receivers never need
out-of-band agreement about how the root split the payload.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from repro.errors import CommunicationError
from repro.comm.bcast import TAG_STRIDE
from repro.simulate.events import Isend, Recv, Wait
from repro.simulate.phantom import PhantomArray

#: hard ceiling so ring wire tags cannot collide across rings
MAX_SEGMENTS = 255


def _split(payload: Any, nseg: int) -> List[Any]:
    """Split a payload into up to ``nseg`` transferable segments."""
    nseg = max(1, min(nseg, MAX_SEGMENTS))
    if nseg == 1:
        return [payload]
    if isinstance(payload, np.ndarray) and payload.ndim >= 1 and payload.shape[0] >= nseg:
        return list(np.array_split(payload, nseg, axis=0))
    if isinstance(payload, PhantomArray) and payload.ndim >= 1 and payload.shape[0] >= nseg:
        rows = payload.shape[0]
        base, extra = divmod(rows, nseg)
        out = []
        for i in range(nseg):
            r = base + (1 if i < extra else 0)
            out.append(PhantomArray((r,) + payload.shape[1:], payload.dtype))
        return out
    return [payload]


def _join(segments: List[Any]) -> Any:
    """Reassemble segments produced by :func:`_split`."""
    if len(segments) == 1:
        return segments[0]
    first = segments[0]
    if isinstance(first, np.ndarray):
        return np.concatenate(segments, axis=0)
    if isinstance(first, PhantomArray):
        rows = sum(s.shape[0] for s in segments)
        return PhantomArray((rows,) + first.shape[1:], first.dtype)
    raise CommunicationError(
        f"cannot reassemble ring segments of type {type(first).__name__}"
    )


def _chain(rank: int, root: int, members: Sequence[int]) -> List[int]:
    """Members rotated so the root comes first."""
    members = list(members)
    try:
        root_idx = members.index(root)
    except ValueError as exc:
        raise CommunicationError(
            f"root {root} not in broadcast members {members}"
        ) from exc
    if rank not in members:
        raise CommunicationError(f"rank {rank} not in broadcast members {members}")
    return members[root_idx:] + members[:root_idx]


def _feed_chain(first_dst: int, segs: List[Any], wire: int, speed: float):
    """Root side of one pipeline: nonblocking sends of every segment.

    Segment 0 is wrapped as ``(count, seg)`` so the chain learns the
    segment count in-band.  Returns the send handles (caller waits).
    """
    handles = []
    for s, seg in enumerate(segs):
        msg = (len(segs), seg) if s == 0 else seg
        handles.append((yield Isend(first_dst, msg, wire + s, speed=speed)))
    return handles


def _relay_chain(rank: int, chain: List[int], wire: int, speed: float):
    """Non-root side of one pipeline: receive, forward, reassemble."""
    pos = chain.index(rank)
    prev_rank = chain[pos - 1]
    nxt = chain[pos + 1] if pos + 1 < len(chain) else None
    handles: List[int] = []
    count, seg0 = yield Recv(prev_rank, wire)
    if nxt is not None:
        handles.append((yield Isend(nxt, (count, seg0), wire, speed=speed)))
    received = [seg0]
    for s in range(1, count):
        seg = yield Recv(prev_rank, wire + s)
        received.append(seg)
        if nxt is not None:
            handles.append((yield Isend(nxt, seg, wire + s, speed=speed)))
    for h in handles:
        yield Wait(h)
    return _join(received)


def bcast_ring1(
    rank: int,
    payload: Any,
    root: int,
    members: Sequence[int],
    tag: int,
    speed: float = 1.0,
    segments: int = 8,
):
    """Single pipelined ring over all members."""
    chain = _chain(rank, root, members)
    if len(chain) == 1:
        return payload
    wire = tag * TAG_STRIDE
    if rank == root:
        segs = _split(payload, segments)
        handles = yield from _feed_chain(chain[1], segs, wire, speed)
        for h in handles:
            yield Wait(h)
        return payload
    return (yield from _relay_chain(rank, chain, wire, speed))


def bcast_ring1m(
    rank: int,
    payload: Any,
    root: int,
    members: Sequence[int],
    tag: int,
    speed: float = 1.0,
    segments: int = 8,
):
    """Modified single ring: the root's successor gets the whole message
    directly (it is the next diagonal owner on the critical path); the
    remaining members form a pipelined chain fed by the root."""
    chain = _chain(rank, root, members)
    n = len(chain)
    wire = tag * TAG_STRIDE
    if n == 1:
        return payload
    direct = chain[1]
    ring = [chain[0]] + chain[2:]
    if rank == root:
        direct_handle = yield Isend(direct, payload, wire + MAX_SEGMENTS, speed=speed)
        handles = []
        if len(ring) > 1:
            segs = _split(payload, segments)
            handles = yield from _feed_chain(ring[1], segs, wire, speed)
        yield Wait(direct_handle)
        for h in handles:
            yield Wait(h)
        return payload
    if rank == direct:
        return (yield Recv(root, wire + MAX_SEGMENTS))
    return (yield from _relay_chain(rank, ring, wire, speed))


def bcast_ring2m(
    rank: int,
    payload: Any,
    root: int,
    members: Sequence[int],
    tag: int,
    speed: float = 1.0,
    segments: int = 8,
):
    """Modified double ring: direct send to the successor, then two
    concurrent pipelined rings over the remaining members, halving the
    pipeline depth relative to Ring1M."""
    chain = _chain(rank, root, members)
    n = len(chain)
    wire = tag * TAG_STRIDE
    if n <= 2:
        return (yield from bcast_ring1m(rank, payload, root, members, tag, speed, segments))
    direct = chain[1]
    rest = chain[2:]
    half = (len(rest) + 1) // 2
    ring_a = [chain[0]] + rest[:half]
    ring_b = [chain[0]] + rest[half:]
    if rank == root:
        direct_handle = yield Isend(direct, payload, wire + MAX_SEGMENTS, speed=speed)
        segs = _split(payload, segments)
        handles: List[int] = []
        # Interleave the two rings' injections segment by segment so
        # neither ring starves while sharing the root's NIC.
        for s, seg in enumerate(segs):
            msg = (len(segs), seg) if s == 0 else seg
            if len(ring_a) > 1:
                handles.append((yield Isend(ring_a[1], msg, wire + s, speed=speed)))
            if len(ring_b) > 1:
                handles.append(
                    (yield Isend(ring_b[1], msg, wire + 512 + s, speed=speed))
                )
        yield Wait(direct_handle)
        for h in handles:
            yield Wait(h)
        return payload
    if rank == direct:
        return (yield Recv(root, wire + MAX_SEGMENTS))
    if rank in ring_a:
        return (yield from _relay_chain(rank, ring_a, wire, speed))
    return (yield from _relay_chain(rank, ring_b, wire + 512, speed))
