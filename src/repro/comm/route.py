"""Route topology builders for hardware-progressed broadcasts.

The in-band algorithms in :mod:`repro.comm.bcast` / :mod:`repro.comm.ring`
execute relay forwarding inside each rank's program — faithful to an MPI
library *without* asynchronous progression.  Real runs rely on hardware
(or a progress thread) moving relayed segments while ranks compute,
which is what makes look-ahead effective.  The builders here express
each of the paper's five broadcast strategies as a
:class:`~repro.simulate.events.RouteSpec` whose hops the engine
schedules at initiation time; destinations then ``Recv`` from the root
whenever they actually need the data.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import CommunicationError
from repro.simulate.events import RouteSend, RouteSpec

__all__ = [
    "RouteSend",
    "RouteSpec",
    "ROUTE_BUILDERS",
    "route_tree",
    "route_ring1",
    "route_ring1m",
    "route_ring2m",
]


def _ordered(members: Sequence[int], root: int) -> List[int]:
    members = list(members)
    try:
        idx = members.index(root)
    except ValueError as exc:
        raise CommunicationError(f"root {root} not in members {members}") from exc
    return members[idx:] + members[:idx]


def _binomial_edges(chain: List[int]) -> List[Tuple[int, int]]:
    """Binomial-tree edges over ``chain`` rooted at ``chain[0]``.

    Relative rank ``r`` receives from ``r - lowbit(r)``; emitted in
    receiver order so nearer ranks (the critical-path successors) are
    served first.
    """
    n = len(chain)
    edges: List[Tuple[int, int]] = []
    mask = 1
    while mask < n:
        for rel in range(mask, min(2 * mask, n)):
            edges.append((chain[rel - mask], chain[rel]))
        mask <<= 1
    edges.sort(key=lambda e: chain.index(e[1]))
    return edges


def route_tree(
    root: int, members: Sequence[int], node_of=None, segments: int = 1
) -> RouteSpec:
    """The library Bcast/IBcast topology.

    Without node information (``node_of=None``) this models an
    *immature* library: a flat binomial tree over the members, whose
    cost grows as depth × message size — the behaviour the paper
    observed on Frontier's young Slingshot stack, and the reason rings
    beat it there (Finding 6).

    With ``node_of`` it models a *mature* library (Spectrum MPI on
    Summit): large-message broadcast is effectively bandwidth-optimal
    (scatter-allgather / van de Geijn), rendered here as a pipelined
    chain over one leader rank per node plus a binomial fan within each
    node.  That is why hand-built rings cannot beat the vendor broadcast
    on Summit.
    """
    chain = _ordered(members, root)
    segments = max(1, segments)
    if node_of is None:
        return RouteSpec(
            root=root, edges=tuple(_binomial_edges(chain)), segments=segments
        )
    # Group members by node, in first-appearance order; the root's node
    # leads the leader pipeline.
    by_node: dict = {}
    for r in chain:
        by_node.setdefault(node_of(r), []).append(r)
    leaders = [ranks[0] for ranks in by_node.values()]
    edges = list(zip(leaders[:-1], leaders[1:]))  # bandwidth-optimal chain
    for ranks in by_node.values():
        edges.extend(_binomial_edges(ranks))
    return RouteSpec(root=root, edges=tuple(edges), segments=segments)


def route_ring1(root: int, members: Sequence[int], segments: int = 8) -> RouteSpec:
    """Single pipelined chain around the members."""
    chain = _ordered(members, root)
    edges = tuple(zip(chain[:-1], chain[1:]))
    return RouteSpec(root=root, edges=edges, segments=max(1, segments))


def route_ring1m(root: int, members: Sequence[int], segments: int = 8) -> RouteSpec:
    """Modified ring: direct edge to the critical-path successor first,
    then a chain through the remaining members."""
    chain = _ordered(members, root)
    if len(chain) <= 2:
        return route_ring1(root, members, segments)
    rest = [chain[0]] + chain[2:]
    edges = [(chain[0], chain[1])] + list(zip(rest[:-1], rest[1:]))
    return RouteSpec(root=root, edges=tuple(edges), segments=max(1, segments))


def route_ring2m(root: int, members: Sequence[int], segments: int = 8) -> RouteSpec:
    """Modified double ring: direct successor edge plus two half-depth
    chains, interleaved at the root."""
    chain = _ordered(members, root)
    if len(chain) <= 3:
        return route_ring1m(root, members, segments)
    rest = chain[2:]
    half = (len(rest) + 1) // 2
    ring_a = [chain[0]] + rest[:half]
    ring_b = [chain[0]] + rest[half:]
    edges = [(chain[0], chain[1])]
    ea = list(zip(ring_a[:-1], ring_a[1:]))
    eb = list(zip(ring_b[:-1], ring_b[1:]))
    for i in range(max(len(ea), len(eb))):
        if i < len(ea):
            edges.append(ea[i])
        if i < len(eb):
            edges.append(eb[i])
    return RouteSpec(root=root, edges=tuple(edges), segments=max(1, segments))


ROUTE_BUILDERS = {
    # Library trees may be SMP-aware (use node locality) and internally
    # pipelined; rings follow the member (process row/column) order, so
    # their node-crossing pattern is determined by the node-local grid —
    # the paper's tuning knob.
    "bcast": lambda root, members, segments=1, node_of=None: route_tree(
        root, members, node_of, segments
    ),
    "ibcast": lambda root, members, segments=1, node_of=None: route_tree(
        root, members, node_of, segments
    ),
    "ring1": lambda root, members, segments=8, node_of=None: route_ring1(
        root, members, segments
    ),
    "ring1m": lambda root, members, segments=8, node_of=None: route_ring1m(
        root, members, segments
    ),
    "ring2m": lambda root, members, segments=8, node_of=None: route_ring2m(
        root, members, segments
    ),
}
