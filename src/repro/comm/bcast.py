"""Tree broadcasts: the MPI library's Bcast and IBcast equivalents.

Both use the classic binomial tree (what MPICH/Spectrum fall back to for
large messages without topology tricks); the library's fat-tree tuning
on Summit is modelled as a bandwidth boost on the blocking variant, and
the poor Spectrum-MPI nonblocking progression as a derate on IBcast
(:class:`repro.machine.spec.MpiModel`).

Every broadcast function is a generator to be driven with
``payload = yield from fn(...)``.  ``members`` must be the identical
ordered list on every participating rank, and ``tag`` is a *logical* tag
— each algorithm owns the wire-tag window
``[tag * TAG_STRIDE, (tag+1) * TAG_STRIDE)``.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import CommunicationError
from repro.simulate.events import Isend, Recv, Send, Wait

#: wire tags available to one logical collective
TAG_STRIDE = 1024


def _relative(rank: int, root: int, members: Sequence[int]) -> tuple:
    try:
        my_idx = members.index(rank)
        root_idx = members.index(root)
    except ValueError as exc:
        raise CommunicationError(
            f"rank {rank} or root {root} not in broadcast members {members}"
        ) from exc
    n = len(members)
    return my_idx, root_idx, (my_idx - root_idx) % n, n


def bcast_tree(
    rank: int,
    payload: Any,
    root: int,
    members: Sequence[int],
    tag: int,
    speed: float = 1.0,
):
    """Blocking binomial-tree broadcast (the library's MPI_Bcast).

    Non-root ranks pass ``payload=None`` and receive the broadcast value
    as the generator's return.
    """
    _my, root_idx, rel, n = _relative(rank, root, members)
    wire = tag * TAG_STRIDE
    if n == 1:
        return payload
    # Receive phase: find the bit at which we hang off the tree.
    mask = 1
    while mask < n:
        if rel & mask:
            src = members[(rel - mask + root_idx) % n]
            payload = yield Recv(src, wire)
            break
        mask <<= 1
    else:
        mask = 1
        while mask < n:
            mask <<= 1
    # Send phase: fan out to children at decreasing masks.
    mask >>= 1
    while mask >= 1:
        if rel + mask < n and not rel & (mask - 1) and not rel & mask:
            dst = members[(rel + mask + root_idx) % n]
            yield Send(dst, payload, wire, speed=speed)
        mask >>= 1
    return payload


def ibcast_tree(
    rank: int,
    payload: Any,
    root: int,
    members: Sequence[int],
    tag: int,
    speed: float = 1.0,
):
    """Nonblocking binomial-tree broadcast (the library's MPI_Ibcast).

    Structurally the same tree, but all sends are posted nonblocking so
    the transfers proceed while downstream code computes; each rank only
    stalls for its own incoming message.  The ``speed`` derate models
    libraries whose asynchronous progression is poor (Spectrum MPI).
    """
    _my, root_idx, rel, n = _relative(rank, root, members)
    wire = tag * TAG_STRIDE
    if n == 1:
        return payload
    mask = 1
    while mask < n:
        if rel & mask:
            src = members[(rel - mask + root_idx) % n]
            payload = yield Recv(src, wire)
            break
        mask <<= 1
    else:
        mask = 1
        while mask < n:
            mask <<= 1
    handles: List[int] = []
    mask >>= 1
    while mask >= 1:
        if rel + mask < n and not rel & (mask - 1) and not rel & mask:
            dst = members[(rel + mask + root_idx) % n]
            handles.append((yield Isend(dst, payload, wire, speed=speed)))
        mask >>= 1
    for h in handles:
        yield Wait(h)
    return payload
