"""Hand-built all-reduce algorithms over point-to-point ops.

The engine provides a modelled ``Allreduce`` built-in (recursive-doubling
cost); these generators implement the classic algorithms *explicitly* so
their behaviour — latency vs bandwidth trade-offs on the simulated
network — emerges from the same point-to-point machinery as the
broadcasts.  Iterative refinement's N-length residual reduction is the
natural customer: at large N the ring all-reduce's ``2 S (m-1)/m`` bytes
per link beat the doubling algorithm's ``S log2(m)``.

All functions are generators (``yield from``) returning the reduced
array on every member; payloads must be 1-D float64 ndarrays (or
phantoms, which pass through with timing only).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.bcast import TAG_STRIDE
from repro.errors import CommunicationError
from repro.simulate.events import Isend, Recv, Send, Wait
from repro.simulate.phantom import PhantomArray


def _index_of(rank: int, members: Sequence[int]) -> int:
    try:
        return list(members).index(rank)
    except ValueError as exc:
        raise CommunicationError(
            f"rank {rank} not in all-reduce members {list(members)}"
        ) from exc


def allreduce_recursive_doubling(
    rank: int, payload, members: Sequence[int], tag: int
):
    """Recursive doubling: log2(m) rounds, full payload each round.

    Non-power-of-two member counts fold the excess ranks into the
    leading power of two first (the standard MPICH approach).
    """
    members = list(members)
    m = len(members)
    if m == 1:
        return payload
    idx = _index_of(rank, members)
    wire = tag * TAG_STRIDE
    if isinstance(payload, PhantomArray):
        data = payload
        phantom = True
    else:
        data = np.array(payload, dtype=np.float64)
        phantom = False

    pow2 = 1
    while pow2 * 2 <= m:
        pow2 *= 2
    rem = m - pow2

    # Fold phase: ranks beyond the power of two send to their partner.
    if idx >= pow2:
        partner = members[idx - pow2]
        yield Send(partner, data, wire + 900)
        # ...and receive the final result at the end.
        result = yield Recv(partner, wire + 901)
        return result
    if idx < rem:
        other = yield Recv(members[idx + pow2], wire + 900)
        if not phantom:
            data = data + other

    # Doubling phase among the leading pow2 ranks.
    step = 1
    round_no = 0
    while step < pow2:
        partner_idx = idx ^ step
        partner = members[partner_idx]
        h = yield Isend(partner, data, wire + round_no)
        other = yield Recv(partner, wire + round_no)
        yield Wait(h)
        if not phantom:
            data = data + other
        step <<= 1
        round_no += 1

    # Unfold: deliver to the folded ranks.
    if idx < rem:
        yield Send(members[idx + pow2], data, wire + 901)
    return data


def allreduce_ring(
    rank: int, payload, members: Sequence[int], tag: int
):
    """Ring all-reduce: reduce-scatter around the ring, then all-gather.

    Bandwidth-optimal (each rank sends ``2 S (m-1)/m`` bytes) at the cost
    of ``2 (m-1)`` latency terms — the trade large-payload reductions
    want.
    """
    members = list(members)
    m = len(members)
    if m == 1:
        return payload
    idx = _index_of(rank, members)
    wire = tag * TAG_STRIDE
    nxt = members[(idx + 1) % m]
    prev = members[(idx - 1) % m]

    if isinstance(payload, PhantomArray):
        # Timing-only: move the 2(m-1) chunk messages, return the phantom.
        chunk = PhantomArray(
            (max(payload.shape[0] // m, 1),) + payload.shape[1:],
            payload.dtype,
        )
        for step in range(2 * (m - 1)):
            h = yield Isend(nxt, chunk, wire + step)
            _ = yield Recv(prev, wire + step)
            yield Wait(h)
        return payload

    data = np.array(payload, dtype=np.float64)
    n = data.shape[0]
    if data.ndim != 1:
        raise CommunicationError("ring all-reduce expects 1-D arrays")
    bounds = [(i * n) // m for i in range(m + 1)]

    def seg(i: int) -> slice:
        i %= m
        return slice(bounds[i], bounds[i + 1])

    # Reduce-scatter: after m-1 steps, rank idx holds the full sum of
    # segment (idx+1) mod m.
    for step in range(m - 1):
        send_seg = seg(idx - step)
        recv_seg = seg(idx - step - 1)
        h = yield Isend(nxt, data[send_seg].copy(), wire + step)
        incoming = yield Recv(prev, wire + step)
        yield Wait(h)
        data[recv_seg] += incoming

    # All-gather: circulate the completed segments.
    for step in range(m - 1):
        send_seg = seg(idx - step + 1)
        recv_seg = seg(idx - step)
        h = yield Isend(nxt, data[send_seg].copy(), wire + (m - 1) + step)
        incoming = yield Recv(prev, wire + (m - 1) + step)
        yield Wait(h)
        data[recv_seg] = incoming
    return data


ALLREDUCE_ALGORITHMS = {
    "doubling": allreduce_recursive_doubling,
    "ring": allreduce_ring,
}
