"""Virtual MPI: point-to-point facade and broadcast algorithms.

The paper's communication tuning (Section IV-B / V-E) compares five
broadcast strategies — library Bcast, nonblocking IBcast, and three
hand-built ring pipelines (Ring1, Ring1M, Ring2M) — because the panel
broadcast dominates HPL-AI communication.  All five are implemented here
as generator "sub-programs" over the engine's point-to-point ops, so
their latency/bandwidth/pipelining behaviour *emerges* from the
simulated network rather than being asserted.
"""

from repro.comm.vmpi import BCAST_ALGORITHMS, RankComm, TAG_STRIDE
from repro.comm.bcast import bcast_tree, ibcast_tree
from repro.comm.ring import bcast_ring1, bcast_ring1m, bcast_ring2m
from repro.comm.route import (
    ROUTE_BUILDERS,
    route_ring1,
    route_ring1m,
    route_ring2m,
    route_tree,
)

__all__ = [
    "BCAST_ALGORITHMS",
    "RankComm",
    "TAG_STRIDE",
    "bcast_tree",
    "ibcast_tree",
    "bcast_ring1",
    "bcast_ring1m",
    "bcast_ring2m",
    "ROUTE_BUILDERS",
    "route_tree",
    "route_ring1",
    "route_ring1m",
    "route_ring2m",
]
