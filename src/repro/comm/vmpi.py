"""The per-rank communication facade used by rank programs.

:class:`RankComm` wraps the raw engine ops with an mpi4py-flavoured API
(send/recv/isend/bcast/allreduce/...) whose methods are generators — a
rank program drives them with ``yield from``.  The broadcast algorithm
is selected by name, matching the paper's vocabulary:

======== ==============================================================
name     algorithm
======== ==============================================================
bcast    library blocking broadcast (binomial tree; Summit's gets the
         vendor fat-tree bandwidth boost)
ibcast   library nonblocking broadcast (binomial tree, nonblocking
         sends, Spectrum-MPI derate applies)
ring1    single pipelined ring
ring1m   modified ring (direct send to the critical-path successor)
ring2m   modified double ring (the Frontier winner)
======== ==============================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence

from repro.comm.bcast import TAG_STRIDE, bcast_tree, ibcast_tree
from repro.comm.ring import bcast_ring1, bcast_ring1m, bcast_ring2m
from repro.comm.route import ROUTE_BUILDERS, RouteSend
from repro.errors import CommunicationError
from repro.machine.spec import MpiModel
from repro.obs import context as obs_context
from repro.obs.phases import phase_of_logical_tag
from repro.simulate.phantom import nbytes_of
from repro.simulate.events import (
    Allreduce,
    Barrier,
    BlockUntil,
    Irecv,
    Isend,
    Now,
    Recv,
    Reduce,
    Send,
    Wait,
)

BCAST_ALGORITHMS: Dict[str, Callable] = {
    "bcast": bcast_tree,
    "ibcast": ibcast_tree,
    "ring1": bcast_ring1,
    "ring1m": bcast_ring1m,
    "ring2m": bcast_ring2m,
}


class RankComm:
    """Communication facade bound to one rank.

    Parameters
    ----------
    rank:
        This rank's id.
    mpi:
        Library-behaviour model (broadcast boost / ibcast derate).
    bcast_algorithm:
        One of :data:`BCAST_ALGORITHMS`; the panel-broadcast strategy
        under study.
    ring_segments:
        Pipeline depth for the ring algorithms; ``None`` (default) adapts
        to the member count so deep rings stay pipelined.
    """

    def __init__(
        self,
        rank: int,
        mpi: MpiModel | None = None,
        bcast_algorithm: str = "bcast",
        ring_segments: int | None = None,
        node_of=None,
    ) -> None:
        if bcast_algorithm not in BCAST_ALGORITHMS:
            raise CommunicationError(
                f"unknown broadcast algorithm {bcast_algorithm!r}; expected "
                f"one of {sorted(BCAST_ALGORITHMS)}"
            )
        self.rank = rank
        self.mpi = mpi or MpiModel()
        self.bcast_algorithm = bcast_algorithm
        self.ring_segments = ring_segments
        #: node locality oracle; lets the library tree be SMP-aware
        self.node_of = node_of
        #: default all-reduce algorithm (None = engine built-in)
        self.allreduce_algorithm: str | None = None
        # Route specs are pure functions of (algorithm, root, members,
        # segments) for a fixed node map; the panel loop rebuilds the
        # same handful of trees thousands of times, so memoize them.
        self._route_cache: Dict[tuple, Any] = {}

    @staticmethod
    def _count_bcast(algo_name: str, payload: Any, tag: int = -1) -> None:
        """Root-side accounting: bytes broadcast per algorithm variant
        and — when the logical ``tag`` is given — per benchmark phase
        (diag_bcast / panel_bcast / ir), the byte-count labels the
        trace-analysis layer joins against."""
        obs = obs_context.current()
        if obs.enabled and payload is not None:
            m = obs.metrics
            size = nbytes_of(payload)
            m.counter("comm.bcast_bytes", algorithm=algo_name).inc(size)
            m.counter("comm.bcast_calls", algorithm=algo_name).inc()
            if tag >= 0:
                phase = phase_of_logical_tag(tag)
                m.counter("comm.phase_bytes", phase=phase).inc(size)
                m.counter("comm.phase_calls", phase=phase).inc()
            health = getattr(obs, "health", None)
            if health is not None:
                health.note_collective(tag, algo_name, size)

    # -- point to point ---------------------------------------------------

    def send(self, dst: int, payload: Any, tag: int):
        """Blocking send (returns once the message left this rank's NIC)."""
        yield Send(dst, payload, tag * TAG_STRIDE, speed=1.0)

    def isend(self, dst: int, payload: Any, tag: int):
        """Nonblocking send; returns a handle."""
        return (yield Isend(dst, payload, tag * TAG_STRIDE, speed=1.0))

    def recv(self, src: int, tag: int):
        """Blocking receive; returns the payload."""
        return (yield Recv(src, tag * TAG_STRIDE))

    def irecv(self, src: int, tag: int):
        """Nonblocking receive; returns a handle for :meth:`wait`."""
        return (yield Irecv(src, tag * TAG_STRIDE))

    def wait(self, handle: int):
        """Complete a nonblocking operation (returns the Irecv payload)."""
        return (yield Wait(handle))

    def wait_all(self, handles: Sequence[int]):
        """Complete several nonblocking operations."""
        results = []
        for h in handles:
            results.append((yield Wait(h)))
        return results

    # -- collectives ---------------------------------------------------------

    def bcast(
        self,
        payload: Any,
        root: int,
        members: Sequence[int],
        tag: int,
        algorithm: str | None = None,
    ):
        """Broadcast with the configured (or overridden) algorithm.

        Non-roots pass ``payload=None`` and get the value as the return.
        """
        algo_name = algorithm or self.bcast_algorithm
        try:
            algo = BCAST_ALGORITHMS[algo_name]
        except KeyError:
            raise CommunicationError(
                f"unknown broadcast algorithm {algo_name!r}"
            ) from None
        if algo_name == "bcast":
            kwargs = {"speed": self.mpi.bcast_bw_boost}
        elif algo_name == "ibcast":
            kwargs = {"speed": self.mpi.ibcast_derate}
        else:
            kwargs = {
                "speed": 1.0,
                "segments": self._ring_segments_for(len(members)),
            }
        self._count_bcast(algo_name, payload, tag)
        result = yield from algo(
            self.rank, payload, root, list(members), tag, **kwargs
        )
        return result

    def _ring_segments_for(self, n_members: int) -> int:
        """Pipeline depth: explicit setting, or adapt to the ring length."""
        if self.ring_segments is not None:
            return self.ring_segments
        return min(64, max(8, n_members))

    def _bcast_speed(self, algo_name: str) -> float:
        if algo_name == "bcast":
            return self.mpi.bcast_bw_boost
        if algo_name == "ibcast":
            return self.mpi.ibcast_derate
        return 1.0

    def bcast_start(
        self,
        payload: Any,
        root: int,
        members: Sequence[int],
        tag: int,
        algorithm: str | None = None,
    ):
        """Root side of a hardware-progressed (routed) broadcast.

        The root initiates the whole distribution schedule and returns
        immediately (nonblocking algorithms) or after its traffic left
        the NIC (the blocking library Bcast).  Non-roots complete the
        broadcast with :meth:`bcast_finish` whenever they actually need
        the data — this is what the look-ahead driver uses to overlap
        panel broadcasts with the trailing GEMM.
        """
        algo_name = algorithm or self.bcast_algorithm
        if algo_name not in ROUTE_BUILDERS:
            raise CommunicationError(
                f"unknown broadcast algorithm {algo_name!r}"
            )
        if self.rank != root:
            return None
        if algo_name in ("bcast", "ibcast"):
            segments = self.mpi.bcast_segments
            node_of = self.node_of if self.mpi.bcast_hierarchical else None
        else:
            segments = self._ring_segments_for(len(members))
            node_of = None
        cache_key = (algo_name, root, tuple(members), segments)
        spec = self._route_cache.get(cache_key)
        if spec is None:
            spec = ROUTE_BUILDERS[algo_name](
                root, list(members), segments, node_of=node_of
            )
            self._route_cache[cache_key] = spec

        self._count_bcast(algo_name, payload, tag)
        root_done = yield RouteSend(
            spec, payload, tag * TAG_STRIDE, speed=self._bcast_speed(algo_name)
        )
        if algo_name == "bcast":
            # The blocking library broadcast does not return at the root
            # until its sends have drained.
            yield BlockUntil(root_done, kind="wait_send")
        return payload

    def bcast_finish(self, root: int, tag: int):
        """Non-root side of a routed broadcast: receive the payload."""
        return (yield Recv(root, tag * TAG_STRIDE))

    def allreduce(
        self,
        payload: Any,
        members: Sequence[int],
        algorithm: str | None = None,
        tag: int = 0,
    ):
        """Sum-reduce across members; all get the result.

        ``algorithm=None`` uses the engine's modelled built-in;
        ``"ring"`` / ``"doubling"`` run the explicit point-to-point
        algorithms from :mod:`repro.comm.collectives` (``tag`` scopes
        their wire messages).
        """
        algo = algorithm if algorithm is not None else self.allreduce_algorithm
        if algo is None:
            return (yield Allreduce(tuple(members), payload))
        from repro.comm.collectives import ALLREDUCE_ALGORITHMS

        try:
            fn = ALLREDUCE_ALGORITHMS[algo]
        except KeyError:
            raise CommunicationError(
                f"unknown all-reduce algorithm {algo!r}; expected one of "
                f"{sorted(ALLREDUCE_ALGORITHMS)} or None"
            ) from None
        result = yield from fn(self.rank, payload, list(members), tag)
        return result

    def reduce(self, payload: Any, root: int, members: Sequence[int]):
        """Sum-reduce to ``root``; non-roots get None."""
        return (yield Reduce(tuple(members), root, payload))

    def barrier(self, members: Sequence[int]):
        """Synchronize members."""
        yield Barrier(tuple(members))

    def now(self):
        """This rank's current virtual time."""
        return (yield Now())
