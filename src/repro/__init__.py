"""repro — a reproduction of the SC'22 paper
"Climbing the Summit and Pushing the Frontier of Mixed Precision
Benchmarks at Extreme Scale" (Lu et al., ORNL).

The package implements the HPL-AI (HPL-MxP) mixed-precision benchmark —
unpivoted block LU in FP16/FP32 plus FP64 iterative refinement — over a
simulated distributed machine, together with the paper's performance
model, tuning studies and extreme-scale projections for the OLCF Summit
and Frontier systems.

Quick start::

    from repro import solve_hplai
    result = solve_hplai(n=512, block=64)
    print(result.residual_norm, result.ir_iterations)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro._version import __version__

__all__ = ["__version__", "solve_hplai", "simulate_run", "HplAiMatrix", "get_machine"]


def __getattr__(name):
    # Lazy re-exports so `import repro` stays light while the convenient
    # top-level API remains available.
    if name == "solve_hplai":
        from repro.core.driver import solve_hplai

        return solve_hplai
    if name == "simulate_run":
        from repro.core.driver import simulate_run

        return simulate_run
    if name == "HplAiMatrix":
        from repro.lcg.matrix import HplAiMatrix

        return HplAiMatrix
    if name == "get_machine":
        from repro.machine import get_machine

        return get_machine
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
