"""Package version (kept in its own module so __init__ stays import-light)."""

__version__ = "1.0.0"
