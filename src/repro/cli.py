"""Command-line interface: ``hplai-sim`` (or ``python -m repro``).

Subcommands mirror the workflows in the paper:

- ``solve``   — numerically exact distributed solve (small N);
- ``run``     — timing simulation of a configuration (event engine);
- ``model``   — analytic estimate of a configuration at any scale;
- ``tune``    — block-size / node-grid parameter search;
- ``scan``    — slow-GCD mini-benchmark sweep;
- ``figure``  — regenerate a paper table/figure by id;
- ``trace``   — simulate with full observability and export a
  Chrome/Perfetto trace (open in https://ui.perfetto.dev);
- ``profile`` — analyze a trace: critical path, load imbalance, comm
  matrix, model-vs-measured deviation, regression deltas;
- ``metrics`` — simulate with observability and print the metrics table;
- ``health``  — simulate under the online health monitor (straggler /
  collapse / limplock detectors + run watchdog) and report findings;
- ``dashboard`` — render trace + time series + health findings into one
  self-contained HTML file (``--campaign STORE`` renders the
  campaign-level page: sweep heatmap, trajectories, worker Gantt);
- ``bench``   — hot-path benchmark harness (writes the hotpaths record
  under benchmarks/results/), with a ``--against`` regression gate;
- ``campaign`` — the §VI-B record-run workflow; with sweep flags, a
  sharded parallel sweep with a resumable queue, content-addressed run
  cache and queryable result store (docs/CAMPAIGN.md);
- ``fleet``   — campaign analytics over a result store: GF/s heatmaps,
  best/worst cells, health/cache rollups, worker utilization, and a
  ``--against`` trend gate (docs/OBSERVABILITY.md);
- ``serve``   — long-lived campaign HTTP/JSON API: cached/deduped run
  requests, streamed progress, Prometheus ``/metrics``;
- ``lint``    — static analysis (precision-flow, tag-space,
  collective-matching, hygiene, trace-schema) with baseline support;
- ``specs``   — print machine presets.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _add_machine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--machine", choices=("summit", "frontier"), default="frontier",
        help="machine preset (default: frontier)",
    )


def _add_run_args(p: argparse.ArgumentParser) -> None:
    _add_machine_arg(p)
    p.add_argument("--nl", type=int, default=None,
                   help="local matrix size N_L (default: paper value)")
    p.add_argument("-b", "--block", type=int, default=None,
                   help="block size B (default: paper value)")
    p.add_argument("-p", "--grid", type=int, default=4,
                   help="process grid dimension P_r = P_c (default 4)")
    p.add_argument("--qr", type=int, default=None, help="node-local grid rows")
    p.add_argument("--qc", type=int, default=None, help="node-local grid cols")
    p.add_argument("--bcast", default=None,
                   choices=("bcast", "ibcast", "ring1", "ring1m", "ring2m"),
                   help="panel broadcast algorithm (default: machine best)")
    p.add_argument("--no-lookahead", action="store_true")
    p.add_argument("--no-gpu-aware", action="store_true")
    p.add_argument("--no-port-binding", action="store_true")


def _add_scenario_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scenario", default=None, metavar="FILE",
                   help="declarative fault/variability scenario JSON "
                        "(repro.scenario/v1; see docs/SCENARIOS.md)")


def _add_health_args(p: argparse.ArgumentParser) -> None:
    _add_scenario_arg(p)
    p.add_argument("--slow-rank", type=int, default=None, metavar="R",
                   help="inject a slow GCD at rank R (sugar for a "
                        "one-injection scenario; composes with --scenario)")
    p.add_argument("--slow-factor", type=float, default=1.5,
                   help="slowdown factor for --slow-rank (default 1.5)")
    p.add_argument("--cadence", type=float, default=None,
                   help="sampling cadence in virtual seconds "
                        "(default: auto from the analytic model)")
    p.add_argument("--straggler-threshold", type=float, default=0.3,
                   help="busy-rate drift fraction over the fleet median "
                        "that flags a straggler (default 0.3)")
    p.add_argument("--watchdog-margin", type=float, default=None,
                   help="deadline inflation over the analytic model "
                        "(default 25)")


def _build_config(args, n_override: Optional[int] = None):
    from repro.core.config import BenchmarkConfig
    from repro.machine import get_machine

    machine = get_machine(args.machine)
    defaults = {
        "summit": dict(nl=61440, block=768, bcast="bcast"),
        "frontier": dict(nl=119808, block=3072, bcast="ring2m"),
    }[machine.name]
    nl = args.nl or defaults["nl"]
    block = args.block or defaults["block"]
    kwargs = dict(
        n=n_override if n_override is not None else nl * args.grid,
        block=block,
        machine=machine,
        p_rows=args.grid,
        p_cols=args.grid,
        bcast_algorithm=args.bcast or defaults["bcast"],
        lookahead=not args.no_lookahead,
        gpu_aware=not args.no_gpu_aware,
        port_binding=not args.no_port_binding,
    )
    if args.qr:
        kwargs["q_rows"] = args.qr
    if args.qc:
        kwargs["q_cols"] = args.qc
    return BenchmarkConfig(**kwargs)


def _scenario_from_args(args, cfg):
    """The run's :class:`~repro.scenario.Scenario` from the CLI flags.

    ``--scenario FILE`` loads a declarative scenario document;
    ``--slow-rank R --slow-factor F`` is sugar for a one-injection
    scenario and composes with a loaded file.  All validation lives in
    the scenario layer; configuration problems surface as a clean
    ``SystemExit`` instead of a traceback.  Returns ``None`` when
    neither flag is present.
    """
    from repro.errors import ConfigurationError
    from repro.scenario import Scenario

    try:
        scenario = None
        path = getattr(args, "scenario", None)
        if path:
            scenario = Scenario.load(path)
        slow_rank = getattr(args, "slow_rank", None)
        if slow_rank is not None:
            sugar = Scenario.single_slow_rank(
                slow_rank, getattr(args, "slow_factor", 1.5)
            )
            if scenario is None:
                scenario = sugar
            else:
                scenario = Scenario(
                    name=scenario.name,
                    description=scenario.description,
                    injections=scenario.injections + sugar.injections,
                )
        if scenario is not None:
            scenario.validate_for(cfg.num_ranks)
        return scenario
    except ConfigurationError as exc:
        raise SystemExit(f"scenario: {exc}")


def _print_result(res, out=None) -> None:
    from repro.util.format import format_flops, format_seconds

    out = out if out is not None else sys.stdout
    s = res.summary()
    for key, val in s.items():
        print(f"  {key:>16}: {val}", file=out)
    print(f"  {'throughput':>16}: {format_flops(res.total_flops_per_s)}", file=out)
    print(f"  {'wall (virtual)':>16}: {format_seconds(res.elapsed)}", file=out)


def cmd_solve(args) -> int:
    """Run a numerically exact distributed solve and report accuracy."""
    from repro.core.driver import solve_hplai

    res = solve_hplai(
        n=args.n, block=args.block, p_rows=args.grid, p_cols=args.grid,
        machine=args.machine,
    )
    print(f"solved N={args.n} on a {args.grid}x{args.grid} grid "
          f"({args.machine} model)")
    print(f"  residual ||b-Ax||_inf = {res.residual_norm:.3e}")
    print(f"  IR iterations         = {res.ir_iterations} "
          f"(converged={res.ir_converged})")
    print(f"  simulated time        = {res.elapsed:.6f} s "
          f"({res.gflops_per_gcd:.1f} GFLOPS/GCD)")
    return 0 if res.ir_converged else 1


def cmd_run(args) -> int:
    """Simulate a configuration on the discrete-event engine.

    With ``--scenario`` the run executes under the scenario's composed
    injections *with the health monitor attached*, so the same command
    demonstrates both the fault and its detection; ``--health-json``
    saves the resulting health report for CI assertions.
    """
    from repro.core.driver import simulate_run

    cfg = _build_config(args)
    scenario = _scenario_from_args(args, cfg)
    progress = None
    if args.progress:
        from repro.obs.analysis import LiveProgressReporter

        progress = LiveProgressReporter(
            cfg, stream=sys.stdout, every=args.progress_every
        )
    if scenario is not None:
        from repro.obs import Observability
        from repro.obs.health import HealthMonitor

        print(f"scenario: {scenario.describe()}")
        obs = Observability(health=HealthMonitor())
        res = simulate_run(cfg, scenario=scenario, obs=obs,
                           progress=progress)
    else:
        res = simulate_run(cfg, progress=progress)
    print("event-engine simulation:")
    _print_result(res)
    if res.health is not None:
        rep = res.health
        if rep.findings:
            print(f"  health: {len(rep.findings)} finding(s), degraded "
                  f"rank(s) {rep.degraded_ranks}")
            kinds = sorted({f.get("kind", "?") for f in rep.findings})
            print(f"    kinds: {', '.join(kinds)}")
        else:
            print("  health: no findings")
        if getattr(args, "health_json", None):
            from pathlib import Path

            from repro.obs.export import dumps_strict

            Path(args.health_json).write_text(
                dumps_strict(rep.to_dict(), indent=2) + "\n"
            )
            print(f"  health report -> {args.health_json}")
    if args.json:
        from repro.core.report import save_report

        print(f"  report -> {save_report(res, args.json)}")
    if args.trace:
        from repro.core.report import save_trace_csv

        print(f"  trace  -> {save_trace_csv(res, args.trace)}")
    return 0


def cmd_model(args) -> int:
    """Estimate a configuration with the analytic model."""
    from repro.model.perf_model import estimate_run

    cfg = _build_config(args)
    scenario = _scenario_from_args(args, cfg)
    if scenario is not None:
        print(f"scenario: {scenario.describe()}")
    res = estimate_run(cfg, scenario=scenario)
    print("analytic model estimate:")
    _print_result(res)
    print("  breakdown (s):")
    for k, v in res.breakdown.items():
        print(f"    {k:>14}: {v:.2f}")
    if args.json:
        from repro.core.report import save_report

        print(f"  report -> {save_report(res, args.json)}")
    return 0


def cmd_tune(args) -> int:
    """Sweep block sizes or node-local grids with the tuner."""
    from repro.bench.reporting import render_records
    from repro.machine import get_machine
    from repro.model.tuner import sweep_block_sizes, sweep_node_grids

    machine = get_machine(args.machine)
    defaults = {"summit": (61440, 768, "bcast"),
                "frontier": (119808, 3072, "ring2m")}[machine.name]
    nl = args.nl or defaults[0]
    if args.what == "block":
        blocks = [int(b) for b in args.values.split(",")] if args.values else [
            256, 512, 768, 1024, 1536, 2048, 3072,
        ]
        rows = sweep_block_sizes(machine, nl, args.grid, blocks,
                                 bcast_algorithm=defaults[2])
        print(render_records(rows, title=f"B sweep on {machine.name}"))
    else:
        rows = sweep_node_grids(machine, nl, args.block or defaults[1],
                                args.grid, defaults[2])
        print(render_records(rows, title=f"node-grid sweep on {machine.name}"))
    return 0


def cmd_scan(args) -> int:
    """Scan a simulated GCD fleet for slow outliers."""
    from repro.machine import GcdFleet, get_machine
    from repro.tools.slownode import scan_fleet

    machine = get_machine(args.machine)
    fleet = GcdFleet(args.gcds, seed=args.seed)
    report = scan_fleet(fleet, machine)
    print(report.render(top=args.top))
    return 0


FIGURES = {
    "table1": ("table1_specs", "Table I: architectural specifications"),
    "table2": ("table2_blas_mapping", "Table II: BLAS mapping"),
    "fig3": ("fig3_gemm_heatmap", "Fig 3: GEMM heat map"),
    "fig4": ("fig4_blocksize_total", "Fig 4: B tuning at scale"),
    "fig5": ("fig5_v100_kernels", "Fig 5: V100 kernel rates"),
    "fig6": ("fig6_mi250x_kernels", "Fig 6: MI250X kernel rates"),
    "fig7": ("fig7_lda_effect", "Fig 7: LDA effect"),
    "fig8": ("fig8_comm_strategies", "Fig 8: comm strategies x grids"),
    "fig9": ("fig9_weak_scaling", "Fig 9: weak scaling"),
    "fig10": ("fig10_timing_breakdown", "Fig 10: timing breakdown"),
    "fig11": ("fig11_exascale_runs", "Fig 11: exascale runs"),
    "fig12": ("fig12_variability", "Fig 12: run variability"),
    "hpl": ("hpl_vs_hplai", "HPL-AI vs HPL"),
    "nl": ("nl_tuning", "Section V-D: N_L tuning"),
    "scan": ("slownode_scan", "Section VI-B: slow-node scan"),
    "strong": ("strong_scaling", "Section VI-A: strong scaling"),
    "lookahead": ("ablation_lookahead", "Ablation: look-ahead"),
    "projection": ("frontier_vs_summit_projection",
                   "Full-scale Frontier vs Summit"),
    "roofline": ("roofline_report", "Roofline analysis (balance)"),
}


def cmd_dat(args) -> int:
    """Expand an HPL.dat file into runs and report the sweep."""
    from repro.bench.reporting import render_records
    from repro.core.driver import simulate_run
    from repro.io.hpldat import expand_configs, parse_hpldat
    from repro.model.perf_model import estimate_run

    dat = parse_hpldat(args.file)
    rows = []
    for cfg in expand_configs(dat):
        if args.engine:
            res = simulate_run(cfg)
        else:
            res = estimate_run(cfg)
        rows.append(
            {
                "N": cfg.n,
                "NB": cfg.block,
                "PxQ": f"{cfg.p_rows}x{cfg.p_cols}",
                "bcast": cfg.bcast_algorithm,
                "elapsed_s": res.elapsed,
                "gflops_per_gcd": res.gflops_per_gcd,
            }
        )
    mode = "event engine" if args.engine else "analytic model"
    print(render_records(rows, title=f"HPL.dat sweep ({mode})"))
    best = max(rows, key=lambda r: r["gflops_per_gcd"])
    print(f"\nbest: N={best['N']}, NB={best['NB']}, {best['PxQ']} "
          f"-> {best['gflops_per_gcd']:,.0f} GFLOPS/GCD")
    return 0


def cmd_campaign(args) -> int:
    """Record-run campaign: one config, or a sharded parallel sweep.

    Without sweep flags this is the classic §VI-B single-config
    workflow (scan, warm up, N consecutive runs, best-of report).  Any
    of --sweep/--grids/--bcasts/--scenarios/--store/--resume/--workers>1
    switches to the campaign engine: a persistent resumable job queue,
    a content-addressed run cache, a multiprocessing worker pool, and a
    queryable result store (see docs/CAMPAIGN.md).
    """
    if (args.sweep or args.grids or args.bcasts or args.scenarios
            or args.store or args.resume or args.workers > 1
            or args.against or args.export):
        return _cmd_campaign_sweep(args)
    from repro.machine import GcdFleet
    from repro.tools.campaign import run_campaign

    cfg = _build_config(args)
    scenario = _scenario_from_args(args, cfg)
    if scenario is not None:
        print(f"scenario: {scenario.describe()}")
    fleet = GcdFleet(
        cfg.num_ranks + args.spare_nodes * cfg.machine.node.gcds_per_node,
        seed=args.seed,
    )
    res = run_campaign(
        cfg, fleet=fleet, num_runs=args.runs,
        exclude_slow_nodes=not args.no_scan,
        do_warmup=not args.no_warmup,
        scenario=scenario,
    )
    print(res.render())
    from repro.util.format import format_flops

    print(f"\nbest run: {format_flops(res.best.total_flops_per_s)} "
          f"(run {res.best.index + 1}); post-first variability "
          f"{res.variability:.2%}")
    return 0


#: default location of the campaign store (queue/cache live beside it)
DEFAULT_CAMPAIGN_STORE = "benchmarks/results/campaign/store.jsonl"


def _campaign_paths(args):
    """Resolve (store, queue, cache-dir) paths from the CLI flags."""
    from pathlib import Path

    store = Path(args.store or DEFAULT_CAMPAIGN_STORE)
    queue = Path(args.queue) if args.queue else store.parent / "queue.json"
    cache = Path(args.cache_dir) if args.cache_dir else store.parent / "cache"
    return store, queue, cache


def _cmd_campaign_sweep(args) -> int:
    """The campaign engine path: queue + cache + store + worker pool."""
    from pathlib import Path

    from repro.bench.reporting import render_records
    from repro.campaign import (
        CampaignEngine,
        JobQueue,
        ResultStore,
        RunCache,
        SweepSpec,
        compare_stores,
    )
    from repro.errors import ConfigurationError
    from repro.util.atomicio import atomic_write_json

    def _csv(raw, conv=str):
        return [conv(v) for v in raw.split(",") if v] if raw else []

    try:
        if args.sweep:
            spec = SweepSpec.load(args.sweep)
        else:
            scenarios = _csv(args.scenarios) or (
                [args.scenario] if args.scenario else [None]
            )
            spec = SweepSpec(
                machine=args.machine, nl=args.nl, block=args.block,
                num_runs=args.runs, seed=args.seed,
                spare_nodes=args.spare_nodes,
                grids=_csv(args.grids, int) or [args.grid],
                bcasts=_csv(args.bcasts) or
                ([args.bcast] if args.bcast else ()),
                scenarios=scenarios,
            )
        jobs = spec.expand()
        store_path, queue_path, cache_dir = _campaign_paths(args)
        if queue_path.exists() and not args.resume:
            queue_path.unlink()
        store = ResultStore(store_path)
        queue = JobQueue(queue_path)
        engine = CampaignEngine(
            store, RunCache(cache_dir),
            workers=args.workers, stream=sys.stdout,
        )
        outcome = engine.run_sweep(jobs, queue)
    except ConfigurationError as exc:
        raise SystemExit(f"campaign: {exc}")

    print(render_records(
        store.rows(),
        title=f"campaign store: {store_path} ({len(store)} row(s))",
        float_fmt="{:.3f}",
    ))
    print(
        f"\nsweep: {outcome.total} job(s), {outcome.computed} computed, "
        f"{outcome.cached} cached ({outcome.cache_hit_ratio:.0%} hit), "
        f"{outcome.failed} failed, {outcome.workers} worker(s), "
        f"{outcome.wall_s:.2f}s wall"
    )
    rc = 1 if outcome.failed else 0
    if args.export:
        atomic_write_json(args.export, store.export_document())
        print(f"store export -> {args.export}")
    if args.summary_json:
        atomic_write_json(args.summary_json, outcome.to_dict())
        print(f"summary -> {args.summary_json}")
    if args.against:
        from repro.bench.regression import render_regressions

        try:
            deltas = compare_stores(store, Path(args.against),
                                    args.max_regress)
        except ConfigurationError as exc:
            raise SystemExit(f"campaign: {exc}")
        print()
        print(render_regressions(deltas, args.max_regress))
        if any(d.regressed for d in deltas):
            rc = 1
    return rc


def cmd_serve(args) -> int:
    """Serve the campaign API over HTTP until interrupted."""
    from repro.campaign.serve import make_server

    store_path, _queue, cache_dir = _campaign_paths(args)
    server = make_server(
        store_path, cache_dir, host=args.host, port=args.port,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    print(f"repro serve listening on http://{host}:{port} "
          f"(store={store_path}, cache={cache_dir})")
    print("endpoints: GET /healthz /stats /metrics /results "
          "/results/<key>; POST /run[?stream=1] /tune /profile")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


#: figures that can be rendered as terminal plots: id -> (x, y, group, logx)
_PLOTTABLE = {
    "fig4": ("B", "gflops_per_gcd", "machine", False),
    "fig9": ("gcds", "gflops_per_gcd", "machine", True),
    "fig10": ("iteration", "comm_fraction_pct", None, False),
    "fig12": ("run", "relative_perf_pct", "machine", False),
}


def cmd_figure(args) -> int:
    """Regenerate one paper table/figure (optionally plotted)."""
    from repro.bench import figures as figmod
    from repro.bench.reporting import render_records

    fn_name, title = FIGURES[args.id]
    rows = getattr(figmod, fn_name)()
    print(render_records(rows, title=title, float_fmt="{:.3f}"))
    if args.plot:
        from repro.bench.ascii_plot import line_plot, records_to_series

        if args.id == "fig3":
            from repro.bench.ascii_plot import heat_map

            col_keys = [k for k in rows[0] if k.startswith("k=")]
            print()
            print(heat_map(
                [[r[c] for c in col_keys] for r in rows],
                [r["m=n"] for r in rows],
                [c[2:] for c in col_keys],
                title="Fig 3: GEMM TFLOP/s (rows: m=n, cols: k)",
            ))
        elif args.id in _PLOTTABLE:
            x, y, group, logx = _PLOTTABLE[args.id]
            if group is None:
                series = {"rank 0": [(r[x], r[y]) for r in rows]}
            else:
                series = records_to_series(rows, x, y, group)
            print()
            print(line_plot(series, title=title, x_label=x, y_label=y,
                            logx=logx))
        else:
            print("\n(no plot renderer for this figure; table only)")
    return 0


def cmd_gantt(args) -> int:
    """Simulate a small run and render its per-rank Gantt timeline."""
    from repro.core.executors import PhantomExecutor
    from repro.core.hplai import hplai_rank_program
    from repro.machine.topology import CommCosts
    from repro.simulate.engine import Engine
    from repro.simulate.timeline import busy_fraction, render_gantt

    cfg = _build_config(args)
    if cfg.num_ranks > 64:
        print("gantt is meant for small runs; use -p <= 8")
        return 1
    costs = CommCosts(cfg.machine, port_binding=cfg.port_binding,
                      gpu_aware=cfg.gpu_aware)
    engine = Engine(
        cfg.num_ranks, costs, node_of_rank=cfg.node_grid.node_of_rank,
        mpi=cfg.machine.mpi, record_timeline=True,
    )

    def factory(rank):
        p_ir, p_ic = cfg.grid.coords_of(rank)
        return hplai_rank_program(
            cfg, PhantomExecutor(cfg, p_ir, p_ic, rank), rank, None
        )

    result = engine.run(factory)
    print(render_gantt(engine.timeline, width=args.width))
    fracs = busy_fraction(engine.timeline, result.elapsed)
    mean_busy = sum(fracs.values()) / len(fracs)
    print(f"\nelapsed {result.elapsed:.3f}s (virtual); mean GCD busy "
          f"fraction {mean_busy:.0%}")
    return 0


def _observed_run(args):
    """Simulate ``args``'s configuration with telemetry enabled."""
    from repro.core.driver import simulate_run
    from repro.obs import Observability

    cfg = _build_config(args)
    obs = Observability(capacity=getattr(args, "max_spans", None))
    res = simulate_run(cfg, obs=obs)
    return cfg, obs, res


def cmd_trace(args) -> int:
    """Simulate a run and export its unified trace (Chrome/Perfetto).

    Exports are written in the canonical span order (start, end, rank,
    cat, name) so two traces of the same run diff cleanly; --category /
    --rank narrow the export to the lanes under study.
    """
    cfg, obs, res = _observed_run(args)
    sel = dict(cats=args.category or None, ranks=args.rank or None, sort=True)
    path = obs.export_chrome_trace(args.out, **sel)
    cats = obs.tracer.categories()
    print(f"simulated N={cfg.n} on {cfg.p_rows}x{cfg.p_cols} "
          f"({cfg.machine.name} model): {res.elapsed:.3f}s virtual")
    print(f"  {len(obs.tracer)} spans "
          f"({', '.join(f'{c}: {n}' for c, n in sorted(cats.items()))}"
          f"{f'; dropped {obs.tracer.dropped}' if obs.tracer.dropped else ''})")
    if args.category or args.rank:
        from repro.obs.export import filter_spans

        kept = len(filter_spans(obs.tracer, **sel))
        print(f"  exported {kept} spans after --category/--rank filters")
    print(f"  chrome trace -> {path}  (open in https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"  span log     -> {obs.export_jsonl(args.jsonl, **sel)}")
    if args.json:
        from repro.core.report import save_report

        print(f"  report       -> {save_report(res, args.json, obs=obs)}")
    return 0


def cmd_profile(args) -> int:
    """Analyze an exported trace: critical path, imbalance, comm matrix,
    model-vs-measured deviation, and optional regression gating."""
    import json
    from pathlib import Path

    from repro.obs.analysis import (
        build_profile,
        compare_profiles,
        load_profile_input,
    )
    from repro.obs.export import dumps_strict

    pi = load_profile_input(args.trace)
    rep = build_profile(
        pi,
        threshold=args.straggler_threshold,
        with_model=not args.no_model,
    )
    doc = rep.to_dict()
    if args.format == "json":
        text = dumps_strict(doc, indent=2)
    elif args.format == "csv":
        text = "\n".join(
            ",".join(str(c) for c in row) for row in rep.csv_rows()
        )
    else:
        text = rep.render_text()
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    rc = 0
    if args.against:
        from repro.bench.regression import render_regressions

        baseline = json.loads(Path(args.against).read_text())
        deltas = compare_profiles(doc, baseline, args.max_regress)
        print()
        print(render_regressions(deltas, args.max_regress))
        if any(d.regressed for d in deltas):
            rc = 1
    if args.max_dev is not None:
        if rep.deviation is None:
            print("profile: --max-dev given but no model comparison was "
                  "possible (trace has no usable provenance)")
            rc = 2
        else:
            worst = rep.deviation.worst()
            if worst is not None and abs(worst.deviation) > args.max_dev:
                print(f"profile: phase {worst.phase!r} deviates "
                      f"{worst.deviation:+.1%} from the model "
                      f"(budget ±{args.max_dev:.0%})")
                rc = 1
    return rc


def _monitored_run(args):
    """Simulate with a health monitor attached (optional --scenario
    file and/or --slow-rank sugar)."""
    from repro.core.driver import simulate_run
    from repro.obs import Observability
    from repro.obs.health import HealthMonitor, RunWatchdog

    cfg = _build_config(args)
    scenario = _scenario_from_args(args, cfg)
    monitor = HealthMonitor(
        cadence=getattr(args, "cadence", None),
        straggler_threshold=getattr(args, "straggler_threshold", 0.3),
        watchdog=RunWatchdog(
            margin=getattr(args, "watchdog_margin", None) or 25.0
        ),
    )
    obs = Observability(health=monitor)
    res = simulate_run(cfg, scenario=scenario, obs=obs)
    return cfg, obs, res


def cmd_health(args) -> int:
    """Run under the health monitor and print/save the health report.

    Exit code 1 with --fail-on-findings when any detector fired (CI
    uses this as the run-health gate).
    """
    from pathlib import Path

    from repro.obs.export import dumps_strict

    cfg, obs, res = _monitored_run(args)
    rep = res.health
    if args.json or args.out:
        text = dumps_strict(rep.to_dict(), indent=2)
    else:
        text = rep.render_text()
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    if args.fail_on_findings and not rep.healthy:
        return 1
    return 0


def cmd_fleet(args) -> int:
    """Campaign analytics over a result store (the fleet document).

    With ``--against``, gates every heatmap cell through the shared
    :func:`repro.campaign.store.compare_stores` regression engine and
    exits 1 on drift.
    """
    import json

    from repro.errors import ConfigurationError
    from repro.obs.fleet import (
        build_fleet,
        render_fleet_csv,
        render_fleet_text,
    )
    from repro.util.atomicio import atomic_write_text

    try:
        doc = build_fleet(
            args.store, artifacts=args.artifacts, summary=args.summary,
            baselines=args.against or (), max_regress=args.max_regress,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"fleet: {exc}")
    if args.format == "json":
        rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    elif args.format == "csv":
        rendered = render_fleet_csv(doc)
    else:
        rendered = render_fleet_text(doc) + "\n"
    if args.out:
        atomic_write_text(args.out, rendered)
        print(f"fleet document -> {args.out}")
    else:
        print(rendered, end="")
    if args.against and args.format == "text" and not args.out:
        from repro.bench.regression import render_regressions
        from repro.campaign.store import compare_stores

        for baseline in args.against:
            print()
            print(render_regressions(
                compare_stores(args.store, baseline, args.max_regress),
                args.max_regress,
            ))
    return 1 if doc.get("regressed") else 0


def _cmd_campaign_dashboard(args) -> int:
    """The ``dashboard --campaign STORE`` branch: fleet-level HTML."""
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.obs.fleet import build_fleet, render_campaign_dashboard
    from repro.obs.health import validate_self_contained

    try:
        doc = build_fleet(
            args.campaign, artifacts=args.artifacts,
            baselines=args.against or (),
        )
    except ConfigurationError as exc:
        raise SystemExit(f"dashboard: {exc}")
    html = render_campaign_dashboard(
        doc, title=f"repro campaign dashboard: {args.campaign}"
    )
    problems = validate_self_contained(html)
    Path(args.out).write_text(html)
    cells = len(doc.get("heatmap", {}).get("cells", []))
    print(f"wrote {args.out} ({len(html)} bytes, {cells} cell(s), "
          f"{len(doc.get('workers', {}).get('per_worker', []))} worker(s))")
    for prob in problems:
        print(f"dashboard: {prob}")
    return 1 if problems else 0


def cmd_dashboard(args) -> int:
    """Render the self-contained HTML dashboard for a run.

    Either simulates fresh (run args, optional --slow-rank), renders
    from previously exported artifacts (--trace plus optional
    --health), or renders the campaign-level page from a result store
    (--campaign).
    """
    import json
    from pathlib import Path

    from repro.obs.health import render_dashboard, validate_self_contained

    if args.campaign:
        return _cmd_campaign_dashboard(args)
    if args.trace:
        from repro.obs.analysis import load_profile_input

        pi = load_profile_input(args.trace)
        health_doc = (
            json.loads(Path(args.health).read_text())
            if args.health else None
        )
        title = f"repro dashboard: {args.trace}"
    else:
        from repro.obs.analysis import from_observability

        cfg, obs, res = _monitored_run(args)
        pi = from_observability(obs)
        health_doc = res.health.to_dict()
        title = (
            f"repro dashboard: N={cfg.n} {cfg.p_rows}x{cfg.p_cols} "
            f"on {cfg.machine.name}"
        )
    html = render_dashboard(pi, health_doc, title=title)
    problems = validate_self_contained(html)
    Path(args.out).write_text(html)
    print(f"wrote {args.out} ({len(html)} bytes, "
          f"{len(pi.spans)} spans, "
          f"{len((health_doc or {}).get('findings') or [])} finding(s))")
    for prob in problems:
        print(f"dashboard: {prob}")
    return 1 if problems else 0


def cmd_metrics(args) -> int:
    """Simulate a run and print its metrics registry."""
    from repro.util.format import render_table

    cfg, obs, res = _observed_run(args)
    fmt = "prometheus" if args.prom else args.format
    if fmt == "prometheus":
        print(obs.metrics_text(), end="")
        return 0
    rows = obs.metrics.rows()
    table_rows = [
        [r["metric"], r["labels"], r["kind"],
         f"{r['value']:.6g}" if isinstance(r["value"], float) else r["value"],
         r["count"]]
        for r in rows
    ]
    print(render_table(
        ["metric", "labels", "kind", "value", "count"],
        table_rows,
        title=f"metrics: N={cfg.n}, {cfg.p_rows}x{cfg.p_cols} "
        f"on {cfg.machine.name} ({res.elapsed:.3f}s virtual)",
    ))
    return 0


def cmd_report(args) -> int:
    """Regenerate the EXPERIMENTS.md reproduction record."""
    from repro.bench.report_md import generate_experiments_markdown

    text = generate_experiments_markdown()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def cmd_bench(args) -> int:
    """Run the hot-path benchmark harness; optionally gate vs a baseline."""
    from repro.bench.hotpaths import load_record, render_hotpaths, run_hotpaths

    # Load the baseline before running: --against may name the same file
    # --out is about to overwrite.
    baseline = load_record(args.against) if args.against else None
    if args.against and baseline is None:
        print(f"bench: no usable baseline record at {args.against}")
        return 2
    record = run_hotpaths(
        n=args.n, block=args.block, grid=args.grid, reps=args.reps,
        seed=args.seed, machine=args.machine, out=args.out,
    )
    print(render_hotpaths(record))
    if args.out:
        print(f"wrote {args.out}")
    if baseline is None:
        return 0

    from repro.bench.regression import compare_records, render_regressions
    deltas = compare_records(record, baseline, args.max_regress)
    print()
    print(render_regressions(deltas, args.max_regress))
    return 1 if any(d.regressed for d in deltas) else 0


def cmd_specs(args) -> int:
    """Print the machine presets (Table I)."""
    from repro.bench.figures import table1_specs
    from repro.bench.reporting import render_records

    print(render_records(table1_specs(), title="machine presets (Table I)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="hplai-sim",
        description=(
            "Simulated-exascale HPL-AI benchmark suite (reproduction of "
            "Lu et al., SC'22)."
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="numerically exact distributed solve")
    p.add_argument("-n", type=int, default=512, help="matrix size N")
    p.add_argument("-b", "--block", type=int, default=64, help="block size B")
    p.add_argument("-p", "--grid", type=int, default=2, help="grid dim")
    _add_machine_arg(p)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("run", help="event-engine timing simulation")
    _add_run_args(p)
    _add_scenario_arg(p)
    p.add_argument("--health-json", default=None, metavar="FILE",
                   help="with --scenario: write the monitored run's "
                        "health report as JSON")
    p.add_argument("--json", default=None, help="write a JSON run report")
    p.add_argument("--trace", default=None,
                   help="write the per-iteration trace as CSV")
    p.add_argument("--progress", action="store_true",
                   help="print per-panel-column GF/s and projected finish "
                        "while the run executes")
    p.add_argument("--progress-every", type=int, default=1, metavar="K",
                   help="report every K panel columns (default 1)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("model", help="analytic estimate at any scale")
    _add_run_args(p)
    _add_scenario_arg(p)
    p.add_argument("--json", default=None, help="write a JSON run report")
    p.set_defaults(func=cmd_model)

    p = sub.add_parser("tune", help="parameter sweeps")
    p.add_argument("what", choices=("block", "grid"))
    p.add_argument("-p", "--grid", type=int, default=32)
    p.add_argument("--nl", type=int, default=None)
    p.add_argument("-b", "--block", type=int, default=None)
    p.add_argument("--values", default=None,
                   help="comma-separated block sizes to sweep")
    _add_machine_arg(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("scan", help="slow-GCD mini-benchmark scan")
    p.add_argument("--gcds", type=int, default=512)
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--top", type=int, default=10)
    _add_machine_arg(p)
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("dat", help="run a sweep from an HPL.dat-style file")
    p.add_argument("file", help="path to the HPL.dat file")
    p.add_argument("--engine", action="store_true",
                   help="use the event engine instead of the analytic model")
    p.set_defaults(func=cmd_dat)

    p = sub.add_parser(
        "campaign",
        help="record-run campaign: one config, or a sharded resumable "
             "sweep with run cache + result store",
    )
    _add_run_args(p)
    _add_scenario_arg(p)
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--spare-nodes", type=int, default=4,
                   help="extra nodes in the pool for slow-node exclusion")
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--no-scan", action="store_true")
    p.add_argument("--no-warmup", action="store_true")
    g = p.add_argument_group("sweep engine (docs/CAMPAIGN.md)")
    g.add_argument("--sweep", default=None, metavar="FILE",
                   help="sweep spec JSON (repro.campaign.sweep/v1); "
                        "overrides the axis flags below")
    g.add_argument("--grids", default=None, metavar="P1,P2,...",
                   help="comma-separated grid dims to sweep")
    g.add_argument("--bcasts", default=None, metavar="A1,A2,...",
                   help="comma-separated broadcast algorithms to sweep")
    g.add_argument("--scenarios", default=None, metavar="F1,F2,...",
                   help="comma-separated scenario files as a sweep axis "
                        "('none' = baseline row)")
    g.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sweep (default 1)")
    g.add_argument("--store", default=None, metavar="JSONL",
                   help=f"result store path "
                        f"(default {DEFAULT_CAMPAIGN_STORE})")
    g.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="run-cache directory (default: 'cache' beside "
                        "the store)")
    g.add_argument("--queue", default=None, metavar="JSON",
                   help="queue checkpoint path (default: 'queue.json' "
                        "beside the store)")
    g.add_argument("--resume", action="store_true",
                   help="resume an interrupted sweep from the queue "
                        "checkpoint (only pending jobs run)")
    g.add_argument("--against", default=None, metavar="STORE",
                   help="baseline store (.jsonl or export JSON) to gate "
                        "per-config elapsed against (exit 1 on regression)")
    g.add_argument("--max-regress", type=float, default=0.25,
                   help="--against tolerance (default 0.25)")
    g.add_argument("--export", default=None, metavar="JSON",
                   help="write the store as one repro.campaign.store/v1 "
                        "JSON document")
    g.add_argument("--summary-json", default=None, metavar="JSON",
                   help="write the sweep outcome summary "
                        "(computed/cached/failed + cache stats)")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="long-lived campaign HTTP/JSON API (cache-deduped runs, "
             "streamed progress)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--store", default=None, metavar="JSONL",
                   help=f"result store path "
                        f"(default {DEFAULT_CAMPAIGN_STORE})")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="run-cache directory (default: 'cache' beside "
                        "the store)")
    p.add_argument("--queue", default=None, help=argparse.SUPPRESS)
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("id", choices=sorted(FIGURES))
    p.add_argument("--plot", action="store_true",
                   help="also render a terminal plot where available")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "trace", help="simulate with observability and export a Chrome trace"
    )
    _add_run_args(p)
    p.add_argument("--out", default="trace.json",
                   help="Chrome-trace JSON output path (default trace.json)")
    p.add_argument("--jsonl", default=None,
                   help="also write the span log as JSONL")
    p.add_argument("--json", default=None,
                   help="also write the run report (with provenance)")
    p.add_argument("--max-spans", type=int, default=None,
                   help="bound tracer memory to the newest N spans")
    p.add_argument("--category", action="append", default=None,
                   metavar="CAT",
                   help="export only this span category (repeatable: "
                        "engine, executor, comm, driver, hotpath)")
    p.add_argument("--rank", action="append", type=int, default=None,
                   metavar="R",
                   help="export only this rank's lane (repeatable; "
                        "-1 = driver lane)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="analyze a trace: critical path, imbalance, comm matrix, "
             "model deviation",
    )
    p.add_argument("trace",
                   help="exported trace (Chrome JSON or JSONL span log)")
    p.add_argument("--format", choices=("text", "json", "csv"),
                   default="text", help="output format (default text)")
    p.add_argument("--out", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--against", default=None, metavar="PROFILE_JSON",
                   help="baseline profile report (from --format json) to "
                        "compute regression deltas against")
    p.add_argument("--max-regress", type=float, default=0.25,
                   help="fail (exit 1) when a phase is this fraction "
                        "slower than the --against baseline (default 0.25)")
    p.add_argument("--max-dev", type=float, default=None,
                   help="fail (exit 1) when any modelled phase deviates "
                        "more than this fraction from the analytic model")
    p.add_argument("--straggler-threshold", type=float, default=0.02,
                   help="flag ranks busier than the median by this "
                        "fraction (default 0.02)")
    p.add_argument("--no-model", action="store_true",
                   help="skip the model-vs-measured section")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "metrics", help="simulate with observability and print metrics"
    )
    _add_run_args(p)
    p.add_argument("--format", choices=("table", "prometheus"),
                   default="table",
                   help="output format (default table; prometheus adds "
                        "histogram quantile summaries)")
    p.add_argument("--prom", action="store_true",
                   help="alias for --format prometheus")
    p.add_argument("--max-spans", type=int, default=None,
                   help="bound tracer memory to the newest N spans")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "health",
        help="simulate under the health monitor and report findings",
    )
    _add_run_args(p)
    _add_health_args(p)
    p.add_argument("--json", action="store_true",
                   help="emit the health report as JSON")
    p.add_argument("--out", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--fail-on-findings", action="store_true",
                   help="exit 1 when any detector fired (CI gate)")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "dashboard",
        help="render a self-contained HTML dashboard "
             "(trace + time series + health findings)",
    )
    _add_run_args(p)
    _add_health_args(p)
    p.add_argument("--trace", default=None,
                   help="render from an exported trace instead of "
                        "simulating (Chrome JSON or JSONL)")
    p.add_argument("--health", default=None, metavar="HEALTH_JSON",
                   help="health report (from `repro health --json`) to "
                        "annotate a --trace rendering with")
    p.add_argument("--campaign", default=None, metavar="STORE",
                   help="render the campaign-level dashboard from a "
                        "result store (.jsonl) instead of one run")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="with --campaign: directory of per-job "
                        "<key>.profile.json / <key>.health.json artifacts "
                        "(default: the store's directory)")
    p.add_argument("--against", action="append", default=[],
                   metavar="BASELINE",
                   help="with --campaign: baseline store(s) for the "
                        "trend panel (repeatable)")
    p.add_argument("--out", default="dashboard.html",
                   help="output HTML path (default dashboard.html)")
    p.set_defaults(func=cmd_dashboard)

    p = sub.add_parser(
        "fleet",
        help="campaign analytics: GF/s heatmaps, rollups, worker "
             "utilization, store-over-store trend gate",
    )
    p.add_argument("store",
                   help="campaign result store (.jsonl) or "
                        "repro.campaign.store/v1 export to analyze")
    p.add_argument("--format", choices=("text", "json", "csv"),
                   default="text", help="report format (default text)")
    p.add_argument("--out", default=None,
                   help="write the rendered report to a file")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="directory of per-job <key>.profile.json / "
                        "<key>.health.json artifacts (default: the "
                        "store's directory)")
    p.add_argument("--summary", default=None, metavar="SUMMARY_JSON",
                   help="sweep summary (repro.campaign.summary/v1) for "
                        "the cache rollup")
    p.add_argument("--against", action="append", default=[],
                   metavar="BASELINE",
                   help="baseline store for the trend gate (repeatable); "
                        "exit 1 when any cell regresses")
    p.add_argument("--max-regress", type=float, default=0.25,
                   help="per-cell regression gate (default 0.25)")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("gantt", help="per-rank Gantt of a small simulation")
    _add_run_args(p)
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser(
        "report", help="regenerate the full paper-vs-measured record"
    )
    p.add_argument("--out", default=None,
                   help="write to a file instead of stdout")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench", help="hot-path micro/macro benchmark harness"
    )
    p.add_argument("what", choices=("hotpaths",))
    p.add_argument("-n", type=int, default=1024, help="matrix size N")
    p.add_argument("-b", "--block", type=int, default=64, help="block size B")
    p.add_argument("-p", "--grid", type=int, default=2, help="grid dim")
    p.add_argument("--reps", type=int, default=3,
                   help="repetitions per stage (default 3)")
    p.add_argument("--seed", type=int, default=42)
    from repro.bench.hotpaths import DEFAULT_OUT as _BENCH_OUT

    p.add_argument("--out", default=_BENCH_OUT,
                   help=f"JSON record path ('' to skip writing; "
                        f"default {_BENCH_OUT})")
    p.add_argument("--against", default=None, metavar="RECORD_JSON",
                   help="baseline hotpaths record to gate against")
    p.add_argument("--max-regress", type=float, default=0.25,
                   help="fail (exit 1) when a stage's min_s is this "
                        "fraction slower than the baseline (default 0.25)")
    _add_machine_arg(p)
    p.set_defaults(func=cmd_bench)

    from repro.analyze.cli import add_lint_parser
    from repro.analyze.schedule.cli import add_verify_comm_parser

    add_lint_parser(sub)
    add_verify_comm_parser(sub)

    p = sub.add_parser("specs", help="print machine presets")
    p.set_defaults(func=cmd_specs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
