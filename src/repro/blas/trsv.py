"""Triangular solves with a vector right-hand side (TRSV).

Iterative refinement (Algorithm 1 line 47) computes the correction
``d = U^{-1} (L^{-1} r)`` with two CPU-side TRSVs — the paper maps these
to openBLAS on both systems (Table II).  HPL-AI performs the solves in
FP32 while carrying the result in FP64 ("the solution discrepancy d is
solved with mixed precision (FP32/FP64)"); callers control that by the
dtype they pass in.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.errors import ConfigurationError


def _check(t: np.ndarray, x: np.ndarray) -> None:
    if t.ndim != 2 or t.shape[0] != t.shape[1]:
        raise ConfigurationError(f"triangle must be square, got {t.shape}")
    if x.ndim != 1 or x.shape[0] != t.shape[0]:
        raise ConfigurationError(
            f"rhs vector shape {x.shape} incompatible with triangle {t.shape}"
        )


def trsv_lower_unit(t: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``TRSV_LOW``: solve ``L y = x`` with L unit lower triangular."""
    _check(t, x)
    return sla.solve_triangular(t, x, lower=True, unit_diagonal=True).astype(
        x.dtype, copy=False
    )


def trsv_upper(t: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``TRSV_UP``: solve ``U y = x`` with U upper triangular (non-unit)."""
    _check(t, x)
    return sla.solve_triangular(t, x, lower=False, unit_diagonal=False).astype(
        x.dtype, copy=False
    )


def lu_solve_packed(lu: np.ndarray, b: np.ndarray, solve_dtype=None) -> np.ndarray:
    """Solve ``(L U) y = b`` given a packed unpivoted L\\U factorization.

    ``solve_dtype`` optionally lowers the precision of the two triangular
    solves (HPL-AI uses FP32 solves on FP64 data).  The result is returned
    in ``b``'s dtype.
    """
    if solve_dtype is None:
        solve_dtype = b.dtype
    t = lu.astype(solve_dtype, copy=False)
    rhs = b.astype(solve_dtype, copy=False)
    y = trsv_lower_unit(t, rhs)
    y = trsv_upper(t, y)
    return y.astype(b.dtype, copy=False)
