"""GEMM kernels, including the mixed-precision FP16-in / FP32-accumulate path.

The heart of HPL-AI (paper Section III-C): the trailing-matrix update

    A[k+1:, k+1:] -= L[k+1:, k] @ U[k, k+1:]

is performed with L and U stored in FP16 and the product accumulated in
FP32 — exactly the contract of ``cublasSgemmEx`` / ``rocblas_gemm_ex``
with HALF input and FLOAT compute types.  We emulate that contract by
rounding the operands through FP16 and multiplying in FP32: each operand
element carries one FP16 rounding, while products and sums are FP32,
which matches tensor-core semantics at the granularity relevant to
iterative-refinement convergence analysis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, PrecisionError
from repro.precision.types import FP16, FP32

#: largest finite FP16 magnitude; wider values round to ``inf`` in the cast
FP16_MAX = float(np.finfo(np.float16).max)


def _check_matmul_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 2 or b.ndim != 2:
        raise ConfigurationError(
            f"gemm requires 2-D operands, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(
            f"gemm inner dimensions differ: {a.shape} @ {b.shape}"
        )


def gemm(a: np.ndarray, b: np.ndarray, out_dtype=None) -> np.ndarray:
    """Plain full-precision product ``A @ B`` (used by the FP64 baseline)."""
    _check_matmul_shapes(a, b)
    result = a @ b
    if out_dtype is not None:
        result = result.astype(out_dtype, copy=False)
    return result


def _to_fp16(x: np.ndarray, name: str) -> np.ndarray:
    """Round an operand to FP16, refusing to overflow silently.

    A finite wide-precision value with magnitude above :data:`FP16_MAX`
    would round to ``inf`` and poison the whole accumulation; consistent
    with :meth:`repro.lcg.matrix.HplAiMatrix.check_fp16_safe`, we raise
    instead.  Already-``inf``/``nan`` inputs pass through unchanged —
    casting them is faithful, not an overflow.
    """
    if x.dtype == FP16.dtype:
        return x
    finite_overflow = np.isfinite(x) & (np.abs(x) > FP16_MAX)
    if finite_overflow.any():
        worst = float(np.max(np.abs(np.where(finite_overflow, x, 0.0))))
        raise PrecisionError(
            f"gemm_mixed operand {name} has {int(finite_overflow.sum())} "
            f"value(s) above the FP16 max ({FP16_MAX:.0f}); largest is "
            f"{worst:.6g} — the FP16 cast would silently produce inf"
        )
    return x.astype(FP16.dtype)


def gemm_mixed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """FP16-operand, FP32-accumulate product of ``A @ B``.

    Operands are rounded to FP16 if they are not already, then promoted
    to FP32 for the multiply so that accumulation happens in single
    precision (NumPy's matmul accumulates in the output dtype).  Finite
    operand values beyond the FP16 range raise :class:`PrecisionError`
    rather than silently becoming ``inf``.
    """
    _check_matmul_shapes(a, b)
    a16 = _to_fp16(a, "A")
    b16 = _to_fp16(b, "B")
    return a16.astype(FP32.dtype) @ b16.astype(FP32.dtype)


def gemm_update(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The HPL-AI trailing update ``C <- C - A @ B`` in mixed precision.

    ``C`` must be FP32 and is updated in place (the GPU implementation
    updates the resident trailing matrix); ``A`` and ``B`` are the FP16
    panels.  Returns ``C`` for chaining.
    """
    if c.dtype != FP32.dtype:
        raise ConfigurationError(
            f"trailing matrix must be fp32, got {c.dtype}"
        )
    _check_matmul_shapes(a, b)
    if c.shape != (a.shape[0], b.shape[1]):
        raise ConfigurationError(
            f"update shape mismatch: C is {c.shape}, A@B is "
            f"({a.shape[0]}, {b.shape[1]})"
        )
    c -= gemm_mixed(a, b)
    return c
