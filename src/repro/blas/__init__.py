"""Dense linear-algebra kernels used by the HPL-AI and HPL drivers.

These are the Python equivalents of the vendor BLAS/solver calls in
Table II of the paper (cublasSgemmEx / rocblas_gemm_ex, *strsm,
*sgetrf, openBLAS trsv).  All kernels are pure NumPy and operate on the
precisions they would on the GPU:

- :func:`gemm_mixed` — FP16 operands, FP32 accumulation (the tensor-core
  / MFMA path used for the trailing-matrix update);
- :func:`getrf_nopiv` — unpivoted LU of the FP32 diagonal block;
- :func:`getrf_partial` — pivoted LU (the HPL FP64 baseline);
- :func:`trsm` — the four [R|L][UP|LOW] triangular panel solves;
- :func:`trsv` / :func:`gemv` — CPU-side refinement kernels.
"""

from repro.blas.gemm import gemm, gemm_mixed, gemm_update
from repro.blas.getrf import getrf_nopiv, getrf_partial, recursive_getrf_nopiv
from repro.blas.trsm import (
    trsm,
    trsm_left_lower,
    trsm_left_upper,
    trsm_right_lower,
    trsm_right_upper,
)
from repro.blas.trsv import trsv_lower_unit, trsv_upper
from repro.blas.gemv import gemv, gemv_update
from repro.blas.shim import BlasShim, get_shim

__all__ = [
    "gemm",
    "gemm_mixed",
    "gemm_update",
    "getrf_nopiv",
    "getrf_partial",
    "recursive_getrf_nopiv",
    "trsm",
    "trsm_left_lower",
    "trsm_left_upper",
    "trsm_right_lower",
    "trsm_right_upper",
    "trsv_lower_unit",
    "trsv_upper",
    "gemv",
    "gemv_update",
    "BlasShim",
    "get_shim",
]
