"""Cross-platform BLAS shim layer (paper Section III-B, Table II).

The real code builds *"a thin shim layer using a macro approach"* so one
source tree drives both cuBLAS/cuSOLVER (Summit) and rocBLAS/rocSOLVER
(Frontier), absorbing API differences such as cuSOLVER's separate
``cusolverDnSgetrf_bufferSize`` workspace query that rocSOLVER does not
need.  We reproduce that structure: a :class:`BlasShim` per platform
dispatches to the NumPy kernels, records the vendor-call name for each
operation (so traces read like the real code's), and models the
workspace-query quirk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.blas.gemm import gemm_update as _gemm_update
from repro.blas.gemv import gemv as _gemv
from repro.blas.gemv import gemv_update as _gemv_update
from repro.blas.getrf import getrf_nopiv as _getrf_nopiv
from repro.blas.trsm import trsm as _trsm_dispatch
from repro.blas.trsv import trsv_lower_unit as _trsv_lower_unit
from repro.blas.trsv import trsv_upper as _trsv_upper
from repro.errors import ConfigurationError

#: Table II of the paper, verbatim.
VENDOR_NAMES: Dict[str, Dict[str, str]] = {
    "cuda": {
        "gemm": "cublasSgemmEx",
        "trsm": "cublasStrsm",
        "getrf": "cusolverDnSgetrf",
        "trsv": "openBLAS_strsv",
        "gemv": "cublasDgemv",
    },
    "rocm": {
        "gemm": "rocblas_gemm_ex",
        "trsm": "rocblas_strsm",
        "getrf": "rocsolver_sgetrf",
        "trsv": "openBLAS_strsv",
        "gemv": "rocblas_dgemv",
    },
}


@dataclass
class BlasCall:
    """One recorded vendor-library call (for traces and tests)."""

    vendor_name: str
    op: str
    shape: tuple


@dataclass
class BlasShim:
    """Platform-specific dispatch to the shared NumPy kernels.

    Parameters
    ----------
    platform:
        ``"cuda"`` (Summit / NVIDIA) or ``"rocm"`` (Frontier / AMD).
    record_calls:
        When True, every call is appended to :attr:`calls`.
    """

    platform: str
    record_calls: bool = False
    calls: List[BlasCall] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.platform not in VENDOR_NAMES:
            raise ConfigurationError(
                f"unknown platform {self.platform!r}; expected one of "
                f"{sorted(VENDOR_NAMES)}"
            )
        self._names = VENDOR_NAMES[self.platform]

    # -- quirk modelling ---------------------------------------------------

    @property
    def needs_getrf_workspace_query(self) -> bool:
        """cuSOLVER requires a separate buffer-size call before GETRF."""
        return self.platform == "cuda"

    def getrf_workspace_elements(self, n: int) -> int:
        """Workspace size (elements) the GETRF call needs.

        cuSOLVER reports a genuine workspace; rocSOLVER allocates
        internally (returns 0 here), mirroring the single-call API the
        paper contrasts.
        """
        if self.platform == "cuda":
            # cusolverDnSgetrf uses a blocked algorithm with an n x nb
            # panel workspace; model nb = 32.
            return n * 32
        return 0

    # -- dispatch ------------------------------------------------------------

    def _record(self, op: str, shape: tuple) -> None:
        if self.record_calls:
            self.calls.append(BlasCall(self._names[op], op, shape))

    def vendor_name(self, op: str) -> str:
        """The vendor routine this shim maps ``op`` to (Table II)."""
        try:
            return self._names[op]
        except KeyError:
            raise ConfigurationError(f"unknown BLAS op {op!r}") from None

    def gemm_update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Mixed-precision trailing update ``C -= A @ B``."""
        self._record("gemm", (a.shape[0], b.shape[1], a.shape[1]))
        return _gemm_update(c, a, b)

    def getrf(self, a: np.ndarray) -> np.ndarray:
        """Unpivoted LU of the diagonal block, in place."""
        if self.needs_getrf_workspace_query:
            # The workspace query is a separate API call on CUDA; we model
            # it as an explicit (cheap) allocation so traces show it.
            _ = np.empty(self.getrf_workspace_elements(a.shape[0]), dtype=a.dtype)
        self._record("getrf", a.shape)
        return _getrf_nopiv(a)

    def trsm(self, side: str, uplo: str, t: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Panel triangular solve, [R|L][UP|LOW] naming as in the paper."""
        self._record("trsm", (t.shape[0], b.shape))
        return _trsm_dispatch(side, uplo, t, b)

    def trsv_lower_unit(self, t: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Unit-lower TRSV (refinement forward solve), via openBLAS."""
        self._record("trsv", t.shape)
        return _trsv_lower_unit(t, x)

    def trsv_upper(self, t: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Upper TRSV (refinement backward solve), via openBLAS."""
        self._record("trsv", t.shape)
        return _trsv_upper(t, x)

    def gemv(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        """FP64 tile matvec for the residual regeneration."""
        self._record("gemv", a.shape)
        return _gemv(a, x)

    def gemv_update(self, y: np.ndarray, a: np.ndarray,
                    x: np.ndarray) -> np.ndarray:
        """``y <- y - A @ x`` in place (residual accumulation)."""
        self._record("gemv", a.shape)
        return _gemv_update(y, a, x)


_SHIMS: Dict[str, Callable[[], BlasShim]] = {
    "cuda": lambda: BlasShim("cuda"),
    "rocm": lambda: BlasShim("rocm"),
}


def get_shim(platform: str, record_calls: bool = False) -> BlasShim:
    """Construct the shim for a platform name (``"cuda"`` or ``"rocm"``).

    With ``REPRO_SANITIZE=1`` in the environment, the returned shim is
    the :class:`repro.analyze.sanitize.SanitizedBlasShim`, which asserts
    the mixed-precision dtype/finiteness contracts on every call.
    """
    if platform not in _SHIMS:
        raise ConfigurationError(
            f"unknown platform {platform!r}; expected one of {sorted(_SHIMS)}"
        )
    from repro.analyze.sanitize import SanitizedBlasShim, sanitize_enabled

    if sanitize_enabled():
        return SanitizedBlasShim(platform, record_calls=record_calls)
    return BlasShim(platform, record_calls=record_calls)
