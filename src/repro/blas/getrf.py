"""LU factorization kernels (GETRF).

HPL-AI omits pivoting — the input matrix is constructed so that unpivoted
elimination is stable — so the *Diagonal Update* step of Algorithm 1 is a
plain unpivoted GETRF of the B×B diagonal block (cusolverDnSgetrf /
rocsolver_sgetrf with a null pivot array).  The HPL FP64 baseline keeps
partial pivoting, provided here as :func:`getrf_partial`.

Factors are stored packed, LAPACK-style: the strict lower triangle holds
L (unit diagonal implied) and the upper triangle holds U.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SingularMatrixError


def _check_square(a: np.ndarray, name: str = "a") -> int:
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ConfigurationError(f"{name} must be square, got shape {a.shape}")
    return a.shape[0]


def getrf_nopiv(a: np.ndarray, check_pivots: bool = True) -> np.ndarray:
    """Unpivoted right-looking LU of ``a``, in place, packed L\\U.

    Raises :class:`SingularMatrixError` if a pivot underflows to zero (or
    is non-finite) — with the HPL-AI matrix construction this indicates a
    bug or an ill-suited input rather than an expected event.
    """
    n = _check_square(a)
    for k in range(n):
        pivot = a[k, k]
        if check_pivots and (pivot == 0.0 or not np.isfinite(pivot)):
            raise SingularMatrixError(
                f"zero or non-finite pivot at step {k}: {pivot!r}"
            )
        if k + 1 < n:
            a[k + 1 :, k] /= pivot
            # Rank-1 trailing update; np.outer would upcast fp32 -> fp64,
            # so use broadcasting in the array dtype.
            a[k + 1 :, k + 1 :] -= a[k + 1 :, k : k + 1] * a[k : k + 1, k + 1 :]
    return a


def recursive_getrf_nopiv(a: np.ndarray, threshold: int = 32) -> np.ndarray:
    """Cache-friendly recursive unpivoted LU, in place, packed L\\U.

    Splits the block in half, factors the left part, solves the two
    panels and updates the trailing quadrant with GEMM — the same
    recursion GPU solver libraries use so most flops land in matmul.
    Numerically equivalent (up to rounding order) to :func:`getrf_nopiv`.
    """
    n = _check_square(a)
    if n <= threshold:
        return getrf_nopiv(a)
    h = n // 2
    # Factor the left column block [A11; A21].
    recursive_getrf_nopiv(a[:h, :h], threshold)
    l11 = np.tril(a[:h, :h], -1)
    np.fill_diagonal(l11, 1.0)
    u11 = np.triu(a[:h, :h])
    # A21 <- A21 U11^{-1} ; A12 <- L11^{-1} A12.
    a[h:, :h] = _solve_upper_right(u11, a[h:, :h])
    a[:h, h:] = _solve_lower_left_unit(l11, a[:h, h:])
    # Trailing update and recursion.
    a[h:, h:] -= a[h:, :h] @ a[:h, h:]
    recursive_getrf_nopiv(a[h:, h:], threshold)
    return a


def getrf_partial(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LU with partial (row) pivoting, in place: the HPL baseline kernel.

    Returns ``(a, piv)`` where ``piv[k]`` is the row swapped with row
    ``k`` at step ``k`` (LAPACK ipiv convention, 0-based).
    """
    n = _check_square(a)
    piv = np.arange(n)
    for k in range(n):
        p = k + int(np.argmax(np.abs(a[k:, k])))
        if a[p, k] == 0.0:
            raise SingularMatrixError(f"matrix is singular at column {k}")
        if p != k:
            a[[k, p], :] = a[[p, k], :]
        piv[k] = p
        if k + 1 < n:
            a[k + 1 :, k] /= a[k, k]
            a[k + 1 :, k + 1 :] -= a[k + 1 :, k : k + 1] * a[k : k + 1, k + 1 :]
    return a, piv


def apply_pivots(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply the row interchanges recorded by :func:`getrf_partial` to ``b``."""
    for k, p in enumerate(piv):
        if p != k:
            b[[k, p]] = b[[p, k]]
    return b


def unpack_lu(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand a packed L\\U factorization into explicit (L, U) matrices."""
    _check_square(a)
    lower = np.tril(a, -1)
    np.fill_diagonal(lower, 1.0)
    upper = np.triu(a)
    return lower, upper


# -- internal triangular solves used by the recursion ---------------------


def _solve_upper_right(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``X U = B`` for X with U upper triangular (non-unit)."""
    # X = B U^{-1}  <=>  U^T X^T = B^T (lower-triangular solve).
    import scipy.linalg as sla

    return sla.solve_triangular(
        u.T, b.T, lower=True, unit_diagonal=False
    ).T.astype(b.dtype, copy=False)


def _solve_lower_left_unit(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` for X with L unit lower triangular."""
    import scipy.linalg as sla

    return sla.solve_triangular(l, b, lower=True, unit_diagonal=True).astype(
        b.dtype, copy=False
    )
