"""Dense matrix-vector products (GEMV) for the residual computation.

During iterative refinement the residual ``r = b - A x`` is computed in
FP64 with the matrix *regenerated on the fly* (paper Section III-C): each
process regenerates its block-column ``A[:, k]``, multiplies by ``x[k]``,
and a single Allreduce sums the partial products.  These kernels are the
local pieces of that computation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def gemv(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Plain ``A @ x``."""
    if a.ndim != 2 or x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise ConfigurationError(
            f"gemv shapes incompatible: A {a.shape}, x {x.shape}"
        )
    return a @ x


def gemv_update(y: np.ndarray, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``y <- y - A @ x`` in place; the residual accumulation kernel."""
    if y.ndim != 1 or y.shape[0] != a.shape[0]:
        raise ConfigurationError(
            f"gemv_update shapes incompatible: y {y.shape}, A {a.shape}"
        )
    y -= gemv(a, x)
    return y
