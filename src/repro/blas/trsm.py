"""Triangular solves with matrix right-hand sides (TRSM).

The *Panel Update* of Algorithm 1 uses two of the four [R|L][UP|LOW]
variants:

- ``TRSM_L_LOW``  solves ``L11 X = A12``  giving the U row panel;
- ``TRSM_R_UP``   solves ``X U11 = A21``  giving the L column panel.

L factors are always *unit* lower triangular (the diagonal of the packed
GETRF output belongs to U), matching cublasStrsm's DIAG_UNIT flag in the
real code.  The solves run in the dtype of the right-hand side (FP32 in
HPL-AI).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.errors import ConfigurationError


def _check(t: np.ndarray, b: np.ndarray, side: str) -> None:
    if t.ndim != 2 or t.shape[0] != t.shape[1]:
        raise ConfigurationError(f"triangle must be square, got {t.shape}")
    if b.ndim != 2:
        raise ConfigurationError(f"rhs must be 2-D, got shape {b.shape}")
    m = b.shape[0] if side == "left" else b.shape[1]
    if t.shape[0] != m:
        raise ConfigurationError(
            f"{side}-side triangle {t.shape} incompatible with rhs {b.shape}"
        )


def trsm_left_lower(t: np.ndarray, b: np.ndarray, unit: bool = True) -> np.ndarray:
    """Solve ``T X = B`` with T (unit) lower triangular; the U-panel solve."""
    _check(t, b, "left")
    return sla.solve_triangular(t, b, lower=True, unit_diagonal=unit).astype(
        b.dtype, copy=False
    )


def trsm_left_upper(t: np.ndarray, b: np.ndarray, unit: bool = False) -> np.ndarray:
    """Solve ``T X = B`` with T upper triangular."""
    _check(t, b, "left")
    return sla.solve_triangular(t, b, lower=False, unit_diagonal=unit).astype(
        b.dtype, copy=False
    )


def trsm_right_upper(t: np.ndarray, b: np.ndarray, unit: bool = False) -> np.ndarray:
    """Solve ``X T = B`` with T upper triangular; the L-panel solve.

    Implemented as the transposed left-side solve ``T^T X^T = B^T``.
    """
    _check(t, b, "right")
    x_t = sla.solve_triangular(t.T, b.T, lower=True, unit_diagonal=unit)
    return np.ascontiguousarray(x_t.T, dtype=b.dtype)


def trsm_right_lower(t: np.ndarray, b: np.ndarray, unit: bool = True) -> np.ndarray:
    """Solve ``X T = B`` with T (unit) lower triangular."""
    _check(t, b, "right")
    x_t = sla.solve_triangular(t.T, b.T, lower=False, unit_diagonal=unit)
    return np.ascontiguousarray(x_t.T, dtype=b.dtype)


_VARIANTS = {
    ("left", "lower"): trsm_left_lower,
    ("left", "upper"): trsm_left_upper,
    ("right", "lower"): trsm_right_lower,
    ("right", "upper"): trsm_right_upper,
}

# The paper abbreviates sides/triangles as [R|L] and [UP|LOW].
_SIDE_ALIASES = {"l": "left", "left": "left", "r": "right", "right": "right"}
_UPLO_ALIASES = {"up": "upper", "upper": "upper", "u": "upper",
                 "low": "lower", "lower": "lower"}


def trsm(
    side: str, uplo: str, t: np.ndarray, b: np.ndarray, unit: bool | None = None
) -> np.ndarray:
    """Generic dispatch mirroring the BLAS ``TRSM [R|L] [UP|LOW]`` naming.

    ``unit`` defaults to True for lower (L factors are unit) and False
    for upper triangles, matching HPL-AI's usage.
    """
    try:
        key = (_SIDE_ALIASES[side.lower()], _UPLO_ALIASES[uplo.lower()])
    except KeyError:
        raise ConfigurationError(
            f"unknown trsm variant side={side!r} uplo={uplo!r}"
        ) from None
    if unit is None:
        unit = key[1] == "lower"
    return _VARIANTS[key](t, b, unit=unit)
