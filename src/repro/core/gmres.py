"""GMRES-based refinement: the official HPL-AI solver variant.

The paper uses classical iterative refinement (Wilkinson-style, its
Algorithm 1 lines 33-49); the HPL-AI/HPL-MxP *reference* implementation
instead runs preconditioned GMRES with the low-precision LU factors as
the preconditioner.  Both recover FP64 accuracy from the FP16/FP32
factorization; GMRES is more robust when the factors are rougher.  This
module provides the GMRES option so the two can be compared (see the
``refinement_solver`` switch on :class:`repro.core.config.BenchmarkConfig`).

Formulation: left-preconditioned GMRES(m) on

    M^{-1} A d = M^{-1} r,      M = L~ U~  (the mixed-precision factors)

run on the *correction* equation, after which ``x <- x + d``.  Vectors
are kept replicated (as in the IR path); the two distributed pieces are

- the matvec ``A v`` — on-the-fly regenerated tiles + Allreduce (the
  same pattern as the residual GEMV), and
- the preconditioner solve — the distributed blocked triangular sweeps
  shared with classical IR.

The Arnoldi recurrence, Givens rotations and the small least-squares
solve are computed redundantly on every rank (they are O(m^2) scalars),
which keeps them deterministic and communication-free.
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from repro.comm.vmpi import RankComm
from repro.core.config import BenchmarkConfig
from repro.core.executors import ExecutorBase
from repro.core.refine import triangular_sweep
from repro.simulate.events import Compute
from repro.simulate.phantom import PhantomArray

#: Krylov dimension before restart; HPL-AI reference uses ~50, but the
#: well-conditioned benchmark matrix converges in a handful.
DEFAULT_RESTART = 10


def _apply_preconditioner(cfg, ex, comm, rhs, iteration, everyone):
    """``M^{-1} rhs`` via the distributed forward+backward sweeps."""
    yield from triangular_sweep(cfg, ex, comm, rhs, lower=True,
                                iteration=iteration)
    wp, secs = ex.ir_solution_partial()
    if secs:
        yield Compute("ir_gemv", secs)
    w = yield from comm.allreduce(wp, everyone)
    yield from triangular_sweep(cfg, ex, comm, w, lower=False,
                                iteration=iteration)
    zp, _ = ex.ir_solution_partial()
    z = yield from comm.allreduce(zp, everyone)
    return z


def _matvec(ex, comm, v, everyone):
    """Replicated ``A @ v`` with distributed regeneration."""
    partial, secs = ex.ir_matvec_partial(v)
    yield Compute("gemv", secs)
    result = yield from comm.allreduce(partial, everyone)
    return result


def _is_phantom(obj: Any) -> bool:
    return isinstance(obj, PhantomArray) or obj is None


def gmres_refinement_phase(
    cfg: BenchmarkConfig,
    ex: ExecutorBase,
    comm: RankComm,
    restart: int = DEFAULT_RESTART,
):
    """Refine the factored solution with preconditioned GMRES.

    Same contract as :func:`repro.core.refine.refinement_phase`: yields
    engine ops, returns ``{"converged", "iterations"}`` where
    ``iterations`` counts matvec/preconditioner applications.
    """
    everyone = tuple(range(cfg.num_ranks))
    secs = ex.ir_setup()
    yield Compute("ir_setup", secs)

    sweep_counter = [1 << 16]  # distinct tag window from classical IR

    def next_sweep_id() -> int:
        sweep_counter[0] += 1
        return sweep_counter[0]

    converged = False
    applications = 0
    outer = 0
    while applications < cfg.ir_max_iters:
        # True residual r = b - A x (checks convergence, restarts Krylov).
        partial, secs = ex.ir_residual_partial()
        yield Compute("gemv", secs)
        r = yield from comm.allreduce(partial, everyone)
        if ex.ir_converged(r):
            converged = True
            break
        outer += 1

        # z0 = M^{-1} r seeds the Krylov space.
        z0 = yield from _apply_preconditioner(
            cfg, ex, comm, r, next_sweep_id(), everyone
        )
        applications += 1
        if _is_phantom(z0):
            # Phantom runs: charge a fixed Krylov depth per outer cycle.
            for _ in range(min(restart, 2)):
                _ = yield from _matvec(ex, comm, z0, everyone)
                _ = yield from _apply_preconditioner(
                    cfg, ex, comm, z0, next_sweep_id(), everyone
                )
                applications += 1
            secs = ex.ir_apply_correction(z0)
            yield Compute("ir_update", secs)
            if ex.ir_converged(z0):
                converged = True
                break
            continue

        beta = float(np.linalg.norm(z0))
        if beta == 0.0:
            converged = True
            break
        basis: List[np.ndarray] = [z0 / beta]
        h = np.zeros((restart + 1, restart))
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        g = np.zeros(restart + 1)
        g[0] = beta
        m_used = 0
        for j in range(restart):
            if applications >= cfg.ir_max_iters:
                break
            av = yield from _matvec(ex, comm, basis[j], everyone)
            w = yield from _apply_preconditioner(
                cfg, ex, comm, av, next_sweep_id(), everyone
            )
            applications += 1
            # Modified Gram-Schmidt.
            for i in range(j + 1):
                h[i, j] = float(np.dot(basis[i], w))
                w = w - h[i, j] * basis[i]
            wnorm = float(np.linalg.norm(w))
            h[j + 1, j] = wnorm
            # Apply the accumulated Givens rotations to the new column.
            for i in range(j):
                tmp = cs[i] * h[i, j] + sn[i] * h[i + 1, j]
                h[i + 1, j] = -sn[i] * h[i, j] + cs[i] * h[i + 1, j]
                h[i, j] = tmp
            denom = float(np.hypot(h[j, j], h[j + 1, j]))
            if denom == 0.0:
                m_used = j
                break
            cs[j] = h[j, j] / denom
            sn[j] = h[j + 1, j] / denom
            h[j, j] = denom
            h[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            m_used = j + 1
            # The rotated g[j+1] is the preconditioned-residual estimate:
            # a cheap inner stopping test before the (expensive) true
            # residual check of the next outer cycle.
            if abs(g[j + 1]) < 1e-3 * beta or wnorm == 0.0:
                break
            basis.append(w / wnorm)
        if m_used == 0:
            break
        # Solve the small triangular system and form the correction.
        y = np.zeros(m_used)
        for i in range(m_used - 1, -1, -1):
            y[i] = (g[i] - h[i, i + 1 : m_used] @ y[i + 1 : m_used]) / h[i, i]
        d = np.zeros(cfg.n)
        for i in range(m_used):
            d += y[i] * basis[i]
        secs = ex.ir_apply_correction(d)
        yield Compute("ir_update", secs)
    return {"converged": converged, "iterations": applications}
