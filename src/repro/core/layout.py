"""Per-iteration layout bookkeeping shared by the exact and phantom
executors.

Everything here is pure index arithmetic on the 2D block-cyclic layout —
no matrix data — so both executors (and the analytic model's tests) make
identical control-flow decisions about who owns which panel, where the
trailing submatrix starts in local storage, and which local strips the
look-ahead pre-updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BenchmarkConfig


@dataclass(frozen=True)
class StepPlan:
    """All layout facts one rank needs for factorization step ``k``.

    Local offsets are in *elements* (not blocks) into the rank's local
    matrix; the trailing submatrix at step k is the contiguous slice
    ``local[r1:, c1:]`` thanks to the block-cyclic layout (trailing
    global blocks map to a contiguous tail of local blocks).

    Attributes
    ----------
    k: factorization step (global block index).
    owner_row, owner_col: grid coordinates of the A(k,k) owner.
    is_owner / in_pivot_row / in_pivot_col: this rank's roles.
    diag_r, diag_c: local element offsets of block (k, k) (valid for
        the roles that touch it).
    r1, c1: local element offsets where rows/cols with global block
        >= k+1 start.
    trail_rows, trail_cols: local element extents of the trailing
        region (rows/cols with global block >= k+1).
    owns_next_row / owns_next_col: whether this rank's process row /
        column owns global block row / column k+1 (look-ahead strips).
    """

    k: int
    owner_row: int
    owner_col: int
    is_owner: bool
    in_pivot_row: bool
    in_pivot_col: bool
    diag_r: int
    diag_c: int
    r1: int
    c1: int
    trail_rows: int
    trail_cols: int
    owns_next_row: bool
    owns_next_col: bool


def make_step_plan(cfg: BenchmarkConfig, p_ir: int, p_ic: int, k: int) -> StepPlan:
    """Compute the :class:`StepPlan` for rank (p_ir, p_ic) at step k."""
    b = cfg.block
    owner_row, owner_col = cfg.grid.diagonal_owner(k)
    trail_row_blocks = cfg.row_dim.local_blocks_at_or_after(p_ir, k + 1)
    trail_col_blocks = cfg.col_dim.local_blocks_at_or_after(p_ic, k + 1)
    r1 = (cfg.row_dim.blocks_per_proc - trail_row_blocks) * b
    c1 = (cfg.col_dim.blocks_per_proc - trail_col_blocks) * b
    nb = cfg.num_blocks
    return StepPlan(
        k=k,
        owner_row=owner_row,
        owner_col=owner_col,
        is_owner=(p_ir == owner_row and p_ic == owner_col),
        in_pivot_row=(p_ir == owner_row),
        in_pivot_col=(p_ic == owner_col),
        diag_r=(k // cfg.p_rows) * b,
        diag_c=(k // cfg.p_cols) * b,
        r1=r1,
        c1=c1,
        trail_rows=trail_row_blocks * b,
        trail_cols=trail_col_blocks * b,
        owns_next_row=(k + 1 < nb and p_ir == (k + 1) % cfg.p_rows),
        owns_next_col=(k + 1 < nb and p_ic == (k + 1) % cfg.p_cols),
    )


def global_row_blocks_of(cfg: BenchmarkConfig, p_ir: int):
    """Global block-row indices owned by process row ``p_ir``, in local order."""
    return [
        cfg.row_dim.global_block(p_ir, l)
        for l in range(cfg.row_dim.blocks_per_proc)
    ]


def global_col_blocks_of(cfg: BenchmarkConfig, p_ic: int):
    """Global block-column indices owned by process column ``p_ic``."""
    return [
        cfg.col_dim.global_block(p_ic, l)
        for l in range(cfg.col_dim.blocks_per_proc)
    ]


def diag_columns_of(cfg: BenchmarkConfig, p_ir: int, p_ic: int):
    """Global block-columns whose *diagonal block* this rank owns.

    These are the block-columns this rank regenerates during the
    iterative-refinement residual (Algorithm 1 line 36-38).
    """
    return [
        j
        for j in range(cfg.num_blocks)
        if j % cfg.p_rows == p_ir and j % cfg.p_cols == p_ic
    ]
